"""Static WCET/stack analysis cost and bound tightness.

Measures (a) the wall time of proving WCET + stack bounds for both
shipped apps -- the full ``lint --binary --timing`` workload of CFG
recovery, abstract interpretation, loop-bound inference, and the
interprocedural cycle/stack fixpoint -- and (b) the wall time of the
oracle's wcet soundness layer over a fixed fuzz-seed sample, alongside
the deterministic mean tightness (static bound / measured pipeline
cycles) that the nightly trend tracks. The wall times feed
``benchmarks/baselines.json`` via ``check_regression.py``.

Also runs standalone: ``python benchmarks/bench_wcet.py --json OUT``
writes a BENCH_wcet.json-style record combining wall times with the
``analysis.wcet*`` observability counters.
"""

import os

from repro import obs
from repro.analysis.binlint import BinaryLintConfig
from repro.analysis.costmodel import pipeline_cost_model
from repro.analysis.wcet import analyze_timing, check_budgets, \
    load_budgets, TimingConfig
from repro.compiler import compile_program
from repro.platform.bus import MMIO_RANGES
from repro.sw.doorlock import doorlock_program
from repro.sw.program import compiled_lightbulb

_STACK_TOP = 1 << 16
_TIGHTNESS_SEEDS = 6
_BUDGETS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "timing-budgets.json")


def _shipped_workload():
    """Prove both shipped apps; returns (findings, budget findings)."""
    loop_bounds, app_budgets = load_budgets(_BUDGETS)
    findings, over = [], []
    for name, compiled in (
            ("lightbulb", compiled_lightbulb(stack_top=_STACK_TOP)),
            ("doorlock", compile_program(doorlock_program(), entry="main",
                                         stack_top=_STACK_TOP))):
        config = TimingConfig(
            lint=BinaryLintConfig.for_platform(compiled.stack_top,
                                               MMIO_RANGES),
            model=pipeline_cost_model(strict=False),
            loop_bounds=loop_bounds)
        report = analyze_timing(compiled, config)
        findings += report.findings
        over += check_budgets(report, app_budgets.get(name, {}))
    return findings, over


def _tightness_workload(seeds=range(_TIGHTNESS_SEEDS)):
    """Differential runs with the wcet layer; returns tightness ratios."""
    from repro.fuzz.generator import generate_program
    from repro.fuzz.oracle import run_differential

    ratios = []
    for seed in seeds:
        result = run_differential(generate_program(seed))
        wcet = result.get("wcet") or {}
        if result["status"] != "ok" or not wcet.get("measured_cycles"):
            return []  # unsound / diverged: fail loudly in the asserts
        ratios.append(wcet["static_cycles"] / wcet["measured_cycles"])
    return ratios


def test_wcet_shipped_programs(benchmark):
    """Proving WCET + stack bounds for the whole software stack is a
    sub-second operation, finds nothing, and stays inside budgets."""
    findings, over = benchmark(_shipped_workload)
    assert findings == []
    assert over == []


def test_wcet_fuzz_tightness(benchmark):
    """The wcet soundness layer over a fixed seed sample: every bound
    holds dynamically and the mean overestimate stays under 3x."""
    ratios = benchmark.pedantic(_tightness_workload, rounds=1, iterations=1)
    assert len(ratios) == _TIGHTNESS_SEEDS
    assert all(r >= 1.0 for r in ratios)
    assert sum(ratios) / len(ratios) <= 3.0


def main(argv=None):
    """Standalone run: shipped-app + tightness wall times and counters."""
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_wcet.json-style record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "wcet", "results": []}

    t0 = time.perf_counter()
    findings, over = _shipped_workload()
    shipped_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "wcet_shipped", "wall_seconds": shipped_wall,
        "findings": len(findings) + len(over),
        "functions": obs.counter("analysis.wcet_functions").value,
        "loops_bounded": obs.counter("analysis.wcet_loops_bounded").value,
    })
    print("wcet (shipped apps):       %.2fs, %d finding(s)"
          % (shipped_wall, len(findings) + len(over)))

    t0 = time.perf_counter()
    ratios = _tightness_workload()
    tight_wall = time.perf_counter() - t0
    mean = round(sum(ratios) / len(ratios), 3) if ratios else None
    record["results"].append({
        "name": "wcet_fuzz_tightness", "wall_seconds": tight_wall,
        "seeds": _TIGHTNESS_SEEDS, "proved": len(ratios),
        "tightness_mean": mean,
        "tightness_max": round(max(ratios), 3) if ratios else None,
    })
    print("wcet (%d fuzz seeds):       %.2fs, tightness mean %s"
          % (_TIGHTNESS_SEEDS, tight_wall, mean))

    if mean is not None:
        # Deterministic pseudo-result: the mean overestimation factor on a
        # fixed seed sample, recorded as a "wall time" so the regression
        # gate bounds it (a >25% looser analysis fails CI) and the trend
        # store charts it next to the real wall times.
        record["results"].append({
            "name": "wcet_tightness_mean", "wall_seconds": mean,
        })

    record["counters"] = dict(obs.REGISTRY.snapshot("analysis."))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0 if (not findings and not over and len(ratios)
                 == _TIGHTNESS_SEEDS) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
