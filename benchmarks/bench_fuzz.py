"""Fuzzing throughput: generator programs/sec and oracle campaign time.

Measures (a) raw program-generation throughput -- the generator must
stay cheap so fuzzing time is spent in the execution layers, not in
building ASTs -- and (b) the wall time of a small differential campaign
(every layer, default profile), which is what the CI smoke-fuzz step and
`python -m repro fuzz` actually pay per seed. The wall times feed
``benchmarks/baselines.json`` via ``check_regression.py``.

Also runs standalone: ``python benchmarks/bench_fuzz.py --json OUT``
writes a BENCH_fuzz.json-style record combining wall times with the
``fuzz.*`` observability counters.
"""

from repro import obs
from repro.fuzz.generator import GenConfig, generate_program
from repro.fuzz.oracle import run_campaign

_GEN_PROGRAMS = 200
_CAMPAIGN_SEEDS = 12


def _generate_workload(n=_GEN_PROGRAMS):
    config = GenConfig()
    return [generate_program(seed, config) for seed in range(n)]


def _campaign_workload(seeds=_CAMPAIGN_SEEDS):
    return run_campaign(list(range(seeds)), config=GenConfig(),
                        logic_sample=2)


def test_generator_throughput(benchmark):
    """Generating programs is orders of magnitude cheaper than running
    them; the generator never becomes the campaign bottleneck."""
    programs = benchmark(_generate_workload)
    assert len(programs) == _GEN_PROGRAMS


def test_differential_campaign(benchmark):
    """A full five-layer campaign over a dozen seeds, with a sampled
    logic cross-check -- the per-seed cost the CI smoke step pays."""
    report = benchmark.pedantic(_campaign_workload, rounds=1, iterations=1)
    assert report["summary"]["divergences"] == 0
    assert report["summary"]["invalid"] == 0


def main(argv=None):
    """Standalone run: generator + campaign wall times and counters."""
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_fuzz.json-style record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "fuzz", "results": []}

    t0 = time.perf_counter()
    programs = _generate_workload()
    gen_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "generate_programs", "wall_seconds": gen_wall,
        "programs": len(programs),
        "programs_per_second": len(programs) / gen_wall,
    })
    print("generate (%d programs):  %.2fs (%.0f programs/sec)"
          % (len(programs), gen_wall, len(programs) / gen_wall))

    t0 = time.perf_counter()
    report = _campaign_workload()
    campaign_wall = time.perf_counter() - t0
    summary = report["summary"]
    record["results"].append({
        "name": "differential_campaign", "wall_seconds": campaign_wall,
        "programs": summary["programs"],
        "divergences": summary["divergences"],
        "programs_per_second": summary["programs"] / campaign_wall,
    })
    print("campaign (%d seeds, 5 layers): %.2fs (%.2f programs/sec, "
          "%d divergence(s))"
          % (summary["programs"], campaign_wall,
             summary["programs"] / campaign_wall, summary["divergences"]))

    record["counters"] = obs.REGISTRY.snapshot("fuzz.")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
