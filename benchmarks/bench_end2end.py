"""Section 5.9: the end-to-end theorem, exercised as a benchmark.

Times the executable theorem checker: boot the compiled lightbulb on the
pipelined processor with adversarial traffic and verify the MMIO trace
stays within goodHlTrace; also reports the spec-checking throughput
(events matched per second), the analogue of proof-checking time for the
top-level statement.

Also runs standalone: ``python benchmarks/bench_end2end.py --json OUT``
writes a BENCH_end2end.json-style record combining wall times with the
key observability counters (instructions retired, MMIO bus events,
checkpoints, prefix checks).
"""

import time

from repro.core.end2end import run_adversarial, run_end_to_end
from repro.platform.net import lightbulb_packet
from repro.sw.specs import good_hl_trace


def test_end2end_theorem_isa(benchmark):
    """The composed check on the ISA-level machine with mixed traffic."""

    def run():
        return run_adversarial(seed=2026, n_frames=10, max_units=400_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("end-to-end (ISA machine): %d instructions, %d MMIO events, "
          "bulb history %r, in spec: %s"
          % (result.instructions, len(result.trace), result.bulb_history,
             result.ok))
    assert result.ok, result.detail


def test_end2end_theorem_p4mm(benchmark):
    """The theorem's own statement: p4mm, packet in, trace in spec."""

    def run():
        # p4mm boot (LAN init over SPI) takes ~60k single-rule steps;
        # inject well after RX comes up.
        return run_end_to_end(frames=[(8, lightbulb_packet(True)),
                                      (16, lightbulb_packet(False))],
                              processor="p4mm", max_units=350_000,
                              checkpoint_every=10_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("end-to-end (p4mm): %d Kami steps, %d MMIO events, bulb %r"
          % (result.instructions, len(result.trace), result.bulb_history))
    assert result.ok, result.detail
    assert result.bulb_history == [1, 0]


def test_spec_matching_throughput(benchmark):
    """How fast the trace-predicate engine decides membership -- the
    'proof checking' cost of the top-level spec."""
    # Produce one long representative trace once.
    result = run_end_to_end(frames=[(3, lightbulb_packet(True)),
                                    (9, lightbulb_packet(False))],
                            max_units=120_000)
    assert result.ok
    trace = result.trace
    spec = good_hl_trace()

    matched = benchmark(lambda: spec.prefix_of(trace))
    print()
    print("spec prefix check over %d events" % len(trace))
    assert matched


def main(argv=None):
    """Standalone run: time the workloads, record wall time + obs counters."""
    import argparse
    import json
    import sys

    from repro import obs

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_end2end.json-style record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "end2end", "results": []}

    t0 = time.perf_counter()
    isa = run_adversarial(seed=2026, n_frames=10, max_units=400_000)
    isa_wall = time.perf_counter() - t0
    assert isa.ok, isa.detail
    record["results"].append({
        "name": "end2end_theorem_isa", "wall_seconds": isa_wall,
        "instructions": isa.instructions, "mmio_events": len(isa.trace),
    })
    print("isa:  %.2fs, %d instructions, %d MMIO events"
          % (isa_wall, isa.instructions, len(isa.trace)))

    t0 = time.perf_counter()
    p4mm = run_end_to_end(frames=[(8, lightbulb_packet(True)),
                                  (16, lightbulb_packet(False))],
                          processor="p4mm", max_units=350_000,
                          checkpoint_every=10_000)
    p4mm_wall = time.perf_counter() - t0
    assert p4mm.ok, p4mm.detail
    record["results"].append({
        "name": "end2end_theorem_p4mm", "wall_seconds": p4mm_wall,
        "kami_steps": p4mm.instructions, "mmio_events": len(p4mm.trace),
    })
    print("p4mm: %.2fs, %d Kami steps, %d MMIO events"
          % (p4mm_wall, p4mm.instructions, len(p4mm.trace)))

    record["counters"] = {}
    for prefix in ("riscv.instructions", "riscv.mmio_", "platform.",
                   "kami.", "end2end.", "compiler.compiles"):
        record["counters"].update(obs.REGISTRY.snapshot(prefix))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
