"""The committed bench-history store: one JSONL file per benchmark.

`check_regression.py` gates CI against a single committed baseline; this
module keeps the *trajectory* -- every ``BENCH_*.json`` record appended
as one line under ``benchmarks/history/<benchmark>.jsonl``::

    {"t": "2026-08-09T12:00:00+00:00", "sha": "cd365f9",
     "results": {"end2end_theorem_isa": 41.0, ...}}

The store is what `python -m repro report` renders as trend sparklines,
turning the ROADMAP's "fast as the hardware allows" goal into a visible
line instead of a pair of numbers. Append from CI (or locally) with::

    python benchmarks/check_regression.py BENCH_*.json --update-history

which appends after the regression gate has run (the gate's exit code is
preserved either way, so a regressed run is still recorded).
"""

import datetime
import json
import os
import subprocess

DEFAULT_HISTORY_DIR = os.path.join(os.path.dirname(__file__), "history")


def git_sha():
    """Short commit sha of the working tree, or None outside a checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def append_record(benchmark, walls, history_dir=None, t=None, sha=None):
    """Append one run of ``benchmark`` (a ``{result: wall_seconds}``
    dict) to its history file; returns the path written."""
    history_dir = history_dir or DEFAULT_HISTORY_DIR
    os.makedirs(history_dir, exist_ok=True)
    if t is None:
        t = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds")
    if sha is None:
        sha = git_sha()
    entry = {"t": t, "sha": sha,
             "results": {name: round(wall, 4)
                         for name, wall in sorted(walls.items())}}
    path = os.path.join(history_dir, "%s.jsonl" % benchmark)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")
    return path


def load_history(history_dir=None):
    """All committed history: ``{benchmark: [entry, ...]}`` in file
    order (oldest first). Malformed lines are skipped, not fatal."""
    history_dir = history_dir or DEFAULT_HISTORY_DIR
    out = {}
    if not os.path.isdir(history_dir):
        return out
    for fname in sorted(os.listdir(history_dir)):
        if not fname.endswith(".jsonl"):
            continue
        entries = []
        with open(os.path.join(history_dir, fname)) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and "results" in entry:
                    entries.append(entry)
        if entries:
            out[fname[:-len(".jsonl")]] = entries
    return out
