"""The CI perf-regression gate.

Compares benchmark ``--json`` records (written by ``bench_end2end.py
--json``, ``bench_verification_perf.py --json``, ``bench_incremental.py
--json``) against the committed wall-time baselines in
``benchmarks/baselines.json`` and exits non-zero when any result
regressed by more than the threshold (default 25%)::

    python benchmarks/check_regression.py BENCH_end2end.json ... \\
        [--baselines benchmarks/baselines.json] [--threshold 0.25]

Results faster than baseline are reported but never fail the gate (CI
runners vary; only slowdowns are regressions). Result names present in a
record but absent from the baselines are reported as "new" and pass --
add them with ``--update``, which rewrites the baselines file from the
provided records (run locally, commit the diff).

``--update-history [DIR]`` additionally appends each record to the
committed trend store (``benchmarks/history/``, see
``benchmarks/history.py``) after the gate has run; the gate's exit code
is preserved, so a regressed run is still recorded in the trajectory.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINES = "benchmarks/baselines.json"
DEFAULT_THRESHOLD = 0.25


def load_record(path):
    with open(path) as f:
        record = json.load(f)
    name = record.get("benchmark")
    results = record.get("results")
    if not isinstance(name, str) or not isinstance(results, list):
        raise SystemExit("%s: not a benchmark --json record" % path)
    walls = {}
    for result in results:
        if isinstance(result, dict) and "wall_seconds" in result:
            walls[result["name"]] = float(result["wall_seconds"])
    return name, walls


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("records", nargs="+", metavar="BENCH.json",
                        help="benchmark --json output files to check")
    parser.add_argument("--baselines", default=DEFAULT_BASELINES,
                        help="committed baselines file "
                             "(default %(default)s)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional slowdown over baseline "
                             "(default %(default)s = +25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines file from the records "
                             "instead of checking")
    parser.add_argument("--update-history", nargs="?", metavar="DIR",
                        const="", default=None,
                        help="append each record to the bench-history "
                             "store after the gate (default DIR: "
                             "benchmarks/history/)")
    args = parser.parse_args(argv)

    with open(args.baselines) as f:
        baselines = json.load(f)
    benchmarks = baselines.setdefault("benchmarks", {})

    if args.update:
        for path in args.records:
            name, walls = load_record(path)
            benchmarks[name] = {k: round(v, 2) for k, v in
                                sorted(walls.items())}
        with open(args.baselines, "w") as f:
            json.dump(baselines, f, indent=2)
            f.write("\n")
        print("updated %s from %d record(s)"
              % (args.baselines, len(args.records)))
        _append_history(args)
        return 0

    failures = 0
    for path in args.records:
        name, walls = load_record(path)
        base = benchmarks.get(name, {})
        for result, wall in sorted(walls.items()):
            baseline = base.get(result)
            if baseline is None:
                print("NEW   %s/%-28s %7.2fs (no baseline; add with "
                      "--update)" % (name, result, wall))
                continue
            limit = baseline * (1.0 + args.threshold)
            ratio = wall / baseline if baseline else float("inf")
            if wall > limit:
                failures += 1
                print("FAIL  %s/%-28s %7.2fs vs baseline %.2fs "
                      "(%.2fx > %.2fx allowed)"
                      % (name, result, wall, baseline, ratio,
                         1.0 + args.threshold))
            else:
                print("ok    %s/%-28s %7.2fs vs baseline %.2fs (%.2fx)"
                      % (name, result, wall, baseline, ratio))
    _append_history(args)
    if failures:
        print("%d benchmark result(s) regressed by more than %d%%"
              % (failures, round(args.threshold * 100)))
        return 1
    print("no perf regressions beyond %d%%" % round(args.threshold * 100))
    return 0


def _append_history(args):
    """Record the run in the trend store (never affects the gate)."""
    if args.update_history is None:
        return
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import history

    history_dir = args.update_history or None
    for path in args.records:
        name, walls = load_record(path)
        out = history.append_record(name, walls, history_dir=history_dir)
        print("appended %s run to %s" % (name, out))


if __name__ == "__main__":
    sys.exit(main())
