"""Table 4: lines of code per layer and the "proof overhead" factor.

The paper classifies lines into implementation / interface / proof per
layer and reports the overhead ``(m+n+p+q)/m``. Our analogue classifies
modules into implementation / interface / checking; the "proof" columns of
the paper correspond to our checking machinery plus the test suite.
"""

from repro.core.loc import TABLE4_PAPER, table4_rows, totals


def test_table4(benchmark):
    rows = benchmark(table4_rows)
    print()
    print("Table 4: lines of code by layer")
    print("  %-18s %6s %6s %6s %9s   %s" % (
        "layer", "impl", "iface", "check", "overhead", "paper (m,n,p,q)"))
    for row in rows:
        paper = TABLE4_PAPER.get(row.layer)
        paper_str = ("m=%d n=%d p=%d q=%d" % paper) if paper else "-"
        overhead = ("%.1fx" % row.overhead) if row.implementation else "  - "
        print("  %-18s %6d %6d %6d %9s   %s" % (
            row.layer, row.implementation, row.interface, row.checking,
            overhead, paper_str))
    sums = totals()
    print("  test suite: %d LoC; benchmarks: %d LoC"
          % (sums["tests"], sums["benchmarks"]))
    # Sanity: every layer inventory points at existing code.
    assert all(r.implementation + r.interface + r.checking > 0 for r in rows)
    # The paper's qualitative claim: interface+checking LoC rival or exceed
    # implementation LoC across the stack.
    total_impl = sum(r.implementation for r in rows)
    total_other = sum(r.interface + r.checking for r in rows) + sums["tests"]
    assert total_other > total_impl
