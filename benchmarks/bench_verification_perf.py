"""Section 7.2.2: verification performance.

The paper: "the main Coq development is built and verified automatically
after every change ... less than 7.5GB of RAM and 80 minutes per build",
plus ~2 hours for the Kami refinement proofs. Our analogue times the two
corresponding activities: (a) the program-logic verification of all
lightbulb software, and (b) the hardware refinement + interface checks.

Also runs standalone: ``python benchmarks/bench_verification_perf.py
--json OUT`` writes a BENCH_verification_perf.json-style record combining
wall times with the key observability counters (solver queries per tier,
SAT decisions/conflicts, obligations proved).
"""

from repro.core.integration import (
    check_pipeline_refinement, check_spec_vs_isa,
)
from repro.sw.verify import verify_all


def test_software_verification_time(benchmark):
    """Analogue of the paper's 80-minute software proof build."""
    run = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    print()
    print("program-logic verification of the lightbulb software:")
    for report in run.reports:
        print("   ", report)
    print("   total obligations discharged:", run.total_obligations)
    assert len(run.reports) == 11
    assert run.total_obligations > 80


def test_hardware_refinement_time(benchmark):
    """Analogue of the paper's 2-hour Kami refinement check."""

    def refine():
        isa = check_spec_vs_isa()
        pipe = check_pipeline_refinement()
        return isa, pipe

    isa, pipe = benchmark.pedantic(refine, rounds=1, iterations=1)
    print()
    print("hardware checks: %s=%s, %s=%s"
          % (isa.name, "ok" if isa.ok else "FAIL",
             pipe.name, "ok" if pipe.ok else "FAIL"))
    assert isa.ok and pipe.ok


def main(argv=None):
    """Standalone run: time the workloads, record wall time + obs counters."""
    import argparse
    import json
    import sys
    import time

    from repro import obs

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_verification_perf.json-style "
                             "record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "verification_perf", "results": []}

    t0 = time.perf_counter()
    run = verify_all()
    sw_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "software_verification", "wall_seconds": sw_wall,
        "functions": len(run.reports), "obligations": run.total_obligations,
    })
    print("software verification: %.2fs, %d functions, %d obligations"
          % (sw_wall, len(run.reports), run.total_obligations))

    t0 = time.perf_counter()
    isa = check_spec_vs_isa()
    pipe = check_pipeline_refinement()
    hw_wall = time.perf_counter() - t0
    assert isa.ok and pipe.ok
    record["results"].append({
        "name": "hardware_refinement", "wall_seconds": hw_wall,
    })
    print("hardware refinement:   %.2fs (%s, %s)"
          % (hw_wall, isa.name, pipe.name))

    record["counters"] = {}
    for prefix in ("solver.", "sat.", "bitblast.", "vcgen.", "kami."):
        record["counters"].update(obs.REGISTRY.snapshot(prefix))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
