"""Section 7.2.2: verification performance.

The paper: "the main Coq development is built and verified automatically
after every change ... less than 7.5GB of RAM and 80 minutes per build",
plus ~2 hours for the Kami refinement proofs. Our analogue times the two
corresponding activities: (a) the program-logic verification of all
lightbulb software, and (b) the hardware refinement + interface checks.
"""

from repro.core.integration import (
    check_pipeline_refinement, check_spec_vs_isa,
)
from repro.sw.verify import verify_all


def test_software_verification_time(benchmark):
    """Analogue of the paper's 80-minute software proof build."""
    run = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    print()
    print("program-logic verification of the lightbulb software:")
    for report in run.reports:
        print("   ", report)
    print("   total obligations discharged:", run.total_obligations)
    assert len(run.reports) == 11
    assert run.total_obligations > 80


def test_hardware_refinement_time(benchmark):
    """Analogue of the paper's 2-hour Kami refinement check."""

    def refine():
        isa = check_spec_vs_isa()
        pipe = check_pipeline_refinement()
        return isa, pipe

    isa, pipe = benchmark.pedantic(refine, rounds=1, iterations=1)
    print()
    print("hardware checks: %s=%s, %s=%s"
          % (isa.name, "ok" if isa.ok else "FAIL",
             pipe.name, "ok" if pipe.ok else "FAIL"))
    assert isa.ok and pipe.ok
