"""Table 2: parameterization throughout the stack (horizontal modularity).

For every parameter row of the paper's Table 2, the corresponding witness
instantiates the parameter two different ways and checks the stack still
composes; the benchmark times the full sweep.
"""

from repro.core.parameterization import PARAMETERS, check_all


def test_table2(benchmark):
    results = benchmark(check_all)
    print()
    print("Table 2: parameterization throughout the stack")
    print("  %-28s %-38s %s" % ("Parameter", "Used in", "witness"))
    for param, ok in zip(PARAMETERS, results):
        print("  %-28s %-38s %s" % (param.name, param.used_in,
                                    "ok" if ok else "FAILED"))
    assert all(results)
    assert len(results) == 8  # the paper's eight rows
