"""Fleet simulator throughput: frames/sec and node-steps/sec.

The fleet's cost has two independent axes, measured separately so a
regression pins itself to a layer:

* ``fleet_fabric``: the fabric alone (no owned nodes) -- discrete-event
  dispatch, switching, fault draws, queue bookkeeping. The number that
  matters is frames switched per second of wall time.
* ``fleet_nodes``: a full small fleet -- fast-engine execution of every
  node plus the online spec checks, the dominant cost in practice. The
  number that matters is node instruction-steps per second.

Both run a fixed seed and a fixed topology, so the work is identical
run-to-run and the wall-clock gate in ``check_regression.py`` compares
like with like.
"""

import time

from repro.net.fleet import run_fleet, run_fleet_shard

_NODES = 4
_DURATION = 25_000
_SEED = 0
_PROFILE = "lossy"

# The fabric alone is orders of magnitude cheaper than node execution,
# so it gets a much larger topology and horizon to produce a wall time
# the 25% regression gate can resolve.
_FAB_NODES = 48
_FAB_DURATION = 2_000_000


def _fabric_only():
    """The whole fabric with zero owned nodes: pure event-loop cost."""
    report = run_fleet_shard(nodes=_FAB_NODES, duration=_FAB_DURATION,
                             profile="chaos", seed=_SEED, owned=[])
    return report["fabric"]


def _full_fleet():
    return run_fleet(nodes=_NODES, duration=_DURATION, profile=_PROFILE,
                     seed=_SEED)


def test_fleet_fabric(benchmark):
    fabric = {}
    benchmark.pedantic(lambda: fabric.update(_fabric_only()),
                       rounds=1, iterations=1)
    print()
    print("fabric: %d frames switched" % fabric["switch"]["frames_in"])
    assert fabric["switch"]["frames_in"] > 0


def test_fleet_nodes(benchmark):
    report = {}
    benchmark.pedantic(lambda: report.update(_full_fleet()),
                       rounds=1, iterations=1)
    print()
    summary = report["summary"]
    print("fleet: %d instructions, %d spec checks, %d violations"
          % (summary["instructions"], summary["spec_checks"],
             summary["violations"]))
    assert summary["violations"] == 0
    assert summary["errors"] == 0
    assert summary["instructions"] == _NODES * _DURATION


def main(argv=None):
    """Standalone run: wall times + throughput numbers, JSON record."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_fleet.json-style record")
    args = parser.parse_args(argv)

    record = {"benchmark": "fleet", "results": []}

    t0 = time.perf_counter()
    fabric = _fabric_only()
    wall = time.perf_counter() - t0
    frames = fabric["switch"]["frames_in"]
    record["results"].append({
        "name": "fleet_fabric", "wall_seconds": wall,
        "frames_switched": frames,
        "frames_per_second": round(frames / wall),
    })
    print("%-14s %7.2fs  %9.0f frames/s" % ("fleet_fabric", wall,
                                            frames / wall))

    t0 = time.perf_counter()
    report = _full_fleet()
    wall = time.perf_counter() - t0
    summary = report["summary"]
    record["results"].append({
        "name": "fleet_nodes", "wall_seconds": wall,
        "instructions": summary["instructions"],
        "spec_checks": summary["spec_checks"],
        "node_steps_per_second": round(summary["instructions"] / wall),
    })
    print("%-14s %7.2fs  %9.0f node-steps/s" % ("fleet_nodes", wall,
                                                summary["instructions"] / wall))

    if summary["violations"] or summary["errors"]:
        print("FAIL: fleet benchmark run left spec violations/errors")
        return 1
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
