"""Table 3: the trusted code base.

The paper's point: the specifications one must *trust* (application trace
predicates at the top, the HDL semantics at the bottom) are tiny compared
to the system. We count our analogous spec modules and compare against the
whole repository, printing rows next to the paper's numbers.
"""

from repro.core.loc import TABLE3_PAPER, table3_rows, totals


def test_table3(benchmark):
    rows = benchmark(table3_rows)
    sums = totals()
    print()
    print("Table 3: trusted code base (spec LoC)")
    print("  paper (Coq):")
    for name, loc in TABLE3_PAPER:
        print("    %-34s %5d" % (name, loc))
    print("    %-34s %5d" % ("total", sum(l for _, l in TABLE3_PAPER)))
    print("  this repo (Python):")
    for name, loc in rows:
        print("    %-34s %5d" % (name, loc))
    tcb = sum(l for _, l in rows)
    print("    %-34s %5d" % ("total", tcb))
    print("  whole repository: src=%(src)d tests=%(tests)d "
          "benchmarks=%(benchmarks)d examples=%(examples)d" % sums)
    # The shape the paper reports: the TCB is a small fraction of the system.
    assert tcb < sums["src"] / 5, (tcb, sums)
    assert all(loc > 0 for _, loc in rows)
