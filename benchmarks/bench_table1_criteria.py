"""Table 1: evaluation criteria for verified stacks.

Prior-work rows are data from the paper; the row for this repository is
*computed* by probing the codebase for each capability, and the benchmark
times that probe (it compiles the lightbulb and exercises every layer).
"""

from repro.core.survey import CRITERIA, full_table, self_assessment

_MARK = {"yes": "Y", "partial": "~", "no": "x", "n/a": "-"}


def _print_table(table):
    names = list(table)
    width = max(len(n) for n in names) + 2
    print()
    print("Table 1: evaluation criteria for verified stacks")
    print("  (Y met / ~ partially / x not met / - not applicable)")
    header = " " * width + " ".join("%2d" % (i + 1) for i in range(len(CRITERIA)))
    print(header)
    for i, criterion in enumerate(CRITERIA):
        print("  %2d = %s" % (i + 1, criterion))
    for name in names:
        row = table[name]
        print(name.ljust(width)
              + "  ".join(_MARK[cell] for cell in row))


def test_table1(benchmark):
    assessment = benchmark(self_assessment)
    table = full_table()
    _print_table(table)
    # The self-probe must find the full stack present.
    met = sum(1 for v in assessment.values() if v == "yes")
    assert met >= 10, assessment
    # Reproduction claim: this repo matches the paper's column everywhere
    # except "one proof assistant" (decision procedures are not Coq).
    differs = [c for c in CRITERIA
               if assessment[c] != "yes" and c != "One proof assistant"]
    assert not differs, differs
