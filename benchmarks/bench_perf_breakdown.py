"""Section 7.2.1: the packet-to-actuation latency decomposition.

The paper: verified stack is 10x slower than the unverified prototype,
decomposed as 10x ~= (1.4x SPI pipelining x 1.2x timeout logic) x 2.1x
compiler x 2.7x processor. This benchmark measures the same latency (in
cycles) under the same configuration axes and reports the measured factors
next to the paper's. Absolute numbers differ (our substrate is a
simulator); the *shape* -- who wins, and roughly by how much per factor --
is the reproduction target.
"""


from repro.core.timing import factor_decomposition, measure_latency

_RESULT = {}


def _decompose():
    if "d" not in _RESULT:
        _RESULT["d"] = factor_decomposition()
    return _RESULT["d"]


def test_perf_breakdown(benchmark):
    decomposition = benchmark.pedantic(_decompose, rounds=1, iterations=1)
    paper = decomposition["paper"]
    print()
    print("Section 7.2.1: latency decomposition "
          "(verified stack vs unverified prototype)")
    print("  %-18s %9s %7s" % ("factor", "measured", "paper"))
    for key in ("spi_pipelining", "timeout_logic", "compiler", "processor",
                "total"):
        print("  %-18s %8.2fx %6.1fx" % (key, decomposition[key], paper[key]))
    print("  raw latencies (cycles):")
    for config, cycles in sorted(decomposition["latencies"].items()):
        print("    %-45s %7d" % (config, cycles))
    # Shape assertions: every factor is a slowdown in the same direction as
    # the paper's, and the end-to-end gap is the same order of magnitude.
    assert decomposition["spi_pipelining"] > 1.0
    assert decomposition["timeout_logic"] > 1.0
    assert decomposition["compiler"] > 1.5
    assert decomposition["processor"] > 1.0
    assert 2.0 < decomposition["total"] < 50.0
    # The factors multiply to the total (the paper's identity).
    assert abs(decomposition["product"] - decomposition["total"]) < 1e-6


def test_verified_latency_measurement(benchmark):
    """The headline measurement itself (the paper's 5.5 ms), as cycles on
    the pipelined Kami processor, timed end to end."""
    result = benchmark.pedantic(
        lambda: measure_latency("p4mm", "verified", "verified"),
        rounds=1, iterations=1)
    print()
    print("verified stack packet-to-actuation: %d cycles "
          "(boot took %d cycles; %d SPI bytes on the wire)"
          % (result.latency_cycles, result.boot_cycles, result.mmio_events))
    assert result.latency_cycles > 1000
