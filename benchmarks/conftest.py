"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index) and prints it, so that
``pytest benchmarks/ --benchmark-only`` reproduces the whole evaluation.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
