"""Incremental and parallel re-verification (docs/incremental.md).

The paper's Coq development re-checks every proof on every build; our
program logic is modular, so the proof cache + dispatcher turn the
"edit one driver function, re-verify the world" loop into (a) a warm
cache run that skips the solver for every unchanged VC and (b) a
multi-core run for the cold case. This benchmark measures all three
modes on the full lightbulb + doorlock workload:

* ``cold``     -- empty cache, sequential (the seed repo's baseline)
* ``warm``     -- second run against the populated cache
* ``parallel`` -- cold again but with one worker per core

Also runs standalone: ``python benchmarks/bench_incremental.py --json
OUT`` writes a BENCH_incremental.json-style record combining wall times
with the cache/dispatch observability counters.
"""

import shutil
import tempfile

from repro import obs
from repro.logic.cache import ProofCache
from repro.sw.verify import verify_all, verify_doorlock


def _workload(jobs=1, cache=None):
    run = verify_all(jobs=jobs, cache=cache)
    doorlock = verify_doorlock(jobs=jobs, cache=cache)
    return run, doorlock


def test_warm_cache_skips_the_solver(benchmark, tmp_path):
    """A warm re-verification must serve >=90% of solver queries from the
    proof cache (the incremental headline; see docs/incremental.md)."""
    d = str(tmp_path / "cache")
    with ProofCache(d) as cache:
        cold_run, _ = _workload(cache=cache)

    queries = obs.counter("solver.queries")
    hits = obs.counter("cache.hits")
    q0, h0 = queries.value, hits.value

    def warm():
        with ProofCache(d) as cache:
            return _workload(cache=cache)

    warm_run, warm_doorlock = benchmark.pedantic(warm, rounds=1, iterations=1)
    warm_queries = queries.value - q0
    warm_hits = hits.value - h0
    print()
    print("warm re-verification: %d/%d solver queries served from cache"
          % (warm_hits, warm_queries))
    assert warm_run.reports == cold_run.reports
    assert warm_run.ok and warm_doorlock.ok
    assert warm_hits >= 0.9 * warm_queries


def test_parallel_dispatch_matches_sequential(benchmark):
    """--jobs N is observationally identical to --jobs 1 (and faster on a
    multi-core runner; on a single core the fork overhead dominates)."""
    from repro.logic.dispatch import default_jobs

    sequential_run, sequential_door = _workload(jobs=1)
    run, doorlock = benchmark.pedantic(
        lambda: _workload(jobs=default_jobs()), rounds=1, iterations=1)
    print()
    print("parallel verification across %d workers" % default_jobs())
    assert run.reports == sequential_run.reports
    assert doorlock.reports == sequential_door.reports


def main(argv=None):
    """Standalone run: cold vs warm vs parallel wall time + counters."""
    import argparse
    import json
    import sys
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_incremental.json-style record")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel phase "
                             "(0 = one per core)")
    args = parser.parse_args(argv)

    from repro.logic.dispatch import default_jobs

    jobs = args.jobs or default_jobs()
    obs.enable(trace=False)
    record = {"benchmark": "incremental", "results": []}
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        queries = obs.counter("solver.queries")
        hits = obs.counter("cache.hits")

        t0 = time.perf_counter()
        with ProofCache(tmp) as cache:
            run, _ = _workload(cache=cache)
        cold_wall = time.perf_counter() - t0
        record["results"].append({
            "name": "cold_sequential", "wall_seconds": cold_wall,
            "functions": len(run.reports),
            "obligations": run.total_obligations,
        })
        print("cold (sequential):  %.2fs, %d obligations"
              % (cold_wall, run.total_obligations))

        q0, h0 = queries.value, hits.value
        t0 = time.perf_counter()
        with ProofCache(tmp) as cache:
            run, _ = _workload(cache=cache)
        warm_wall = time.perf_counter() - t0
        record["results"].append({
            "name": "warm_cached", "wall_seconds": warm_wall,
            "cache_hits": hits.value - h0,
            "solver_queries": queries.value - q0,
        })
        print("warm (cached):      %.2fs, %d/%d queries from cache"
              % (warm_wall, hits.value - h0, queries.value - q0))

        t0 = time.perf_counter()
        run, _ = _workload(jobs=jobs)
        par_wall = time.perf_counter() - t0
        record["results"].append({
            "name": "cold_parallel", "wall_seconds": par_wall, "jobs": jobs,
        })
        print("cold (--jobs %d):    %.2fs" % (jobs, par_wall))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    record["counters"] = {}
    for prefix in ("cache.", "dispatch.", "solver.", "vcgen."):
        record["counters"].update(obs.REGISTRY.snapshot(prefix))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
