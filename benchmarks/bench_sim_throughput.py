"""Pure simulator throughput: the fast engine vs the reference loop.

The repo's first throughput-only benchmark: everything else times a
composed workload (theorem checking, spec matching, solver calls), but
every one of those bottoms out in `RiscvMachine.run`, so instructions
per second on the end-to-end workload -- the compiled lightbulb binary
against the real platform MMIO bus -- is the number the fast-path
engine (`repro.riscv.fastpath`) exists to move.

Measured variants:

* ``sim_reference``: the reference fetch/decode/execute interpreter;
* ``sim_fast_cold``: the fast engine on a fresh machine -- includes
  decode-cache fills and basic-block discovery;
* ``sim_fast_warm``: the same machine continuing execution with the
  decode cache and block map already populated.

The fast engine must be at least ``MIN_SPEEDUP``x the reference
(asserted here and in the standalone ``--json`` mode, so the CI bench
lane fails if the fast path rots); correctness of the speedup is the
fuzz oracle's "fast" layer and ``tests/test_fast_engine.py``.
"""

import time

from repro.riscv.machine import RiscvMachine
from repro.sw.program import compiled_lightbulb, make_platform

#: Acceptance floor: fast engine must beat the reference by this factor.
MIN_SPEEDUP = 3.0

_STEPS = 200_000


def _machine(fast):
    plat = make_platform()
    return RiscvMachine.with_program(compiled_lightbulb(
        stack_top=1 << 16).image, mem_size=1 << 16, mmio_bus=plat.bus,
        fast=fast)


def _throughput(fast, steps=_STEPS, warm=False):
    """Instructions/second over ``steps`` on the end2end workload."""
    machine = _machine(fast)
    if warm:
        machine.run(steps)  # populate decode cache + block map
    start = machine.instret
    t0 = time.perf_counter()
    machine.run(steps)
    wall = time.perf_counter() - t0
    return (machine.instret - start) / wall, wall


def test_sim_throughput_reference(benchmark):
    machine = _machine(fast=False)
    benchmark.pedantic(lambda: machine.run(_STEPS), rounds=1, iterations=1)
    print()
    print("reference: %d instructions retired" % machine.instret)
    assert machine.instret == _STEPS


def test_sim_throughput_fast_cold(benchmark):
    machine = _machine(fast=True)
    benchmark.pedantic(lambda: machine.run(_STEPS), rounds=1, iterations=1)
    print()
    print("fast (cold): %d instructions retired" % machine.instret)
    assert machine.instret == _STEPS


def test_fast_engine_speedup():
    """The acceptance bar: >= MIN_SPEEDUP x instructions/sec."""
    ref_ips, _ = _throughput(fast=False)
    fast_ips, _ = _throughput(fast=True, warm=True)
    speedup = fast_ips / ref_ips
    print()
    print("reference %.0f instr/s, fast (warm) %.0f instr/s: %.1fx"
          % (ref_ips, fast_ips, speedup))
    assert speedup >= MIN_SPEEDUP, (
        "fast engine only %.2fx over reference (need >= %.1fx)"
        % (speedup, MIN_SPEEDUP))


def main(argv=None):
    """Standalone run: wall times + throughput, obs counters, JSON record."""
    import argparse
    import json

    from repro import obs

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_sim_throughput.json-style record")
    parser.add_argument("--steps", type=int, default=_STEPS,
                        help="instructions per variant (default %(default)s)")
    args = parser.parse_args(argv)

    record = {"benchmark": "sim_throughput", "results": []}
    variants = (
        ("sim_reference", dict(fast=False)),
        ("sim_fast_cold", dict(fast=True)),
        ("sim_fast_warm", dict(fast=True, warm=True)),
    )
    ips = {}
    for name, kwargs in variants:
        throughput, wall = _throughput(steps=args.steps, **kwargs)
        ips[name] = throughput
        record["results"].append({
            "name": name, "wall_seconds": wall,
            "instructions": args.steps,
            "instructions_per_second": round(throughput),
        })
        print("%-16s %7.2fs  %9.0f instr/s" % (name, wall, throughput))

    speedup = ips["sim_fast_warm"] / ips["sim_reference"]
    record["speedup_warm"] = round(speedup, 2)
    record["counters"] = obs.REGISTRY.snapshot("riscv.")
    print("fast/reference speedup: %.1fx (floor %.1fx)"
          % (speedup, MIN_SPEEDUP))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    if speedup < MIN_SPEEDUP:
        print("FAIL: fast engine below the %.1fx throughput floor"
              % MIN_SPEEDUP)
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
