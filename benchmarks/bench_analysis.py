"""Static-analysis performance: lint throughput and VC prescreening.

Measures (a) the wall time of linting every shipped program -- the CI
``lint-programs`` step must stay cheap enough to run on each push -- and
(b) full software verification with and without the abstract-
interpretation prescreener (``verify --prescreen``), recording how many
obligations are discharged without a solver query. The wall times feed
``benchmarks/baselines.json`` via ``check_regression.py``.

Also runs standalone: ``python benchmarks/bench_analysis.py --json OUT``
writes a BENCH_analysis.json-style record combining wall times with the
``analysis.*`` observability counters.
"""

from repro import obs
from repro.analysis import LintConfig, lint_program
from repro.analysis.domains import CsPairingSpec
from repro.bedrock2.extspec import MMIOSpec
from repro.platform.bus import MMIO_RANGES
from repro.sw import constants as C
from repro.sw.doorlock import doorlock_program
from repro.sw.program import lightbulb_program
from repro.sw.verify import verify_all, verify_doorlock


def _config():
    return LintConfig(
        mmio_ranges=MMIO_RANGES,
        ext_spec=MMIOSpec(MMIO_RANGES),
        cs_pairing=CsPairingSpec(addr=C.SPI_CSMODE_ADDR,
                                 acquire=C.CSMODE_HOLD,
                                 release=C.CSMODE_AUTO))


def _lint_workload():
    config = _config()
    findings = list(lint_program(lightbulb_program(), config))
    findings += lint_program(doorlock_program(), config)
    return findings


def _verify_workload(prescreen):
    run = verify_all(prescreen=prescreen)
    doorlock = verify_doorlock(prescreen=prescreen)
    return run, doorlock


def test_lint_shipped_programs(benchmark):
    """Linting the whole software stack is a sub-second operation (and
    finds nothing -- the zero-warnings gate)."""
    findings = benchmark(_lint_workload)
    assert findings == []


def test_prescreen_discharges_obligations(benchmark):
    """The prescreener proves a solid fraction of the workload's
    obligations abstractly, with verdicts identical to the pure-solver
    run (the soundness contract tested in tests/test_prescreen.py)."""
    counter = obs.counter("analysis.obligations_prescreened")
    before = counter.value
    run, doorlock = benchmark.pedantic(lambda: _verify_workload(True),
                                       rounds=1, iterations=1)
    discharged = counter.value - before
    total = run.total_obligations + sum(r.obligations
                                        for r in doorlock.reports)
    print()
    print("prescreen discharged %d/%d obligations abstractly"
          % (discharged, total))
    assert run.ok and doorlock.ok
    assert discharged >= total / 10


def main(argv=None):
    """Standalone run: lint + verify-with/without-prescreen wall times."""
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_analysis.json-style record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "analysis", "results": []}
    prescreened = obs.counter("analysis.obligations_prescreened")

    t0 = time.perf_counter()
    findings = _lint_workload()
    lint_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "lint_programs", "wall_seconds": lint_wall,
        "findings": len(findings),
        "functions": obs.counter("analysis.functions_linted").value,
    })
    print("lint (all programs):     %.2fs, %d finding(s)"
          % (lint_wall, len(findings)))

    p0 = prescreened.value
    t0 = time.perf_counter()
    run, doorlock = _verify_workload(prescreen=True)
    on_wall = time.perf_counter() - t0
    discharged = prescreened.value - p0
    total = run.total_obligations + sum(r.obligations
                                        for r in doorlock.reports)
    record["results"].append({
        "name": "verify_prescreen_on", "wall_seconds": on_wall,
        "obligations": total, "prescreened": discharged,
    })
    print("verify (prescreen on):   %.2fs, %d/%d obligations discharged "
          "abstractly" % (on_wall, discharged, total))

    t0 = time.perf_counter()
    run_off, doorlock_off = _verify_workload(prescreen=False)
    off_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "verify_prescreen_off", "wall_seconds": off_wall,
        "obligations": run_off.total_obligations
        + sum(r.obligations for r in doorlock_off.reports),
    })
    print("verify (prescreen off):  %.2fs" % off_wall)

    record["counters"] = {}
    for prefix in ("analysis.", "solver.", "vcgen."):
        record["counters"].update(obs.REGISTRY.snapshot(prefix))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
