"""Binary-lint performance: CFG recovery + abstract interpretation.

Measures (a) the wall time of the full ``lint --binary`` workload over
both shipped apps (CFG recovery, the per-function interval/known-bits
fixpoint, and translation validation) and (b) the static prescreening
cost the binlint oracle layer adds to one differential-fuzz seed -- the
layer runs on every generated program, so it must stay a small fraction
of the execution layers it fronts. The wall times feed
``benchmarks/baselines.json`` via ``check_regression.py``.

Also runs standalone: ``python benchmarks/bench_binlint.py --json OUT``
writes a BENCH_binlint.json-style record combining wall times with the
``analysis.binlint*`` observability counters.
"""

from repro import obs
from repro.analysis.binlint import BinaryLintConfig, lint_binary_program, \
    lint_image
from repro.compiler import compile_program
from repro.platform.bus import MMIO_RANGES
from repro.sw.doorlock import doorlock_program
from repro.sw.program import compiled_lightbulb, lightbulb_program
from repro.sw.verify import platform_mmio_spec

_STACK_TOP = 1 << 16


def _shipped_workload():
    findings = []
    for program, compiled in (
            (lightbulb_program(), compiled_lightbulb(stack_top=_STACK_TOP)),
            (doorlock_program(),
             compile_program(doorlock_program(), entry="main",
                             stack_top=_STACK_TOP))):
        config = BinaryLintConfig.for_platform(
            compiled.stack_top, MMIO_RANGES, ext_spec=platform_mmio_spec())
        findings += lint_binary_program(program, compiled, config)
    return findings


def _fuzz_layer_workload(seeds=range(4)):
    from repro.fuzz.generator import generate_program
    from repro.fuzz.oracle import DEV_BASE, DEV_SIZE

    config = BinaryLintConfig.for_platform(
        _STACK_TOP, ((DEV_BASE, DEV_BASE + DEV_SIZE),))
    findings = []
    for seed in seeds:
        compiled = compile_program(generate_program(seed),
                                   stack_top=_STACK_TOP)
        findings += lint_image(compiled.image, compiled.symbols, config)
    return findings


def test_binlint_shipped_programs(benchmark):
    """Binary-linting the whole software stack is a sub-second operation
    (and finds nothing -- the zero-warnings gate)."""
    findings = benchmark(_shipped_workload)
    assert findings == []


def test_binlint_fuzz_layer(benchmark):
    """The oracle's static layer over a batch of generated programs."""
    findings = benchmark(_fuzz_layer_workload)
    assert findings == []


def main(argv=None):
    """Standalone run: shipped-app + fuzz-layer binary-lint wall times."""
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write a BENCH_binlint.json-style record")
    args = parser.parse_args(argv)

    obs.enable(trace=False)
    record = {"benchmark": "binlint", "results": []}

    t0 = time.perf_counter()
    findings = _shipped_workload()
    shipped_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "binlint_shipped", "wall_seconds": shipped_wall,
        "findings": len(findings),
        "functions": obs.counter("analysis.binlint_functions").value,
    })
    print("binlint (shipped apps):  %.2fs, %d finding(s)"
          % (shipped_wall, len(findings)))

    t0 = time.perf_counter()
    findings = _fuzz_layer_workload()
    fuzz_wall = time.perf_counter() - t0
    record["results"].append({
        "name": "binlint_fuzz_layer", "wall_seconds": fuzz_wall,
        "findings": len(findings),
    })
    print("binlint (4 fuzz seeds):  %.2fs, %d finding(s)"
          % (fuzz_wall, len(findings)))

    record["counters"] = dict(obs.REGISTRY.snapshot("analysis."))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(record, f, indent=2)
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
