"""Ablations of the design choices DESIGN.md calls out.

Not a table in the paper, but the paper motivates each mechanism (BTB,
eager I$ fill, SPI polling latency, proof automation); these benchmarks
quantify what each one buys on the lightbulb workload.

* **BTB on/off** -- paper §5.5 added a branch target buffer [35]; measure
  packet latency with and without it.
* **SPI rx latency sweep** -- how device response latency amplifies the
  polling cost the §7.2.1 analysis attributes to the SPI discipline.
* **Solver portfolio** -- §7.3's point that most proof work is routine:
  count how many verification conditions each tier (structural rewriting,
  interval analysis, SAT) actually settles.
* **Inline threshold** -- the optimizing baseline's main knob.
"""

from repro.core.timing import measure_latency
from repro.kami.framework import System
from repro.kami.memory import make_memory_module
from repro.kami.pipeline_proc import make_pipelined_processor
from repro.logic import solver as logic_solver
from repro.platform.net import lightbulb_packet
from repro.sw.program import compiled_lightbulb, make_platform


def _latency_with_btb(btb_enabled: bool) -> int:
    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat = make_platform()
    mem = make_memory_module(compiled.image, ram_words=1 << 14)
    proc = make_pipelined_processor(icache_words=len(compiled.image) // 4 + 4,
                                    btb_enabled=btb_enabled)
    system = System([proc, mem], plat.kami_world(), snapshot_rollback=False)
    injected = [False]
    cycles = 0
    start = None
    while cycles < 3_000_000 and not plat.gpio.bulb_on:
        if plat.lan.rx_enabled and not injected[0]:
            # settle into polling before measuring
            if cycles > 0 and start is None:
                plat.lan.inject_frame(lightbulb_packet(True))
                injected[0] = True
                start = cycles
        if system.cycle() == 0:
            break
        cycles += 1
    assert plat.gpio.bulb_on
    return cycles - start


def test_btb_ablation(benchmark):
    def run():
        return _latency_with_btb(True), _latency_with_btb(False)

    with_btb, without_btb = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("BTB ablation (packet-to-actuation cycles on p4mm):")
    print("  with BTB:    %7d" % with_btb)
    print("  without BTB: %7d  (%.2fx)" % (without_btb,
                                           without_btb / with_btb))
    # The predictor must help: the workload is dominated by polling loops,
    # i.e. taken backward branches.
    assert without_btb > with_btb


def test_spi_latency_sweep(benchmark):
    def sweep():
        results = {}
        for latency in (0, 1, 4, 8):
            compiled = compiled_lightbulb(stack_top=1 << 16)
            from repro.riscv.machine import RiscvMachine

            plat = make_platform(rx_latency=latency)
            machine = RiscvMachine.with_program(compiled.image,
                                                mem_size=1 << 16,
                                                mmio_bus=plat.bus)
            machine.run(1_200_000, stop=lambda m: plat.lan.rx_enabled)
            plat.lan.inject_frame(lightbulb_packet(True))
            start = machine.instret
            machine.run(3_000_000, stop=lambda m: plat.gpio.bulb_on)
            assert plat.gpio.bulb_on
            results[latency] = machine.instret - start
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("SPI device latency sweep (instructions to actuation, FE310):")
    for latency, instrs in results.items():
        print("  rx_latency=%d: %7d" % (latency, instrs))
    assert results[8] > results[0]


def test_solver_portfolio_ablation(benchmark):
    from repro.sw.verify import verify_all

    def run():
        from repro import obs
        for tier in ("structural", "interval", "sat"):
            obs.counter("solver.tier." + tier).reset()
        verify_all()
        return logic_solver.tier_counts()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(stats.values())
    print()
    print("solver portfolio over the full software verification "
          "(%d validity queries):" % total)
    for tier in ("structural", "interval", "sat"):
        print("  %-12s %5d  (%4.1f%%)"
              % (tier, stats[tier], 100.0 * stats[tier] / total))
    # The paper's observation (§7.3): much proof work is routine -- the
    # structural tier alone settles a large share without any search. (The
    # SAT tier's count is dominated by path-feasibility queries, which are
    # satisfiable and therefore can never be settled by refutation tiers.)
    assert stats["structural"] > total * 0.3
    assert total > 150


def test_inline_threshold_ablation(benchmark):
    import repro.compiler.opt as opt

    def sweep():
        results = {}
        original = opt.optimize
        for threshold in (0, 40, 100):
            def patched(flat, inline_max_size=40, _th=threshold):
                return original(flat, inline_max_size=_th)
            opt.optimize = patched
            try:
                results[threshold] = measure_latency(
                    "fe310", "optimizing", "verified").latency_cycles
            finally:
                opt.optimize = original
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("optimizing-compiler inline threshold (verified driver, FE310):")
    for threshold, cycles in results.items():
        print("  max_size=%-4d %7d cycles" % (threshold, cycles))
    # Some inlining beats none.
    assert results[40] < results[0]
