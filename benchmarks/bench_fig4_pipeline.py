"""Figure 4: the pipelined processor's structure and behavior.

Figure 4 is the block diagram of the p4mm processor: IF/ID/EX/WB stages
joined by FIFOs, an instruction cache on the fetch side, a BTB, and two
asynchronous memory interfaces. This benchmark checks the structure is as
drawn and reports dynamic statistics (per-stage activity, stall and squash
rates, BTB effectiveness, CPI) on the lightbulb workload.
"""

from collections import Counter

from repro.kami.refinement import build_pipelined_system
from repro.platform.net import lightbulb_packet
from repro.sw.program import compiled_lightbulb, make_platform


def test_fig4_structure():
    proc_system = build_pipelined_system(b"\x00" * 64, _world(), ram_words=64,
                                         icache_words=16)
    proc = proc_system.modules[0]
    rule_names = {name for name, _ in proc.rules}
    assert rule_names == {"fill", "fetch", "decode", "execute", "writeback"}
    # The three inter-stage FIFO queues of the figure.
    for fifo in ("f2d", "d2e", "e2w"):
        assert fifo in proc.regs
    # I$ and BTB.
    assert "icache" in proc.regs and "btb" in proc.regs
    print("\nFigure 4 structure: IF/ID/EX/WB + f2d/d2e/e2w FIFOs + I$ + BTB")


def _world():
    from repro.kami.framework import ExternalWorld

    class Null(ExternalWorld):
        def call(self, method, args):
            raise KeyError(method)

    return Null()


def _run_workload():
    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat = make_platform()
    system = build_pipelined_system(compiled.image, plat.kami_world(),
                                    ram_words=1 << 14,
                                    icache_words=len(compiled.image) // 4 + 4)
    proc = system.modules[0]
    injected = [False]
    stats = Counter()
    cycles = 0
    while cycles < 120_000 and not plat.gpio.bulb_on:
        if plat.lan.rx_enabled and not injected[0]:
            plat.lan.inject_frame(lightbulb_packet(True))
            injected[0] = True
        before = system.steps_taken
        fired_names = []
        for name, module, fn in system._rules:
            label = system._try_rule(name, module, fn)
            if label is not None:
                system.steps_taken += 1
                if label.calls:
                    system.trace.append(label)
                fired_names.append(name)
        for name in fired_names:
            stats[name] += 1
        cycles += 1
        if system.steps_taken == before:
            break
    return proc, stats, cycles, system


def test_fig4_dynamics(benchmark):
    proc, stats, cycles, system = benchmark.pedantic(_run_workload,
                                                     rounds=1, iterations=1)
    retired = stats["p4mm.writeback"]
    print()
    print("Figure 4 dynamics on the lightbulb workload (%d cycles):" % cycles)
    for stage in ("fill", "fetch", "decode", "execute", "writeback"):
        name = "p4mm." + stage
        print("  %-10s active %6d cycles (%4.1f%%)"
              % (stage, stats[name], 100.0 * stats[name] / max(1, cycles)))
    print("  instructions retired: %d   CPI: %.2f"
          % (retired, cycles / max(1, retired)))
    print("  BTB entries learned: %d" % len(proc.regs["btb"]))
    assert retired > 1000
    assert len(proc.regs["btb"]) > 0
    # A pipeline: multiple stages active in the same cycle on average.
    total_activity = sum(stats.values())
    assert total_activity > 1.5 * cycles
