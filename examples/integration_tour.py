#!/usr/bin/env python3
"""A tour of the stack's interfaces (paper Figure 3) and their checks.

The paper's contribution is *integration verification*: each pair of
adjacent components is verified against a shared interface specification,
and the per-interface results compose into one end-to-end theorem. This
example walks those interfaces on the real lightbulb artifacts:

1. Bedrock2 CPS semantics  vs  small-step semantics      (paper §5.8)
2. Bedrock2 semantics      vs  compiled RISC-V machine   (paper §5.3)
3. ISA semantics           vs  single-cycle Kami spec    (paper §5.8)
4. Kami spec processor     vs  pipelined p4mm            (paper §5.7)
5. The composed end-to-end theorem on p4mm               (paper §5.9)

...and then demonstrates horizontal modularity (paper §6 / Table 2): every
cross-layer parameter instantiated a second way.

Run:  python examples/integration_tour.py
"""

import time

from repro.core.integration import ALL_CHECKS
from repro.core.parameterization import PARAMETERS

print("=== vertical modularity: the interface checks of Figure 3 ===\n")
for check in ALL_CHECKS:
    start = time.time()
    result = check()
    status = "ok" if result.ok else "FAILED: " + result.detail
    print("  %-45s %-6s (%.1fs)" % (result.name, status, time.time() - start))
    assert result.ok, result.detail

print("\n=== horizontal modularity: the parameters of Table 2 ===\n")
for param in PARAMETERS:
    start = time.time()
    ok = param.witness()
    print("  %-28s [%s] %-38s (%.1fs)"
          % (param.name, "ok" if ok else "FAIL", param.witness_desc,
             time.time() - start))
    assert ok, param.name

print("\nEvery interface crossed; every parameter swappable.")
