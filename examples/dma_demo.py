#!/usr/bin/env python3
"""DMA with memory-ownership transfer (paper section 6.2's extension).

The paper notes its I/O interface "is also powerful enough to model direct
memory access (DMA), by recording memory-ownership changes in the I/O
trace". This demo exercises our implementation of that idea:

1. a Bedrock2 driver programs the DMA fill engine over MMIO and polls it;
2. while the transfer is in flight, the engine *owns* the buffer -- a CPU
   touch is undefined behavior (shown with a deliberately racy program);
3. after completion, ownership returns with the device's data visible;
4. the whole transaction matches its trace specification.

Run:  python examples/dma_demo.py
"""

from repro.bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, set_, var, while_,
)
from repro.compiler import compile_program
from repro.platform.bus import MMIOBus
from repro.platform.dma import (
    DMA_ADDR, DMA_BASE, DMA_CTRL, DMA_LEN, DMA_STATUS, DMA_VALUE,
    DmaEngine, dma_transfer_spec,
)
from repro.riscv.machine import RiscvMachine, RiscvUB

DMA_FILL = func("dma_fill", ("addr", "n", "val"), ("err",), block(
    interact([], "MMIOWRITE", lit(DMA_BASE + DMA_ADDR), var("addr")),
    interact([], "MMIOWRITE", lit(DMA_BASE + DMA_LEN), var("n")),
    interact([], "MMIOWRITE", lit(DMA_BASE + DMA_VALUE), var("val")),
    interact([], "MMIOWRITE", lit(DMA_BASE + DMA_CTRL), lit(1)),
    set_("err", lit(1)),
    set_("i", lit(64)),
    while_(var("i"), block(
        interact(["s"], "MMIOREAD", lit(DMA_BASE + DMA_STATUS)),
        if_(var("s"),
            set_("i", var("i") - 1),
            block(set_("i", lit(0)), set_("err", lit(0)))),
    )),
))

GOOD = {
    "dma_fill": DMA_FILL,
    "main": func("main", ("dst", "n"), ("r",), block(
        call(("e",), "dma_fill", var("dst"), var("n"), lit(0x77)),
        set_("r", load1(var("dst")) + (var("e") << 16)),
    )),
}

RACY = {
    "dma_fill": DMA_FILL,
    "main": func("main", ("dst", "n"), ("r",), block(
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_ADDR), var("dst")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_LEN), var("n")),
        interact([], "MMIOWRITE", lit(DMA_BASE + DMA_CTRL), lit(1)),
        set_("r", load1(var("dst"))),  # touches the buffer mid-transfer!
    )),
}


def run(program, label):
    compiled = compile_program(program, entry="main", stack_top=0x8000)
    engine = DmaEngine(transfer_polls=3)
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 15,
                                        mmio_bus=MMIOBus([engine]))
    engine.attach_machine(machine)
    machine.set_register(10, 0x4000)
    machine.set_register(11, 128)
    print("-- %s --" % label)
    try:
        machine.run(200_000, until_pc=compiled.halt_pc)
        print("   result a0 = 0x%x" % machine.get_register(10))
        return machine
    except RiscvUB as ub:
        print("   UNDEFINED BEHAVIOR:", ub)
        return None


print("the well-behaved driver: program engine, poll, then read")
machine = run(GOOD, "polling driver")
assert machine is not None and machine.get_register(10) == 0x77
spec = dma_transfer_spec(0x4000, 128, 0x77)
print("   transfer trace matches protocol spec:",
      spec.matches(machine.trace))

print()
print("the racy driver: reads the buffer while the engine owns it")
racy = run(RACY, "racy driver")
assert racy is None
print("   -> exactly the class of bug the ownership discipline rules out;")
print("      in the verified methodology this is an unprovable load")
print("      obligation, not a heisenbug.")
