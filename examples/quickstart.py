#!/usr/bin/env python3
"""Quickstart: one small program through every layer of the verified stack.

We write a GCD routine in Bedrock2, verify properties of it with the
program logic (including termination via a decreasing measure), compile it
to RV32IM, and run the binary on three machines: the ISA-level semantics,
the single-cycle Kami spec processor, and the 4-stage pipelined Kami
processor -- checking they all agree.

Run:  python examples/quickstart.py
"""

from repro.bedrock2.builder import block, call, func, set_, var, while_
from repro.bedrock2.extspec import MMIOSpec
from repro.bedrock2.semantics import run_function
from repro.bedrock2.vcgen import FunctionSpec, LoopSpec, verify_function
from repro.compiler import compile_program, run_compiled
from repro.kami.framework import ExternalWorld
from repro.kami.refinement import build_pipelined_system, build_spec_system
from repro.logic import terms as T

# ---------------------------------------------------------------------------
# 1. Write the program (Euclid's algorithm).

def _gcd_invariant(st):
    # Ghost-variable idiom: a0/b0 snapshot the inputs and are never
    # modified, so the invariant can relate loop state to the arguments:
    # if b started at zero, the loop never ran and (a, b) are untouched.
    return T.implies(T.eq(st.locals["b0"], T.const(0)),
                     T.and_(T.eq(st.locals["a"], st.locals["a0"]),
                            T.eq(st.locals["b"], st.locals["b0"])))


GCD = {
    "gcd": func("gcd", ("a", "b"), ("a",), block(
        set_("a0", var("a")),
        set_("b0", var("b")),
        while_(var("b"), block(
            set_("t", var("b")),
            set_("b", var("a").umod(var("b"))),
            set_("a", var("t")),
        ), spec=LoopSpec(
            invariant=_gcd_invariant,
            # Total correctness: the unsigned measure b strictly decreases
            # (a mod b < b for b != 0, which holds on the loop's path).
            measure=lambda st: st.locals["b"],
        )),
    )),
    "main": func("main", ("a", "b"), ("r",),
                 call(("r",), "gcd", var("a"), var("b"))),
}

# ---------------------------------------------------------------------------
# 2. Verify with the program logic: termination (the measure obligation is
#    checked at every back edge) plus a functional property.


def post(vc, state, args, rets):
    a, b = args
    vc.prove(state,
             T.implies(T.eq(b, T.const(0)), T.eq(rets[0], a)),
             "gcd(a, 0) == a")


report = verify_function(GCD, "gcd", FunctionSpec(post=post), MMIOSpec([]))
print("program logic:", report)

# ---------------------------------------------------------------------------
# 3. Run it in the source semantics.

(src_result,), _ = run_function(GCD, "main", [462, 1071])
print("source semantics:     gcd(462, 1071) =", src_result)

# ---------------------------------------------------------------------------
# 4. Compile to RV32IM and run on the ISA-level machine.

compiled = compile_program(GCD, entry="main", stack_top=0x8000)
print("compiled: %d instructions, static stack bound %d bytes"
      % (len(compiled.instrs), compiled.stack_bound))
(isa_result,), machine = run_compiled(compiled, [462, 1071], mem_size=1 << 15)
print("ISA-level machine:    gcd(462, 1071) =", isa_result,
      "(%d instructions executed)" % machine.instret)

# ---------------------------------------------------------------------------
# 5. Run the same binary on both Kami processors (no devices attached).


class NoDevices(ExternalWorld):
    def call(self, method, args):
        raise KeyError(method)


def drained(proc):
    return all(not proc.regs.get(q) for q in ("f2d", "d2e", "e2w"))


def run_on(system, steps):
    proc = system.modules[0]
    proc.regs["rf"][10] = 462   # a0
    proc.regs["rf"][11] = 1071  # a1
    system.run(steps, stop=lambda s: proc.regs["pc"] == compiled.halt_pc
               and drained(proc))
    return proc.regs["rf"][10]


spec_result = run_on(build_spec_system(compiled.image, NoDevices(),
                                       ram_words=1 << 13), 20_000)
print("Kami spec processor:  gcd(462, 1071) =", spec_result)

pipe_result = run_on(
    build_pipelined_system(compiled.image, NoDevices(), ram_words=1 << 13,
                           icache_words=len(compiled.image) // 4 + 4),
    200_000)
print("Kami p4mm (pipeline): gcd(462, 1071) =", pipe_result)

assert src_result == isa_result == spec_result == pipe_result == 21
print("\nall four layers agree: gcd(462, 1071) = 21")
