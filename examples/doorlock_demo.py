#!/usr/bin/env python3
"""A second application on the same stack: the UDP door lock.

The paper: "this system could be used for any simple application". The
door lock reuses the SPI driver, LAN9250 driver, compiler, processor, and
device models *unchanged* -- only the application layer and its trace
specification are new. The security property shifts from "bulb follows
valid commands" to "lock moves only for frames carrying the secret PIN".

Run:  python examples/doorlock_demo.py
"""

from repro.compiler import compile_program
from repro.platform.net import lightbulb_packet, oversize_packet
from repro.riscv.machine import RiscvMachine
from repro.sw.doorlock import LOCK_PIN, doorlock_program, lock_packet
from repro.sw.doorlock_spec import good_lock_trace
from repro.sw.program import make_platform

PIN = 0xC0DE1234

program = doorlock_program(PIN)
compiled = compile_program(program, entry="main", stack_top=1 << 16)
print("door-lock binary: %d bytes (drivers shared with the lightbulb)"
      % len(compiled.image))

platform = make_platform()
machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                    mmio_bus=platform.bus)
spec = good_lock_trace(PIN)


def locked() -> str:
    unlocked = (platform.gpio.output_val >> LOCK_PIN) & 1
    return "UNLOCKED" if unlocked else "LOCKED"


def deliver(label, frame):
    platform.lan.inject_frame(frame)
    machine.run(3_000_000, stop=lambda m: not platform.lan.frames
                and not platform.lan._active_words)
    machine.run(30_000)
    in_spec = spec.prefix_of(machine.trace)
    print("  %-34s -> %s   (trace in spec: %s)" % (label, locked(), in_spec))
    assert in_spec


machine.run(500_000, stop=lambda m: platform.lan.rx_enabled)
print("booted; door is", locked())

print("\nattack traffic first:")
deliver("wrong PIN 0x00000000", lock_packet(0x00000000, True))
deliver("wrong PIN (one bit off)", lock_packet(PIN ^ 1, True))
deliver("a lightbulb ON command", lightbulb_packet(True))
deliver("2KB oversize with fake PIN bytes", oversize_packet(2000))

print("\nthe legitimate owner:")
deliver("correct PIN, unlock", lock_packet(PIN, True))
deliver("correct PIN, lock", lock_packet(PIN, False))

print("\nthe door only ever moved for the secret PIN.")
