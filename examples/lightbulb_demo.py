#!/usr/bin/env python3
"""The verified IoT lightbulb, end to end (paper sections 3 and 5.9).

Reproduces the paper's demo in simulation: the lightbulb binary (compiled
in-process by the verified-style compiler) is placed at address 0 of the
pipelined Kami processor's memory; the processor talks over MMIO to the
SPI peripheral, behind which sits the LAN9250 Ethernet controller and a
GPIO-driven power switch. We send UDP command packets -- and a barrage of
malformed ones -- and watch the bulb, while checking after every burst
that the observed MMIO trace is still a prefix of ``goodHlTrace``.

Run:  python examples/lightbulb_demo.py
"""

from repro.kami.refinement import build_pipelined_system
from repro.platform.net import (
    lightbulb_packet,
    non_udp_packet,
    oversize_packet,
    truncated_packet,
    wrong_ethertype_packet,
)
from repro.sw.program import compiled_lightbulb, make_platform
from repro.sw.specs import good_hl_trace

compiled = compiled_lightbulb(stack_top=1 << 16)
print("lightbulb binary: %d bytes, static stack bound %d bytes"
      % (len(compiled.image), compiled.stack_bound))

platform = make_platform()
system = build_pipelined_system(compiled.image, platform.kami_world(),
                                ram_words=1 << 14,
                                icache_words=len(compiled.image) // 4 + 4)
spec = good_hl_trace()


def run_until(condition, max_steps=600_000, label=""):
    n = system.run(max_steps, stop=condition)
    trace = system.mmio_trace()
    assert spec.prefix_of(trace), "trace left goodHlTrace after %s!" % label
    print("  [%s] %d Kami steps, %d MMIO events so far, trace in spec: yes"
          % (label, n, len(trace)))


print("\n-- boot ------------------------------------------------------------")
run_until(lambda s: platform.lan.rx_enabled, label="BootSeq")
print("  Ethernet controller is up, receiver enabled; bulb is",
      "ON" if platform.gpio.bulb_on else "OFF")

print("\n-- a valid ON command ----------------------------------------------")
platform.lan.inject_frame(lightbulb_packet(True))
run_until(lambda s: platform.gpio.bulb_on, label="Recv true + LightbulbCmd")
print("  bulb is", "ON" if platform.gpio.bulb_on else "OFF")

print("\n-- malicious traffic -----------------------------------------------")
for name, frame in [("truncated", truncated_packet()),
                    ("wrong ethertype", wrong_ethertype_packet()),
                    ("TCP, not UDP", non_udp_packet()),
                    ("2 KB oversize frame", oversize_packet(2000))]:
    platform.lan.inject_frame(frame)
    before = platform.gpio.bulb_on
    run_until(lambda s: not platform.lan.frames, label="RecvInvalid: " + name)
    assert platform.gpio.bulb_on == before, "malformed frame moved the bulb!"
print("  bulb is still", "ON" if platform.gpio.bulb_on else "OFF",
      "- every malformed frame was ignored")

print("\n-- a valid OFF command ---------------------------------------------")
platform.lan.inject_frame(lightbulb_packet(False))
run_until(lambda s: not platform.gpio.bulb_on,
          label="Recv false + LightbulbCmd")
print("  bulb is", "ON" if platform.gpio.bulb_on else "OFF")

print("\nbulb transition history:", platform.gpio.bulb_history)
print("final trace length:", len(system.mmio_trace()), "MMIO events;",
      "every checkpoint satisfied prefix_of(goodHlTrace)")
