"""Incremental prefix checking for head-plus-loop specifications.

Both application specs have the shape the paper gives them::

    spec := Head +++ Body^*          -- BootSeq +++ Iteration^*

`TracePred.prefix_of` re-derives every parse from scratch, which is
O(total trace) per call and O(total^2) over a run -- fine for one machine
checked at sixteen checkpoints, prohibitive for a fleet of machines each
checked every few scheduling quanta. `OnlineChecker` exploits two facts
about the predicate language to make repeated prefix checks on a
*growing* trace cost O(new events) each:

* residuals only ever consume events forward from their start position,
  so a parse discovered at trace length n is still a parse at any longer
  length -- anchors (positions where ``Head +++ Body^k`` has matched)
  never need re-derivation;
* ``partial(trace, pos, env)`` is monotone decreasing in the trace for a
  fixed ``(pos, env)``: once an in-progress parse is dead it stays dead,
  so exhausted anchors are retired permanently.

The checker keeps the live anchor set; each `check` extends anchors
through newly arrived events via ``Body.residuals`` and re-tests
liveness only where the trace actually grew. The verdict is exactly
``spec.prefix_of(trace)``: some anchor has consumed the whole trace, or
some anchor's in-progress parse can still complete.

Specs of any other shape fall back to the full `prefix_of` -- the class
exists as an optimization, never a semantic fork (callers are expected
to confirm a False verdict against the full predicate; see
``repro.net.node``).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .predicates import Concat, Star, Trace, TracePred


class _Anchor:
    """One discovered parse position: ``trace[:pos]`` is in
    ``Head +++ Body^k`` under the captured ``env``."""

    __slots__ = ("pred", "pos", "env", "live")

    def __init__(self, pred: TracePred, pos: int, env: dict):
        self.pred = pred
        self.pos = pos
        self.env = env
        self.live = True


def _env_key(env: dict) -> Tuple:
    return tuple(sorted(env.items()))


class OnlineChecker:
    """Incremental ``spec.prefix_of`` over a monotonically growing trace.

    ``check(trace)`` must be called with the same logical trace as before,
    possibly extended (the fleet nodes pass the machine's live trace
    list). Passing a shorter trace raises -- the incremental state would
    be unsound for it.
    """

    def __init__(self, spec: TracePred):
        self.spec = spec
        self._fallback: Optional[TracePred] = None
        self._checked_len = 0
        if isinstance(spec, Concat) and isinstance(spec.second, Star):
            head, self._body = spec.first, spec.second.body
            self._anchors: List[_Anchor] = [_Anchor(head, 0, {})]
            self._seen: Set[Tuple] = set()
        else:
            self._fallback = spec

    @property
    def incremental(self) -> bool:
        return self._fallback is None

    def check(self, trace: Trace) -> bool:
        """Equivalent to ``spec.prefix_of(trace)``; amortized cost is
        proportional to the events added since the previous call."""
        if len(trace) < self._checked_len:
            raise ValueError("trace shrank: OnlineChecker requires a "
                             "monotonically growing trace")
        self._checked_len = len(trace)
        if self._fallback is not None:
            return self._fallback.prefix_of(trace)
        n = len(trace)
        # Deepest anchors first: the frontier is almost always live, and a
        # single live anchor already proves the prefix, so the early exit
        # below usually makes one partial() call per check. Anchors left
        # unvisited keep their (stale) liveness and are re-examined on the
        # next call -- sound, because a True verdict never depends on them
        # and a False verdict only falls out of visiting the whole queue.
        queue = sorted((a for a in self._anchors if a.live),
                       key=lambda a: a.pos)
        while queue:
            anchor = queue.pop()
            for end, env in anchor.pred.residuals(trace, anchor.pos,
                                                  anchor.env):
                if anchor.pred is self._body and end <= anchor.pos:
                    continue  # Star bodies must consume events
                key = (end, _env_key(env))
                if key in self._seen:
                    continue
                self._seen.add(key)
                fresh = _Anchor(self._body, end, env)
                self._anchors.append(fresh)
                queue.append(fresh)
            # Monotonicity of `partial` makes this retirement permanent.
            anchor.live = anchor.pred.partial(trace, anchor.pos, anchor.env)
            if anchor.live:
                return True
        # A parse that consumed the whole trace is a prefix even with no
        # live continuation (partial at pos == len is True, so this is
        # only reachable when all anchors predate this length).
        return any(a.pos == n for a in self._anchors)
