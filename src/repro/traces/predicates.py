"""Trace predicates: the specification language of paper section 3.1.

Specifications are sets of legal I/O traces, written like regular
expressions over MMIO events -- ``+++`` (concatenation), ``|||`` (union),
``^*`` (Kleene star), and ``EX x:T, P`` (existential) -- but, as in the
paper, they are ordinary functions over traces, so arbitrary guards over
captured values are allowed.

A trace is a list of ``("ld"/"st", addr, value)`` triples. Every predicate
supports:

* ``matches(trace)``   -- trace ∈ P;
* ``prefix_of(trace)`` -- ∃ extension e, trace ++ e ∈ P. This is the
  relation in the paper's end-to-end theorem (``prefix_of t'
  goodHlTrace``): the theorem holds at *any* moment of execution, so the
  observed trace need only be extendable to a legal one.

Matching is implemented with *residuals*: ``P.residuals(trace, i, env)``
yields every ``(j, env')`` with ``trace[i:j] ∈ P`` under captured bindings.
Environments let multi-event transactions capture values (e.g. the bytes
of a received packet) and guard on them -- the expressiveness the paper
gets from higher-order logic.

The Python operators ``+`` (concat), ``|`` (union) and ``.star()`` mirror
the paper's notation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

Event = Tuple[str, int, int]
Trace = List[Event]
Env = Dict[str, int]


class TracePred:
    """Base class: a set of traces (with value capture)."""

    def residuals(self, trace: Trace, start: int,
                  env: Env) -> Iterator[Tuple[int, Env]]:
        raise NotImplementedError

    def partial(self, trace: Trace, start: int, env: Env) -> bool:
        """Is ``trace[start:]`` a strict-or-equal prefix of some member?"""
        raise NotImplementedError

    # -- public API -------------------------------------------------------------

    def matches(self, trace: Trace) -> bool:
        return any(end == len(trace)
                   for end, _ in self.residuals(list(trace), 0, {}))

    def prefix_of(self, trace: Trace) -> bool:
        """The end-to-end theorem's relation: the trace so far is consistent
        with the specification (some completion exists)."""
        return self.partial(list(trace), 0, {})

    # -- combinator sugar ---------------------------------------------------------

    def __add__(self, other: "TracePred") -> "TracePred":
        return Concat(self, other)

    def __or__(self, other: "TracePred") -> "TracePred":
        return Union(self, other)

    def star(self) -> "TracePred":
        return Star(self)


class Epsilon(TracePred):
    """The empty trace."""

    def residuals(self, trace, start, env):
        yield start, env

    def partial(self, trace, start, env):
        return start == len(trace)


class Never(TracePred):
    """The empty set of traces."""

    def residuals(self, trace, start, env):
        return iter(())

    def partial(self, trace, start, env):
        return False


class Step(TracePred):
    """One event, matched by ``fn(event, env) -> Optional[Env]`` (None =
    no match; otherwise the possibly-extended environment)."""

    def __init__(self, fn: Callable[[Event, Env], Optional[Env]],
                 describe: str = "step"):
        self.fn = fn
        self.describe = describe

    def residuals(self, trace, start, env):
        if start < len(trace):
            new_env = self.fn(trace[start], env)
            if new_env is not None:
                yield start + 1, new_env

    def partial(self, trace, start, env):
        if start == len(trace):
            return True  # the event is yet to come
        if start == len(trace) - 1:
            return self.fn(trace[start], env) is not None
        # A single event cannot be a prefix of two or more remaining events.
        return False


class Concat(TracePred):
    """The paper's ``+++``."""

    def __init__(self, first: TracePred, second: TracePred):
        self.first = first
        self.second = second

    def residuals(self, trace, start, env):
        for mid, env1 in self.first.residuals(trace, start, env):
            yield from self.second.residuals(trace, mid, env1)

    def partial(self, trace, start, env):
        if self.first.partial(trace, start, env):
            return True
        for mid, env1 in self.first.residuals(trace, start, env):
            if self.second.partial(trace, mid, env1):
                return True
        return False


class Union(TracePred):
    """The paper's ``|||``."""

    def __init__(self, *arms: TracePred):
        self.arms = arms

    def residuals(self, trace, start, env):
        seen = set()
        for arm in self.arms:
            for end, env1 in arm.residuals(trace, start, env):
                key = (end, tuple(sorted(env1.items())))
                if key not in seen:
                    seen.add(key)
                    yield end, env1

    def partial(self, trace, start, env):
        return any(arm.partial(trace, start, env) for arm in self.arms)


class Star(TracePred):
    """The paper's ``^*``. The body must not accept the empty trace."""

    def __init__(self, body: TracePred):
        self.body = body

    def residuals(self, trace, start, env):
        yield start, env
        frontier = [(start, env)]
        visited = {start}
        while frontier:
            pos, env0 = frontier.pop()
            for end, env1 in self.body.residuals(trace, pos, env0):
                if end > pos and end not in visited:
                    visited.add(end)
                    yield end, env1
                    frontier.append((end, env1))

    def partial(self, trace, start, env):
        if self.body.partial(trace, start, env):
            return True
        frontier = [(start, env)]
        visited = {start}
        while frontier:
            pos, env0 = frontier.pop()
            for end, env1 in self.body.residuals(trace, pos, env0):
                if end <= pos or end in visited:
                    continue
                if end == len(trace) or self.body.partial(trace, end, env1):
                    return True
                visited.add(end)
                frontier.append((end, env1))
        return start == len(trace)


class Exists(TracePred):
    """The paper's ``EX x:T, P``: union over a finite domain, with the
    witness bound in the environment."""

    def __init__(self, name: str, domain: Iterable[int],
                 body: Callable[[int], TracePred]):
        self.name = name
        self.domain = list(domain)
        self.body = body

    def residuals(self, trace, start, env):
        for value in self.domain:
            inner = dict(env)
            inner[self.name] = value
            yield from self.body(value).residuals(trace, start, inner)

    def partial(self, trace, start, env):
        return any(self.body(v).partial(trace, start, dict(env, **{self.name: v}))
                   for v in self.domain)


class Guard(TracePred):
    """The empty trace, accepted only when ``fn(env)`` holds -- used to
    state constraints over values captured earlier."""

    def __init__(self, fn: Callable[[Env], bool], describe: str = "guard"):
        self.fn = fn
        self.describe = describe

    def residuals(self, trace, start, env):
        if self.fn(env):
            yield start, env

    def partial(self, trace, start, env):
        # Guards accept only the empty trace, so a strict prefix situation
        # exists only when everything has been consumed. (Whether the guard
        # will hold once more events arrive cannot be known yet; being
        # permissive exactly at the end keeps `partial` sound.)
        return start == len(trace)


class RepeatN(TracePred):
    """Data-dependent repetition: ``body_fn(i)`` matched ``count_fn(env)``
    times. Used for "read ceil(len/4) FIFO words" where the count was
    captured from an earlier status event."""

    def __init__(self, count_fn: Callable[[Env], int],
                 body_fn: Callable[[int], TracePred]):
        self.count_fn = count_fn
        self.body_fn = body_fn

    def residuals(self, trace, start, env):
        count = self.count_fn(env)
        states = [(start, env)]
        for i in range(count):
            next_states = []
            for pos, env0 in states:
                next_states.extend(self.body_fn(i).residuals(trace, pos, env0))
            states = next_states
            if not states:
                return
        yield from states

    def partial(self, trace, start, env):
        count = self.count_fn(env)
        states = [(start, env)]
        for i in range(count):
            body = self.body_fn(i)
            if any(body.partial(trace, pos, env0) for pos, env0 in states):
                return True
            next_states = []
            for pos, env0 in states:
                next_states.extend(body.residuals(trace, pos, env0))
            states = next_states
            if not states:
                return False
        # A full match is a prefix only when nothing is left unconsumed.
        return any(pos == len(trace) for pos, _ in states)


def seq(*parts: TracePred) -> TracePred:
    result: TracePred = Epsilon()
    for part in parts:
        result = result + part if not isinstance(result, Epsilon) else part
    return result


def union(*parts: TracePred) -> TracePred:
    return Union(*parts)


# -- event-pattern helpers -------------------------------------------------------

def event(kind: str, addr: int,
          value_fn: Optional[Callable[[int, Env], Optional[Env]]] = None,
          describe: str = "") -> Step:
    """An event at a fixed address. ``value_fn(value, env)`` may inspect
    and capture the value; default accepts anything."""

    def fn(ev: Event, env: Env) -> Optional[Env]:
        k, a, v = ev
        if k != kind or a != addr:
            return None
        if value_fn is None:
            return env
        return value_fn(v, env)

    return Step(fn, describe or "%s@0x%x" % (kind, addr))


def ld(addr: int, value_fn=None, describe: str = "") -> Step:
    return event("ld", addr, value_fn, describe)


def st(addr: int, value_fn=None, describe: str = "") -> Step:
    return event("st", addr, value_fn, describe)


def value_is(expected: int):
    def fn(v: int, env: Env) -> Optional[Env]:
        return env if v == expected else None
    return fn


def value_where(pred: Callable[[int], bool]):
    def fn(v: int, env: Env) -> Optional[Env]:
        return env if pred(v) else None
    return fn


def capture(name: str, pred: Optional[Callable[[int], bool]] = None):
    def fn(v: int, env: Env) -> Optional[Env]:
        if pred is not None and not pred(v):
            return None
        new = dict(env)
        new[name] = v
        return new
    return fn
