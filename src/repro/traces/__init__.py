"""Trace-predicate combinators: the specification language of paper §3.1."""

from .predicates import (
    Concat,
    Epsilon,
    Event,
    Exists,
    Guard,
    Never,
    RepeatN,
    Star,
    Step,
    Trace,
    TracePred,
    Union,
    capture,
    event,
    ld,
    seq,
    st,
    union,
    value_is,
    value_where,
)

__all__ = ["TracePred", "Epsilon", "Never", "Step", "Concat", "Union",
           "Star", "Exists", "Guard", "RepeatN", "seq", "union", "event",
           "ld", "st", "value_is", "value_where", "capture", "Event", "Trace"]
