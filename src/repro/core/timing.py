"""Packet-to-actuation latency measurement (paper section 7.2.1).

The paper measures 5.5 ms from "the Ethernet device starts handing a packet
over" to "the actuation of the control output" on the verified stack, vs
0.5 ms for the unverified prototype, and decomposes the 10x as

    10x ~= (1.4x SPI pipelining * 1.2x timeout logic)
           * 2.1x compiler * 2.7x processor.

`measure_latency` reproduces the measurement protocol in cycles: boot the
system, inject one ON packet, count cycles from injection to the GPIO
write. The three axes of the decomposition are reproduced as configuration
knobs:

* ``processor``: "p4mm" (Kami pipelined, cycles = scheduler cycles) or
  "fe310" (commercial-core model, CPI=1: cycles = instructions);
* ``compiler``: "verified" (the plain 3-phase pipeline) or "optimizing"
  (inlining + constant propagation + DCE, the gcc -O3 stand-in);
* ``driver``: "verified" (byte-interleaved SPI + timeouts), "pipelined"
  (FIFO bursts + timeouts), "prototype" (FIFO bursts, no timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..compiler import compile_program
from ..compiler.opt import compile_program_optimized
from ..kami.refinement import build_pipelined_system
from ..platform.net import lightbulb_packet
from ..riscv.machine import RiscvMachine
from ..sw.fast import fast_program
from ..sw.program import lightbulb_program, make_platform

STACK_TOP = 1 << 18
RAM_BYTES = 1 << 18


@dataclass
class LatencyResult:
    config: Tuple[str, str, str]
    boot_cycles: int
    latency_cycles: int
    mmio_events: int
    binary_words: int


def _program_for(driver: str):
    if driver == "verified":
        return lightbulb_program()
    if driver == "pipelined":
        return fast_program(pipelined_spi=True, timeouts=True)
    if driver == "prototype":
        return fast_program(pipelined_spi=True, timeouts=False)
    if driver == "interleaved-no-timeout":
        return fast_program(pipelined_spi=False, timeouts=False)
    raise ValueError("unknown driver %r" % driver)


def _compile_for(compiler: str, program):
    if compiler == "verified":
        return compile_program(program, entry="main", stack_top=STACK_TOP)
    if compiler == "optimizing":
        return compile_program_optimized(program, entry="main",
                                         stack_top=STACK_TOP)
    raise ValueError("unknown compiler %r" % compiler)


def measure_latency(processor: str = "p4mm", compiler: str = "verified",
                    driver: str = "verified",
                    max_cycles: int = 3_000_000) -> LatencyResult:
    """Boot, inject one ON packet once RX is enabled and the system has
    returned to idle polling, and count cycles to the GPIO write."""
    program = _program_for(driver)
    compiled = _compile_for(compiler, program)
    plat = make_platform()
    config = (processor, compiler, driver)
    # The memory-fit side condition of the paper's no-out-of-memory
    # guarantee (§5.3): code and the statically-bounded stack must not
    # overlap. (A violation here once produced a stack that overwrote
    # code -- caught by the XAddrs discipline.)
    if len(compiled.image) > STACK_TOP - compiled.stack_bound:
        raise RuntimeError("binary + stack bound exceed RAM for %r" % (config,))

    if processor == "fe310":
        machine = RiscvMachine.with_program(compiled.image,
                                            mem_size=RAM_BYTES,
                                            mmio_bus=plat.bus)

        def cycles() -> int:
            return machine.instret

        def advance(n: int, stop) -> None:
            machine.run(n, stop=lambda m: stop())
    elif processor == "p4mm":
        system = build_pipelined_system(
            compiled.image, plat.kami_world(), ram_words=RAM_BYTES // 4,
            icache_words=len(compiled.image) // 4 + 4)
        cycle_count = [0]

        def cycles() -> int:
            return cycle_count[0]

        def advance(n: int, stop) -> None:
            for _ in range(n):
                if stop():
                    return
                if system.cycle() == 0:
                    raise RuntimeError("processor deadlocked")
                cycle_count[0] += 1
    else:
        raise ValueError("unknown processor %r" % processor)

    # Phase 1: boot until RX is enabled, then let the loop poll twice so
    # the measurement starts from idle polling (not from boot effects).
    polls_after_enable = [0]

    original_read = plat.lan.reg_read

    def counting_read(addr):
        from ..platform.lan9250 import RX_FIFO_INF
        if addr == RX_FIFO_INF and plat.lan.rx_enabled:
            polls_after_enable[0] += 1
        return original_read(addr)

    plat.lan.reg_read = counting_read
    advance(max_cycles, lambda: polls_after_enable[0] >= 2)
    if polls_after_enable[0] < 2:
        raise RuntimeError("system did not reach idle polling (config %r)"
                           % (config,))
    boot_cycles = cycles()

    # Phase 2: the measurement. Inject and count cycles to actuation.
    plat.lan.inject_frame(lightbulb_packet(True))
    start = cycles()
    advance(max_cycles, lambda: plat.gpio.bulb_on)
    if not plat.gpio.bulb_on:
        raise RuntimeError("bulb never turned on (config %r)" % (config,))
    latency = cycles() - start

    return LatencyResult(config=config, boot_cycles=boot_cycles,
                         latency_cycles=latency,
                         mmio_events=plat.spi.bytes_transferred,
                         binary_words=len(compiled.image) // 4)


def factor_decomposition() -> Dict[str, object]:
    """The paper's 10x ~= (1.4 x 1.2) x 2.1 x 2.7 decomposition, measured.

    Each factor varies one axis while holding the faster setting of the
    axes already accounted for (matching how the paper reports them:
    measured on FE310+gcc except the processor factor)."""
    results: Dict[Tuple[str, str, str], LatencyResult] = {}

    def lat(processor, compiler, driver):
        key = (processor, compiler, driver)
        if key not in results:
            results[key] = measure_latency(processor, compiler, driver)
        return results[key].latency_cycles

    # Factors, following §7.2.1's methodology:
    # SPI pipelining: prototype vs interleaved, on FE310 + optimizing.
    spi_factor = (lat("fe310", "optimizing", "interleaved-no-timeout")
                  / lat("fe310", "optimizing", "prototype"))
    # Timeout logic: verified driver vs pipelined driver... the paper
    # measures "the verified code" vs the same without timeouts:
    timeout_factor = (lat("fe310", "optimizing", "verified")
                      / lat("fe310", "optimizing", "interleaved-no-timeout"))
    # Compiler: verified vs optimizing compiler on the verified code, FE310.
    compiler_factor = (lat("fe310", "verified", "verified")
                       / lat("fe310", "optimizing", "verified"))
    # Processor: Kami pipelined vs FE310 on the fully verified binary.
    processor_factor = (lat("p4mm", "verified", "verified")
                        / lat("fe310", "verified", "verified"))
    total = (lat("p4mm", "verified", "verified")
             / lat("fe310", "optimizing", "prototype"))
    return {
        "spi_pipelining": spi_factor,
        "timeout_logic": timeout_factor,
        "compiler": compiler_factor,
        "processor": processor_factor,
        "total": total,
        "product": spi_factor * timeout_factor * compiler_factor
        * processor_factor,
        "paper": {"spi_pipelining": 1.4, "timeout_logic": 1.2,
                  "compiler": 2.1, "processor": 2.7, "total": 10.0},
        "latencies": {"/".join(k): v.latency_cycles
                      for k, v in results.items()},
    }
