"""Integration layer: the end-to-end theorem checker, per-interface
integration checks, the evaluation-table generators, and the latency
measurement harness."""

from . import end2end, integration, loc, parameterization, survey, timing
from .end2end import run_adversarial, run_end_to_end

__all__ = ["end2end", "integration", "loc", "survey", "parameterization",
           "timing", "run_end_to_end", "run_adversarial"]
