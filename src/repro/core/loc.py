"""Lines-of-code accounting for Tables 3 and 4 of the paper.

Table 3 reports the trusted code base: the specification LoC per component
(27 for the app, 77 for the LAN9250 driver spec, ...). Table 4 reports
implementation/interface/proof LoC per layer and the "proof overhead"
ratio. We compute the same shape over this repository: source files are
classified by layer and by role (implementation, interface/spec,
checking), and the benchmarks print rows in the paper's format alongside
the paper's numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                          "..", "..", ".."))
_SRC = os.path.join(_REPO_ROOT, "src", "repro")
_TESTS = os.path.join(_REPO_ROOT, "tests")


def count_loc(path: str) -> int:
    """Non-blank, non-comment-only source lines of one Python file."""
    total = 0
    in_docstring = False
    delim = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if in_docstring:
                if delim in stripped:
                    in_docstring = False
                continue
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith(('"""', "'''")):
                delim = stripped[:3]
                rest = stripped[3:]
                if delim not in rest:
                    in_docstring = True
                continue
            total += 1
    return total


def module_loc(relpath: str) -> int:
    return count_loc(os.path.join(_SRC, relpath))


def tree_loc(root: str) -> int:
    total = 0
    for dirpath, _, files in os.walk(root):
        for name in files:
            if name.endswith(".py"):
                total += count_loc(os.path.join(dirpath, name))
    return total


# -- Table 3: trusted code base ----------------------------------------------------

# Component -> (paper's spec LoC, our spec modules). In the paper the TCB is
# the top (application trace predicates) and bottom (Kami HDL semantics)
# specifications; ours is the analogous set: the trace-predicate spec and
# the rule-framework semantics (plus, here, the device models, which stand
# in for the physical devices outside the paper's verification boundary).
TABLE3_PAPER = [
    ("Lightbulb application", 27),
    ("LAN9250 Ethernet driver", 77),
    ("SPI driver", 30),
    ("Driving digital outputs", 10),
    ("Trace predicate notations", 25),
    ("Semantics of Kami HDL", 400),
]

TABLE3_OURS = [
    ("Lightbulb application spec", ["sw/specs.py"], ("iteration", "recv")),
    ("Trace predicate notations", ["traces/predicates.py"], None),
    ("Semantics of rule framework", ["kami/framework.py"], None),
]


def table3_rows() -> List[Tuple[str, int]]:
    rows = []
    for name, files, _ in TABLE3_OURS:
        rows.append((name, sum(module_loc(f) for f in files)))
    return rows


# -- Table 4: per-layer implementation / interface / checking LoC --------------------

# layer -> (implementation modules, interface/spec modules, checking modules)
TABLE4_LAYERS: Dict[str, Tuple[List[str], List[str], List[str]]] = {
    "lightbulb app": (
        ["sw/lightbulb.py", "sw/spi_driver.py", "sw/lan9250_driver.py",
         "sw/constants.py", "sw/program.py"],
        ["sw/specs.py"],
        ["sw/verify.py"],
    ),
    "doorlock app": (
        ["sw/doorlock.py"],
        ["sw/doorlock_spec.py"],
        [],
    ),
    "program logic": (
        ["bedrock2/vcgen.py", "bedrock2/extspec.py"],
        ["bedrock2/ast_.py"],
        ["logic/terms.py", "logic/simplify.py", "logic/intervals.py",
         "logic/sat.py", "logic/bitblast.py", "logic/solver.py"],
    ),
    "compiler": (
        ["compiler/flatten.py", "compiler/flatimp.py", "compiler/regalloc.py",
         "compiler/codegen.py", "compiler/pipeline.py", "compiler/opt.py",
         "bedrock2/c_export.py", "riscv/disasm.py"],
        ["riscv/insts.py", "riscv/encode.py", "riscv/decode.py",
         "riscv/semantics.py"],
        ["compiler/regcheck.py"],
    ),
    "SW/HW interface": (
        ["riscv/machine.py"],
        ["kami/decexec.py"],
        ["kami/refinement.py"],
    ),
    "processor": (
        ["kami/spec_proc.py", "kami/pipeline_proc.py", "kami/memory.py"],
        ["kami/framework.py"],
        [],
    ),
    "end-to-end": (
        ["core/end2end.py", "core/integration.py"],
        ["traces/predicates.py"],
        [],
    ),
    "platform devices": (
        ["platform/bus.py", "platform/gpio.py", "platform/spi.py",
         "platform/lan9250.py", "platform/dma.py", "platform/net.py",
         "platform/fe310.py"],
        [],
        [],
    ),
}

# The paper's Table 4 numbers (implementation, interface, interesting proof,
# low-insight proof) for the layers it reports.
TABLE4_PAPER = {
    "lightbulb app": (176, 130, 33, 1443),
    "program logic": (0, 208, 552, 1785),
    "compiler": (931, 1114, 1325, 6654),
    "SW/HW interface": (0, 2053, 991, 3804),
    "end-to-end": (0, 254, 74, 539),
}


@dataclass
class Table4Row:
    layer: str
    implementation: int
    interface: int
    checking: int

    @property
    def overhead(self) -> float:
        if self.implementation == 0:
            return float("nan")
        return (self.implementation + self.interface
                + self.checking) / self.implementation


def table4_rows() -> List[Table4Row]:
    rows = []
    for layer, (impl, iface, check) in TABLE4_LAYERS.items():
        rows.append(Table4Row(
            layer,
            sum(module_loc(f) for f in impl),
            sum(module_loc(f) for f in iface),
            sum(module_loc(f) for f in check),
        ))
    return rows


def totals() -> Dict[str, int]:
    return {
        "src": tree_loc(_SRC),
        "tests": tree_loc(_TESTS),
        "benchmarks": tree_loc(os.path.join(_REPO_ROOT, "benchmarks")),
        "examples": tree_loc(os.path.join(_REPO_ROOT, "examples")),
    }
