"""The end-to-end theorem as an executable checker (paper section 5.9).

The paper's ``end2end_lightbulb``: running the pipelined processor ``p4mm``
on any memory containing the lightbulb binary at address 0 produces only
I/O traces that are prefixes of traces allowed by ``goodHlTrace``.

`run_end_to_end` reproduces the theorem's *setup* literally -- compile the
program in-system, place the bytes at address 0, attach the processor to
the MMIO world -- and checks the theorem's *conclusion* on the execution:
``prefix_of(goodHlTrace)`` holds for the observed trace at every checkpoint
(the theorem holds "at any point during the execution"). The adversarial
harness feeds malicious packet streams, which is how the security reading
("no crafted packet can make the system deviate") is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..fuzz.generator import adversarial_frames
from ..kami.refinement import build_pipelined_system, build_spec_system
from ..platform.net import is_valid_command
from ..riscv.machine import RiscvMachine
from ..sw.program import Platform, compiled_lightbulb, make_platform
from ..sw.specs import good_hl_trace

Event = Tuple[str, int, int]

_RUNS = obs.counter("end2end.runs")
_CHECKPOINTS = obs.counter("end2end.checkpoints")
_PREFIX_CHECKS = obs.counter("end2end.prefix_checks")
_FRAMES_INJECTED = obs.counter("end2end.frames_injected")
_FRAMES_ACCEPTED = obs.counter("end2end.frames_accepted")


@dataclass
class EndToEndResult:
    """Outcome of one end-to-end run."""

    ok: bool
    trace: List[Event]
    bulb_history: List[int]
    detail: str = ""
    checkpoints: int = 0
    instructions: int = 0

    def __bool__(self) -> bool:
        return self.ok


class _InjectionSchedule:
    """Delivers frames to the NIC at scheduled checkpoint indices."""

    def __init__(self, platform: Platform,
                 frames: Sequence[Tuple[int, bytes]]):
        self.platform = platform
        self.pending = sorted(frames, key=lambda t: t[0])
        self.delivered: List[bytes] = []
        self.accepted: List[bytes] = []

    def tick(self, checkpoint: int) -> None:
        while self.pending and self.pending[0][0] <= checkpoint:
            _, frame = self.pending.pop(0)
            self.delivered.append(frame)
            _FRAMES_INJECTED.inc()
            obs.instant("end2end.inject_frame", cat="end2end",
                        args={"bytes": len(frame)})
            if self.platform.lan.inject_frame(frame):
                self.accepted.append(frame)
                _FRAMES_ACCEPTED.inc()


def run_end_to_end(frames: Sequence[Tuple[int, bytes]] = (),
                   processor: str = "isa",
                   max_units: int = 400_000,
                   checkpoint_every: int = 2_000,
                   platform: Optional[Platform] = None,
                   buggy_driver: bool = False,
                   fast: bool = True) -> EndToEndResult:
    """Run the lightbulb system end to end and check the theorem.

    ``frames`` is a list of (checkpoint index, frame bytes) injections;
    ``processor`` selects the execution substrate: "isa" (the ISA-level
    machine -- fast), "kami-spec" (single-cycle Kami model) or "p4mm" (the
    pipelined Kami processor of the theorem statement). ``max_units`` is
    instructions for "isa" and Kami steps otherwise. ``fast`` (``"isa"``
    only) runs the machine through the fast-path engine
    (`repro.riscv.fastpath`), which is differentially checked to be
    bit-identical to the reference interpreter; pass ``fast=False`` to
    force the reference loop.
    """
    compiled = compiled_lightbulb(buggy_driver=buggy_driver, stack_top=1 << 16)
    plat = platform if platform is not None else make_platform()
    spec = good_hl_trace()
    schedule = _InjectionSchedule(plat, frames)

    if processor == "isa":
        machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                            mmio_bus=plat.bus, fast=fast)
        get_trace = lambda: machine.trace
        def advance(units):
            machine.run(units)
        instructions = lambda: machine.instret
    elif processor in ("kami-spec", "p4mm"):
        build = (build_pipelined_system if processor == "p4mm"
                 else build_spec_system)
        kwargs = {"ram_words": 1 << 14}
        if processor == "p4mm":
            kwargs["icache_words"] = len(compiled.image) // 4 + 4
        system = build(compiled.image, plat.kami_world(), **kwargs)
        get_trace = system.mmio_trace
        def advance(units):
            system.run(units)
        instructions = lambda: system.steps_taken
    else:
        raise ValueError("unknown processor %r" % processor)

    # The theorem holds at *any* cut of the trace; checking it at every
    # checkpoint is O(total^2), so the spec is checked on a sample of
    # checkpoints (about 16 per run, always including the last) -- frame
    # injections still happen at every checkpoint.
    total_checkpoints = max(1, -(-max_units // checkpoint_every))
    spec_stride = max(1, total_checkpoints // 16)
    checkpoints = 0
    units_done = 0
    last_checked_len = -1
    _RUNS.inc()
    with obs.span("end2end.run", cat="end2end",
                  args={"processor": processor, "max_units": max_units}):
        while units_done < max_units:
            step = min(checkpoint_every, max_units - units_done)
            with obs.span("end2end.checkpoint", cat="end2end"):
                advance(step)
            units_done += step
            checkpoints += 1
            _CHECKPOINTS.inc()
            schedule.tick(checkpoints)
            if checkpoints % spec_stride and units_done < max_units:
                continue
            trace = list(get_trace())
            if len(trace) == last_checked_len:
                continue
            last_checked_len = len(trace)
            _PREFIX_CHECKS.inc()
            with obs.span("end2end.prefix_check", cat="end2end",
                          args={"events": len(trace)}):
                within_spec = spec.prefix_of(trace)
            if not within_spec:
                return EndToEndResult(False, trace, plat.gpio.bulb_history,
                                      detail="trace is not a prefix of "
                                             "goodHlTrace after %d units"
                                             % units_done,
                                      checkpoints=checkpoints,
                                      instructions=instructions())
        trace = list(get_trace())
        if len(trace) != last_checked_len:
            _PREFIX_CHECKS.inc()
            with obs.span("end2end.prefix_check", cat="end2end",
                          args={"events": len(trace)}):
                if not spec.prefix_of(trace):
                    return EndToEndResult(
                        False, trace, plat.gpio.bulb_history,
                        detail="final trace is not a prefix of goodHlTrace",
                        checkpoints=checkpoints,
                        instructions=instructions())
        return EndToEndResult(True, trace, plat.gpio.bulb_history,
                              checkpoints=checkpoints,
                              instructions=instructions())


def run_adversarial(seed: int, n_frames: int = 12,
                    processor: str = "isa",
                    max_units: int = 600_000,
                    fast: bool = True) -> EndToEndResult:
    """Fuzz the theorem: a pseudorandom adversarial packet stream.

    The stream comes from `repro.fuzz.generator.adversarial_frames`, the
    repo's single RNG discipline -- the same seed produces the same
    stimulus here and under ``python -m repro fuzz``.
    """
    stream = adversarial_frames(seed, n_frames)
    spacing = max(1, (max_units // 2_000) // (n_frames + 1))
    frames = [(5 + i * spacing, f) for i, f in enumerate(stream)]
    return run_end_to_end(frames=frames, processor=processor,
                          max_units=max_units, fast=fast)


def run_adversarial_suite(seeds: Sequence[int], n_frames: int = 12,
                          processor: str = "isa",
                          max_units: int = 600_000,
                          jobs: int = 1,
                          fast: bool = True) -> List[EndToEndResult]:
    """Fuzz the theorem across many seeds, ``jobs`` runs at a time.

    Each seed is an independent end-to-end execution, so the sweep is
    farmed to the parallel dispatcher; results come back in seed order
    (with counters merged back into this process's registry) regardless
    of worker scheduling.
    """
    if jobs is None or jobs == 1 or len(seeds) <= 1:
        return [run_adversarial(seed, n_frames=n_frames,
                                processor=processor, max_units=max_units,
                                fast=fast)
                for seed in seeds]
    from ..logic.dispatch import parallel_call

    kwargs_list = [{"seed": seed, "n_frames": n_frames,
                    "processor": processor, "max_units": max_units,
                    "fast": fast}
                   for seed in seeds]
    return parallel_call("repro.core.end2end:run_adversarial",
                         kwargs_list, jobs=jobs)


def expected_bulb_history(accepted_frames: Sequence[bytes]) -> List[int]:
    """Specification-level prediction of bulb transitions for a stream of
    frames the NIC accepted, assuming they are processed in order."""
    history: List[int] = []
    state = None
    for frame in accepted_frames:
        command = is_valid_command(frame)
        if command is None:
            continue
        level = 1 if command else 0
        if state is None or level != state:
            history.append(level)
            state = level
    return history
