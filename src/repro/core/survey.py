"""Table 1: evaluation criteria for verified stacks.

The paper's Table 1 compares ten projects on eleven criteria. The survey
entries for prior work are data transcribed from the paper; the column for
*this* system is not transcribed -- it is **computed** by probing the
repository for each capability (e.g. "Assembly" holds only if the compiler
actually emits and the machine actually decodes RV32 instructions), so the
benchmark that regenerates the table doubles as a self-check of scope.
"""

from __future__ import annotations

from typing import Callable, Dict, List

MET = "yes"
PARTIAL = "partial"
NOT_MET = "no"
NA = "n/a"

CRITERIA = [
    "Applications",
    "OS and/or drivers",
    "Source language",
    "Assembly",
    "Machine code",
    "HDL",
    "Integration verification",
    "One proof assistant",
    "Modularity",
    "Standardized ISA",
    "HW optimizations",
    "Realistic I/O",
]

# Rows transcribed from paper Table 1 (column order = CRITERIA).
PRIOR_WORK: Dict[str, List[str]] = {
    "seL4":            [PARTIAL, MET, MET, PARTIAL, MET, NOT_MET, PARTIAL, MET, PARTIAL, MET, NA, MET],
    "VST+CertiKOS":    [PARTIAL, MET, MET, MET, NA, PARTIAL, MET, MET, MET, NOT_MET, NA, PARTIAL],
    "CompCertMC":      [NOT_MET, NOT_MET, PARTIAL, MET, NA, NOT_MET, MET, MET, MET, NOT_MET, NA, NOT_MET],
    "Everest":         [MET, NOT_MET, NOT_MET, MET, NA, PARTIAL, MET, NOT_MET, PARTIAL, MET, NA, PARTIAL],
    "Serval":          [MET, NOT_MET, MET, MET, NA, MET, MET, NOT_MET, NOT_MET, MET, NA, PARTIAL],
    "Vigor":           [MET, MET, MET, PARTIAL, PARTIAL, NOT_MET, MET, NOT_MET, NOT_MET, MET, NA, MET],
    "CLI stack":       [MET, MET, MET, NOT_MET, MET, PARTIAL, MET, MET, PARTIAL, NOT_MET, NOT_MET, NOT_MET],
    "Verisoft":        [MET, MET, MET, NOT_MET, NOT_MET, NOT_MET, MET, MET, PARTIAL, NOT_MET, NOT_MET, NOT_MET],
    "CakeML":          [MET, NOT_MET, MET, MET, MET, MET, MET, MET, MET, NOT_MET, NOT_MET, NOT_MET],
}

PAPER_SELF = {criterion: MET for criterion in CRITERIA}


def _probe_applications() -> str:
    from ..sw.program import lightbulb_program
    return MET if "lightbulb_loop" in lightbulb_program() else NOT_MET


def _probe_drivers() -> str:
    from ..sw.program import lightbulb_program
    prog = lightbulb_program()
    return MET if {"spi_xchg", "lan9250_tryrecv"} <= set(prog) else NOT_MET


def _probe_source_language() -> str:
    from ..bedrock2 import vcgen
    return MET if hasattr(vcgen, "verify_function") else NOT_MET


def _probe_assembly() -> str:
    from ..sw.program import compiled_lightbulb
    return MET if compiled_lightbulb().instrs else NOT_MET


def _probe_machine_code() -> str:
    from ..riscv.decode import decode
    from ..sw.program import compiled_lightbulb
    image = compiled_lightbulb().image
    decode(int.from_bytes(image[:4], "little"))
    return MET


def _probe_hdl() -> str:
    from ..kami.pipeline_proc import make_pipelined_processor
    return MET if make_pipelined_processor().rules else NOT_MET


def _probe_integration() -> str:
    from .integration import ALL_CHECKS
    return MET if len(ALL_CHECKS) >= 5 else PARTIAL


def _probe_one_assistant() -> str:
    # The paper's criterion: all layers in one formal system. Ours: all
    # layers are one Python object graph checked by one solver/test
    # substrate -- analogous, but decision procedures are not a proof
    # assistant, so we claim "partial" honestly.
    return PARTIAL


def _probe_modularity() -> str:
    from ..bedrock2.vcgen import Contract
    from ..compiler.codegen import ExtCallCompiler
    return MET if Contract and ExtCallCompiler else NOT_MET


def _probe_standard_isa() -> str:
    from ..riscv.insts import ALL_MNEMONICS
    return MET if "lw" in ALL_MNEMONICS else NOT_MET


def _probe_hw_optimizations() -> str:
    from ..kami.pipeline_proc import make_pipelined_processor
    proc = make_pipelined_processor()
    names = {name for name, _ in proc.rules}
    return MET if {"fetch", "decode", "execute", "writeback"} <= names else NOT_MET


def _probe_realistic_io() -> str:
    from ..sw.specs import good_hl_trace
    return MET if good_hl_trace() is not None else NOT_MET


PROBES: Dict[str, Callable[[], str]] = {
    "Applications": _probe_applications,
    "OS and/or drivers": _probe_drivers,
    "Source language": _probe_source_language,
    "Assembly": _probe_assembly,
    "Machine code": _probe_machine_code,
    "HDL": _probe_hdl,
    "Integration verification": _probe_integration,
    "One proof assistant": _probe_one_assistant,
    "Modularity": _probe_modularity,
    "Standardized ISA": _probe_standard_isa,
    "HW optimizations": _probe_hw_optimizations,
    "Realistic I/O": _probe_realistic_io,
}


def self_assessment() -> Dict[str, str]:
    """Probe the repository for each criterion of Table 1."""
    return {criterion: PROBES[criterion]() for criterion in CRITERIA}


def full_table() -> Dict[str, List[str]]:
    table = dict(PRIOR_WORK)
    table["This paper (Coq)"] = [PAPER_SELF[c] for c in CRITERIA]
    ours = self_assessment()
    table["This repo (Python)"] = [ours[c] for c in CRITERIA]
    return table
