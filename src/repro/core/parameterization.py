"""Table 2: parameterization throughout the stack (paper section 6).

The paper's Table 2 lists eight parameters threaded across layers
(horizontal modularity). This module enumerates the same parameters as
they exist in this codebase, each with a *witness*: a callable that
instantiates the parameter two different ways and checks the stack still
composes -- demonstrating, not just asserting, the modularity claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List


@dataclass
class Parameter:
    name: str
    used_in: str
    witness: Callable[[], bool]
    witness_desc: str


def _witness_ext_semantics() -> bool:
    """Swap the external-call semantics: MMIO handler vs a scripted stub."""
    from ..bedrock2.builder import block, func, interact, lit, set_, var
    from ..bedrock2.semantics import ExtHandler, run_function

    class Doubler(ExtHandler):
        def call(self, action, args, mem):
            if action == "MMIOREAD":
                return (args[0] * 2 & 0xFFFFFFFF,)
            raise AssertionError

    prog = {"f": func("f", (), ("r",), block(
        interact(["r"], "MMIOREAD", lit(21))))}
    rets, _ = run_function(prog, "f", (), ext=Doubler())
    return rets == (42,)


def _witness_ext_compiler() -> bool:
    """Swap the external-calls compiler (paper §6.3): the MMIO instance vs
    a trapping instance that lowers external calls to a magic store."""
    from ..bedrock2.builder import block, func, interact, lit, set_, var
    from ..compiler import compile_program
    from ..compiler.codegen import ExtCallCompiler, MMIOExtCallCompiler
    from ..riscv import insts as I

    class TrapCompiler(ExtCallCompiler):
        def compile_ext(self, action, bind_regs, arg_regs):
            out = [I.store("sw", arg_regs[0], arg_regs[0], 0)]
            for reg in bind_regs:
                out.append(I.i_type("addi", reg, 0, 7))
            return out

    prog = {"main": func("main", (), ("r",), block(
        interact(["r"], "MMIOREAD", lit(0x10024000))))}
    a = compile_program(prog, ext_compiler=MMIOExtCallCompiler())
    b = compile_program(prog, ext_compiler=TrapCompiler())
    return a.image != b.image and len(a.instrs) > 0 and len(b.instrs) > 0


def _witness_event_loop_invariant() -> bool:
    """The compiler-processor composition is stated for any event-loop
    invariant; witness: the end-to-end checker runs with two different
    stop conditions (invariant checkpoints)."""
    from .end2end import run_end_to_end

    a = run_end_to_end(max_units=6_000, checkpoint_every=1_000)
    b = run_end_to_end(max_units=6_000, checkpoint_every=3_000)
    return a.ok and b.ok and a.checkpoints != b.checkpoints


def _witness_bitwidth() -> bool:
    """Word operations are parameterized by width (Table 2 'bitwidth')."""
    from ..bedrock2 import word

    return (word.wrap(1 << 32) == 0 and word.signed(0xFF, 8) == -1
            and word.signed(0x7F, 8) == 0x7F)


def _witness_io_mechanism() -> bool:
    """I/O mechanisms: the same trace-predicate language specifies MMIO
    triples today and would take DMA events -- witness: predicates are
    generic over event alphabets."""
    from ..traces.predicates import Step, Star

    dma_like = Star(Step(lambda ev, env: env if ev[0] == "dma" else None))
    return dma_like.matches([("dma", 1, 2), ("dma", 3, 4)]) and \
        not dma_like.matches([("ld", 0, 0)])


def _witness_nonmem_semantics() -> bool:
    """ISA nonmemory load/store semantics are a machine parameter: with a
    bus attached they are MMIO; without, they are UB (paper §6.2)."""
    from ..riscv import insts as I
    from ..riscv.encode import encode_program
    from ..riscv.machine import RiscvMachine, RiscvUB

    image = encode_program([I.u_type("lui", 1, 0x10024),
                            I.load("lw", 2, 1, 0)])

    class Bus:
        def is_mmio(self, addr):
            return addr >= 0x10000000

        def read(self, addr):
            return 0xBEEF

        def write(self, addr, value):
            pass

    with_bus = RiscvMachine.with_program(image, mem_size=1 << 12, mmio_bus=Bus())
    with_bus.run(2)
    if with_bus.get_register(2) != 0xBEEF or with_bus.trace == []:
        return False
    without = RiscvMachine.with_program(image, mem_size=1 << 12)
    try:
        without.run(2)
    except RiscvUB:
        return True
    return False


def _witness_external_invariant() -> bool:
    """The program logic's external-call spec is a parameter: two MMIOSpec
    instances with different address ranges accept different programs."""
    from ..bedrock2.builder import block, func, interact, lit
    from ..bedrock2.extspec import MMIOSpec
    from ..bedrock2.vcgen import FunctionSpec, VerificationError, verify_function

    prog = {"f": func("f", (), (), block(
        interact([], "MMIOWRITE", lit(0x10012008), lit(1))))}
    wide = MMIOSpec([(0x10012000, 0x10013000)])
    narrow = MMIOSpec([(0x20000000, 0x20001000)])
    verify_function(prog, "f", FunctionSpec(), wide)
    try:
        verify_function(prog, "f", FunctionSpec(), narrow)
    except VerificationError:
        return True
    return False


def _witness_isa() -> bool:
    """The processors are parameterized by the shared decode/execute
    combinational logic: both use `repro.kami.decexec` (paper §5.7)."""
    import inspect

    from ..kami import pipeline_proc, spec_proc

    spec_src = inspect.getsource(spec_proc)
    pipe_src = inspect.getsource(pipeline_proc)
    return ("decode_signals" in spec_src and "decode_signals" in pipe_src
            and "exec_instr" in spec_src and "exec_instr" in pipe_src)


PARAMETERS: List[Parameter] = [
    Parameter("external-call semantics", "program logic and compiler",
              _witness_ext_semantics, "swap MMIO handler for a stub"),
    Parameter("external-calls compiler", "compiler and its proof",
              _witness_ext_compiler, "swap lw/sw lowering for a trap"),
    Parameter("event-loop invariant", "compiler-processor lemma",
              _witness_event_loop_invariant, "vary checkpoint cadence"),
    Parameter("bitwidth", "Bedrock2, ISA, processor",
              _witness_bitwidth, "word ops at widths 8 and 32"),
    Parameter("I/O mechanisms", "compiler and its proof",
              _witness_io_mechanism, "trace predicates over a DMA alphabet"),
    Parameter("I/O load/store semantics", "instruction-set specification",
              _witness_nonmem_semantics, "nonmem access: MMIO vs UB"),
    Parameter("external invariant", "ISA, compiler and its proof",
              _witness_external_invariant, "two MMIO address ranges"),
    Parameter("ISA", "processor and its proof",
              _witness_isa, "shared decode/execute in both processors"),
]


def check_all() -> List[bool]:
    return [p.witness() for p in PARAMETERS]
