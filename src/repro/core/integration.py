"""Per-interface integration checks (paper Figure 3's gray boxes).

Each function checks one interface of the stack by running the two
components on its sides against each other -- the executable counterpart
of the paper's per-interface proofs. They are used by the test suite and
timed by the verification-performance benchmark (§7.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..bedrock2.semantics import run_function, to_mmio_triples
from ..bedrock2.smallstep import run_function_smallstep
from ..kami.refinement import check_refinement
from ..platform.net import lightbulb_packet
from ..riscv.machine import RiscvMachine
from ..sw.program import compiled_lightbulb, lightbulb_program, make_platform


@dataclass
class CheckResult:
    name: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def check_semantics_agreement() -> CheckResult:
    """Interface: CPS/big-step semantics vs small-step semantics (§5.8)."""
    prog = lightbulb_program()
    plat_a = make_platform()
    plat_b = make_platform()
    rets_a, st_a = run_function(prog, "lightbulb_service", [2],
                                ext=plat_a.ext_handler())
    rets_b, st_b = run_function_smallstep(prog, "lightbulb_service", [2],
                                          ext=plat_b.ext_handler())
    ok = rets_a == rets_b and st_a.trace == st_b.trace
    return CheckResult("bedrock2 big-step vs small-step", ok)


def check_compiler_on_lightbulb() -> CheckResult:
    """Interface: Bedrock2 semantics vs compiled RISC-V (§5.3), on the
    real application: the interpreter's MMIO trace must equal the
    machine's for the same device state evolution."""
    prog = lightbulb_program()
    # Source run.
    plat_src = make_platform()
    _, st = run_function(prog, "lightbulb_service", [3],
                         ext=plat_src.ext_handler())
    src_trace = to_mmio_triples(st.trace)
    # Machine run: same platform config; run until the same number of MMIO
    # events has been produced, then compare.
    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat_mach = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat_mach.bus)
    machine.run(3_000_000, stop=lambda m: len(m.trace) >= len(src_trace))
    ok = machine.trace[:len(src_trace)] == src_trace
    return CheckResult("compiler forward simulation (lightbulb)", ok,
                       "" if ok else "traces diverge")


def check_spec_vs_isa() -> CheckResult:
    """Interface: single-cycle Kami spec vs ISA semantics (§5.8's
    kstep1_sound), in lock-step on the lightbulb binary."""
    from ..kami.refinement import build_spec_system

    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat_kami = make_platform()
    system = build_spec_system(compiled.image, plat_kami.kami_world(),
                               ram_words=1 << 14)
    proc = system.modules[0]
    plat_isa = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat_isa.bus)
    for i in range(20_000):
        if system.step() is None:
            break
        machine.step()
        if proc.regs["pc"] != machine.pc:
            return CheckResult("processor-ISA consistency", False,
                               "pc diverged at step %d" % i)
        if proc.regs["rf"][1:] != machine.regs[1:]:
            return CheckResult("processor-ISA consistency", False,
                               "registers diverged at step %d" % i)
    return CheckResult("processor-ISA consistency", True)


def check_pipeline_refinement() -> CheckResult:
    """Interface: pipelined processor vs single-cycle spec (§5.7), on the
    lightbulb binary with a packet injected."""
    compiled = compiled_lightbulb(stack_top=1 << 16)

    def make_world():
        plat = make_platform()
        # Pre-arm a packet: it is accepted once the driver enables RX.
        original = plat.lan.reg_write

        def write_hook(addr, value):
            original(addr, value)
            if plat.lan.rx_enabled and not plat.lan.frames:
                plat.lan.inject_frame(lightbulb_packet(True))

        plat.lan.reg_write = write_hook
        return plat.kami_world()

    result = check_refinement(compiled.image, make_world, impl_steps=150_000,
                              ram_words=1 << 14,
                              icache_words=len(compiled.image) // 4 + 4,
                              spec_step_budget=150_000)
    return CheckResult("pipeline refines spec (lightbulb)", bool(result),
                       result.detail)


def check_end_to_end_spec() -> CheckResult:
    """The composed theorem: p4mm trace is a prefix of goodHlTrace."""
    from .end2end import run_end_to_end

    result = run_end_to_end(
        frames=[(10, lightbulb_packet(True)), (30, lightbulb_packet(False))],
        processor="p4mm", max_units=120_000, checkpoint_every=4_000)
    return CheckResult("end-to-end theorem (p4mm)", result.ok, result.detail)


ALL_CHECKS: List[Callable[[], CheckResult]] = [
    check_semantics_agreement,
    check_compiler_on_lightbulb,
    check_spec_vs_isa,
    check_pipeline_refinement,
    check_end_to_end_spec,
]


def run_all_checks() -> List[CheckResult]:
    return [check() for check in ALL_CHECKS]
