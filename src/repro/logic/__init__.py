"""Logical substrate: terms, intervals, SAT, bit-blasting, portfolio solver.

This package stands in for the fragment of Coq's logic that the paper's
verification conditions live in (quantifier-free bitvector formulas). See
DESIGN.md for the substitution rationale.
"""

from . import terms
from .solver import ProofFailure, Result, SolverTimeout, check_valid, is_satisfiable, prove

__all__ = [
    "terms",
    "check_valid",
    "prove",
    "is_satisfiable",
    "ProofFailure",
    "SolverTimeout",
    "Result",
]
