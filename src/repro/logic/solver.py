"""The portfolio decision procedure for verification conditions.

Plays the role of Coq's proof checking in the paper (section "What is
checked" of DESIGN.md): verification conditions emitted by the program logic
are *decided* here. The pipeline is:

1. structural simplification (smart constructors already fold constants);
2. unsigned interval analysis (`repro.logic.intervals`) as a cheap filter;
3. bit-blasting to CNF + CDCL SAT (`repro.logic.bitblast`, `repro.logic.sat`).

The result of `prove` is either success or a concrete counterexample model,
which is validated by evaluation before being reported (the solver never
reports an unchecked countermodel).
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional

from . import terms as T
from .. import obs
from .bitblast import BitBlaster
from .intervals import decide_bool
from .sat import SATISFIABLE, BudgetExceeded
from .simplify import simplify


class ProofFailure(Exception):
    """A verification condition is falsifiable; carries a countermodel."""

    def __init__(self, goal: T.Term, model: Dict[str, int]):
        self.goal = goal
        self.model = model
        super().__init__("VC falsified: %r under %r" % (goal, model))


class SolverTimeout(Exception):
    """The SAT backend exceeded its conflict budget.

    Wraps `repro.logic.sat.BudgetExceeded` per *query*, so callers that
    batch many obligations (the parallel dispatcher, `vcgen.VC.prove`)
    can mark the one timed-out VC as ``timeout`` and keep going instead
    of aborting the whole batch.
    """


# The process-wide proof cache consulted by `check_valid` (see
# `repro.logic.cache`). Installed via `set_cache`/`cached`; `None` means
# every query is decided from scratch.
_ACTIVE_CACHE = None


def set_cache(cache):
    """Install ``cache`` (a `repro.logic.cache.ProofCache` or None) as the
    cache consulted by every `check_valid` query; returns the previous one."""
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def get_cache():
    return _ACTIVE_CACHE


@contextlib.contextmanager
def cached(cache):
    """Context manager: run a workload with ``cache`` installed."""
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)


# Decision-tier statistics for the solver-portfolio ablation: how many
# validity queries each tier settled. These live in the observability
# registry (`repro.obs`); the counters are pre-bound so the per-query cost
# is one attribute increment.
_TIERS = ("structural", "interval", "sat")
_TIER_COUNTERS = {tier: obs.counter("solver.tier." + tier) for tier in _TIERS}
_QUERIES = obs.counter("solver.queries")
_SAT_DECISIONS = obs.counter("sat.decisions")
_SAT_PROPAGATIONS = obs.counter("sat.propagations")
_SAT_CONFLICTS = obs.counter("sat.conflicts")
_SAT_RESTARTS = obs.counter("sat.restarts")
_SAT_LEARNED = obs.counter("sat.learned_clauses")
_CNF_VARS = obs.counter("bitblast.cnf_vars")
_CNF_CLAUSES = obs.counter("bitblast.cnf_clauses")
_CNF_CACHE_HITS = obs.counter("bitblast.cache_hits")


def tier_counts() -> Dict[str, int]:
    """Per-tier settled-query counts, read from the registry. (The old
    ``STATS`` read-through alias and ``reset_stats`` are gone; reset via
    ``obs.REGISTRY.reset()`` or the individual counters.)"""
    return {tier: _TIER_COUNTERS[tier].value for tier in _TIERS}


def _flush_sat_stats(blaster: BitBlaster) -> None:
    """Batch one query's SAT search statistics into the registry."""
    solver = blaster.solver
    _SAT_DECISIONS.inc(solver.decisions)
    _SAT_PROPAGATIONS.inc(solver.propagations)
    _SAT_CONFLICTS.inc(solver.conflicts)
    _SAT_RESTARTS.inc(solver.restarts)
    _SAT_LEARNED.inc(solver.learned)
    _CNF_VARS.inc(solver.num_vars)
    _CNF_CLAUSES.inc(len(solver.clauses) - solver.learned)
    _CNF_CACHE_HITS.inc(blaster.cache_hits)


class Result:
    """Outcome of a validity check."""

    __slots__ = ("valid", "model")

    def __init__(self, valid: bool, model: Optional[Dict[str, int]] = None):
        self.valid = valid
        self.model = model

    def __bool__(self) -> bool:
        return self.valid

    def __repr__(self) -> str:
        if self.valid:
            return "Result(valid)"
        return "Result(invalid, model=%r)" % (self.model,)


def _replay_cached(entry, varmap: Dict[str, str], formula: T.Term,
                   goal: T.Term, hyps: List[T.Term]) -> Optional[Result]:
    """Turn a cache entry back into a `Result`, or None when the entry is
    poisoned (a cached countermodel that does not falsify the formula)."""
    if entry.valid:
        return Result(True)
    inverse = {canon: orig for orig, canon in varmap.items()}
    model: Dict[str, int] = {}
    for canon, value in (entry.model or {}).items():
        orig = inverse.get(canon)
        if orig is not None:
            model[orig] = value
    _complete_model(model, goal, hyps)
    try:
        falsifies = T.evaluate(formula, model)
    except (KeyError, ValueError, TypeError):
        falsifies = False
    if not falsifies:
        return None
    return Result(False, model)


def check_valid(goal: T.Term, hypotheses: Iterable[T.Term] = (),
                max_conflicts: int = 2_000_000) -> Result:
    """Decide whether ``hypotheses |= goal``.

    Returns a `Result`; when invalid, ``result.model`` is a satisfying
    assignment of ``hypotheses & ~goal`` (checked by evaluation).

    When a proof cache is installed (`set_cache`), the formula is
    content-addressed first and decided results are recorded; cache hits
    skip the decision procedure entirely.
    """
    hyps: List[T.Term] = [h for h in hypotheses]
    _QUERIES.inc()
    with obs.span("solver.check_valid", cat="solver") as sp:
        formula = T.and_(*(hyps + [T.not_(goal)]))
        cache = _ACTIVE_CACHE
        digest = varmap = None
        if cache is not None:
            from . import cache as C

            digest, varmap = C.fingerprint(formula)
            entry = cache.lookup(digest)
            if entry is not None:
                result = _replay_cached(entry, varmap, formula, goal, hyps)
                if result is not None:
                    C.HITS.inc()
                    sp.set("tier", "cache")
                    return result
                cache.poison(digest)
            C.MISSES.inc()
        result = _decide(formula, goal, hyps, max_conflicts, sp)
        if cache is not None:
            canonical = None
            if result.model is not None:
                canonical = {varmap[name]: value
                             for name, value in result.model.items()
                             if name in varmap}
            cache.store(digest, result.valid, canonical)
        return result


def _decide(formula: T.Term, goal: T.Term, hyps: List[T.Term],
            max_conflicts: int, sp) -> Result:
    """The three-tier decision portfolio (structural, interval, SAT)."""
    if formula not in (T.TRUE, T.FALSE):
        formula = simplify(formula)
    if formula is T.FALSE:
        _TIER_COUNTERS["structural"].inc()
        sp.set("tier", "structural")
        return Result(True)
    if formula is T.TRUE:
        _TIER_COUNTERS["structural"].inc()
        sp.set("tier", "structural")
        return Result(False, _arbitrary_model(formula, goal, hyps))
    decided = decide_bool(formula)
    if decided is False:
        _TIER_COUNTERS["interval"].inc()
        sp.set("tier", "interval")
        return Result(True)
    _TIER_COUNTERS["sat"].inc()
    sp.set("tier", "sat")
    blaster = BitBlaster()
    with obs.span("solver.bitblast", cat="solver"):
        blaster.assert_term(formula)
    try:
        with obs.span("solver.sat", cat="solver"):
            outcome = blaster.solver.solve(max_conflicts=max_conflicts)
    except BudgetExceeded as exc:
        _flush_sat_stats(blaster)
        raise SolverTimeout("SAT budget exceeded (%s conflicts)"
                            % exc) from exc
    _flush_sat_stats(blaster)
    sp.set("conflicts", blaster.solver.conflicts)
    if outcome != SATISFIABLE:
        return Result(True)
    model = blaster.extract_model(blaster.solver.model())
    _complete_model(model, goal, hyps)
    # Sanity: the countermodel must actually falsify the implication.
    assert T.evaluate(formula, model), "bit-blaster returned a bogus model"
    return Result(False, model)


def prove(goal: T.Term, hypotheses: Iterable[T.Term] = (),
          max_conflicts: int = 2_000_000) -> None:
    """Raise `ProofFailure` unless ``hypotheses |= goal``."""
    result = check_valid(goal, hypotheses, max_conflicts=max_conflicts)
    if not result.valid:
        raise ProofFailure(goal, result.model)


def is_satisfiable(formula: T.Term, max_conflicts: int = 2_000_000) -> Result:
    """Decide satisfiability of ``formula``; model returned if sat."""
    inverse = check_valid(T.not_(formula), max_conflicts=max_conflicts)
    if inverse.valid:
        return Result(False)
    return Result(True, inverse.model)


def _complete_model(model: Dict[str, int], goal: T.Term,
                    hyps: List[T.Term]) -> None:
    """Fill in variables the blaster never saw (eliminated by folding)."""
    names = T.free_vars(goal)
    for hyp in hyps:
        T.free_vars(hyp, names)
    for name, sort in names:
        if name not in model:
            model[name] = False if sort == T.BOOL else 0


def _arbitrary_model(formula: T.Term, goal: T.Term,
                     hyps: List[T.Term]) -> Dict[str, int]:
    model: Dict[str, int] = {}
    _complete_model(model, goal, hyps)
    return model
