"""The portfolio decision procedure for verification conditions.

Plays the role of Coq's proof checking in the paper (section "What is
checked" of DESIGN.md): verification conditions emitted by the program logic
are *decided* here. The pipeline is:

1. structural simplification (smart constructors already fold constants);
2. unsigned interval analysis (`repro.logic.intervals`) as a cheap filter;
3. bit-blasting to CNF + CDCL SAT (`repro.logic.bitblast`, `repro.logic.sat`).

The result of `prove` is either success or a concrete counterexample model,
which is validated by evaluation before being reported (the solver never
reports an unchecked countermodel).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from . import terms as T
from .bitblast import BitBlaster
from .intervals import decide_bool
from .sat import SATISFIABLE, BudgetExceeded
from .simplify import simplify


class ProofFailure(Exception):
    """A verification condition is falsifiable; carries a countermodel."""

    def __init__(self, goal: T.Term, model: Dict[str, int]):
        self.goal = goal
        self.model = model
        super().__init__("VC falsified: %r under %r" % (goal, model))


class SolverTimeout(Exception):
    """The SAT backend exceeded its conflict budget."""


# Decision-tier statistics for the solver-portfolio ablation: how many
# validity queries each tier settled (reset with `reset_stats`).
STATS = {"structural": 0, "interval": 0, "sat": 0}


def reset_stats() -> None:
    for key in STATS:
        STATS[key] = 0


class Result:
    """Outcome of a validity check."""

    __slots__ = ("valid", "model")

    def __init__(self, valid: bool, model: Optional[Dict[str, int]] = None):
        self.valid = valid
        self.model = model

    def __bool__(self) -> bool:
        return self.valid

    def __repr__(self) -> str:
        if self.valid:
            return "Result(valid)"
        return "Result(invalid, model=%r)" % (self.model,)


def check_valid(goal: T.Term, hypotheses: Iterable[T.Term] = (),
                max_conflicts: int = 2_000_000) -> Result:
    """Decide whether ``hypotheses |= goal``.

    Returns a `Result`; when invalid, ``result.model`` is a satisfying
    assignment of ``hypotheses & ~goal`` (checked by evaluation).
    """
    hyps: List[T.Term] = [h for h in hypotheses]
    formula = T.and_(*(hyps + [T.not_(goal)]))
    if formula not in (T.TRUE, T.FALSE):
        formula = simplify(formula)
    if formula is T.FALSE:
        STATS["structural"] += 1
        return Result(True)
    if formula is T.TRUE:
        STATS["structural"] += 1
        return Result(False, _arbitrary_model(formula, goal, hyps))
    decided = decide_bool(formula)
    if decided is False:
        STATS["interval"] += 1
        return Result(True)
    STATS["sat"] += 1
    blaster = BitBlaster()
    blaster.assert_term(formula)
    try:
        outcome = blaster.solver.solve(max_conflicts=max_conflicts)
    except BudgetExceeded as exc:
        raise SolverTimeout("SAT budget exceeded (%s conflicts)" % exc) from exc
    if outcome != SATISFIABLE:
        return Result(True)
    model = blaster.extract_model(blaster.solver.model())
    _complete_model(model, goal, hyps)
    # Sanity: the countermodel must actually falsify the implication.
    assert T.evaluate(formula, model), "bit-blaster returned a bogus model"
    return Result(False, model)


def prove(goal: T.Term, hypotheses: Iterable[T.Term] = (),
          max_conflicts: int = 2_000_000) -> None:
    """Raise `ProofFailure` unless ``hypotheses |= goal``."""
    result = check_valid(goal, hypotheses, max_conflicts=max_conflicts)
    if not result.valid:
        raise ProofFailure(goal, result.model)


def is_satisfiable(formula: T.Term, max_conflicts: int = 2_000_000) -> Result:
    """Decide satisfiability of ``formula``; model returned if sat."""
    inverse = check_valid(T.not_(formula), max_conflicts=max_conflicts)
    if inverse.valid:
        return Result(False)
    return Result(True, inverse.model)


def _complete_model(model: Dict[str, int], goal: T.Term,
                    hyps: List[T.Term]) -> None:
    """Fill in variables the blaster never saw (eliminated by folding)."""
    names = T.free_vars(goal)
    for hyp in hyps:
        T.free_vars(hyp, names)
    for name, sort in names:
        if name not in model:
            model[name] = False if sort == T.BOOL else 0


def _arbitrary_model(formula: T.Term, goal: T.Term,
                     hyps: List[T.Term]) -> Dict[str, int]:
    model: Dict[str, int] = {}
    _complete_model(model, goal, hyps)
    return model
