"""Bit-blasting of bitvector terms to CNF.

Reduces the quantifier-free bitvector formulas produced by the program logic
to propositional CNF via Tseitin encoding, for decision by the CDCL solver
in `repro.logic.sat`. Each bitvector term maps to a list of literals (LSB
first); each boolean term maps to a single literal.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import terms as T
from .sat import Solver


class BitBlaster:
    def __init__(self):
        self.solver = Solver()
        self._bv_cache: Dict[T.Term, List[int]] = {}
        self._bool_cache: Dict[T.Term, int] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._bool_vars: Dict[str, int] = {}
        self.cache_hits = 0
        self._true = self.solver.new_var()
        self.solver.add_clause([self._true])

    # -- gate primitives -----------------------------------------------------

    def _const_lit(self, value: bool) -> int:
        return self._true if value else -self._true

    def _and2(self, a: int, b: int) -> int:
        if a == self._true:
            return b
        if b == self._true:
            return a
        if a == -self._true or b == -self._true:
            return -self._true
        if a == b:
            return a
        if a == -b:
            return -self._true
        out = self.solver.new_var()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        return out

    def _or2(self, a: int, b: int) -> int:
        return -self._and2(-a, -b)

    def _xor2(self, a: int, b: int) -> int:
        if a == self._true:
            return -b
        if a == -self._true:
            return b
        if b == self._true:
            return -a
        if b == -self._true:
            return a
        if a == b:
            return -self._true
        if a == -b:
            return self._true
        out = self.solver.new_var()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    def _mux(self, sel: int, then: int, els: int) -> int:
        if sel == self._true:
            return then
        if sel == -self._true:
            return els
        if then == els:
            return then
        return self._or2(self._and2(sel, then), self._and2(-sel, els))

    def _full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        s = self._xor2(self._xor2(a, b), cin)
        cout = self._or2(self._and2(a, b), self._and2(cin, self._xor2(a, b)))
        return s, cout

    def _add_bits(self, a: List[int], b: List[int], cin: int) -> List[int]:
        out = []
        carry = cin
        for ai, bi in zip(a, b):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out

    def _neg_bits(self, a: List[int]) -> List[int]:
        zero = [self._const_lit(False)] * len(a)
        return self._add_bits(zero, [-x for x in a], self._const_lit(True))

    def _ult_bits(self, a: List[int], b: List[int]) -> int:
        """Unsigned a < b."""
        lt = self._const_lit(False)
        for ai, bi in zip(a, b):  # LSB to MSB
            eq_i = -self._xor2(ai, bi)
            lt = self._mux(eq_i, lt, self._and2(-ai, bi))
        return lt

    def _eq_bits(self, a: List[int], b: List[int]) -> int:
        acc = self._const_lit(True)
        for ai, bi in zip(a, b):
            acc = self._and2(acc, -self._xor2(ai, bi))
        return acc

    def _shift_bits(self, a: List[int], b: List[int], kind: str) -> List[int]:
        """Barrel shifter; shift amount is b mod width."""
        width = len(a)
        amt_bits = max(1, (width - 1).bit_length())
        cur = list(a)
        fill = a[-1] if kind == "ashr" else self._const_lit(False)
        for stage in range(amt_bits):
            dist = 1 << stage
            sel = b[stage]
            nxt = []
            for i in range(width):
                if kind == "shl":
                    shifted = cur[i - dist] if i - dist >= 0 else self._const_lit(False)
                else:
                    shifted = cur[i + dist] if i + dist < width else fill
                nxt.append(self._mux(sel, shifted, cur[i]))
            cur = nxt
        return cur

    def _mul_bits(self, a: List[int], b: List[int]) -> List[int]:
        width = len(a)
        acc = [self._const_lit(False)] * width
        for i in range(width):
            partial = ([self._const_lit(False)] * i
                       + [self._and2(b[i], a[j]) for j in range(width - i)])
            acc = self._add_bits(acc, partial, self._const_lit(False))
        return acc

    def _udivrem_bits(self, a: List[int], b: List[int]) -> Tuple[List[int], List[int]]:
        """Restoring division; returns (quotient, remainder), with the
        RISC-V convention for division by zero handled by the caller."""
        width = len(a)
        rem = [self._const_lit(False)] * width
        quo = [self._const_lit(False)] * width
        for i in range(width - 1, -1, -1):
            rem = [a[i]] + rem[:-1]
            # ge = rem >= b
            ge = -self._ult_bits(rem, b)
            diff = self._add_bits(rem, [-x for x in b], self._const_lit(True))
            rem = [self._mux(ge, d, r) for d, r in zip(diff, rem)]
            quo[i] = ge
        return quo, rem

    # -- term translation ----------------------------------------------------

    def blast_bv(self, t: T.Term) -> List[int]:
        cached = self._bv_cache.get(t)
        if cached is not None:
            self.cache_hits += 1
            return cached
        op = t.op
        width = t.width
        if op == "const":
            bits = [self._const_lit(bool((t.value >> i) & 1)) for i in range(width)]
        elif op == "var":
            bits = self._var_bits.get(t.attr)
            if bits is None:
                bits = [self.solver.new_var() for _ in range(width)]
                self._var_bits[t.attr] = bits
        elif op == "add":
            bits = self._add_bits(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]),
                                  self._const_lit(False))
        elif op == "sub":
            bits = self._add_bits(self.blast_bv(t.args[0]),
                                  [-x for x in self.blast_bv(t.args[1])],
                                  self._const_lit(True))
        elif op == "mul":
            bits = self._mul_bits(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))
        elif op in ("udiv", "urem"):
            a = self.blast_bv(t.args[0])
            b = self.blast_bv(t.args[1])
            quo, rem = self._udivrem_bits(a, b)
            bzero = -self._or_many(b)
            if op == "udiv":
                ones = [self._const_lit(True)] * width
                bits = [self._mux(bzero, o, q) for o, q in zip(ones, quo)]
            else:
                bits = [self._mux(bzero, ai, r) for ai, r in zip(a, rem)]
        elif op == "band":
            bits = [self._and2(x, y) for x, y in
                    zip(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))]
        elif op == "bor":
            bits = [self._or2(x, y) for x, y in
                    zip(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))]
        elif op == "bxor":
            bits = [self._xor2(x, y) for x, y in
                    zip(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))]
        elif op in ("shl", "lshr", "ashr"):
            a = self.blast_bv(t.args[0])
            b = self.blast_bv(t.args[1])
            if t.args[1].is_const():
                amount = t.args[1].value % width
                if op == "shl":
                    bits = [self._const_lit(False)] * amount + a[:width - amount]
                elif op == "lshr":
                    bits = a[amount:] + [self._const_lit(False)] * amount
                else:
                    bits = a[amount:] + [a[-1]] * amount
            else:
                bits = self._shift_bits(a, b, op)
        elif op == "extract":
            hi, lo = t.attr
            bits = self.blast_bv(t.args[0])[lo:hi + 1]
        elif op == "concat":
            high, low = t.args
            bits = self.blast_bv(low) + self.blast_bv(high)
        elif op == "zext":
            inner = self.blast_bv(t.args[0])
            bits = inner + [self._const_lit(False)] * (width - len(inner))
        elif op == "sext":
            inner = self.blast_bv(t.args[0])
            bits = inner + [inner[-1]] * (width - len(inner))
        elif op == "ite":
            sel = self.blast_bool(t.args[0])
            then = self.blast_bv(t.args[1])
            els = self.blast_bv(t.args[2])
            bits = [self._mux(sel, x, y) for x, y in zip(then, els)]
        else:
            raise ValueError("cannot bit-blast bitvector operator %r" % op)
        assert len(bits) == width
        self._bv_cache[t] = bits
        return bits

    def _or_many(self, lits: List[int]) -> int:
        acc = self._const_lit(False)
        for lit in lits:
            acc = self._or2(acc, lit)
        return acc

    def blast_bool(self, t: T.Term) -> int:
        cached = self._bool_cache.get(t)
        if cached is not None:
            self.cache_hits += 1
            return cached
        op = t.op
        if op == "const":
            lit = self._const_lit(bool(t.attr))
        elif op == "var":
            lit = self._bool_vars.get(t.attr)
            if lit is None:
                lit = self.solver.new_var()
                self._bool_vars[t.attr] = lit
        elif op == "eq":
            lit = self._eq_bits(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))
        elif op == "ult":
            lit = self._ult_bits(self.blast_bv(t.args[0]), self.blast_bv(t.args[1]))
        elif op == "slt":
            a = self.blast_bv(t.args[0])
            b = self.blast_bv(t.args[1])
            # Signed comparison: flip sign bits and compare unsigned.
            lit = self._ult_bits(a[:-1] + [-a[-1]], b[:-1] + [-b[-1]])
        elif op == "not":
            lit = -self.blast_bool(t.args[0])
        elif op == "and":
            lit = self._const_lit(True)
            for arg in t.args:
                lit = self._and2(lit, self.blast_bool(arg))
        elif op == "or":
            lit = self._const_lit(False)
            for arg in t.args:
                lit = self._or2(lit, self.blast_bool(arg))
        else:
            raise ValueError("cannot bit-blast boolean operator %r" % op)
        self._bool_cache[t] = lit
        return lit

    def assert_term(self, t: T.Term) -> None:
        if t.sort != T.BOOL:
            raise TypeError("asserted term must be boolean")
        self.solver.add_clause([self.blast_bool(t)])

    def extract_model(self, sat_model: Dict[int, bool]) -> Dict[str, int]:
        """Map a SAT model back to term-level variable values."""
        model: Dict[str, int] = {}
        for name, bits in self._var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                bit = sat_model.get(abs(lit), False)
                if lit < 0:
                    bit = not bit
                if bit:
                    value |= 1 << i
            model[name] = value
        for name, lit in self._bool_vars.items():
            bit = sat_model.get(abs(lit), False)
            model[name] = bit if lit > 0 else (not bit)
        return model
