"""A CDCL SAT solver.

This is the decision engine at the bottom of the verification stack: the
bit-blaster (`repro.logic.bitblast`) reduces bitvector verification
conditions to CNF, and this solver decides them. It implements the standard
conflict-driven clause learning loop with two-watched-literal propagation,
first-UIP clause learning, VSIDS-style activity decision heuristics, and
Luby restarts.

Literal convention: variables are positive integers ``1..n``; a literal is
``+v`` or ``-v``. Clauses are lists of literals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

SATISFIABLE = "sat"
UNSATISFIABLE = "unsat"


class Solver:
    """Incremental-construction CDCL solver (solve-once usage pattern)."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assign: Dict[int, bool] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._reason: Dict[int, Optional[int]] = {}
        self._level: Dict[int, int] = {}
        self._activity: Dict[int, float] = {}
        self._var_inc = 1.0
        self._unsat = False
        # Search statistics (read by repro.obs via the portfolio solver).
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned = 0

    # -- construction -------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self._activity[v] = 0.0
        return v

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = []
        seen = set()
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError("bad literal %d" % lit)
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._unsat = True
            return
        self.clauses.append(clause)

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        val = self._assign.get(abs(lit))
        if val is None:
            return None
        return val if lit > 0 else not val

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self._assign[var] = lit > 0
        self._reason[var] = reason
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)

    def _init_watches(self) -> bool:
        self._watches = {}
        units = []
        for idx, clause in enumerate(self.clauses):
            if len(clause) == 1:
                units.append(clause[0])
                continue
            for lit in clause[:2]:
                self._watches.setdefault(-lit, []).append(idx)
        for lit in units:
            val = self._value(lit)
            if val is False:
                return False
            if val is None:
                self._enqueue(lit, None)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns the index of a conflicting clause."""
        # continue from trail position of earliest unpropagated literal
        head = start = self._prop_head
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            new_watchers = []
            i = 0
            while i < len(watchers):
                ci = watchers[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure the falsified literal is clause[1].
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watchers.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(-clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(ci)
                if self._value(first) is False:
                    # Conflict: restore remaining watchers.
                    new_watchers.extend(watchers[i:])
                    self._watches[lit] = new_watchers
                    self._prop_head = len(self._trail)
                    self.propagations += head - start
                    return ci
                self._enqueue(first, ci)
            self._watches[lit] = new_watchers
        self._prop_head = head
        self.propagations += head - start
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict_idx: int):
        """First-UIP learning. Returns (learned_clause, backtrack_level)."""
        current_level = len(self._trail_lim)
        seen = set()
        learned = []
        counter = 0
        lits = list(self.clauses[conflict_idx])
        trail_pos = len(self._trail) - 1
        uip = None
        while True:
            for lit in lits:
                var = abs(lit)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find next literal on the trail to resolve on.
            while trail_pos >= 0 and abs(self._trail[trail_pos]) not in seen:
                trail_pos -= 1
            if trail_pos < 0:
                raise AssertionError("conflict analysis lost track of the trail")
            uip_lit = self._trail[trail_pos]
            trail_pos -= 1
            seen.discard(abs(uip_lit))
            counter -= 1
            if counter == 0:
                uip = -uip_lit
                break
            reason_idx = self._reason[abs(uip_lit)]
            lits = [l for l in self.clauses[reason_idx] if l != uip_lit]
        learned = [uip] + learned
        if len(learned) == 1:
            return learned, 0
        # The second watch must be a literal at the backtrack level, so the
        # two-watched-literal invariant holds for the learned clause.
        best = max(range(1, len(learned)),
                   key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[best] = learned[best], learned[1]
        back_level = self._level[abs(learned[1])]
        return learned, back_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in self._trail[limit:]:
            var = abs(lit)
            del self._assign[var]
            self._reason.pop(var, None)
            self._level.pop(var, None)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._prop_head = min(self._prop_head, len(self._trail))

    def _decide(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for v in range(1, self.num_vars + 1):
            if v not in self._assign:
                act = self._activity.get(v, 0.0)
                if act > best_act:
                    best_act = act
                    best_var = v
        if best_var is None:
            return None
        return -best_var  # negative polarity first: helps typical VC shapes

    # -- main loop -----------------------------------------------------------

    def solve(self, max_conflicts: Optional[int] = None) -> str:
        if self._unsat:
            return UNSATISFIABLE
        self._prop_head = 0
        if not self._init_watches():
            return UNSATISFIABLE
        conflicts = 0
        luby_unit = 64
        restart_limit = luby_unit * _luby(1)
        restart_index = 1
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                self.conflicts += 1
                conflicts_since_restart += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    raise BudgetExceeded(conflicts)
                if not self._trail_lim:
                    return UNSATISFIABLE
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self.clauses.append(learned)
                self.learned += 1
                ci = len(self.clauses) - 1
                if len(learned) > 1:
                    for lit in learned[:2]:
                        self._watches.setdefault(-lit, []).append(ci)
                self._enqueue(learned[0], ci if len(learned) > 1 else None)
                self._var_inc /= 0.95
                if conflicts_since_restart >= restart_limit:
                    self._backtrack(0)
                    restart_index += 1
                    self.restarts += 1
                    restart_limit = luby_unit * _luby(restart_index)
                    conflicts_since_restart = 0
            else:
                decision = self._decide()
                if decision is None:
                    return SATISFIABLE
                self._trail_lim.append(len(self._trail))
                self.decisions += 1
                self._enqueue(decision, None)

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment (valid after ``solve() == "sat"``)."""
        return dict(self._assign)


class BudgetExceeded(Exception):
    """Raised when the solver exceeds its conflict budget."""


def _luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…

    MiniSat's formulation: find the finite subsequence containing index i,
    then the position within it."""
    i -= 1  # to 0-indexed
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i = i % size
    return 1 << seq


def solve_cnf(num_vars: int, clauses: Iterable[Iterable[int]],
              max_conflicts: Optional[int] = None):
    """Convenience one-shot interface.

    Returns ``("sat", model)`` or ``("unsat", None)``.
    """
    solver = Solver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(max_conflicts=max_conflicts)
    if result == SATISFIABLE:
        model = solver.model()
        for v in range(1, num_vars + 1):
            model.setdefault(v, False)
        return result, model
    return result, None
