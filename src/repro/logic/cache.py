"""Content-addressed proof cache for verification conditions.

The paper's Coq development re-checks every proof on every build; our
program logic is modular ("re-verifying one function never revisits the
others"), so a VC whose formula is unchanged since the last run need not
be decided again. This module gives each verification condition a stable
content address and persists decided results on disk, so that
``python -m repro verify --cache .repro-cache`` skips the solver for
every obligation of every unmodified function.

**Fingerprinting.** A VC is the formula ``hypotheses /\\ ~goal`` (already
hash-consed as a DAG by `repro.logic.terms`). `fingerprint` serializes the
DAG in a deterministic postorder with node sharing, alpha-renaming
variables to ``v0, v1, ...`` in order of first occurrence, and returns the
SHA-256 of the serialization plus the renaming. Alpha-renaming makes the
key independent of the fresh-name counters of a particular run, so the
same function verified in a different order (or a different process)
still hits. Validity is invariant under renaming, so reusing the cached
verdict is sound.

**Store.** A directory holding ``proofs.jsonl``: a format-version header
line followed by one JSON object per decided VC (``{"k": digest,
"valid": bool, "model": {...}}``; countermodels are stored under the
canonical variable names). Corrupt or poisoned data is *detected and
ignored*, never trusted:

* a missing/invalid header discards the whole file (``cache.corrupt``);
* malformed or incomplete lines are skipped individually;
* cached *invalid* verdicts are re-validated on every hit -- the solver
  layer evaluates the stored countermodel against the actual formula and
  calls `ProofCache.poison` when it does not falsify it, dropping the
  entry and falling back to the solver. (Cached *valid* verdicts are
  trusted by digest, exactly like Coq trusting a compiled ``.vo``.)

Observability (see docs/observability.md): ``cache.hits``,
``cache.misses``, ``cache.stores``, ``cache.corrupt``,
``cache.poisoned``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple
from zlib import crc32

from . import terms as T
from .. import obs

#: Bump to invalidate every existing cache (serialization format change).
FORMAT_VERSION = 1

_HEADER = {"format": "repro-proof-cache", "version": FORMAT_VERSION}

HITS = obs.counter("cache.hits")
MISSES = obs.counter("cache.misses")
STORES = obs.counter("cache.stores")
CORRUPT = obs.counter("cache.corrupt")
POISONED = obs.counter("cache.poisoned")


# ---------------------------------------------------------------------------
# Canonicalization


#: Operators whose interned operand order depends on variable *names*
#: (`terms.det_order`); fingerprinting re-sorts them name-blind so the
#: digest is alpha-renaming-invariant.
_COMMUTATIVE = frozenset({"add", "mul", "band", "bor", "bxor", "eq"})


def _postorder(term: T.Term, args_of) -> List[T.Term]:
    """Deterministic postorder of the term DAG (children before parents,
    each shared node exactly once), visiting children in ``args_of`` order."""
    post: List[T.Term] = []
    seen = set()
    stack: List[Tuple[T.Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            post.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for arg in reversed(args_of(node)):
            if arg not in seen:
                stack.append((arg, False))
    return post


def _blind_hashes(term: T.Term) -> Dict[T.Term, int]:
    """A name-blind structural hash per node: all variables hash alike, so
    sorting commutative operands by it is stable under alpha-renaming.
    (Ties -- e.g. ``eq(x, y)`` of two bare variables -- keep the interned
    order; alpha-equivalent formulas can then get distinct digests, which
    costs a spurious cache miss but never an unsound hit.)"""
    blind: Dict[T.Term, int] = {}
    for node in _postorder(term, lambda n: n.args):
        attr = None if node.op == "var" else node.attr
        h = crc32(("%s|%r|%r" % (node.op, attr, node.sort)).encode("utf-8"))
        child = [blind[a] for a in node.args]
        if node.op in _COMMUTATIVE:
            child.sort()
        for c in child:
            h = crc32(b"%08x" % c, h)
        blind[node] = h
    return blind


def fingerprint(term: T.Term) -> Tuple[str, Dict[str, str]]:
    """The content address of a formula.

    Returns ``(digest, varmap)`` where ``digest`` is a SHA-256 hex string
    over the alpha-renamed DAG serialization and ``varmap`` maps each
    original variable name to its canonical name (``v0``, ``v1``, ... in
    first-occurrence order of the deterministic traversal).
    """
    blind = _blind_hashes(term)

    def args_of(node: T.Term) -> Tuple[T.Term, ...]:
        if node.op in _COMMUTATIVE:
            return tuple(sorted(node.args, key=blind.__getitem__))
        return node.args

    post = _postorder(term, args_of)
    ids: Dict[T.Term, int] = {}
    varmap: Dict[str, str] = {}
    lines = ["repro-vc-v%d" % FORMAT_VERSION]
    for index, node in enumerate(post):
        ids[node] = index
        attr = node.attr
        if node.op == "var":
            canon = varmap.get(attr)
            if canon is None:
                canon = "v%d" % len(varmap)
                varmap[attr] = canon
            attr = canon
        lines.append("%s|%r|%r|%s" % (
            node.op, attr, node.sort,
            ",".join(str(ids[a]) for a in args_of(node))))
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest(), varmap


# ---------------------------------------------------------------------------
# The store


class CacheEntry:
    """One decided VC: the verdict, plus (for invalid VCs) a countermodel
    keyed by canonical variable names."""

    __slots__ = ("valid", "model")

    def __init__(self, valid: bool, model: Optional[Dict[str, int]] = None):
        self.valid = valid
        self.model = model

    def to_json(self, digest: str) -> str:
        record = {"k": digest, "valid": self.valid}
        if self.model is not None:
            record["model"] = self.model
        return json.dumps(record, sort_keys=True)

    def __repr__(self) -> str:
        return "CacheEntry(valid=%r, model=%r)" % (self.valid, self.model)


def _parse_entry(line: str) -> Optional[Tuple[str, CacheEntry]]:
    """Parse one JSONL record; None for anything malformed (poisoned files
    must never crash -- or corrupt -- a verification run)."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    digest = record.get("k")
    valid = record.get("valid")
    model = record.get("model")
    if not isinstance(digest, str) or len(digest) != 64:
        return None
    if not isinstance(valid, bool):
        return None
    if model is not None:
        if not isinstance(model, dict):
            return None
        for name, value in model.items():
            if not isinstance(name, str) or not isinstance(value, (bool, int)):
                return None
    if valid is False and model is None:
        return None  # an invalid verdict is useless without its model
    return digest, CacheEntry(valid, model)


class ProofCache:
    """A content-addressed store of decided verification conditions.

    ``directory=None`` keeps the cache purely in memory (used by
    dispatcher workers, which report new entries back to the parent
    instead of writing the shared file themselves).
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._entries: Dict[str, CacheEntry] = {}
        self._fresh: Dict[str, CacheEntry] = {}
        self._writer = None
        self._rewrite = False
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load(self.path)

    @property
    def path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, "proofs.jsonl")

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence ---------------------------------------------------------

    def _load(self, path: str) -> None:
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
            try:
                header = json.loads(header_line)
            except ValueError:
                header = None
            if header != _HEADER:
                # Unknown or corrupt format: ignore the whole file and
                # start it over on the first store.
                CORRUPT.inc()
                self._rewrite = True
                return
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                parsed = _parse_entry(line)
                if parsed is None:
                    CORRUPT.inc()
                    continue
                digest, entry = parsed
                self._entries[digest] = entry

    def _open_writer(self):
        if self._writer is None and self.path is not None:
            mode = "w" if self._rewrite else "a"
            needs_header = self._rewrite or not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0
            self._writer = open(self.path, mode, encoding="utf-8")
            self._rewrite = False
            if needs_header:
                self._writer.write(json.dumps(_HEADER, sort_keys=True) + "\n")
        return self._writer

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "ProofCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- lookup / store ------------------------------------------------------

    def lookup(self, digest: str) -> Optional[CacheEntry]:
        return self._entries.get(digest)

    def store(self, digest: str, valid: bool,
              model: Optional[Dict[str, int]] = None) -> None:
        """Record a decided VC and append it to the on-disk store."""
        if digest in self._entries:
            return
        entry = CacheEntry(valid, model)
        self._entries[digest] = entry
        self._fresh[digest] = entry
        STORES.inc()
        writer = self._open_writer()
        if writer is not None:
            writer.write(entry.to_json(digest) + "\n")
            writer.flush()

    def poison(self, digest: str) -> None:
        """Drop an entry whose cached countermodel failed re-validation."""
        self._entries.pop(digest, None)
        self._fresh.pop(digest, None)
        POISONED.inc()

    # -- merging (parallel workers -> parent) --------------------------------

    def fresh_entries(self) -> List[Tuple[str, bool, Optional[Dict[str, int]]]]:
        """Entries added since construction, as picklable tuples -- what a
        dispatcher worker sends back to the parent."""
        return [(digest, entry.valid, entry.model)
                for digest, entry in self._fresh.items()]

    def seed_entries(self) -> List[Tuple[str, bool, Optional[Dict[str, int]]]]:
        """Every entry, as picklable tuples -- what the parent ships to
        workers so they start warm."""
        return [(digest, entry.valid, entry.model)
                for digest, entry in self._entries.items()]

    def absorb(self, entries: Iterable[Tuple[str, bool,
                                             Optional[Dict[str, int]]]]) -> None:
        """Merge entries from a worker (deterministic: callers iterate
        workers in task-submission order)."""
        for digest, valid, model in entries:
            if digest not in self._entries:
                self.store(digest, valid, model)

    @classmethod
    def from_entries(cls, entries: Iterable[Tuple[str, bool,
                                                  Optional[Dict[str, int]]]]
                     ) -> "ProofCache":
        """An in-memory cache pre-seeded with ``entries`` (worker side).

        Seeded entries do not count as fresh, so `fresh_entries` reports
        exactly the worker's own additions.
        """
        cache = cls(directory=None)
        for digest, valid, model in entries:
            cache._entries[digest] = CacheEntry(valid, model)
        return cache
