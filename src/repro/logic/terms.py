"""Term language for verification conditions.

This is the logical substrate that plays the role Coq's term language plays
in the paper: verification conditions produced by the Bedrock2 program logic
(`repro.bedrock2.vcgen`) are quantifier-free formulas over fixed-width
bitvectors and booleans, represented as hash-consed immutable DAG nodes.

Sorts:
  * ``("bv", w)`` -- a bitvector of width ``w`` (Bedrock2 words are 32 bits,
    memory bytes are 8 bits).
  * ``"bool"`` -- a proposition.

Terms are constructed through the smart constructors in this module, which
perform constant folding and a few local identities so that the common case
(all-concrete driver code) collapses to literal constants without ever
reaching the SAT solver.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from zlib import crc32

Sort = Union[str, Tuple[str, int]]

BOOL: Sort = "bool"


def bv_sort(width: int) -> Sort:
    return ("bv", width)


BV32 = bv_sort(32)
BV8 = bv_sort(8)

_INTERN: Dict[tuple, "Term"] = {}


def _det_hash(op: str, args: Tuple["Term", ...], attr, sort: Sort) -> int:
    """A deterministic structural hash, stable across processes and runs.

    ``hash()``/``id()`` vary with interpreter address layout and string-hash
    randomization, so anything derived from them (e.g. the argument order of
    commutative operators) would differ between a parent and its worker
    processes. The proof cache fingerprints and the parallel dispatcher both
    need term structure to be reproducible, so ordering decisions use this
    CRC-based hash instead.
    """
    h = crc32(("%s|%r|%r" % (op, attr, sort)).encode("utf-8"))
    for a in args:
        h = crc32(b"%08x" % a._det, h)
    return h


def _struct_key(t: "Term", _memo: Optional[Dict] = None) -> tuple:
    """Exact structural key; only used to break ``_det`` collisions."""
    if _memo is None:
        _memo = {}
    cached = _memo.get(t)
    if cached is None:
        cached = (t.op, t.attr, t.sort,
                  tuple(_struct_key(a, _memo) for a in t.args))
        _memo[t] = cached
    return cached


def det_order(a: "Term", b: "Term") -> bool:
    """True when ``a`` precedes ``b`` in the canonical (deterministic)
    term order used to normalize commutative operators."""
    if a._det != b._det:
        return a._det < b._det
    if a is b:
        return False
    return _struct_key(a) < _struct_key(b)


class Term:
    """An immutable, hash-consed term.

    ``op`` is the node kind, ``args`` the child terms, ``attr`` holds
    non-term payload (constant value, variable name, extract bounds).
    Equality is identity thanks to interning.
    """

    __slots__ = ("op", "args", "attr", "sort", "_hash", "_det")

    def __new__(cls, op: str, args: Tuple["Term", ...], attr, sort: Sort):
        key = (op, args, attr, sort)
        existing = _INTERN.get(key)
        if existing is not None:
            return existing
        self = object.__new__(cls)
        self.op = op
        self.args = args
        self.attr = attr
        self.sort = sort
        self._hash = hash(key)
        self._det = _det_hash(op, args, attr, sort)
        _INTERN[key] = self
        return self

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    def __reduce__(self):
        # Pickle through the interning constructor so terms stay
        # hash-consed (and `is`-comparable) after crossing a process
        # boundary -- required for the parallel VC dispatcher.
        return (Term, (self.op, self.args, self.attr, self.sort))

    @property
    def width(self) -> int:
        if not isinstance(self.sort, tuple):
            raise TypeError("width of non-bitvector term %r" % (self,))
        return self.sort[1]

    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        if self.op != "const":
            raise TypeError("value of non-constant term %r" % (self,))
        return self.attr

    def __repr__(self) -> str:
        return term_to_str(self)


def term_to_str(t: Term, depth: int = 0) -> str:
    if depth > 6:
        return "..."
    if t.op == "const":
        if t.sort == BOOL:
            return "true" if t.attr else "false"
        return "0x%x" % t.attr
    if t.op == "var":
        return str(t.attr)
    if t.op == "extract":
        hi, lo = t.attr
        return "%s[%d:%d]" % (term_to_str(t.args[0], depth + 1), hi, lo)
    inner = " ".join(term_to_str(a, depth + 1) for a in t.args)
    return "(%s %s)" % (t.op, inner)


def _mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    value &= _mask(width)
    if value >> (width - 1):
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    return value & _mask(width)


# ---------------------------------------------------------------------------
# Leaf constructors


def const(value: int, width: int = 32) -> Term:
    return Term("const", (), value & _mask(width), bv_sort(width))


def var(name: str, width: int = 32) -> Term:
    return Term("var", (), name, bv_sort(width))


def bool_var(name: str) -> Term:
    return Term("var", (), name, BOOL)


TRUE = Term("const", (), True, BOOL)
FALSE = Term("const", (), False, BOOL)


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# Bitvector operations

_COMMUTATIVE = {"add", "mul", "band", "bor", "bxor"}


def _binop_const(op: str, a: int, b: int, width: int) -> int:
    m = _mask(width)
    if op == "add":
        return (a + b) & m
    if op == "sub":
        return (a - b) & m
    if op == "mul":
        return (a * b) & m
    if op == "udiv":
        # RISC-V semantics: division by zero yields all-ones.
        return m if b == 0 else (a // b) & m
    if op == "urem":
        return a if b == 0 else (a % b) & m
    if op == "sdiv":
        if b == 0:
            return m
        sa, sb = to_signed(a, width), to_signed(b, width)
        if sa == -(1 << (width - 1)) and sb == -1:
            return from_signed(sa, width)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return from_signed(q, width)
    if op == "srem":
        if b == 0:
            return a
        sa, sb = to_signed(a, width), to_signed(b, width)
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return from_signed(r, width)
    if op == "band":
        return a & b
    if op == "bor":
        return a | b
    if op == "bxor":
        return a ^ b
    if op == "shl":
        return (a << (b % width)) & m
    if op == "lshr":
        return (a >> (b % width)) & m
    if op == "ashr":
        return from_signed(to_signed(a, width) >> (b % width), width)
    raise ValueError("unknown bitvector operator %r" % op)


def bv_binop(op: str, a: Term, b: Term) -> Term:
    if a.sort != b.sort:
        raise TypeError("sort mismatch: %r vs %r" % (a.sort, b.sort))
    width = a.width
    if a.is_const() and b.is_const():
        return const(_binop_const(op, a.value, b.value, width), width)
    # Normalize commutative operators: constant on the right, otherwise a
    # canonical argument order (hash-consing then makes op(x,y) and op(y,x)
    # the *same* node, so equalities between them fold structurally).
    if op in _COMMUTATIVE:
        if a.is_const() and not b.is_const():
            a, b = b, a
        elif not a.is_const() and not b.is_const() and det_order(b, a):
            a, b = b, a
    zero = const(0, width)
    ones = const(_mask(width), width)
    if op == "add":
        if b is zero:
            return a
    elif op == "sub":
        if b is zero:
            return a
        if a is b:
            return zero
    elif op == "mul":
        if b is zero:
            return zero
        if b.is_const() and b.value == 1:
            return a
    elif op == "band":
        if b is zero:
            return zero
        if b is ones:
            return a
        if a is b:
            return a
    elif op == "bor":
        if b is zero:
            return a
        if b is ones:
            return ones
        if a is b:
            return a
    elif op == "bxor":
        if b is zero:
            return a
        if a is b:
            return zero
    elif op in ("shl", "lshr", "ashr"):
        if b is zero:
            return a
    return Term(op, (a, b), None, a.sort)


def add(a: Term, b: Term) -> Term:
    return bv_binop("add", a, b)


def sub(a: Term, b: Term) -> Term:
    return bv_binop("sub", a, b)


def mul(a: Term, b: Term) -> Term:
    return bv_binop("mul", a, b)


def band(a: Term, b: Term) -> Term:
    return bv_binop("band", a, b)


def bor(a: Term, b: Term) -> Term:
    return bv_binop("bor", a, b)


def bxor(a: Term, b: Term) -> Term:
    return bv_binop("bxor", a, b)


def shl(a: Term, b: Term) -> Term:
    return bv_binop("shl", a, b)


def lshr(a: Term, b: Term) -> Term:
    return bv_binop("lshr", a, b)


def ashr(a: Term, b: Term) -> Term:
    return bv_binop("ashr", a, b)


def bnot(a: Term) -> Term:
    return bxor(a, const(_mask(a.width), a.width))


def extract(a: Term, hi: int, lo: int) -> Term:
    """Bits ``hi..lo`` inclusive of ``a`` as a ``(hi-lo+1)``-wide vector."""
    if not (0 <= lo <= hi < a.width):
        raise ValueError("bad extract bounds [%d:%d] on width %d" % (hi, lo, a.width))
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const():
        return const(a.value >> lo, width)
    if a.op == "extract":
        inner_hi, inner_lo = a.attr
        return extract(a.args[0], inner_lo + hi, inner_lo + lo)
    if a.op == "concat":
        # concat(high, low)
        high, low = a.args
        if hi < low.width:
            return extract(low, hi, lo)
        if lo >= low.width:
            return extract(high, hi - low.width, lo - low.width)
    if a.op == "zext" and hi < a.args[0].width:
        return extract(a.args[0], hi, lo)
    return Term("extract", (a,), (hi, lo), bv_sort(width))


def concat(high: Term, low: Term) -> Term:
    """Concatenate: result bits are ``high`` above ``low``."""
    width = high.width + low.width
    if high.is_const() and low.is_const():
        return const((high.value << low.width) | low.value, width)
    return Term("concat", (high, low), None, bv_sort(width))


def zext(a: Term, width: int) -> Term:
    if width < a.width:
        raise ValueError("zext to narrower width")
    if width == a.width:
        return a
    if a.is_const():
        return const(a.value, width)
    return Term("zext", (a,), None, bv_sort(width))


def sext(a: Term, width: int) -> Term:
    if width < a.width:
        raise ValueError("sext to narrower width")
    if width == a.width:
        return a
    if a.is_const():
        return const(from_signed(to_signed(a.value, a.width), width), width)
    return Term("sext", (a,), None, bv_sort(width))


def truncate(a: Term, width: int) -> Term:
    if width > a.width:
        raise ValueError("truncate to wider width")
    return extract(a, width - 1, 0)


# ---------------------------------------------------------------------------
# Predicates

def eq(a: Term, b: Term) -> Term:
    if a.sort != b.sort:
        raise TypeError("sort mismatch in eq: %r vs %r" % (a.sort, b.sort))
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return bool_const(a.value == b.value)
    return Term("eq", (a, b) if det_order(a, b) else (b, a), None, BOOL)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    if a.is_const() and b.is_const():
        return bool_const(a.value < b.value)
    if a is b:
        return FALSE
    if b.is_const() and b.value == 0:
        return FALSE
    # Theory lemma (RISC-V remainder convention): urem(x, y) < y iff y != 0
    # -- with y == 0, urem returns x and x < 0 is false. Keeping this as a
    # fold spares the SAT solver a 32-bit divider blast on the common
    # loop-termination obligation.
    if a.op == "urem" and a.args[1] is b:
        return not_(eq(b, const(0, b.width)))
    return Term("ult", (a, b), None, BOOL)


def ule(a: Term, b: Term) -> Term:
    return not_(ult(b, a))


def slt(a: Term, b: Term) -> Term:
    if a.is_const() and b.is_const():
        w = a.width
        return bool_const(to_signed(a.value, w) < to_signed(b.value, w))
    if a is b:
        return FALSE
    return Term("slt", (a, b), None, BOOL)


def sle(a: Term, b: Term) -> Term:
    return not_(slt(b, a))


# ---------------------------------------------------------------------------
# Boolean connectives

def not_(a: Term) -> Term:
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Term("not", (a,), None, BOOL)


def and_(*terms: Term) -> Term:
    flat = []
    for t in terms:
        if t is TRUE:
            continue
        if t is FALSE:
            return FALSE
        if t.op == "and":
            flat.extend(t.args)
        else:
            flat.append(t)
    uniq = []
    seen = set()
    for t in flat:
        if t not in seen:
            seen.add(t)
            uniq.append(t)
    for t in uniq:
        if not_(t) in seen:
            return FALSE
    if not uniq:
        return TRUE
    if len(uniq) == 1:
        return uniq[0]
    return Term("and", tuple(uniq), None, BOOL)


def or_(*terms: Term) -> Term:
    flat = []
    for t in terms:
        if t is FALSE:
            continue
        if t is TRUE:
            return TRUE
        if t.op == "or":
            flat.extend(t.args)
        else:
            flat.append(t)
    uniq = []
    seen = set()
    for t in flat:
        if t not in seen:
            seen.add(t)
            uniq.append(t)
    for t in uniq:
        if not_(t) in seen:
            return TRUE
    if not uniq:
        return FALSE
    if len(uniq) == 1:
        return uniq[0]
    return Term("or", tuple(uniq), None, BOOL)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def ite(cond: Term, then: Term, els: Term) -> Term:
    if cond.sort != BOOL:
        raise TypeError("ite condition must be boolean")
    if then.sort != els.sort:
        raise TypeError("ite branch sort mismatch")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then.sort == BOOL:
        if then is TRUE and els is FALSE:
            return cond
        if then is FALSE and els is TRUE:
            return not_(cond)
        return or_(and_(cond, then), and_(not_(cond), els))
    return Term("ite", (cond, then, els), None, then.sort)


def bool_to_word(b: Term, width: int = 32) -> Term:
    """Embed a boolean into a bitvector as 0/1 (Bedrock2 comparison result)."""
    return ite(b, const(1, width), const(0, width))


# ---------------------------------------------------------------------------
# Evaluation under a model (used for counterexample reporting and for the
# differential tests of the solver itself).


def evaluate(t: Term, model: Dict[str, int], _cache: Optional[dict] = None):
    """Evaluate ``t`` with variables bound by ``model`` (ints / bools)."""
    if _cache is None:
        _cache = {}
    if t in _cache:
        return _cache[t]
    op = t.op
    if op == "const":
        result = t.attr
    elif op == "var":
        if t.attr not in model:
            raise KeyError("model missing variable %r" % (t.attr,))
        result = model[t.attr]
        if isinstance(t.sort, tuple):
            result &= _mask(t.width)
    elif op in ("add", "sub", "mul", "udiv", "urem", "sdiv", "srem",
                "band", "bor", "bxor", "shl", "lshr", "ashr"):
        a = evaluate(t.args[0], model, _cache)
        b = evaluate(t.args[1], model, _cache)
        result = _binop_const(op, a, b, t.width)
    elif op == "extract":
        hi, lo = t.attr
        a = evaluate(t.args[0], model, _cache)
        result = (a >> lo) & _mask(hi - lo + 1)
    elif op == "concat":
        high = evaluate(t.args[0], model, _cache)
        low = evaluate(t.args[1], model, _cache)
        result = (high << t.args[1].width) | low
    elif op == "zext":
        result = evaluate(t.args[0], model, _cache)
    elif op == "sext":
        inner = t.args[0]
        result = from_signed(to_signed(evaluate(inner, model, _cache), inner.width), t.width)
    elif op == "eq":
        result = evaluate(t.args[0], model, _cache) == evaluate(t.args[1], model, _cache)
    elif op == "ult":
        result = evaluate(t.args[0], model, _cache) < evaluate(t.args[1], model, _cache)
    elif op == "slt":
        w = t.args[0].width
        result = (to_signed(evaluate(t.args[0], model, _cache), w)
                  < to_signed(evaluate(t.args[1], model, _cache), w))
    elif op == "not":
        result = not evaluate(t.args[0], model, _cache)
    elif op == "and":
        result = all(evaluate(a, model, _cache) for a in t.args)
    elif op == "or":
        result = any(evaluate(a, model, _cache) for a in t.args)
    elif op == "ite":
        if evaluate(t.args[0], model, _cache):
            result = evaluate(t.args[1], model, _cache)
        else:
            result = evaluate(t.args[2], model, _cache)
    else:
        raise ValueError("cannot evaluate operator %r" % op)
    _cache[t] = result
    return result


def free_vars(t: Term, acc: Optional[set] = None, _seen: Optional[set] = None) -> set:
    """The set of (name, sort) pairs of variables occurring in ``t``."""
    if acc is None:
        acc = set()
    if _seen is None:
        _seen = set()
    if t in _seen:
        return acc
    _seen.add(t)
    if t.op == "var":
        acc.add((t.attr, t.sort))
    for a in t.args:
        free_vars(a, acc, _seen)
    return acc
