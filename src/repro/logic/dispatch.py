"""Parallel discharge of independent verification work.

The program logic is modular: `repro.bedrock2.vcgen` emits obligations
per function and "re-verifying one function never revisits the others",
so whole-function verification tasks -- and raw VC batches -- are
embarrassingly parallel. This module farms them to a
`multiprocessing` pool (``--jobs N`` on the CLI) and merges the results
back **deterministically**: outputs are consumed in task-submission
order regardless of which worker finished first, so ``--jobs 4``
produces bit-identical reports, counterexamples, and proof-cache files
to ``--jobs 1``.

What crosses the process boundary is kept picklable by construction:

* **payloads**: `Obligation` (terms pickle through the interning
  constructor, see `terms.Term.__reduce__`), task-name strings for
  whole-function verification, and ``module:function`` paths plus kwargs
  for generic calls;
* **results**: per-task `(status, model/report, counter deltas, fresh
  cache entries, wall seconds, observability extras)` tuples -- never
  live exceptions, which do not round-trip through pickle reliably;
  failures are re-raised in the parent, earliest submitted task first.
  The extras dict ships the worker's histogram deltas, trace events
  (rebased onto the parent clock and re-stamped with the worker pid),
  and verification-ledger records back to the parent, merged in
  task-submission order so ``--jobs N`` aggregation is deterministic.

Each task runs under a **per-task budget** (its own ``max_conflicts``
solver allowance) and a private proof cache seeded from the parent's
entries, so worker behavior depends only on the submitted payload --
never on scheduling -- and new entries flow back for the parent to
persist.

A timed-out VC (`solver.SolverTimeout`, i.e. the SAT backend's
`BudgetExceeded` for that one query) never aborts a batch: it is
reported as a per-obligation ``timeout`` status and the remaining
obligations proceed.

Observability: ``dispatch.tasks``, ``dispatch.batches``,
``dispatch.task_seconds`` (histogram), and per-task
``dispatch.task`` spans in the parent trace.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import solver as S
from . import terms as T
from .. import obs
from .cache import ProofCache

_TASKS = obs.counter("dispatch.tasks")
_BATCHES = obs.counter("dispatch.batches")
_TASK_SECONDS = obs.histogram("dispatch.task_seconds")


def default_jobs() -> int:
    """The pool size ``--jobs 0`` resolves to: one worker per core."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Payloads


@dataclass
class Obligation:
    """One picklable verification condition: prove ``hypotheses |= goal``
    within a ``max_conflicts`` SAT budget."""

    goal: T.Term
    hypotheses: Tuple[T.Term, ...] = ()
    context: str = ""
    max_conflicts: int = 2_000_000


@dataclass
class ObligationResult:
    """Outcome of one dispatched obligation.

    ``status`` is ``"proved"``, ``"refuted"`` (with the countermodel in
    ``model``), or ``"timeout"`` (the per-obligation budget ran out --
    the rest of the batch is unaffected).
    """

    context: str
    status: str
    model: Optional[Dict[str, int]] = None

    @property
    def proved(self) -> bool:
        return self.status == "proved"


# ---------------------------------------------------------------------------
# Worker side. Everything here must be importable at module top level so
# the pool works under both fork and spawn start methods.

_SEED_ENTRIES: List[tuple] = []
_USE_CACHE = False


def _pool_init(seed_entries: List[tuple], use_cache: bool,
               enable_obs: bool = False, trace: bool = False,
               ledger: bool = False) -> None:
    global _SEED_ENTRIES, _USE_CACHE
    _SEED_ENTRIES = seed_entries
    _USE_CACHE = use_cache
    # Mirror the parent's observability mode. Under fork the worker
    # inherits the parent's tracer (with the parent's pid and events),
    # so a fresh one must be started either way.
    if enable_obs:
        obs.enable(trace=trace)
    else:
        obs.disable()
    if ledger:
        obs.enable_ledger()
    else:
        obs.disable_ledger()


def _counter_values() -> Dict[str, int]:
    snapshot: Dict[str, int] = {}
    for name, metric in obs.REGISTRY._metrics.items():
        if isinstance(metric, obs.Counter):
            snapshot[name] = metric.value
    return snapshot


def _counter_delta(before: Dict[str, int]) -> Dict[str, int]:
    delta: Dict[str, int] = {}
    for name, value in _counter_values().items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


def _histogram_values() -> Dict[str, tuple]:
    snapshot: Dict[str, tuple] = {}
    for name, metric in obs.REGISTRY._metrics.items():
        if isinstance(metric, obs.Histogram):
            snapshot[name] = (metric.count, metric.total,
                              dict(metric.buckets))
    return snapshot


def _histogram_delta(before: Dict[str, tuple]) -> Dict[str, tuple]:
    """Per-histogram ``(count, total, min, max, buckets)`` deltas since
    the snapshot. min/max are the worker's current extremes -- real
    observed samples, so the parent-side merge stays exact (re-merging
    an extreme the parent already holds is idempotent)."""
    delta: Dict[str, tuple] = {}
    for name, metric in obs.REGISTRY._metrics.items():
        if not isinstance(metric, obs.Histogram):
            continue
        count0, total0, buckets0 = before.get(name, (0, 0.0, {}))
        dcount = metric.count - count0
        if dcount <= 0:
            continue
        dbuckets = {}
        for exponent, n in metric.buckets.items():
            dn = n - buckets0.get(exponent, 0)
            if dn:
                dbuckets[exponent] = dn
        delta[name] = (dcount, metric.total - total0,
                       metric.min, metric.max, dbuckets)
    return delta


class TaskEnv:
    """Per-task worker environment: a private cache seeded from the
    parent (so results depend only on the payload, not on which worker
    ran which earlier task) and a counter baseline for delta reporting.

    Higher layers defining their own worker functions (e.g.
    `repro.sw.verify`'s whole-function tasks) enter this around the task
    body and return ``(index, payload, None, error, *env.outcome())``
    from the worker so `run_pool` can merge the bookkeeping."""

    def __enter__(self):
        self.t0 = time.perf_counter()
        self.before = _counter_values()
        self.hist_before = _histogram_values()
        tr = obs.tracer()
        self.trace_mark = len(tr.events) if tr is not None else 0
        led = obs.ledger()
        self.ledger_mark = led.mark() if led is not None else 0
        self.cache = (ProofCache.from_entries(_SEED_ENTRIES)
                      if _USE_CACHE else None)
        self.previous = S.set_cache(self.cache)
        return self

    def __exit__(self, *exc) -> None:
        S.set_cache(self.previous)

    def outcome(self) -> Tuple[Dict[str, int], List[tuple], float, Dict]:
        fresh = self.cache.fresh_entries() if self.cache is not None else []
        extras: Dict = {"pid": os.getpid()}
        hist = _histogram_delta(self.hist_before)
        if hist:
            extras["hist"] = hist
        tr = obs.tracer()
        if tr is not None and len(tr.events) > self.trace_mark:
            extras["events"] = tr.events[self.trace_mark:]
            extras["trace_t0"] = tr.t0
        led = obs.ledger()
        if led is not None:
            records = led.since(self.ledger_mark)
            if records:
                extras["ledger"] = records
        return (_counter_delta(self.before), fresh,
                time.perf_counter() - self.t0, extras)


def _worker_discharge(task: Tuple[int, Obligation]):
    index, ob = task
    with TaskEnv() as env:
        model = None
        try:
            result = S.check_valid(ob.goal, ob.hypotheses,
                                   max_conflicts=ob.max_conflicts)
            if result.valid:
                status = "proved"
            else:
                status, model = "refuted", result.model
        except S.SolverTimeout:
            status = "timeout"
        counters, fresh, wall, extras = env.outcome()
    return index, status, model, None, counters, fresh, wall, extras


def _worker_call(task: Tuple[int, str, dict]):
    index, func_path, kwargs = task
    module_name, _, attr = func_path.partition(":")
    fn = getattr(importlib.import_module(module_name), attr)
    with TaskEnv() as env:
        result = None
        error = None
        try:
            result = fn(**kwargs)
        except Exception as err:  # surfaced (re-raised) in the parent
            error = (type(err).__name__, func_path, str(err), None)
        counters, fresh, wall, extras = env.outcome()
    return index, result, None, error, counters, fresh, wall, extras


# ---------------------------------------------------------------------------
# Parent side


def _merge_counters(delta: Dict[str, int]) -> None:
    # ``cache.stores`` is recounted by the parent when it absorbs the
    # worker's fresh entries; merging the worker's own count would double
    # every store.
    for name, value in delta.items():
        if name != "cache.stores":
            obs.counter(name).inc(value)


def _merge_extras(extras: Optional[Dict]) -> None:
    """Fold one worker task's observability extras into this process:
    histogram deltas into the registry, trace events into the parent
    tracer (rebased + pid-stamped), ledger records into the parent
    ledger. Called in task-submission order, so the merged state is
    independent of worker scheduling."""
    if not extras:
        return
    pid = extras.get("pid")
    for name, delta in extras.get("hist", {}).items():
        obs.histogram(name).merge(*delta)
    tr = obs.tracer()
    events = extras.get("events")
    if tr is not None and events:
        tr.absorb(events, t0=extras.get("trace_t0"), pid=pid)
    led = obs.ledger()
    records = extras.get("ledger")
    if led is not None and records:
        led.absorb(records, pid=pid)


def run_pool(worker: Callable, tasks: List[tuple], jobs: int,
             cache: Optional[ProofCache], label: str) -> List[tuple]:
    """Run ``tasks`` on a pool and return raw worker tuples **in
    submission order**, with counters, histograms, trace events, ledger
    records, and cache entries merged into this process. Spans and
    histograms record per-task wall time."""
    _BATCHES.inc()
    seed = cache.seed_entries() if cache is not None else []
    ctx = multiprocessing.get_context()
    pool = ctx.Pool(processes=max(1, min(jobs, len(tasks))),
                    initializer=_pool_init,
                    initargs=(seed, cache is not None, obs.ENABLED,
                              obs.tracer() is not None,
                              obs.ledger() is not None))
    try:
        with obs.span("dispatch.batch", cat="dispatch",
                      args={"label": label, "jobs": jobs,
                            "tasks": len(tasks)}):
            raw = pool.map(worker, tasks, chunksize=1)
    finally:
        pool.close()
        pool.join()
    raw.sort(key=lambda item: item[0])
    for item in raw:
        _, _, _, _, counters, fresh, wall, extras = item
        _TASKS.inc()
        _TASK_SECONDS.record(wall)
        obs.instant("dispatch.task", cat="dispatch",
                    args={"label": label, "seconds": wall})
        _merge_counters(counters)
        _merge_extras(extras)
        if cache is not None and fresh:
            cache.absorb(fresh)
    return raw


def discharge_batch(obligations: Sequence[Obligation],
                    jobs: Optional[int] = None,
                    cache: Optional[ProofCache] = None
                    ) -> List[ObligationResult]:
    """Decide a batch of independent VCs, ``jobs`` at a time.

    Results come back in input order. One obligation timing out (or
    being refuted) never aborts the others.
    """
    jobs = default_jobs() if not jobs else jobs
    if jobs <= 1 or len(obligations) <= 1:
        return [_sequential_discharge(ob, cache) for ob in obligations]
    tasks = [(i, ob) for i, ob in enumerate(obligations)]
    raw = run_pool(_worker_discharge, tasks, jobs, cache, "discharge")
    return [ObligationResult(obligations[i].context, status, model)
            for i, status, model, _, _, _, _, _ in raw]


def _sequential_discharge(ob: Obligation,
                          cache: Optional[ProofCache]) -> ObligationResult:
    previous = S.set_cache(cache) if cache is not None else None
    try:
        try:
            result = S.check_valid(ob.goal, ob.hypotheses,
                                   max_conflicts=ob.max_conflicts)
        except S.SolverTimeout:
            return ObligationResult(ob.context, "timeout")
        if result.valid:
            return ObligationResult(ob.context, "proved")
        return ObligationResult(ob.context, "refuted", result.model)
    finally:
        if cache is not None:
            S.set_cache(previous)


class DispatchError(Exception):
    """A dispatched task failed; carries the worker's (picklable) error
    description for the earliest-submitted failing task."""

    def __init__(self, kind: str, context: str, detail: str,
                 model: Optional[Dict[str, int]] = None):
        self.kind = kind
        self.context = context
        self.detail = detail
        self.model = model
        super().__init__("%s in %s: %s" % (kind, context, detail))


def parallel_call(func_path: str, kwargs_list: Sequence[dict],
                  jobs: Optional[int] = None) -> List[Any]:
    """Generic fan-out: call ``module:function`` once per kwargs dict and
    return the (picklable) results in input order."""
    jobs = default_jobs() if not jobs else jobs
    if jobs <= 1 or len(kwargs_list) <= 1:
        module_name, _, attr = func_path.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        return [fn(**kwargs) for kwargs in kwargs_list]
    tasks = [(i, func_path, kwargs) for i, kwargs in enumerate(kwargs_list)]
    raw = run_pool(_worker_call, tasks, jobs, None, "call")
    results = []
    for index, result, _, error, _, _, _, _ in raw:
        if error is not None:
            raise DispatchError(*error)
        results.append(result)
    return results
