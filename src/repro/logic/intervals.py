"""Unsigned interval analysis over terms.

A fast incomplete procedure used as a filter in front of the SAT solver:
compute a conservative unsigned range ``[lo, hi]`` for every bitvector term,
then try to refute boolean terms from the ranges. Sound for refutation
("definitely false" / "definitely true"); returns ``None`` when undecided.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import terms as T

Range = Tuple[int, int]


def _full(width: int) -> Range:
    return (0, (1 << width) - 1)


def bv_range(t: T.Term, env: Optional[Dict[T.Term, Range]] = None,
             _cache: Optional[dict] = None) -> Range:
    """A sound unsigned over-approximation of the values of ``t``.

    ``env`` may pre-seed ranges for subterms (e.g. from path conditions).
    """
    if _cache is None:
        _cache = {}
    if env and t in env:
        return env[t]
    if t in _cache:
        return _cache[t]
    width = t.width
    m = (1 << width) - 1
    op = t.op
    if op == "const":
        r = (t.value, t.value)
    elif op == "var":
        r = _full(width)
    elif op == "add":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        if ahi + bhi <= m:
            r = (alo + blo, ahi + bhi)
        else:
            r = _full(width)
    elif op == "sub":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        if alo - bhi >= 0:
            r = (alo - bhi, ahi - blo)
        else:
            r = _full(width)
    elif op == "mul":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        if ahi * bhi <= m:
            r = (alo * blo, ahi * bhi)
        else:
            r = _full(width)
    elif op == "band":
        (_, ahi) = bv_range(t.args[0], env, _cache)
        (_, bhi) = bv_range(t.args[1], env, _cache)
        r = (0, min(ahi, bhi))
    elif op == "bor":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        bits = max(ahi.bit_length(), bhi.bit_length())
        r = (max(alo, blo), min(m, (1 << bits) - 1))
    elif op == "bxor":
        (_, ahi) = bv_range(t.args[0], env, _cache)
        (_, bhi) = bv_range(t.args[1], env, _cache)
        bits = max(ahi.bit_length(), bhi.bit_length())
        r = (0, min(m, (1 << bits) - 1))
    elif op == "shl":
        if t.args[1].is_const():
            amount = t.args[1].value % width
            (alo, ahi) = bv_range(t.args[0], env, _cache)
            if (ahi << amount) <= m:
                r = (alo << amount, ahi << amount)
            else:
                r = _full(width)
        else:
            r = _full(width)
    elif op == "lshr":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        if t.args[1].is_const():
            amount = t.args[1].value % width
            r = (alo >> amount, ahi >> amount)
        else:
            r = (0, ahi)
    elif op == "extract":
        hi, lo = t.attr
        (_, ahi) = bv_range(t.args[0], env, _cache)
        sub_m = (1 << (hi - lo + 1)) - 1
        r = (0, min(sub_m, ahi >> lo) if lo == 0 else sub_m)
    elif op == "zext":
        r = bv_range(t.args[0], env, _cache)
    elif op == "concat":
        high, low = t.args
        (hlo, hhi) = bv_range(high, env, _cache)
        (llo, lhi) = bv_range(low, env, _cache)
        r = ((hlo << low.width) + llo, (hhi << low.width) + lhi)
    elif op == "ite":
        (alo, ahi) = bv_range(t.args[1], env, _cache)
        (blo, bhi) = bv_range(t.args[2], env, _cache)
        r = (min(alo, blo), max(ahi, bhi))
    elif op == "udiv":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, _) = bv_range(t.args[1], env, _cache)
        if blo >= 1:
            r = (0, ahi // blo)
        else:
            r = _full(width)  # division by zero gives all-ones
    elif op == "urem":
        (_, ahi) = bv_range(t.args[0], env, _cache)
        (_, bhi) = bv_range(t.args[1], env, _cache)
        r = (0, min(ahi, max(0, bhi - 1)) if bhi > 0 else ahi)
    else:
        r = _full(width)
    _cache[t] = r
    return r


def decide_bool(t: T.Term, env: Optional[Dict[T.Term, Range]] = None,
                _cache: Optional[dict] = None) -> Optional[bool]:
    """Try to decide a boolean term from interval information alone."""
    if _cache is None:
        _cache = {}
    op = t.op
    if op == "const":
        return bool(t.attr)
    if op == "ult":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
        return None
    if op == "eq":
        (alo, ahi) = bv_range(t.args[0], env, _cache)
        (blo, bhi) = bv_range(t.args[1], env, _cache)
        if ahi < blo or bhi < alo:
            return False
        if alo == ahi == blo == bhi:
            return True
        return None
    if op == "not":
        inner = decide_bool(t.args[0], env, _cache)
        return None if inner is None else (not inner)
    if op == "and":
        any_unknown = False
        for arg in t.args:
            d = decide_bool(arg, env, _cache)
            if d is False:
                return False
            if d is None:
                any_unknown = True
        return None if any_unknown else True
    if op == "or":
        any_unknown = False
        for arg in t.args:
            d = decide_bool(arg, env, _cache)
            if d is True:
                return True
            if d is None:
                any_unknown = True
        return None if any_unknown else False
    return None
