"""Unsigned interval and known-bits analysis over terms.

A fast incomplete procedure used as a filter in front of the SAT solver:
compute a conservative unsigned range ``[lo, hi]`` and a known-bits mask
for every bitvector term, then try to refute or prove boolean terms from
those abstractions. Sound for refutation ("definitely false" /
"definitely true"); returns ``None`` when undecided.

Two cooperating lattices:

* **intervals** (`bv_range`): unsigned ``[lo, hi]`` over-approximations --
  precise for arithmetic (``add``/``sub``/``mul``/``udiv``) when nothing
  wraps;
* **known bits** (`KnownBits`, `bv_bits`): per-bit certainty (mask of
  known positions + their values) -- precise for the bitwise and shift
  operators where intervals lose everything.

`bv_range` consults the bit lattice for ``band``/``bor``/``bxor``/
``shl``/``lshr``/``ashr`` so e.g. ``x & 0xF0`` has range ``[0, 0xF0]``
and ``y << 2`` is known 4-aligned. The same lattice is shared by the
static analyzer (`repro.analysis`), which is why it lives here in the
dependency-free logic layer.

Both analyses accept environments pre-seeding facts for subterms (e.g.
mined from symbolic-execution path conditions -- see
`repro.analysis.prescreen`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import terms as T

Range = Tuple[int, int]


def _full(width: int) -> Range:
    return (0, (1 << width) - 1)


class KnownBits:
    """Per-bit knowledge about a ``width``-bit unsigned value.

    ``mask`` has a 1 at every position whose bit is known; ``value``
    carries the known bits (``value & ~mask == 0``). The lattice order is
    by information content: top knows nothing (``mask == 0``).
    """

    __slots__ = ("width", "mask", "value")

    def __init__(self, width: int, mask: int, value: int):
        full = (1 << width) - 1
        self.width = width
        self.mask = mask & full
        self.value = value & self.mask

    # -- constructors --------------------------------------------------------

    @staticmethod
    def top(width: int) -> "KnownBits":
        return KnownBits(width, 0, 0)

    @staticmethod
    def from_const(value: int, width: int) -> "KnownBits":
        full = (1 << width) - 1
        return KnownBits(width, full, value & full)

    @staticmethod
    def from_range(lo: int, hi: int, width: int) -> "KnownBits":
        """Bits shared by every value in ``[lo, hi]``: the common prefix
        above the highest bit where ``lo`` and ``hi`` differ."""
        if lo > hi:  # malformed (contradictory env); know nothing
            return KnownBits.top(width)
        diff = (lo ^ hi).bit_length()
        full = (1 << width) - 1
        mask = full & ~((1 << diff) - 1)
        return KnownBits(width, mask, lo)

    # -- queries -------------------------------------------------------------

    def is_const(self) -> bool:
        return self.mask == (1 << self.width) - 1

    def umin(self) -> int:
        """Smallest value consistent with the known bits."""
        return self.value

    def umax(self) -> int:
        """Largest value consistent with the known bits."""
        return self.value | (((1 << self.width) - 1) & ~self.mask)

    def known_zeros(self) -> int:
        return self.mask & ~self.value

    def known_ones(self) -> int:
        return self.mask & self.value

    def conflicts(self, other: "KnownBits") -> bool:
        """True when no value satisfies both (some bit known with
        different values) -- decides disequality."""
        common = self.mask & other.mask
        return bool((self.value ^ other.value) & common)

    def __repr__(self) -> str:
        return "KnownBits(w=%d, mask=0x%x, value=0x%x)" % (
            self.width, self.mask, self.value)

    # -- lattice -------------------------------------------------------------

    def join(self, other: "KnownBits") -> "KnownBits":
        """Least upper bound: keep bits known (and equal) on both sides."""
        mask = self.mask & other.mask & ~(self.value ^ other.value)
        return KnownBits(self.width, mask, self.value & mask)

    def meet(self, other: "KnownBits") -> "KnownBits":
        """Combine two sound facts about the same value."""
        return KnownBits(self.width, self.mask | other.mask,
                         self.value | other.value)

    # -- transfer functions --------------------------------------------------

    def band(self, other: "KnownBits") -> "KnownBits":
        ones = self.known_ones() & other.known_ones()
        zeros = self.known_zeros() | other.known_zeros()
        return KnownBits(self.width, ones | zeros, ones)

    def bor(self, other: "KnownBits") -> "KnownBits":
        ones = self.known_ones() | other.known_ones()
        zeros = self.known_zeros() & other.known_zeros()
        return KnownBits(self.width, ones | zeros, ones)

    def bxor(self, other: "KnownBits") -> "KnownBits":
        mask = self.mask & other.mask
        return KnownBits(self.width, mask, self.value ^ other.value)

    def bnot(self) -> "KnownBits":
        full = (1 << self.width) - 1
        return KnownBits(self.width, self.mask, ~self.value & full)

    def shl(self, amount: int) -> "KnownBits":
        amount %= self.width
        low = (1 << amount) - 1  # shifted-in zeros are known
        return KnownBits(self.width, (self.mask << amount) | low,
                         self.value << amount)

    def lshr(self, amount: int) -> "KnownBits":
        amount %= self.width
        full = (1 << self.width) - 1
        high = (full >> (self.width - amount)) << (self.width - amount) \
            if amount else 0
        return KnownBits(self.width, (self.mask >> amount) | high,
                         self.value >> amount)

    def ashr(self, amount: int) -> "KnownBits":
        amount %= self.width
        if amount == 0:
            return self
        sign = 1 << (self.width - 1)
        low_w = self.width - amount
        low_mask = (self.mask >> amount) & ((1 << low_w) - 1)
        low_value = (self.value >> amount) & low_mask
        high = ((1 << amount) - 1) << low_w
        if self.mask & sign:  # sign bit known: copies are known too
            mask = low_mask | high
            value = low_value | (high if self.value & sign else 0)
        else:
            mask, value = low_mask, low_value
        return KnownBits(self.width, mask, value)

    def add(self, other: "KnownBits", carry_in: int = 0) -> "KnownBits":
        """Ripple-carry: result bits are known from the LSB up to the
        first position where an operand bit or the carry is unknown."""
        mask = 0
        value = 0
        carry = carry_in
        for i in range(self.width):
            bit = 1 << i
            if not (self.mask & bit and other.mask & bit):
                break
            s = ((self.value >> i) & 1) + ((other.value >> i) & 1) + carry
            if s & 1:
                value |= bit
            mask |= bit
            carry = s >> 1
        return KnownBits(self.width, mask, value)

    def sub(self, other: "KnownBits") -> "KnownBits":
        return self.add(other.bnot(), carry_in=1)

    def mul(self, other: "KnownBits") -> "KnownBits":
        """Only trailing zeros survive: a = a'·2^i, b = b'·2^j means a·b
        is 2^(i+j)-aligned."""
        def trailing_known_zeros(kb: "KnownBits") -> int:
            n = 0
            while n < kb.width and (kb.mask >> n) & 1 and not (kb.value >> n) & 1:
                n += 1
            return n

        if self.is_const() and self.value == 0:
            return self
        if other.is_const() and other.value == 0:
            return other
        tz = trailing_known_zeros(self) + trailing_known_zeros(other)
        tz = min(tz, self.width)
        return KnownBits(self.width, (1 << tz) - 1, 0)

    def zext(self, width: int) -> "KnownBits":
        full = (1 << width) - 1
        high = full & ~((1 << self.width) - 1)
        return KnownBits(width, self.mask | high, self.value)

    def extract(self, hi: int, lo: int) -> "KnownBits":
        width = hi - lo + 1
        return KnownBits(width, self.mask >> lo, self.value >> lo)

    def concat(self, low: "KnownBits") -> "KnownBits":
        """``self`` above ``low``."""
        return KnownBits(self.width + low.width,
                         (self.mask << low.width) | low.mask,
                         (self.value << low.width) | low.value)


BitsEnv = Dict[T.Term, KnownBits]


def bv_bits(t: T.Term, env: Optional[Dict[T.Term, Range]] = None,
            bits_env: Optional[BitsEnv] = None,
            _cache: Optional[dict] = None) -> KnownBits:
    """A sound known-bits over-approximation of the values of ``t``.

    ``bits_env`` may pre-seed bit facts for subterms; ``env`` (ranges, as
    for `bv_range`) is consulted as a secondary source via
    `KnownBits.from_range`.
    """
    if _cache is None:
        _cache = {}
    if t in _cache:
        return _cache[t]
    width = t.width
    seed = None
    if bits_env and t in bits_env:
        seed = bits_env[t]
    op = t.op
    if op == "const":
        r = KnownBits.from_const(t.value, width)
    elif op == "var":
        r = KnownBits.top(width)
    elif op == "band":
        r = bv_bits(t.args[0], env, bits_env, _cache).band(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op == "bor":
        r = bv_bits(t.args[0], env, bits_env, _cache).bor(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op == "bxor":
        r = bv_bits(t.args[0], env, bits_env, _cache).bxor(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op in ("shl", "lshr", "ashr") and t.args[1].is_const():
        a = bv_bits(t.args[0], env, bits_env, _cache)
        amount = t.args[1].value
        r = getattr(a, op)(amount)
    elif op == "add":
        r = bv_bits(t.args[0], env, bits_env, _cache).add(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op == "sub":
        r = bv_bits(t.args[0], env, bits_env, _cache).sub(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op == "mul":
        r = bv_bits(t.args[0], env, bits_env, _cache).mul(
            bv_bits(t.args[1], env, bits_env, _cache))
    elif op == "zext":
        r = bv_bits(t.args[0], env, bits_env, _cache).zext(width)
    elif op == "extract":
        hi, lo = t.attr
        r = bv_bits(t.args[0], env, bits_env, _cache).extract(hi, lo)
    elif op == "concat":
        high, low = t.args
        r = bv_bits(high, env, bits_env, _cache).concat(
            bv_bits(low, env, bits_env, _cache))
    elif op == "ite":
        r = bv_bits(t.args[1], env, bits_env, _cache).join(
            bv_bits(t.args[2], env, bits_env, _cache))
    else:
        r = KnownBits.top(width)
    if seed is not None:
        r = r.meet(seed)
    if env and t in env:
        lo, hi = env[t]
        r = r.meet(KnownBits.from_range(lo, hi, width))
    _cache[t] = r
    return r


def bv_range(t: T.Term, env: Optional[Dict[T.Term, Range]] = None,
             _cache: Optional[dict] = None,
             bits_env: Optional[BitsEnv] = None,
             _bits_cache: Optional[dict] = None) -> Range:
    """A sound unsigned over-approximation of the values of ``t``.

    ``env`` may pre-seed ranges for subterms (e.g. from path conditions);
    ``bits_env`` likewise for known-bits facts. For the bitwise and shift
    operators the result is the intersection of interval reasoning with
    the bounds implied by `bv_bits`.
    """
    if _cache is None:
        _cache = {}
    if env and t in env:
        return env[t]
    if t in _cache:
        return _cache[t]
    if _bits_cache is None:
        _bits_cache = {}

    def rec(s: T.Term) -> Range:
        return bv_range(s, env, _cache, bits_env, _bits_cache)

    width = t.width
    m = (1 << width) - 1
    op = t.op
    bits: Optional[KnownBits] = None
    if op == "const":
        r = (t.value, t.value)
    elif op == "var":
        r = _full(width)
    elif op == "add":
        (alo, ahi) = rec(t.args[0])
        (blo, bhi) = rec(t.args[1])
        if ahi + bhi <= m:
            r = (alo + blo, ahi + bhi)
        else:
            r = _full(width)
    elif op == "sub":
        (alo, ahi) = rec(t.args[0])
        (blo, bhi) = rec(t.args[1])
        if alo - bhi >= 0:
            r = (alo - bhi, ahi - blo)
        else:
            r = _full(width)
    elif op == "mul":
        (alo, ahi) = rec(t.args[0])
        (blo, bhi) = rec(t.args[1])
        if ahi * bhi <= m:
            r = (alo * blo, ahi * bhi)
        else:
            r = _full(width)
    elif op == "band":
        (_, ahi) = rec(t.args[0])
        (_, bhi) = rec(t.args[1])
        r = (0, min(ahi, bhi))
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "bor":
        (alo, ahi) = rec(t.args[0])
        (blo, bhi) = rec(t.args[1])
        nbits = max(ahi.bit_length(), bhi.bit_length())
        r = (max(alo, blo), min(m, (1 << nbits) - 1))
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "bxor":
        (_, ahi) = rec(t.args[0])
        (_, bhi) = rec(t.args[1])
        nbits = max(ahi.bit_length(), bhi.bit_length())
        r = (0, min(m, (1 << nbits) - 1))
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "shl":
        if t.args[1].is_const():
            amount = t.args[1].value % width
            (alo, ahi) = rec(t.args[0])
            if (ahi << amount) <= m:
                r = (alo << amount, ahi << amount)
            else:
                r = _full(width)
        else:
            r = _full(width)
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "lshr":
        (alo, ahi) = rec(t.args[0])
        if t.args[1].is_const():
            amount = t.args[1].value % width
            r = (alo >> amount, ahi >> amount)
        else:
            r = (0, ahi)
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "ashr":
        r = _full(width)
        bits = bv_bits(t, env, bits_env, _bits_cache)
    elif op == "extract":
        hi, lo = t.attr
        (_, ahi) = rec(t.args[0])
        sub_m = (1 << (hi - lo + 1)) - 1
        r = (0, min(sub_m, ahi >> lo) if lo == 0 else sub_m)
    elif op == "zext":
        r = rec(t.args[0])
    elif op == "concat":
        high, low = t.args
        (hlo, hhi) = rec(high)
        (llo, lhi) = rec(low)
        r = ((hlo << low.width) + llo, (hhi << low.width) + lhi)
    elif op == "ite":
        (alo, ahi) = rec(t.args[1])
        (blo, bhi) = rec(t.args[2])
        r = (min(alo, blo), max(ahi, bhi))
    elif op == "udiv":
        (alo, ahi) = rec(t.args[0])
        (blo, _) = rec(t.args[1])
        if blo >= 1:
            r = (0, ahi // blo)
        else:
            r = _full(width)  # division by zero gives all-ones
    elif op == "urem":
        (_, ahi) = rec(t.args[0])
        (_, bhi) = rec(t.args[1])
        r = (0, min(ahi, max(0, bhi - 1)) if bhi > 0 else ahi)
    else:
        r = _full(width)
    if bits is not None and bits.mask:
        # Intersect with the bounds the known bits imply. An empty
        # intersection can only arise from contradictory seeded facts
        # (an infeasible path); any sound answer is acceptable there.
        r = (max(r[0], bits.umin()), min(r[1], bits.umax()))
        if r[0] > r[1]:
            r = (r[0], r[0])
    _cache[t] = r
    return r


def decide_bool(t: T.Term, env: Optional[Dict[T.Term, Range]] = None,
                _cache: Optional[dict] = None,
                bits_env: Optional[BitsEnv] = None,
                _bits_cache: Optional[dict] = None) -> Optional[bool]:
    """Try to decide a boolean term from interval/known-bits information
    alone."""
    if _cache is None:
        _cache = {}
    if _bits_cache is None:
        _bits_cache = {}

    def rng(s: T.Term) -> Range:
        return bv_range(s, env, _cache, bits_env, _bits_cache)

    op = t.op
    if op == "const":
        return bool(t.attr)
    if op == "ult":
        (alo, ahi) = rng(t.args[0])
        (blo, bhi) = rng(t.args[1])
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
        return None
    if op == "eq":
        a, b = t.args
        (alo, ahi) = rng(a)
        (blo, bhi) = rng(b)
        if ahi < blo or bhi < alo:
            return False
        if alo == ahi == blo == bhi:
            return True
        if isinstance(a.sort, tuple):
            abits = bv_bits(a, env, bits_env, _bits_cache)
            bbits = bv_bits(b, env, bits_env, _bits_cache)
            if abits.conflicts(bbits):
                return False
        return None
    if op == "not":
        inner = decide_bool(t.args[0], env, _cache, bits_env, _bits_cache)
        return None if inner is None else (not inner)
    if op == "and":
        any_unknown = False
        for arg in t.args:
            d = decide_bool(arg, env, _cache, bits_env, _bits_cache)
            if d is False:
                return False
            if d is None:
                any_unknown = True
        return None if any_unknown else True
    if op == "or":
        any_unknown = False
        for arg in t.args:
            d = decide_bool(arg, env, _cache, bits_env, _bits_cache)
            if d is True:
                return True
            if d is None:
                any_unknown = True
        return None if any_unknown else False
    return None
