"""Structural simplification beyond the smart constructors.

The dominant shape of verification conditions in this system is *linear*
bitvector arithmetic (address computations: base + 4*i + c) composed with
masks and comparisons. This module normalizes linear subterms into a
canonical sum-of-monomials form so that goals like

    base + 4 + i == i + base + 4          (associativity/commutativity)
    (x + y) - y == x                      (cancellation)

collapse structurally and never reach the SAT solver -- the same division
of labor the paper describes between Coq's ``ring``/``lia``-style tactics
and harder bitvector goals.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import terms as T

# A linear form: (constant, {atom-term: coefficient}) over Z_{2^w}.
Linear = Tuple[int, Dict[T.Term, int]]


def linearize(t: T.Term) -> Linear:
    """Decompose ``t`` into const + sum(coeff * atom) modulo 2^width."""
    m = (1 << t.width) - 1
    if t.is_const():
        return t.value, {}
    if t.op == "add":
        c1, m1 = linearize(t.args[0])
        c2, m2 = linearize(t.args[1])
        return (c1 + c2) & m, _merge(m1, m2, 1, m)
    if t.op == "sub":
        c1, m1 = linearize(t.args[0])
        c2, m2 = linearize(t.args[1])
        return (c1 - c2) & m, _merge(m1, m2, -1, m)
    if t.op == "mul":
        lhs, rhs = t.args
        if rhs.is_const():
            c, mono = linearize(lhs)
            k = rhs.value
            return (c * k) & m, {a: (co * k) & m for a, co in mono.items()
                                 if (co * k) & m != 0}
        if lhs.is_const():
            c, mono = linearize(rhs)
            k = lhs.value
            return (c * k) & m, {a: (co * k) & m for a, co in mono.items()
                                 if (co * k) & m != 0}
    if t.op == "shl" and t.args[1].is_const():
        k = (1 << (t.args[1].value % t.width)) & m
        c, mono = linearize(t.args[0])
        return (c * k) & m, {a: (co * k) & m for a, co in mono.items()
                             if (co * k) & m != 0}
    return 0, {t: 1}


def _merge(m1: Dict[T.Term, int], m2: Dict[T.Term, int], sign: int,
           mask: int) -> Dict[T.Term, int]:
    out = dict(m1)
    for atom, coeff in m2.items():
        new = (out.get(atom, 0) + sign * coeff) & mask
        if new == 0:
            out.pop(atom, None)
        else:
            out[atom] = new
    return out


def rebuild_linear(linear: Linear, width: int) -> T.Term:
    """Rebuild a canonical term from a linear form (atoms sorted by a
    deterministic key so equal forms yield identical terms).

    Coefficients in the upper half of Z_{2^w} are treated as negative and
    rebuilt with subtraction -- ``x - y`` must not become the SAT-hostile
    ``x + 0xFFFFFFFF*y``."""
    const_part, monomials = linear
    items = sorted(monomials.items(), key=lambda kv: (repr(kv[0]), kv[1]))
    half = 1 << (width - 1)
    mask = (1 << width) - 1

    def scaled(atom: T.Term, coeff: int) -> T.Term:
        return atom if coeff == 1 else T.mul(atom, T.const(coeff, width))

    acc: Optional[T.Term] = None
    negatives = []
    for atom, coeff in items:
        if coeff >= half:
            negatives.append((atom, (mask + 1 - coeff) & mask))
            continue
        piece = scaled(atom, coeff)
        acc = piece if acc is None else T.add(acc, piece)
    if acc is None and not negatives:
        return T.const(const_part, width)
    if acc is None:
        acc = T.const(const_part, width)
        const_part = 0
    for atom, coeff in negatives:
        acc = T.sub(acc, scaled(atom, coeff))
    if const_part:
        acc = T.add(acc, T.const(const_part, width))
    return acc


def normalize_bv(t: T.Term) -> T.Term:
    """Canonicalize the linear structure of a bitvector term (recursing
    through non-linear operators)."""
    if t.op in ("const", "var"):
        return t
    if t.op in ("add", "sub", "mul", "shl"):
        lin = linearize(_map_args(t, normalize_bv))
        return rebuild_linear(lin, t.width)
    return _map_args(t, normalize_bv)


def _map_args(t: T.Term, fn) -> T.Term:
    if not t.args:
        return t
    new_args = tuple(fn(a) if isinstance(a.sort, tuple) else simplify(a)
                     for a in t.args)
    if new_args == t.args:
        return t
    return _rebuild(t, new_args)


def _rebuild(t: T.Term, args) -> T.Term:
    op = t.op
    if op in ("add", "sub", "mul", "udiv", "urem", "sdiv", "srem", "band",
              "bor", "bxor", "shl", "lshr", "ashr"):
        return T.bv_binop(op, args[0], args[1])
    if op == "extract":
        hi, lo = t.attr
        return T.extract(args[0], hi, lo)
    if op == "concat":
        return T.concat(args[0], args[1])
    if op == "zext":
        return T.zext(args[0], t.width)
    if op == "sext":
        return T.sext(args[0], t.width)
    if op == "eq":
        return T.eq(args[0], args[1])
    if op == "ult":
        return T.ult(args[0], args[1])
    if op == "slt":
        return T.slt(args[0], args[1])
    if op == "not":
        return T.not_(args[0])
    if op == "and":
        return T.and_(*args)
    if op == "or":
        return T.or_(*args)
    if op == "ite":
        return T.ite(args[0], args[1], args[2])
    raise ValueError("cannot rebuild %r" % op)


def simplify(t: T.Term) -> T.Term:
    """Simplify a boolean term: normalize linear arithmetic inside
    comparisons, cancel equal sides, and fold through the connectives."""
    if t.sort != T.BOOL:
        return normalize_bv(t)
    op = t.op
    if op in ("const", "var"):
        return t
    if op == "eq" and isinstance(t.args[0].sort, tuple):
        width = t.args[0].width
        lhs = normalize_bv(t.args[0])
        rhs = normalize_bv(t.args[1])
        # Move everything to one side: lhs - rhs == 0 in linear form.
        c1, m1 = linearize(lhs)
        c2, m2 = linearize(rhs)
        diff = _merge(m1, m2, -1, (1 << width) - 1)
        dconst = (c1 - c2) & ((1 << width) - 1)
        if not diff:
            return T.bool_const(dconst == 0)
        # Canonical: smallest atom keeps positive side.
        return T.eq(rebuild_linear((0, diff), width),
                    rebuild_linear((( -dconst) & ((1 << width) - 1), {}), width))
    if op in ("ult", "slt"):
        return _rebuild(t, tuple(normalize_bv(a) for a in t.args))
    if op == "eq":  # boolean equality is not in our constructor set
        return _rebuild(t, tuple(simplify(a) for a in t.args))
    if op == "not":
        return T.not_(simplify(t.args[0]))
    if op == "and":
        return T.and_(*(simplify(a) for a in t.args))
    if op == "or":
        return T.or_(*(simplify(a) for a in t.args))
    return t
