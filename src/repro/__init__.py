"""repro: an executable Python reproduction of "Integration Verification
across Software and Hardware for a Simple Embedded System" (PLDI 2021).

The stack, bottom to top (see DESIGN.md for the full inventory):

* `repro.logic`    -- terms, simplifier, SAT solver, bit-blaster (the
                      decision substrate standing in for Coq proof checking)
* `repro.bedrock2` -- the Bedrock2 language: syntax, semantics, program logic
* `repro.riscv`    -- RV32IM: encoding, formal-style semantics, machines
* `repro.compiler` -- the 3-phase verified-style compiler + optimizing baseline
* `repro.kami`     -- rule-based hardware framework, spec + pipelined processors
* `repro.platform` -- device models: MMIO bus, GPIO, SPI, LAN9250, packets
* `repro.sw`       -- the lightbulb application and drivers, plus their specs
* `repro.traces`   -- the trace-predicate specification language
* `repro.core`     -- end-to-end theorem checker, integration checks, evaluation
"""

__version__ = "1.0.0"

__all__ = ["logic", "bedrock2", "riscv", "compiler", "kami", "platform",
           "sw", "traces", "core"]
