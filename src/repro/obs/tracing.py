"""Hierarchical span tracing with Chrome-trace-format JSONL export.

Spans form a tree by nesting (``with tracer.span("solve", "solver"): ...``)
and are recorded as Chrome trace events -- ``ph: "B"``/``"E"`` duration
pairs plus ``ph: "i"`` instants -- which both ``chrome://tracing`` and
Perfetto understand. Export is JSONL (one JSON object per line), the
streaming-friendly variant of the format; see docs/observability.md for
how to open the output.

Each tracer is single-threaded, but traces from worker processes can be
folded into a parent tracer with :meth:`Tracer.absorb`: events carry the
real ``pid`` and worker timestamps are rebased onto the parent's clock
(``time.perf_counter`` is CLOCK_MONOTONIC on Linux, shared across
processes, so the rebase is exact). Timestamps are microseconds relative
to tracer creation.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Optional, Set


class _NullSpan:
    """The disabled-mode span: a shared, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


#: Shared singleton returned whenever tracing is off -- entering and
#: exiting it allocates nothing.
NULL_SPAN = _NullSpan()


class Span:
    """One live span; ``set`` attaches args that appear on the end event."""

    __slots__ = ("tracer", "name", "cat", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict] = None):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, key: str, value) -> None:
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __enter__(self) -> "Span":
        self.tracer.begin(self.name, self.cat, self.args)
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer.end(self.name, self.cat, self.args)
        return False


class Tracer:
    """Collects Chrome trace events in memory; exports JSONL."""

    def __init__(self):
        self._t0 = time.perf_counter()
        self.pid = os.getpid()
        self.events: List[Dict] = []
        self.depth = 0

    @property
    def t0(self) -> float:
        """The perf_counter origin (shipped to the parent for rebasing)."""
        return self._t0

    def _ts(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def span(self, name: str, cat: str = "repro",
             args: Optional[Dict] = None) -> Span:
        return Span(self, name, cat, args)

    def begin(self, name: str, cat: str = "repro",
              args: Optional[Dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "B", "ts": self._ts(),
                 "pid": self.pid, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)
        self.depth += 1

    def end(self, name: str, cat: str = "repro",
            args: Optional[Dict] = None) -> None:
        if self.depth <= 0:
            return  # unbalanced end: drop rather than corrupt the tree
        self.depth -= 1
        event = {"name": name, "cat": cat, "ph": "E", "ts": self._ts(),
                 "pid": self.pid, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(self, name: str, cat: str = "repro",
                args: Optional[Dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "ts": self._ts(),
                 "pid": self.pid, "tid": 1, "s": "t"}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def absorb(self, events: Iterable[Dict], t0: Optional[float] = None,
               pid: Optional[int] = None) -> int:
        """Fold another tracer's events into this one.

        ``t0`` is the source tracer's perf_counter origin; when given,
        timestamps are rebased onto this tracer's timeline (valid because
        perf_counter is a shared monotonic clock across processes on
        Linux). ``pid`` re-stamps the events -- after a fork the worker's
        inherited tracer may carry the parent's pid, and the parent knows
        which worker each result came from. Returns the event count.
        """
        offset = 0.0 if t0 is None else (t0 - self._t0) * 1e6
        n = 0
        for event in events:
            event = dict(event)
            event["ts"] = event["ts"] + offset
            if pid is not None:
                event["pid"] = pid
            self.events.append(event)
            n += 1
        return n

    def categories(self) -> Set[str]:
        return {e["cat"] for e in self.events}

    def span_tree(self) -> List[Dict]:
        """Reconstruct the span forest from B/E events (used by tests and
        the JSONL validator): each node is {name, cat, children}.

        Nesting is tracked per (pid, tid) stream, so a trace holding
        absorbed worker events still reconstructs each process's spans
        correctly rather than threading them through one stack.
        """
        roots: List[Dict] = []
        stacks: Dict[tuple, List[Dict]] = {}
        for event in self.events:
            key = (event.get("pid", 1), event.get("tid", 1))
            stack = stacks.setdefault(key, [])
            if event["ph"] == "B":
                node = {"name": event["name"], "cat": event["cat"],
                        "children": []}
                (stack[-1]["children"] if stack else roots).append(node)
                stack.append(node)
            elif event["ph"] == "E" and stack:
                stack.pop()
        return roots

    def export_jsonl(self, path: str) -> int:
        """Write one JSON trace event per line; returns the event count."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event))
                fh.write("\n")
        return len(self.events)


def load_jsonl(path: str) -> List[Dict]:
    """Parse a JSONL trace back into event dicts (validation helper)."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
