"""Hierarchical span tracing with Chrome-trace-format JSONL export.

Spans form a tree by nesting (``with tracer.span("solve", "solver"): ...``)
and are recorded as Chrome trace events -- ``ph: "B"``/``"E"`` duration
pairs plus ``ph: "i"`` instants -- which both ``chrome://tracing`` and
Perfetto understand. Export is JSONL (one JSON object per line), the
streaming-friendly variant of the format; see docs/observability.md for
how to open the output.

The tracer is single-process/single-thread by design (the whole
verification stack is); ``pid``/``tid`` are constant. Timestamps are
microseconds relative to tracer creation (``time.perf_counter`` based, so
monotonic).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Set


class _NullSpan:
    """The disabled-mode span: a shared, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


#: Shared singleton returned whenever tracing is off -- entering and
#: exiting it allocates nothing.
NULL_SPAN = _NullSpan()


class Span:
    """One live span; ``set`` attaches args that appear on the end event."""

    __slots__ = ("tracer", "name", "cat", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict] = None):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, key: str, value) -> None:
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __enter__(self) -> "Span":
        self.tracer.begin(self.name, self.cat, self.args)
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer.end(self.name, self.cat, self.args)
        return False


class Tracer:
    """Collects Chrome trace events in memory; exports JSONL."""

    def __init__(self):
        self._t0 = time.perf_counter()
        self.events: List[Dict] = []
        self.depth = 0

    def _ts(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def span(self, name: str, cat: str = "repro",
             args: Optional[Dict] = None) -> Span:
        return Span(self, name, cat, args)

    def begin(self, name: str, cat: str = "repro",
              args: Optional[Dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "B", "ts": self._ts(),
                 "pid": 1, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)
        self.depth += 1

    def end(self, name: str, cat: str = "repro",
            args: Optional[Dict] = None) -> None:
        if self.depth <= 0:
            return  # unbalanced end: drop rather than corrupt the tree
        self.depth -= 1
        event = {"name": name, "cat": cat, "ph": "E", "ts": self._ts(),
                 "pid": 1, "tid": 1}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(self, name: str, cat: str = "repro",
                args: Optional[Dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "ts": self._ts(),
                 "pid": 1, "tid": 1, "s": "t"}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def categories(self) -> Set[str]:
        return {e["cat"] for e in self.events}

    def span_tree(self) -> List[Dict]:
        """Reconstruct the span forest from B/E events (used by tests and
        the JSONL validator): each node is {name, cat, children}."""
        roots: List[Dict] = []
        stack: List[Dict] = []
        for event in self.events:
            if event["ph"] == "B":
                node = {"name": event["name"], "cat": event["cat"],
                        "children": []}
                (stack[-1]["children"] if stack else roots).append(node)
                stack.append(node)
            elif event["ph"] == "E" and stack:
                stack.pop()
        return roots

    def export_jsonl(self, path: str) -> int:
        """Write one JSON trace event per line; returns the event count."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event))
                fh.write("\n")
        return len(self.events)


def load_jsonl(path: str) -> List[Dict]:
    """Parse a JSONL trace back into event dicts (validation helper)."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
