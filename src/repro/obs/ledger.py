"""The verification ledger: one structured record per VC obligation.

The metrics registry answers "how much effort did the run spend?"; the
trace answers "when?". The ledger answers the attribution question in
between: *which obligation* cost what, and why. Every call to
``VC.prove`` (and the memory-safety bounds checks the symbolic executor
discharges itself) appends one record carrying:

* ``function``/``seq``/``context`` -- where the obligation sits in the
  verification run (``seq`` is the per-function obligation index, so the
  triple is a stable identity across runs);
* ``loc`` -- the eDSL source location (``file:line``) of the statement
  that raised the obligation, from the builder's frame stamping;
* ``fp`` -- the content-addressed fingerprint of the query formula
  (the same SHA-256 the proof cache keys on), linking the record to
  cache entries and to identical obligations elsewhere;
* ``status``/``tier`` -- proved/refuted/timeout/unprovable, and which
  portfolio tier (or the cache, or the prescreener) settled it;
* ``cache``/``prescreen`` -- hit/miss against the proof cache, and the
  prescreener's discharge reason when it fired;
* ``effort`` -- deterministic solver-effort counters (SAT decisions,
  propagations, conflicts, CNF vars/clauses) attributed to this query.

Records also carry a wall-clock duration and the worker pid, but those
are *volatile*: they differ run to run and worker to worker. The
canonical JSONL export therefore drops them by default, which is what
makes the ledger byte-identical between ``--jobs 1`` and ``--jobs N``
(the dispatcher merges worker records back in task-submission order).
Pass ``volatile=True`` to keep them for profiling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

#: Record keys that legitimately differ between runs and between
#: workers; stripped from the canonical export so ledgers diff clean.
VOLATILE_KEYS = ("wall_us", "pid")

#: The deterministic solver-effort counters attributed per query.
EFFORT_KEYS = ("decisions", "propagations", "conflicts",
               "cnf_vars", "cnf_clauses")


class Ledger:
    """An append-only in-memory list of obligation records."""

    def __init__(self):
        self.records: List[Dict] = []

    def append(self, record: Dict) -> None:
        self.records.append(record)

    def mark(self) -> int:
        """The current length (dispatcher bookmark for worker deltas)."""
        return len(self.records)

    def since(self, mark: int) -> List[Dict]:
        return self.records[mark:]

    def absorb(self, records: Iterable[Dict],
               pid: Optional[int] = None) -> int:
        """Fold worker-side records back in, re-stamping the real pid."""
        n = 0
        for record in records:
            if pid is not None:
                record = dict(record, pid=pid)
            self.records.append(record)
            n += 1
        return n

    def canonical_lines(self, volatile: bool = False) -> List[str]:
        """One sorted-key JSON string per record; volatile keys dropped
        unless asked for. This is the byte-identity surface."""
        lines = []
        for record in self.records:
            if not volatile:
                record = {k: v for k, v in record.items()
                          if k not in VOLATILE_KEYS}
            lines.append(json.dumps(record, sort_keys=True))
        return lines

    def export_jsonl(self, path: str, volatile: bool = False) -> int:
        """Write the ledger as JSONL; returns the record count."""
        lines = self.canonical_lines(volatile=volatile)
        with open(path, "w") as fh:
            for line in lines:
                fh.write(line)
                fh.write("\n")
        return len(lines)


def load_jsonl(path: str) -> List[Dict]:
    """Parse a ledger JSONL file back into record dicts."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
