"""Self-contained HTML report over the observability artifacts.

``python -m repro report`` renders everything a run leaves behind --
the verification ledger (``verify --ledger-out``), the Chrome-trace
span JSONL (``--trace-out``), and the committed bench-history store --
into ONE html file with inline CSS and no external dependencies or
scripts: it opens from a CI artifact download, an email attachment, or
``file://`` with nothing else installed. Interactivity is CSS-only
(hover tooltips via ``title`` attributes); light/dark follows
``prefers-color-scheme``.

Sections (each degrades to a note when its input file is absent):

* KPI tiles: obligation counts, status breakdown, total solver effort;
* the hot-obligation table: top obligations ranked by *deterministic*
  solver effort (conflicts, decisions, CNF clauses -- not wall time, so
  the ranking is identical across ``--jobs`` values), each row linking
  fingerprint -> source location -> tier -> effort;
* discharge-tier breakdown bar;
* the span timeline, one lane per process (worker pids from ``--jobs N``
  runs appear as their own lanes);
* per-category trace-event counts;
* bench-trend sparklines from ``benchmarks/history/``.
"""

from __future__ import annotations

import html
import json
import os
from typing import Dict, List, Optional, Tuple

from . import tracing
from .ledger import load_jsonl as _load_ledger_jsonl

#: Fixed category -> categorical-slot assignment (never cycled; unknown
#: categories wear the muted ink, not a generated hue).
CATEGORY_SLOTS = {
    "solver": 1, "vcgen": 2, "dispatch": 3, "compiler": 4,
    "riscv": 5, "kami": 6, "end2end": 7, "platform": 8,
}

#: Validated categorical palette (light, dark) per slot 1..8.
_SLOT_COLORS = {
    1: ("#2a78d6", "#3987e5"),
    2: ("#eb6834", "#d95926"),
    3: ("#1baf7a", "#199e70"),
    4: ("#eda100", "#c98500"),
    5: ("#e87ba4", "#d55181"),
    6: ("#008300", "#008300"),
    7: ("#4a3aa7", "#9085e9"),
    8: ("#e34948", "#e66767"),
}

_MAX_TIMELINE_SPANS = 4000
_HOT_ROWS = 25

_esc = html.escape


def effort_score(record: Dict) -> int:
    """Deterministic hotness of one obligation: SAT conflicts dominate,
    then decisions, then formula size. No wall-clock term -- the ranking
    must not depend on machine load or worker scheduling."""
    effort = record.get("effort") or {}
    return (effort.get("conflicts", 0) * 10_000
            + effort.get("decisions", 0) * 100
            + effort.get("cnf_clauses", 0))


# ---------------------------------------------------------------- inputs


def _load_ledger(path: Optional[str]) -> Optional[List[Dict]]:
    if not path or not os.path.exists(path):
        return None
    return _load_ledger_jsonl(path)


def _load_trace(path: Optional[str]) -> Optional[List[Dict]]:
    if not path or not os.path.exists(path):
        return None
    return tracing.load_jsonl(path)


def _load_history(history_dir: Optional[str]) -> Dict[str, List[Dict]]:
    """The ``benchmarks/history/`` store: {benchmark: [entries]} (same
    format as benchmarks/history.py, re-read here so the report stays
    importable without the benchmarks directory)."""
    out: Dict[str, List[Dict]] = {}
    if not history_dir or not os.path.isdir(history_dir):
        return out
    for fname in sorted(os.listdir(history_dir)):
        if not fname.endswith(".jsonl"):
            continue
        entries = []
        with open(os.path.join(history_dir, fname)) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and "results" in entry:
                    entries.append(entry)
        if entries:
            out[fname[:-len(".jsonl")]] = entries
    return out


# ------------------------------------------------------------- sections


def _tile(value: str, label: str) -> str:
    return ('<div class="tile"><div class="tile-value">%s</div>'
            '<div class="tile-label">%s</div></div>'
            % (_esc(value), _esc(label)))


def _section_kpis(records: Optional[List[Dict]],
                  events: Optional[List[Dict]]) -> str:
    tiles = []
    if records is not None:
        by_status: Dict[str, int] = {}
        for record in records:
            by_status[record.get("status", "?")] = \
                by_status.get(record.get("status", "?"), 0) + 1
        effort_total = sum((r.get("effort") or {}).get("conflicts", 0)
                           for r in records)
        decisions = sum((r.get("effort") or {}).get("decisions", 0)
                        for r in records)
        distinct = len({r.get("fp") for r in records})
        tiles.append(_tile(str(len(records)), "obligations"))
        tiles.append(_tile(str(by_status.get("proved", 0)), "proved"))
        if by_status.get("timeout"):
            tiles.append(_tile(str(by_status["timeout"]), "timed out"))
        if by_status.get("unprovable"):
            tiles.append(_tile(str(by_status["unprovable"]), "unprovable"))
        tiles.append(_tile(str(distinct), "distinct formulas"))
        tiles.append(_tile("{:,}".format(effort_total), "SAT conflicts"))
        tiles.append(_tile("{:,}".format(decisions), "SAT decisions"))
    if events is not None:
        pids = {e.get("pid") for e in events}
        tiles.append(_tile(str(len(events)), "trace events"))
        tiles.append(_tile(str(len(pids)), "processes"))
    if not tiles:
        return ('<p class="absent">No ledger or trace input found; run '
                '<code>python -m repro verify --ledger-out ledger.jsonl '
                '--trace-out trace.jsonl</code> first.</p>')
    return '<div class="tiles">%s</div>' % "".join(tiles)


def _fp_cell(fp: Optional[str]) -> str:
    if not fp:
        return "&mdash;"
    return '<code class="fp" title="%s">%s</code>' % (_esc(fp), _esc(fp[:12]))


def _section_hot_table(records: Optional[List[Dict]]) -> str:
    if records is None:
        return ('<p class="absent">Ledger file not found &mdash; pass '
                '<code>--ledger</code> or run <code>verify '
                '--ledger-out</code>.</p>')
    ranked = sorted(records, key=lambda r: (-effort_score(r),
                                            r.get("function", ""),
                                            r.get("seq", 0)))
    rows = []
    for record in ranked[:_HOT_ROWS]:
        effort = record.get("effort") or {}
        rows.append(
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>"
            "<td><span class=\"badge badge-%s\">%s</span></td>"
            "<td>%s</td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td></tr>"
            % (_esc(record.get("function") or "?"),
               _esc(record.get("context") or ""),
               _esc(record.get("loc") or "—"),
               _fp_cell(record.get("fp")),
               _esc(record.get("status") or "?"),
               _esc(record.get("status") or "?"),
               _esc(record.get("tier") or "—"),
               "{:,}".format(effort.get("conflicts", 0)),
               "{:,}".format(effort.get("decisions", 0)),
               "{:,}".format(effort.get("cnf_clauses", 0))))
    dropped = len(records) - min(len(records), _HOT_ROWS)
    note = ("<p class=\"note\">Top %d of %d obligations by deterministic "
            "solver effort; %d not shown.</p>"
            % (min(len(records), _HOT_ROWS), len(records), dropped)
            if dropped else "")
    return ("<table><thead><tr><th>function</th><th>context</th>"
            "<th>source</th><th>fingerprint</th><th>status</th>"
            "<th>tier</th><th class=\"num\">conflicts</th>"
            "<th class=\"num\">decisions</th>"
            "<th class=\"num\">cnf clauses</th></tr></thead>"
            "<tbody>%s</tbody></table>%s" % ("".join(rows), note))


_TIER_ORDER = ("prescreen", "cache", "structural", "interval", "sat")
_TIER_SLOT = {"prescreen": 3, "cache": 7, "structural": 1,
              "interval": 4, "sat": 2}


def _section_tiers(records: Optional[List[Dict]]) -> str:
    if records is None:
        return '<p class="absent">Requires the ledger input.</p>'
    counts = {tier: 0 for tier in _TIER_ORDER}
    other = 0
    for record in records:
        tier = record.get("tier")
        if tier in counts:
            counts[tier] += 1
        else:
            other += 1
    total = sum(counts.values()) + other
    if not total:
        return '<p class="absent">No discharged obligations recorded.</p>'
    segments = []
    legend = []
    for tier in _TIER_ORDER:
        n = counts[tier]
        if not n:
            continue
        color = "var(--cat%d)" % _TIER_SLOT[tier]
        segments.append(
            '<div class="seg" style="width:%.2f%%;background:%s" '
            'title="%s: %d obligations (%.0f%%)"></div>'
            % (100.0 * n / total, color, _esc(tier), n, 100.0 * n / total))
        legend.append('<span class="key"><span class="swatch" '
                      'style="background:%s"></span>%s (%d)</span>'
                      % (color, _esc(tier), n))
    if other:
        segments.append('<div class="seg" style="width:%.2f%%;'
                        'background:var(--muted)" title="other: %d"></div>'
                        % (100.0 * other / total, other))
        legend.append('<span class="key"><span class="swatch" '
                      'style="background:var(--muted)"></span>other (%d)'
                      '</span>' % other)
    return ('<div class="stack">%s</div><div class="legend">%s</div>'
            % ("".join(segments), "".join(legend)))


def _pair_spans(events: List[Dict]) -> List[Dict]:
    """Reassemble B/E events into spans with pid/depth/start/duration;
    per-(pid, tid) stacks keep worker lanes independent."""
    spans: List[Dict] = []
    stacks: Dict[Tuple, List[Dict]] = {}
    for event in events:
        key = (event.get("pid", 1), event.get("tid", 1))
        stack = stacks.setdefault(key, [])
        if event["ph"] == "B":
            span = {"name": event.get("name", "?"),
                    "cat": event.get("cat", ""), "pid": key[0],
                    "depth": len(stack), "ts": float(event.get("ts", 0.0)),
                    "dur": None}
            stack.append(span)
        elif event["ph"] == "E" and stack:
            span = stack.pop()
            span["dur"] = float(event.get("ts", span["ts"])) - span["ts"]
            spans.append(span)
    # Unclosed spans are dropped (truncated traces) -- noted by caller.
    return spans


def _span_color(cat: str) -> str:
    slot = CATEGORY_SLOTS.get(cat)
    return "var(--cat%d)" % slot if slot else "var(--muted)"


def _section_timeline(events: Optional[List[Dict]]) -> str:
    if events is None:
        return ('<p class="absent">Trace file not found &mdash; pass '
                '<code>--trace</code> or run with '
                '<code>--trace-out</code>.</p>')
    spans = _pair_spans(events)
    if not spans:
        return '<p class="absent">No complete spans in the trace.</p>'
    dropped = 0
    if len(spans) > _MAX_TIMELINE_SPANS:
        dropped = len(spans) - _MAX_TIMELINE_SPANS
        spans = sorted(spans, key=lambda s: -(s["dur"] or 0.0)
                       )[:_MAX_TIMELINE_SPANS]
    t_lo = min(s["ts"] for s in spans)
    t_hi = max(s["ts"] + (s["dur"] or 0.0) for s in spans)
    width = max(t_hi - t_lo, 1e-9)
    lanes: Dict[int, List[Dict]] = {}
    for span in spans:
        lanes.setdefault(span["pid"], []).append(span)
    parts = []
    row_h = 18
    for pid in sorted(lanes):
        lane = lanes[pid]
        depth = max(s["depth"] for s in lane) + 1
        bars = []
        for span in sorted(lane, key=lambda s: (s["ts"], s["depth"])):
            left = 100.0 * (span["ts"] - t_lo) / width
            pct = max(100.0 * (span["dur"] or 0.0) / width, 0.05)
            bars.append(
                '<div class="bar" style="left:%.3f%%;width:%.3f%%;'
                'top:%dpx;background:%s" title="%s [%s] %.3f ms"></div>'
                % (left, min(pct, 100.0 - left), span["depth"] * row_h,
                   _span_color(span["cat"]), _esc(span["name"]),
                   _esc(span["cat"]), (span["dur"] or 0.0) / 1000.0))
        parts.append(
            '<div class="lane"><div class="lane-label">pid %d</div>'
            '<div class="lane-track" style="height:%dpx">%s</div></div>'
            % (pid, depth * row_h, "".join(bars)))
    cats = sorted({s["cat"] for s in spans},
                  key=lambda c: CATEGORY_SLOTS.get(c, 99))
    legend = "".join('<span class="key"><span class="swatch" '
                     'style="background:%s"></span>%s</span>'
                     % (_span_color(cat), _esc(cat)) for cat in cats)
    note = ("<p class=\"note\">%d longest spans shown; %d shorter spans "
            "omitted.</p>" % (len(spans), dropped)) if dropped else ""
    span_ms = width / 1000.0
    return ('<p class="note">%d spans over %.1f ms across %d process%s '
            '(hover a bar for name and duration).</p>'
            '<div class="timeline">%s</div><div class="legend">%s</div>%s'
            % (len(spans), span_ms, len(lanes),
               "" if len(lanes) == 1 else "es", "".join(parts), legend,
               note))


def _section_trace_stats(events: Optional[List[Dict]]) -> str:
    if events is None:
        return '<p class="absent">Requires the trace input.</p>'
    by_cat: Dict[str, int] = {}
    instants = 0
    for event in events:
        by_cat[event.get("cat", "?")] = by_cat.get(event.get("cat", "?"),
                                                   0) + 1
        if event.get("ph") == "i":
            instants += 1
    rows = "".join(
        '<tr><td><span class="swatch" style="background:%s"></span>'
        "%s</td><td class=\"num\">%d</td></tr>"
        % (_span_color(cat), _esc(cat), n)
        for cat, n in sorted(by_cat.items(), key=lambda kv: -kv[1]))
    return ("<table><thead><tr><th>category</th>"
            "<th class=\"num\">events</th></tr></thead><tbody>%s"
            "</tbody></table><p class=\"note\">%d instant events "
            "(pipeline stalls, squashes, redirects, MMIO, dispatch "
            "tasks) among %d total.</p>" % (rows, instants, len(events)))


def _sparkline(values: List[float], label: str, latest_label: str) -> str:
    """A 12-point inline-SVG sparkline in the series-1 hue with a
    marker + value label on the last point."""
    pts = values[-12:]
    w, h, pad = 220, 44, 4
    lo, hi = min(pts), max(pts)
    spread = (hi - lo) or 1.0
    n = len(pts)
    coords = []
    for i, v in enumerate(pts):
        x = pad + (w - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y = h - pad - (h - 2 * pad) * ((v - lo) / spread)
        coords.append((x, y))
    poly = " ".join("%.1f,%.1f" % c for c in coords)
    last_x, last_y = coords[-1]
    return ('<div class="spark"><div class="spark-name">%s</div>'
            '<svg width="%d" height="%d" role="img" aria-label="%s">'
            '<polyline points="%s" fill="none" stroke="var(--series-1)" '
            'stroke-width="2"/>'
            '<circle cx="%.1f" cy="%.1f" r="3" fill="var(--series-1)"/>'
            "</svg><div class=\"spark-value\">%s</div></div>"
            % (_esc(label), w, h, _esc(label), poly, last_x, last_y,
               _esc(latest_label)))


def _section_history(history: Dict[str, List[Dict]]) -> str:
    if not history:
        return ('<p class="absent">No bench history found &mdash; append '
                'runs with <code>python benchmarks/check_regression.py '
                'BENCH_*.json --update-history</code>.</p>')
    sparks = []
    for benchmark in sorted(history):
        entries = history[benchmark]
        series: Dict[str, List[float]] = {}
        for entry in entries:
            for name, wall in (entry.get("results") or {}).items():
                series.setdefault(name, []).append(float(wall))
        for name in sorted(series):
            values = series[name]
            sparks.append(_sparkline(
                values, "%s / %s" % (benchmark, name),
                "%.2fs over %d run%s" % (values[-1], len(values),
                                         "" if len(values) == 1 else "s")))
    return '<div class="sparks">%s</div>' % "".join(sparks)


# ----------------------------------------------------------------- page


_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a; --cat4: #eda100;
  --cat5: #e87ba4; --cat6: #008300; --cat7: #4a3aa7; --cat8: #e34948;
  --good: #0ca30c; --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70; --cat4: #c98500;
    --cat5: #d55181; --cat6: #008300; --cat7: #9085e9; --cat8: #e66767;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 12px; color: var(--ink); }
.subtitle { color: var(--ink-2); margin: 0 0 20px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 20px; }
.tile-value { font-size: 24px; font-weight: 600; }
.tile-label { color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--muted); font-weight: 500;
  font-size: 12px; border-bottom: 1px solid var(--grid); padding: 4px 8px; }
td { padding: 4px 8px; border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
th.num, td.num { text-align: right;
  font-variant-numeric: tabular-nums; }
code, .fp { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
  font-size: 12px; color: var(--ink-2); }
.badge { font-size: 11px; padding: 1px 7px; border-radius: 9px;
  border: 1px solid var(--border); color: var(--ink-2); }
.badge-proved { color: var(--good); border-color: var(--good); }
.badge-timeout { color: var(--bad); border-color: var(--bad); }
.badge-unprovable { color: var(--bad); border-color: var(--bad); }
.stack { display: flex; height: 22px; border-radius: 4px;
  overflow: hidden; gap: 2px; background: var(--page); }
.seg { height: 100%; }
.legend { margin-top: 10px; color: var(--ink-2); font-size: 12px;
  display: flex; flex-wrap: wrap; gap: 14px; }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 2px; }
.timeline { border: 1px solid var(--grid); border-radius: 6px;
  padding: 8px; overflow: hidden; }
.lane { display: flex; gap: 8px; padding: 4px 0;
  border-bottom: 1px solid var(--grid); }
.lane:last-child { border-bottom: none; }
.lane-label { flex: 0 0 64px; color: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
.lane-track { position: relative; flex: 1 1 auto; min-height: 18px; }
.bar { position: absolute; height: 14px; border-radius: 3px;
  min-width: 1px; }
.note { color: var(--muted); font-size: 12px; margin: 8px 0 0; }
.absent { color: var(--muted); font-style: italic; }
.sparks { display: flex; flex-wrap: wrap; gap: 18px; }
.spark-name { font-size: 12px; color: var(--ink-2); }
.spark-value { font-size: 12px; color: var(--ink);
  font-variant-numeric: tabular-nums; }
footer { color: var(--muted); font-size: 12px; margin-top: 20px; }
"""


def _load_fleet(path: Optional[str]) -> Optional[Dict]:
    """A fleet report from ``python -m repro fleet --json`` (None when
    the file is absent or not a fleet report)."""
    if not path or not os.path.isfile(path):
        return None
    try:
        with open(path) as fh:
            report = json.load(fh)
    except ValueError:
        return None
    if not isinstance(report, dict) or "summary" not in report \
            or "nodes" not in report:
        return None
    return report


def _section_fleet(fleet: Optional[Dict]) -> str:
    if fleet is None:
        return ('<p class="absent">Fleet report not found &mdash; run '
                '<code>python -m repro fleet --json fleet.json</code> '
                'and pass <code>--fleet</code>.</p>')
    summary = fleet.get("summary", {})
    config = fleet.get("config", {})
    switch = fleet.get("fabric", {}).get("switch", {})
    tiles = [
        _tile("%d/%d" % (summary.get("nodes_ok", 0),
                         summary.get("nodes", 0)), "nodes within spec"),
        _tile(str(summary.get("violations", 0)), "spec violations"),
        _tile(str(summary.get("frames_offered", 0)), "frames offered"),
        _tile(str(switch.get("frames_in", 0)), "frames switched"),
        _tile(str(switch.get("queue_overflows", 0)), "queue overflows"),
        _tile(str(summary.get("nic_dropped", 0)), "NIC drops"),
        _tile("{:,}".format(summary.get("instructions", 0)),
              "instructions"),
        _tile(str(summary.get("spec_checks", 0)), "spec checks"),
    ]
    rows = []
    for node in fleet.get("nodes", []):
        status = "ok" if node.get("ok") else "FAIL"
        rows.append(
            "<tr><td>%s</td><td>%s</td><td><code>%s</code></td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td>"
            "<td><span class=\"badge badge-%s\">%s</span></td></tr>"
            % (_esc(str(node.get("node", "?"))),
               _esc(node.get("kind") or "?"),
               _esc(node.get("mac") or "?"),
               "{:,}".format(node.get("instructions", 0)),
               str(node.get("frames_delivered", 0)),
               str(node.get("frames_accepted", 0)),
               str(node.get("nic_dropped", 0)),
               str(node.get("actuations", 0)),
               "proved" if node.get("ok") else "timeout",
               _esc(status)))
    links = []
    for port in switch.get("ports", []):
        link = port.get("link", {})
        if not link.get("offered"):
            continue
        links.append(
            "<tr><td>%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td></tr>"
            % (_esc(port.get("name") or "?"),
               str(link.get("offered", 0)), str(link.get("dropped", 0)),
               str(link.get("duplicated", 0)),
               str(link.get("corrupted", 0)),
               str(link.get("reordered", 0)),
               str(port.get("overflows", 0))))
    note = ("<p class=\"note\">%s node(s), %s units, profile "
            "<code>%s</code>, seed %s &mdash; per-link fault accounting "
            "below.</p>"
            % (_esc(str(config.get("nodes", "?"))),
               _esc(str(config.get("duration", "?"))),
               _esc(str(config.get("profile", "?"))),
               _esc(str(config.get("seed", "?")))))
    return ('<div class="tiles">%s</div>%s'
            "<table><thead><tr><th>node</th><th>kind</th><th>mac</th>"
            "<th class=\"num\">instructions</th>"
            "<th class=\"num\">delivered</th><th class=\"num\">accepted</th>"
            "<th class=\"num\">NIC drops</th>"
            "<th class=\"num\">actuations</th><th>status</th></tr></thead>"
            "<tbody>%s</tbody></table>"
            "<table><thead><tr><th>link</th><th class=\"num\">offered</th>"
            "<th class=\"num\">dropped</th><th class=\"num\">duplicated</th>"
            "<th class=\"num\">corrupted</th><th class=\"num\">reordered</th>"
            "<th class=\"num\">queue overflows</th></tr></thead>"
            "<tbody>%s</tbody></table>"
            % ("".join(tiles), note, "".join(rows), "".join(links)))


def _load_wcet(path: Optional[str]) -> Optional[Dict]:
    """A timing artifact from ``python -m repro wcet --json`` (None when
    the file is absent or not a wcet artifact)."""
    if not path or not os.path.isfile(path):
        return None
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except ValueError:
        return None
    if not isinstance(doc, dict) or doc.get("format") != "repro-wcet":
        return None
    return doc


def _section_wcet(wcet: Optional[Dict]) -> str:
    if wcet is None:
        return ('<p class="absent">Timing artifact not found &mdash; run '
                '<code>python -m repro wcet --json wcet.json</code> '
                'and pass <code>--wcet</code>.</p>')
    tight = wcet.get("tightness") or {}
    drift = wcet.get("drift") or []
    tiles = [
        _tile(str(tight.get("mean", "&mdash;")), "mean WCET tightness"),
        _tile(str(tight.get("max", "&mdash;")), "max WCET tightness"),
        _tile("%s/%s" % (tight.get("proved", 0), tight.get("seeds", 0)),
              "fuzz programs proved"),
        _tile("sound" if tight.get("sound") else "VIOLATED",
              "measured &le; static"),
        _tile(str(len(drift)), "cost-model drift findings"),
    ]
    rows = []
    for name, app in sorted((wcet.get("apps") or {}).items()):
        report = app.get("report", {})
        budgets = app.get("budgets", {})
        over = app.get("budget_findings", [])
        n_findings = len(report.get("findings", []))

        def cell(key: str, budget_key: str) -> str:
            value = report.get(key)
            budget = budgets.get(budget_key)
            shown = "{:,}".format(value) if isinstance(value, int) \
                else "&mdash;"
            if isinstance(value, int) and isinstance(budget, int):
                shown += " / {:,}".format(budget)
            return shown

        status = "proved" if not (n_findings or over) else "timeout"
        label = "proved" if not (n_findings or over) else "FAIL"
        rows.append(
            "<tr><td>%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%s</td><td class=\"num\">%s</td>"
            "<td class=\"num\">%d</td>"
            "<td><span class=\"badge badge-%s\">%s</span></td></tr>"
            % (_esc(name), cell("startup_cycles", "startup_cycles"),
               cell("iteration_cycles", "iteration_cycles"),
               cell("stack_bound", "stack_bytes"), n_findings,
               status, label))
    note = ("<p class=\"note\">Static bounds are in successful "
            "pipeline-rule firings (the repo's cycle currency); "
            "tightness = static bound / measured worst case on "
            "generated programs. Cells show bound / budget.</p>")
    return ('<div class="tiles">%s</div>%s'
            "<table><thead><tr><th>app</th>"
            "<th class=\"num\">startup (firings)</th>"
            "<th class=\"num\">per-iteration (firings)</th>"
            "<th class=\"num\">stack (bytes)</th>"
            "<th class=\"num\">findings</th><th>status</th></tr></thead>"
            "<tbody>%s</tbody></table>"
            % ("".join(tiles), note, "".join(rows)))


def build_report(ledger_path: Optional[str] = None,
                 trace_path: Optional[str] = None,
                 history_dir: Optional[str] = None,
                 fleet_path: Optional[str] = None,
                 wcet_path: Optional[str] = None,
                 title: str = "repro verification report") -> str:
    """Render the report; every input is optional and a missing file
    degrades to an in-page note so the command never fails on partial
    artifacts."""
    records = _load_ledger(ledger_path)
    events = _load_trace(trace_path)
    history = _load_history(history_dir)
    fleet = _load_fleet(fleet_path)
    wcet = _load_wcet(wcet_path)

    inputs = []
    for label, path, present in (
            ("ledger", ledger_path, records is not None),
            ("trace", trace_path, events is not None),
            ("fleet", fleet_path, fleet is not None),
            ("wcet", wcet_path, wcet is not None),
            ("history", history_dir, bool(history))):
        if path:
            inputs.append("%s: %s%s" % (label, path,
                                        "" if present else " (absent)"))
    subtitle = " &middot; ".join(_esc(part) for part in inputs) or \
        "no inputs provided"

    def card(heading: str, body: str) -> str:
        return '<div class="card"><h2>%s</h2>%s</div>' % (_esc(heading),
                                                          body)

    body = [
        "<h1>%s</h1>" % _esc(title),
        '<p class="subtitle">%s</p>' % subtitle,
        card("Run at a glance", _section_kpis(records, events)),
        card("Hot obligations", _section_hot_table(records)),
        card("Discharge tiers", _section_tiers(records)),
        card("Span timeline", _section_timeline(events)),
        card("Trace events by layer", _section_trace_stats(events)),
        card("Fleet under adversarial links", _section_fleet(fleet)),
        card("Static timing &amp; stack bounds", _section_wcet(wcet)),
        card("Bench trends", _section_history(history)),
        "<footer>Generated by <code>python -m repro report</code> "
        "&mdash; self-contained, no scripts, no external assets.</footer>",
    ]
    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">\n"
            "<title>%s</title>\n<style>%s</style>\n</head>\n<body>\n"
            "%s\n</body>\n</html>\n"
            % (_esc(title), _CSS, "\n".join(body)))
