"""Unified observability for the verification stack.

One place to see where time and work go, across all layers:

* **metrics** (`repro.obs.metrics`): a process-wide registry of counters,
  gauges and histograms. Coarse counters (solver-tier outcomes, VCs
  proved, instructions retired, MMIO events, pipeline stalls) are always
  collected -- they are batched at natural boundaries (end of a solver
  query, end of a `run` call) so the per-event cost is a local integer
  increment at most.
* **tracing** (`repro.obs.tracing`): hierarchical spans exported as
  Chrome-trace-format JSONL for ``chrome://tracing`` / Perfetto.
* **the verification ledger** (`repro.obs.ledger`): one structured
  record per VC obligation -- fingerprint, source location, solver tier,
  effort counters -- exported as deterministic JSONL.
* **profiling hooks**: the `timed` decorator, a per-call histogram + span.

Fine-grained instrumentation (spans, per-opcode execution counts,
per-rule firing counts) is **off by default**, gated by the module-level
`ENABLED` flag: hot paths check ``obs.ENABLED`` once per batch and the
disabled branch allocates nothing (spans come from a shared null
singleton, no closures are created).

Usage::

    from repro import obs
    obs.enable()                      # turn on spans + fine-grained counts
    ... run a workload ...
    print(obs.REGISTRY.render())      # the `python -m repro stats` view
    obs.export_trace("trace.jsonl")   # open in Perfetto

CLI surface: ``python -m repro stats``, ``--trace-out FILE.jsonl`` on the
workload subcommands, ``verify --ledger-out FILE.jsonl``, and
``python -m repro report`` to render everything into one HTML file.
"""

from __future__ import annotations

import functools
import time
from typing import Dict, Optional

from .ledger import Ledger
from .metrics import Counter, Gauge, Histogram, Registry, REGISTRY
from .tracing import NULL_SPAN, Span, Tracer, load_jsonl

__all__ = [
    "Counter", "Gauge", "Histogram", "Registry", "REGISTRY",
    "Tracer", "NULL_SPAN", "load_jsonl", "Ledger",
    "ENABLED", "enable", "disable", "enabled", "reset",
    "counter", "gauge", "histogram",
    "tracer", "span", "instant", "export_trace", "timed",
    "enable_ledger", "disable_ledger", "ledger", "export_ledger",
]

#: Master switch for fine-grained instrumentation. Instrumented modules
#: read this as ``obs.ENABLED`` (attribute access, so rebinding is seen).
ENABLED = False

_TRACER: Optional[Tracer] = None
_LEDGER: Optional[Ledger] = None

# Registry conveniences (get-or-create on the default registry).
counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram


def enable(trace: bool = True) -> None:
    """Turn on fine-grained instrumentation; with ``trace``, start a
    fresh tracer collecting spans."""
    global ENABLED, _TRACER
    ENABLED = True
    if trace:
        _TRACER = Tracer()


def disable() -> None:
    """Turn fine-grained instrumentation off (the default state).

    The tracer (and its collected events) and the ledger are dropped;
    coarse counters keep accumulating -- use `reset` to zero them."""
    global ENABLED, _TRACER, _LEDGER
    ENABLED = False
    _TRACER = None
    _LEDGER = None


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Zero all metrics and restart the tracer/ledger if active."""
    global _TRACER, _LEDGER
    REGISTRY.reset()
    if _TRACER is not None:
        _TRACER = Tracer()
    if _LEDGER is not None:
        _LEDGER = Ledger()


def tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, cat: str = "repro", args: Optional[Dict] = None):
    """A span context manager; the shared null span when tracing is off."""
    if _TRACER is None:
        return NULL_SPAN
    return _TRACER.span(name, cat, args)


def instant(name: str, cat: str = "repro",
            args: Optional[Dict] = None) -> None:
    if _TRACER is not None:
        _TRACER.instant(name, cat, args)


def export_trace(path: str) -> int:
    """Write the active tracer's events as Chrome-trace JSONL; returns the
    event count (0 when tracing was never enabled)."""
    if _TRACER is None:
        return 0
    return _TRACER.export_jsonl(path)


def enable_ledger() -> None:
    """Start a fresh verification ledger; `vcgen` appends one record per
    obligation while one is active. Independent of `enable`/`ENABLED` --
    ledger recording is per-obligation (not per-event), so it is cheap
    enough to run without the fine-grained instrumentation."""
    global _LEDGER
    _LEDGER = Ledger()


def disable_ledger() -> None:
    global _LEDGER
    _LEDGER = None


def ledger() -> Optional[Ledger]:
    return _LEDGER


def export_ledger(path: str, volatile: bool = False) -> int:
    """Write the active ledger as JSONL (canonical form unless
    ``volatile``); returns the record count (0 when no ledger active)."""
    if _LEDGER is None:
        return 0
    return _LEDGER.export_jsonl(path, volatile=volatile)


def timed(name: str, cat: str = "repro"):
    """Profiling hook: when observability is enabled, time each call of
    the decorated function into histogram ``<name>.seconds`` and emit a
    span; when disabled, the only cost is one flag check."""
    def decorate(fn):
        hist = histogram(name + ".seconds")

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            with span(name, cat):
                result = fn(*args, **kwargs)
            hist.record(time.perf_counter() - t0)
            return result

        return wrapper
    return decorate
