"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer (`repro.obs`):
every layer of the stack reports what it *did* (SAT decisions, VCs proved,
instructions retired, pipeline stalls, ...) into one process-wide
`Registry`, surfaced by ``python -m repro stats`` and exported alongside
benchmark records.

Design constraints (see docs/observability.md):

* **cheap**: a counter increment is one attribute add on a pre-bound
  object; instrumented code holds module-level references to its metrics
  so the hot path never does a registry lookup;
* **reset-in-place**: `Registry.reset` zeroes metrics without replacing
  the objects, so pre-bound references never go stale;
* **no dependencies**: plain dicts and ints, importable from anywhere in
  the stack without cycles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return "Counter(%s=%r)" % (self.name, self.value)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A distribution summary: count/sum/min/max plus power-of-two buckets.

    ``buckets[e]`` counts samples whose value is in ``(2**(e-1), 2**e]``
    (sample 0 and negatives land in bucket 0). Exact enough for latency
    and size distributions without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            exponent = 0
        else:
            exponent = max(0, math.ceil(math.log2(value)))
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, count: int, total: Number,
              mn: Optional[Number], mx: Optional[Number],
              buckets: Dict[int, int]) -> None:
        """Fold another histogram's summary into this one.

        Used by the dispatcher to merge worker-side observations back into
        the parent registry. ``mn``/``mx`` are the other histogram's
        extremes -- real observed samples, so taking the batch-wide
        min/max stays exact even though individual samples are gone.
        """
        if count == 0:
            return
        self.count += count
        self.total += total
        if mn is not None and (self.min is None or mn < self.min):
            self.min = mn
        if mx is not None and (self.max is None or mx > self.max):
            self.max = mx
        for exponent, n in buckets.items():
            exponent = int(exponent)
            self.buckets[exponent] = self.buckets.get(exponent, 0) + n

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    def __repr__(self) -> str:
        return ("Histogram(%s: n=%d mean=%g min=%r max=%r)"
                % (self.name, self.count, self.mean, self.min, self.max))


class Registry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError("metric %r already registered as %s"
                            % (name, type(metric).__name__))
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        """Zero every metric in place (pre-bound references stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """Flat name -> value dict (histograms become summary sub-dicts)."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            if not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {"count": metric.count, "sum": metric.total,
                             "mean": metric.mean, "min": metric.min,
                             "max": metric.max}
            else:
                out[name] = metric.value
        return out

    def render(self, prefix: str = "", skip_zero: bool = True) -> str:
        """A human-readable table of the current metric values."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            if not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                if skip_zero and metric.count == 0:
                    continue
                lines.append("%-44s n=%-8d mean=%-12.6g min=%-10g max=%g"
                             % (name, metric.count, metric.mean,
                                metric.min or 0, metric.max or 0))
            else:
                if skip_zero and not metric.value:
                    continue
                value = metric.value
                if isinstance(value, float):
                    lines.append("%-44s %.6g" % (name, value))
                else:
                    lines.append("%-44s %d" % (name, value))
        return "\n".join(lines)


#: The process-wide default registry all layers report into.
REGISTRY = Registry()
