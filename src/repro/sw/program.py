"""Assembly of the complete lightbulb program and platform harnesses.

``lightbulb_program()`` is the paper's three source files linked into one
Bedrock2 program; `make_platform` wires up the device models (SPI + LAN9250
+ GPIO on the MMIO bus) so the same binary can run on the Bedrock2
interpreter, the ISA-level machine, the single-cycle Kami spec, and the
pipelined Kami processor -- the four rungs of the verified stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bedrock2.ast_ import Program
from ..bedrock2.semantics import MMIOExtHandler
from ..compiler import CompiledProgram, compile_program
from ..platform.bus import KamiWorldAdapter, MMIOBus
from ..platform.gpio import Gpio
from ..platform.lan9250 import Lan9250
from ..platform.spi import Spi
from . import lan9250_driver, lightbulb, spi_driver


def lightbulb_program(buggy_driver: bool = False) -> Program:
    """The full application+drivers program (optionally with the prototype's
    missing-length-check bug for the negative demonstrations)."""
    program: Program = {}
    program.update(spi_driver.functions())
    program.update(lan9250_driver.functions(buggy=buggy_driver))
    program.update(lightbulb.functions())
    return program


@dataclass
class Platform:
    """One instantiation of the demo hardware (Figure 2)."""

    bus: MMIOBus
    gpio: Gpio
    spi: Spi
    lan: Lan9250

    def ext_handler(self) -> MMIOExtHandler:
        """External-call semantics for the Bedrock2 interpreter."""
        return MMIOExtHandler(self.bus)

    def kami_world(self) -> KamiWorldAdapter:
        """External world for the Kami processors."""
        return KamiWorldAdapter(self.bus)


def make_platform(power_up_reads: int = 3, rx_latency: int = 1,
                  max_frame: int = 2048) -> Platform:
    gpio = Gpio()
    lan = Lan9250(power_up_reads=power_up_reads, max_frame=max_frame)
    spi = Spi(slave=lan, rx_latency=rx_latency)
    bus = MMIOBus([gpio, spi])
    return Platform(bus=bus, gpio=gpio, spi=spi, lan=lan)


_COMPILED_CACHE = {}


def compiled_lightbulb(buggy_driver: bool = False,
                       stack_top: int = 1 << 20) -> CompiledProgram:
    """The lightbulb binary (``instrencode lightbulb_insts`` of §5.9)."""
    key = (buggy_driver, stack_top)
    if key not in _COMPILED_CACHE:
        _COMPILED_CACHE[key] = compile_program(
            lightbulb_program(buggy_driver=buggy_driver), entry="main",
            stack_top=stack_top)
    return _COMPILED_CACHE[key]
