"""Program-logic verification of the lightbulb software (paper Fig. 3,
"verification conditions" / "program logic" layers).

Each driver function is verified *modularly* against the Bedrock2 program
logic (`repro.bedrock2.vcgen`): callees are summarized by `Contract`s, so
re-verifying one function never revisits the others -- the paper's central
modularity discipline. What is established per function:

* **memory safety**: every load/store provably lands inside an owned
  region and is aligned (the famous obligation here is ``lan9250_drain``'s
  "frame fits in the 1520-byte buffer" -- the missing check in the
  prototype made it remotely exploitable, and `verify_drain_buggy_fails`
  shows the obligation is unprovable without it);
* **external-call validity**: every MMIO access provably targets a
  word-aligned address in the platform's MMIO ranges (``vcextern``);
* **total correctness of loops**: every polling loop carries an invariant
  and a strictly-decreasing unsigned measure (the timeout counters);
* **trace shape**: every event a loop emits satisfies its declared filter,
  and straight-line code's symbolic trace is checked against the shape the
  trace specification (`repro.sw.specs`) assigns to it;
* **functional postconditions**: e.g. SPI routines return ``busy`` in
  {0, 2^32-1}, the receive path returns ``num_bytes <= 1520`` on success.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..bedrock2.ast_ import Cmd, Function, Program, SIf, SSeq, SStackalloc, SWhile
from ..bedrock2.extspec import MMIOSpec
from ..bedrock2.vcgen import (
    Contract,
    FunctionSpec,
    LoopSpec,
    Region,
    SymEvent,
    TraceHole,
    VerificationError,
    VerifyReport,
    verify_function,
)
from ..logic import solver as S
from ..logic import terms as T
from ..platform.bus import MMIO_RANGES
from . import constants as C
from .program import lightbulb_program

WORD0 = T.const(0)
ZERO32 = T.const(0)
ALLONES = T.const(0xFFFFFFFF)


def platform_mmio_spec() -> MMIOSpec:
    return MMIOSpec(MMIO_RANGES)


# -- AST surgery: attach loop specs without duplicating driver sources -------------

def attach_loop_specs(fn: Function, specs: List[LoopSpec]) -> Function:
    """Return ``fn`` with its while-loops (in preorder) annotated."""
    remaining = list(specs)

    def walk(c: Cmd) -> Cmd:
        if isinstance(c, SWhile):
            spec = remaining.pop(0) if remaining else None
            return SWhile(c.cond, walk(c.body), spec=spec)
        if isinstance(c, SSeq):
            return SSeq(walk(c.first), walk(c.rest))
        if isinstance(c, SIf):
            return SIf(c.cond, walk(c.then_), walk(c.else_))
        if isinstance(c, SStackalloc):
            return SStackalloc(c.name, c.nbytes, walk(c.body))
        return c

    new_body = walk(fn.body)
    if remaining:
        raise ValueError("more loop specs than loops in %s" % fn.name)
    return Function(fn.name, fn.params, fn.rets, new_body, spec=fn.spec)


# -- event filters (trace-shape obligations for polling loops) ----------------------

def _is_const(term: T.Term, value: int) -> bool:
    return term.is_const() and term.value == value


def spi_poll_filter(register_addr: int, may_write: bool):
    """Events allowed inside an SPI polling loop: reads of the polled
    register, plus (for the write loop) the final TXDATA store."""

    def check(vc, state, event, ctx):
        if not isinstance(event, SymEvent):
            raise VerificationError(ctx, "unexpected trace element %r" % (event,))
        if event.action == "MMIOREAD":
            if not _is_const(event.args[0], register_addr):
                raise VerificationError(
                    ctx, "poll loop read unexpected address %r" % (event.args[0],))
            return
        if may_write and event.action == "MMIOWRITE":
            if not _is_const(event.args[0], register_addr):
                raise VerificationError(
                    ctx, "poll loop wrote unexpected address %r" % (event.args[0],))
            return
        raise VerificationError(ctx, "poll loop performed %r" % (event.action,))

    return check


def call_hole_filter(*tags: str):
    """Loops whose bodies only act through verified callees: the trace
    contribution must consist of the callees' summarized holes."""

    def check(vc, state, event, ctx):
        if isinstance(event, TraceHole) and event.tag in tags:
            return
        raise VerificationError(ctx, "loop emitted %r, expected holes %r"
                                % (event, tags))

    return check


# -- common postcondition helpers ----------------------------------------------------

def _assume_bool_flag(vc, state, term: T.Term) -> None:
    state.assume(T.or_(T.eq(term, ZERO32), T.eq(term, ALLONES)))


def _prove_bool_flag(vc, state, term: T.Term, ctx: str) -> None:
    vc.prove(state, T.or_(T.eq(term, ZERO32), T.eq(term, ALLONES)), ctx)


# -- contracts (modular summaries) ------------------------------------------------------

def make_contracts() -> Dict[str, Contract]:
    def spi_write_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[0])

    def spi_read_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[1])
        state.assume(T.ule(rets[0], T.const(0xFF)))

    def spi_xchg_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[1])
        state.assume(T.ule(rets[0], T.const(0xFF)))

    def readword_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[1])

    def writeword_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[0])

    def drain_pre(vc, state, args, ctx):
        # The caller must establish the famous bound: at most the buffer.
        buf, n = args
        region = state.regions.get("buf")
        if region is None:
            raise VerificationError(ctx, "no buffer region for drain")
        vc.prove(state, T.eq(buf, region.base), ctx + "/buf-is-region")
        vc.prove(state, T.ule(n, T.const(C.RX_BUFFER_BYTES)), ctx + "/fits")

    def drain_post(vc, state, args, rets, ctx):
        _assume_bool_flag(vc, state, rets[0])

    def tryrecv_post(vc, state, args, rets, ctx):
        num_bytes, err = rets
        state.assume(T.ule(num_bytes, T.const(0x3FFF)))
        state.assume(T.or_(T.eq(err, ZERO32),
                           T.eq(err, T.const(C.ERR_OVERSIZE)),
                           T.eq(err, ALLONES),
                           T.eq(err, T.const(C.ERR_TIMEOUT))))

    def init_post(vc, state, args, rets, ctx):
        pass

    def hole(tag):
        return lambda args, rets: [TraceHole(tag)]

    return {
        "spi_write": Contract("spi_write", post=spi_write_post,
                              trace_effect=hole("spi_write")),
        "spi_read": Contract("spi_read", post=spi_read_post,
                             trace_effect=hole("spi_read")),
        "spi_xchg": Contract("spi_xchg", post=spi_xchg_post,
                             trace_effect=hole("spi_xchg")),
        "lan9250_readword": Contract("lan9250_readword", post=readword_post,
                                     trace_effect=hole("lan9250_readword")),
        "lan9250_writeword": Contract("lan9250_writeword", post=writeword_post,
                                      trace_effect=hole("lan9250_writeword")),
        "lan9250_wait_for_boot": Contract(
            "lan9250_wait_for_boot",
            post=lambda vc, state, args, rets, ctx:
            _assume_bool_flag(vc, state, rets[0])
            if False else state.assume(
                T.or_(T.eq(rets[0], ZERO32), T.eq(rets[0], T.const(C.ERR_TIMEOUT)))),
            trace_effect=hole("lan9250_wait_for_boot")),
        "lan9250_init": Contract("lan9250_init", post=init_post,
                                 trace_effect=hole("lan9250_init")),
        "lan9250_drain": Contract("lan9250_drain", pre=drain_pre,
                                  post=drain_post,
                                  modified_regions=("buf",),
                                  trace_effect=hole("lan9250_drain")),
        "lan9250_tryrecv": Contract("lan9250_tryrecv", post=tryrecv_post,
                                    modified_regions=("buf",),
                                    trace_effect=hole("lan9250_tryrecv")),
        "lightbulb_init": Contract("lightbulb_init", post=init_post,
                                   trace_effect=hole("lightbulb_init")),
        "lightbulb_loop": Contract("lightbulb_loop", post=init_post,
                                   modified_regions=("buf",),
                                   trace_effect=hole("lightbulb_loop")),
    }


# -- per-function loop specs --------------------------------------------------------------

def spi_poll_loop_spec(register_addr: int, may_write: bool, tag: str,
                       extra_inv: Optional[Callable] = None) -> LoopSpec:
    def invariant(state):
        conj = T.and_(
            T.ule(state.locals["i"], T.const(C.SPI_PATIENCE)),
            T.or_(T.eq(state.locals["busy"], ZERO32),
                  T.eq(state.locals["busy"], ALLONES)),
        )
        if extra_inv is not None:
            conj = T.and_(conj, extra_inv(state))
        return conj

    return LoopSpec(invariant=invariant,
                    measure=lambda state: state.locals["i"],
                    event_filter=spi_poll_filter(register_addr, may_write),
                    tag=tag)


def call_poll_loop_spec(err_values, tag: str, *hole_tags: str) -> LoopSpec:
    def invariant(state):
        err = state.locals["err"]
        return T.and_(
            T.ule(state.locals["i"], T.const(C.BOOT_PATIENCE)),
            T.or_(*[T.eq(err, T.const(v)) for v in err_values]),
        )

    return LoopSpec(invariant=invariant,
                    measure=lambda state: state.locals["i"],
                    event_filter=call_hole_filter(*hole_tags),
                    tag=tag)


def drain_loop_spec() -> LoopSpec:
    def invariant(state):
        return T.and_(
            T.ule(state.locals["i"], state.locals["num_words"]),
            T.ule(state.locals["num_words"], T.const(C.RX_BUFFER_BYTES // 4)),
            T.or_(T.eq(state.locals["err"], ZERO32),
                  T.eq(state.locals["err"], ALLONES),
                  T.eq(state.locals["err"], T.const(C.ERR_TIMEOUT))),
        )

    return LoopSpec(invariant=invariant,
                    measure=lambda state: T.sub(state.locals["num_words"],
                                                state.locals["i"]),
                    modified_regions=("buf",),
                    event_filter=call_hole_filter("lan9250_readword"),
                    tag="drain")


# -- function specifications ------------------------------------------------------------------

def buffer_pre(vc, state, args):
    """args[0] is a word-aligned 1520-byte buffer the function owns."""
    buf = args[0]
    state.assume(T.eq(T.band(buf, T.const(3)), ZERO32))
    state.assume(T.ule(buf, T.const(0xFFFFFFFF - C.RX_BUFFER_BYTES)))
    state.regions["buf"] = Region(
        "buf", buf, C.RX_BUFFER_BYTES,
        [vc.fresh("buf_b%d" % i, 8) for i in range(C.RX_BUFFER_BYTES)])


def spi_write_spec() -> FunctionSpec:
    def post(vc, state, args, rets):
        _prove_bool_flag(vc, state, rets[0], "spi_write/post-busy-flag")
        for event in state.trace:
            if isinstance(event, SymEvent):
                if not _is_const(event.args[0], C.SPI_TXDATA_ADDR):
                    raise VerificationError("spi_write/post",
                                            "touched non-TXDATA address")

    return FunctionSpec(post=post)


def spi_read_spec() -> FunctionSpec:
    def post(vc, state, args, rets):
        _prove_bool_flag(vc, state, rets[1], "spi_read/post-busy-flag")
        vc.prove(state, T.ule(rets[0], T.const(0xFF)), "spi_read/post-byte")

    return FunctionSpec(post=post)


def spi_xchg_spec() -> FunctionSpec:
    def post(vc, state, args, rets):
        _prove_bool_flag(vc, state, rets[1], "spi_xchg/post-busy-flag")
        vc.prove(state, T.ule(rets[0], T.const(0xFF)), "spi_xchg/post-byte")

    return FunctionSpec(post=post)


def flag_ret_spec(index: int, allowed: List[int], name: str) -> FunctionSpec:
    def post(vc, state, args, rets):
        goal = T.or_(*[T.eq(rets[index], T.const(v)) for v in allowed])
        vc.prove(state, goal, "%s/post-err" % name)

    return FunctionSpec(post=post)


def drain_spec() -> FunctionSpec:
    def pre(vc, state, args):
        buffer_pre(vc, state, args)
        state.assume(T.ule(args[1], T.const(C.RX_BUFFER_BYTES)))

    def post(vc, state, args, rets):
        pass  # memory safety and loop totality are the content here

    return FunctionSpec(pre=pre, post=post)


def drain_spec_no_bound() -> FunctionSpec:
    """The buggy scenario: caller forgot the length check, so ``n`` is only
    bounded by the status-word field (0x3FFF). Verification must fail."""

    def pre(vc, state, args):
        buffer_pre(vc, state, args)
        state.assume(T.ule(args[1], T.const(0x3FFF)))

    return FunctionSpec(pre=pre)


def tryrecv_spec(buggy: bool = False) -> FunctionSpec:
    def pre(vc, state, args):
        buffer_pre(vc, state, args)

    def post(vc, state, args, rets):
        num_bytes, err = rets
        ok = T.eq(err, ZERO32)
        fits = T.ule(num_bytes, T.const(C.RX_BUFFER_BYTES))
        vc.prove(state, T.implies(ok, fits), "tryrecv/post-bound")

    return FunctionSpec(pre=pre, post=post)


def lightbulb_loop_spec() -> FunctionSpec:
    def pre(vc, state, args):
        buffer_pre(vc, state, args)

    def post(vc, state, args, rets):
        # The GPIO writes this function may emit are exactly bulb commands.
        for event in state.trace:
            if isinstance(event, SymEvent) and event.action == "MMIOWRITE":
                if _is_const(event.args[0], C.GPIO_OUTPUT_VAL_ADDR):
                    value = event.args[1]
                    goal = T.or_(T.eq(value, ZERO32),
                                 T.eq(value, T.const(1 << C.LIGHTBULB_PIN)))
                    vc.prove(state, goal, "lightbulb_loop/post-bulb-value")

    return FunctionSpec(pre=pre, post=post)


# -- the verification run -----------------------------------------------------------------------

@dataclass
class VerificationRun:
    reports: List[VerifyReport] = field(default_factory=list)

    @property
    def total_obligations(self) -> int:
        return sum(r.obligations for r in self.reports)

    @property
    def total_timeouts(self) -> int:
        return sum(len(r.timeouts) for r in self.reports)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    def __str__(self):
        lines = [str(r) for r in self.reports]
        summary = ("total: %d functions, %d obligations"
                   % (len(self.reports), self.total_obligations))
        if self.total_timeouts:
            summary += ", %d timeouts" % self.total_timeouts
        lines.append(summary)
        return "\n".join(lines)


def _annotated_program(buggy: bool = False) -> Program:
    program = dict(lightbulb_program(buggy_driver=buggy))
    program["spi_write"] = attach_loop_specs(
        program["spi_write"],
        [spi_poll_loop_spec(C.SPI_TXDATA_ADDR, may_write=True, tag="spi_write_poll")])
    program["spi_read"] = attach_loop_specs(
        program["spi_read"],
        [spi_poll_loop_spec(
            C.SPI_RXDATA_ADDR, may_write=False, tag="spi_read_poll",
            # The returned byte stays in range across iterations -- the
            # invariant the first verification run showed was missing.
            extra_inv=lambda state: T.ule(state.locals["b"], T.const(0xFF)))])
    program["lan9250_wait_for_boot"] = attach_loop_specs(
        program["lan9250_wait_for_boot"],
        [call_poll_loop_spec((0, C.ERR_TIMEOUT), "boot_poll",
                             "lan9250_readword")])
    program["lan9250_init"] = attach_loop_specs(
        program["lan9250_init"],
        [call_poll_loop_spec((0, C.ERR_TIMEOUT), "hwcfg_poll",
                             "lan9250_readword")])
    program["lan9250_drain"] = attach_loop_specs(
        program["lan9250_drain"], [drain_loop_spec()])
    return program


# Ordered registries of independent verification tasks. Task names
# (``"lightbulb:spi_write"``) are the picklable unit of work the parallel
# dispatcher farms to workers: a worker resolves the name back through
# `run_verify_task`, so nothing un-picklable (specs are closures) ever
# crosses the process boundary.

_LIGHTBULB_SPECS: Dict[str, Callable[[], FunctionSpec]] = {
    "spi_write": spi_write_spec,
    "spi_read": spi_read_spec,
    "spi_xchg": spi_xchg_spec,
    "lan9250_readword":
        lambda: flag_ret_spec(1, [0, 0xFFFFFFFF], "lan9250_readword"),
    "lan9250_writeword":
        lambda: flag_ret_spec(0, [0, 0xFFFFFFFF], "lan9250_writeword"),
    "lan9250_wait_for_boot":
        lambda: flag_ret_spec(0, [0, C.ERR_TIMEOUT], "lan9250_wait_for_boot"),
    "lan9250_init": FunctionSpec,
    "lan9250_drain": drain_spec,
    "lan9250_tryrecv": tryrecv_spec,
    "lightbulb_init": FunctionSpec,
    "lightbulb_loop": lightbulb_loop_spec,
}


def _lock_loop_spec() -> FunctionSpec:
    from .doorlock import LOCK_PIN

    def pre(vc, state, args):
        buffer_pre(vc, state, args)

    def post(vc, state, args, rets):
        for event in state.trace:
            if isinstance(event, SymEvent) and event.action == "MMIOWRITE":
                if _is_const(event.args[0], C.GPIO_OUTPUT_VAL_ADDR):
                    goal = T.or_(T.eq(event.args[1], ZERO32),
                                 T.eq(event.args[1],
                                      T.const(1 << LOCK_PIN)))
                    vc.prove(state, goal, "doorlock_loop/post-lock-value")

    return FunctionSpec(pre=pre, post=post)


_DOORLOCK_SPECS: Dict[str, Callable[[], FunctionSpec]] = {
    "doorlock_init": FunctionSpec,
    "doorlock_loop": _lock_loop_spec,
}

LIGHTBULB_TASKS = tuple("lightbulb:" + name for name in _LIGHTBULB_SPECS)
DOORLOCK_TASKS = tuple("doorlock:" + name for name in _DOORLOCK_SPECS)


def _doorlock_annotated_program() -> Program:
    """The door-lock app with the shared drivers carrying the same loop
    annotations as in the lightbulb build."""
    from .doorlock import doorlock_program

    program = dict(doorlock_program())
    annotated = _annotated_program()
    for name in ("spi_write", "spi_read", "lan9250_wait_for_boot",
                 "lan9250_init", "lan9250_drain"):
        program[name] = annotated[name]
    return program


def run_verify_task(task: str, max_conflicts: int = 4_000_000,
                    prescreen: bool = True) -> VerifyReport:
    """Verify one function identified by task name (``app:function``).

    This is the worker-side entry point of the parallel dispatcher; it is
    also the sequential unit, so ``--jobs 1`` and ``--jobs N`` run the
    exact same code per function.

    ``prescreen`` (default on) installs the abstract-interpretation
    prescreener (`repro.analysis.prescreen`), which discharges obligations
    already decided by interval/known-bits reasoning over the path facts
    before any solver query. It only ever proves valid goals, so the
    verdict is identical either way; only the solver workload changes.
    """
    app, _, fname = task.partition(":")
    if app == "lightbulb" and fname in _LIGHTBULB_SPECS:
        program = _annotated_program()
        spec = _LIGHTBULB_SPECS[fname]()
    elif app == "doorlock" and fname in _DOORLOCK_SPECS:
        program = _doorlock_annotated_program()
        spec = _DOORLOCK_SPECS[fname]()
    else:
        raise ValueError("unknown verification task %r" % task)
    hook = None
    if prescreen:
        from ..analysis.prescreen import Prescreener
        hook = Prescreener()
    return verify_function(program, fname, spec, platform_mmio_spec(),
                           contracts=make_contracts(),
                           max_conflicts=max_conflicts,
                           prescreen=hook)


def _verify_worker(task):
    """Pool worker for one whole-function verification task (must be a
    module-level function so it is importable under fork and spawn)."""
    from ..logic import dispatch

    index, name, max_conflicts, prescreen = task
    with dispatch.TaskEnv() as env:
        report = None
        error = None
        try:
            report = run_verify_task(name, max_conflicts, prescreen=prescreen)
        except VerificationError as err:
            error = ("VerificationError", err.context, err.detail, err.model)
        except S.SolverTimeout as err:
            error = ("SolverTimeout", name, str(err), None)
    return (index, report, None, error) + env.outcome()


def run_verify_tasks(names, jobs=None, cache=None,
                     max_conflicts: int = 4_000_000,
                     prescreen: bool = True) -> List[VerifyReport]:
    """Verify the named functions (see `run_verify_task`) in parallel;
    returns their `VerifyReport`s in input order.

    All tasks run to completion before any failure is surfaced; if any
    task failed, the earliest submitted failure is re-raised here (as
    `VerificationError` when that is what the worker hit), so the parent
    sees the same error -- and the same counterexample -- as a
    sequential run.
    """
    from ..logic import dispatch

    jobs = dispatch.default_jobs() if not jobs else jobs
    tasks = [(i, name, max_conflicts, prescreen)
             for i, name in enumerate(names)]
    raw = dispatch.run_pool(_verify_worker, tasks, jobs, cache, "verify")
    reports = []
    for _index, report, _, error, _, _, _, _ in raw:
        if error is not None:
            kind, context, detail, model = error
            if kind == "VerificationError":
                raise VerificationError(context, detail, model)
            raise dispatch.DispatchError(kind, context, detail, model)
        reports.append(report)
    return reports


def _run_tasks(names, max_conflicts: int, jobs: int,
               cache, prescreen: bool = True) -> VerificationRun:
    run = VerificationRun()
    if jobs is not None and jobs != 1:
        run.reports.extend(run_verify_tasks(names, jobs=jobs, cache=cache,
                                            max_conflicts=max_conflicts,
                                            prescreen=prescreen))
        return run
    previous = S.set_cache(cache) if cache is not None else None
    try:
        for name in names:
            run.reports.append(run_verify_task(name, max_conflicts,
                                               prescreen=prescreen))
    finally:
        if cache is not None:
            S.set_cache(previous)
    return run


def verify_all(max_conflicts: int = 4_000_000, jobs: int = 1,
               cache=None, prescreen: bool = True) -> VerificationRun:
    """Verify every lightbulb function against its specification.

    ``jobs`` > 1 dispatches the (independent, modular) per-function tasks
    to a process pool; ``cache`` is an optional
    `repro.logic.cache.ProofCache` consulted for every VC, so re-runs of
    unchanged functions skip the solver entirely. Reports come back in
    the same order either way. ``prescreen`` is documented on
    `run_verify_task`.
    """
    return _run_tasks(LIGHTBULB_TASKS, max_conflicts, jobs, cache,
                      prescreen=prescreen)


def verify_doorlock(max_conflicts: int = 4_000_000, jobs: int = 1,
                    cache=None, prescreen: bool = True) -> VerificationRun:
    """Verify the door-lock application's own functions, *reusing* the
    driver contracts unchanged -- the modular-verification dividend: a new
    app only proves its new code (paper section 2.1's motivation)."""
    return _run_tasks(DOORLOCK_TASKS, max_conflicts, jobs, cache,
                      prescreen=prescreen)


def verify_drain_buggy_fails(max_conflicts: int = 4_000_000) -> VerificationError:
    """The negative result: without the length check, the drain loop's
    memory-safety obligation is falsifiable -- the paper's "unprovable Coq
    goal" that exposed the remote-code-execution bug. Returns the
    VerificationError (raises AssertionError if verification *succeeds*)."""
    program = _annotated_program(buggy=True)
    # In the buggy program the caller passes an unchecked length.
    program["lan9250_drain"] = attach_loop_specs(
        lightbulb_program(buggy_driver=True)["lan9250_drain"],
        [LoopSpec(
            invariant=lambda state: T.and_(
                T.ule(state.locals["i"], state.locals["num_words"]),
                T.ule(state.locals["num_words"], T.const(0x1003))),
            measure=lambda state: T.sub(state.locals["num_words"],
                                        state.locals["i"]),
            modified_regions=("buf",),
            event_filter=call_hole_filter("lan9250_readword"),
            tag="drain")])
    try:
        verify_function(program, "lan9250_drain", drain_spec_no_bound(),
                        platform_mmio_spec(), contracts=make_contracts(),
                        max_conflicts=max_conflicts)
    except VerificationError as err:
        return err
    raise AssertionError("buggy drain verified -- the bound check matters!")
