"""A second application on the same verified stack: a UDP door lock.

The paper (section 3): "While this system could be used for any simple
application, this paper focuses on one specific example we call the
verified IoT lightbulb." This module substantiates the "any simple
application" claim: a door lock that toggles only when a UDP packet
carries the correct 4-byte PIN -- reusing the SPI driver, the LAN9250
driver, their contracts, and the platform models *unchanged* (the
modularity dividend), with its own application logic and its own
trace specification (`repro.sw.doorlock_spec`).

Packet layout (extends the lightbulb's): bytes 42..45 = PIN (little-
endian word), byte 46 bit 0 = desired lock state (1 = unlocked).
"""

from __future__ import annotations

from ..bedrock2.ast_ import Program
from ..bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, load4, set_, stackalloc,
    var, while_,
)
from . import constants as C
from . import lan9250_driver, lightbulb, spi_driver

# The lock actuator lives on its own GPIO pin.
LOCK_PIN = 24

# Offsets within the received frame.
OFF_PIN = 44           # word-aligned so the app can use load4
OFF_LOCK_CMD = 48
MIN_LOCK_LENGTH = 49

DEFAULT_PIN = 0xC0DE1234


def make_doorlock_init():
    body = block(
        interact([], "MMIOWRITE", lit(C.GPIO_OUTPUT_EN_ADDR),
                 lit(1 << LOCK_PIN)),
        call(("err",), "lan9250_init"),
    )
    return func("doorlock_init", (), ("err",), body)


def make_doorlock_loop(pin: int = DEFAULT_PIN):
    body = block(
        set_("err", lit(0)),
        call(("l", "e"), "lan9250_tryrecv", var("buf")),
        if_(var("e") != 0,
            set_("err", var("e")),
            if_(var("l") != 0, block(
                set_("ok", lit(1)),
                if_(var("l") < MIN_LOCK_LENGTH, set_("ok", lit(0))),
                if_(var("ok"), block(
                    set_("ethertype",
                         (load1(var("buf") + lightbulb.OFF_ETHERTYPE) << 8)
                         | load1(var("buf") + lightbulb.OFF_ETHERTYPE + 1)),
                    if_(var("ethertype") != lightbulb.ETHERTYPE_IPV4,
                        set_("ok", lit(0))),
                )),
                if_(var("ok"), block(
                    set_("proto", load1(var("buf") + lightbulb.OFF_IP_PROTO)),
                    if_(var("proto") != lightbulb.IP_PROTO_UDP,
                        set_("ok", lit(0))),
                )),
                if_(var("ok"), block(
                    # The authentication check this app adds over the bulb.
                    set_("pin", load4(var("buf") + OFF_PIN)),
                    if_(var("pin") != pin, set_("ok", lit(0))),
                )),
                if_(var("ok"), block(
                    set_("cmd", load1(var("buf") + OFF_LOCK_CMD) & 1),
                    interact([], "MMIOWRITE", lit(C.GPIO_OUTPUT_VAL_ADDR),
                             var("cmd") << LOCK_PIN),
                )),
            ))),
    )
    return func("doorlock_loop", ("buf",), ("err",), body)


def make_main():
    body = stackalloc("buf", C.RX_BUFFER_BYTES, block(
        call(("err",), "doorlock_init"),
        while_(lit(1), call(("err",), "doorlock_loop", var("buf"))),
    ))
    return func("main", (), (), body)


def make_doorlock_service():
    body = stackalloc("buf", C.RX_BUFFER_BYTES, block(
        call(("err",), "doorlock_init"),
        while_(var("n"), block(
            call(("err",), "doorlock_loop", var("buf")),
            set_("n", var("n") - 1),
        )),
    ))
    return func("doorlock_service", ("n",), ("err",), body)


def doorlock_program(pin: int = DEFAULT_PIN) -> Program:
    """The full door-lock program: same drivers, new application."""
    program: Program = {}
    program.update(spi_driver.functions())
    program.update(lan9250_driver.functions())
    program["doorlock_init"] = make_doorlock_init()
    program["doorlock_loop"] = make_doorlock_loop(pin)
    program["doorlock_service"] = make_doorlock_service()
    program["main"] = make_main()
    return program


def lock_packet(pin: int, unlock: bool) -> bytes:
    """A well-formed lock-command frame."""
    from ..platform.net import ethernet_frame, ipv4_header, udp_datagram

    payload = bytes(OFF_PIN - 42) + pin.to_bytes(4, "little") \
        + bytes([1 if unlock else 0])
    udp = udp_datagram(payload)
    return ethernet_frame(ipv4_header(len(udp)) + udp)
