"""The lightbulb application, in Bedrock2 (paper sections 3, 5.1).

``lightbulb_init`` configures the GPIO pin and brings up the Ethernet
controller; ``lightbulb_loop`` performs one event-loop iteration: poll for
a frame, validate it (length, ethertype IPv4, protocol UDP), and drive the
bulb from bit 0 of the first payload byte. "Any unexpected packet, no
matter how maliciously malformed at any layer, is ignored, and the
application does not send any packets."

``main`` is the customary ``init(); while(1) loop()`` of embedded
programming (section 5.2): it only exists in compiled form -- the Bedrock2
semantics models terminating executions, so source-level runs use
``lightbulb_service`` with an iteration bound instead.
"""

from __future__ import annotations

from ..bedrock2.builder import (
    block, call, func, if_, interact, lit, load1, set_, stackalloc, var, while_,
)
from . import constants as C

# Packet offsets validated by the app (matching `repro.platform.net`).
OFF_ETHERTYPE = 12
OFF_IP_PROTO = 23
OFF_CMD = 42
MIN_VALID_LENGTH = 43
ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 0x11


def make_lightbulb_init():
    body = block(
        interact([], "MMIOWRITE", lit(C.GPIO_OUTPUT_EN_ADDR),
                 lit(1 << C.LIGHTBULB_PIN)),
        call(("err",), "lan9250_init"),
    )
    return func("lightbulb_init", (), ("err",), body)


def make_lightbulb_loop():
    # One poll-validate-actuate iteration over a caller-provided buffer.
    body = block(
        set_("err", lit(0)),
        call(("l", "e"), "lan9250_tryrecv", var("buf")),
        if_(var("e") != 0,
            set_("err", var("e")),
            if_(var("l") != 0, block(
                # A frame arrived: validate it, ignore if malformed.
                set_("ok", lit(1)),
                if_(var("l") < MIN_VALID_LENGTH, set_("ok", lit(0))),
                if_(var("ok"), block(
                    set_("ethertype",
                         (load1(var("buf") + OFF_ETHERTYPE) << 8)
                         | load1(var("buf") + OFF_ETHERTYPE + 1)),
                    if_(var("ethertype") != ETHERTYPE_IPV4, set_("ok", lit(0))),
                )),
                if_(var("ok"), block(
                    set_("proto", load1(var("buf") + OFF_IP_PROTO)),
                    if_(var("proto") != IP_PROTO_UDP, set_("ok", lit(0))),
                )),
                if_(var("ok"), block(
                    set_("cmd", load1(var("buf") + OFF_CMD) & 1),
                    interact([], "MMIOWRITE", lit(C.GPIO_OUTPUT_VAL_ADDR),
                             var("cmd") << C.LIGHTBULB_PIN),
                )),
            ))),
    )
    return func("lightbulb_loop", ("buf",), ("err",), body)


def make_main():
    # init(); while(1) loop();  -- compiled-only entry point.
    body = stackalloc("buf", C.RX_BUFFER_BYTES, block(
        call(("err",), "lightbulb_init"),
        while_(lit(1), call(("err",), "lightbulb_loop", var("buf"))),
    ))
    return func("main", (), (), body)


def make_lightbulb_service():
    # Bounded variant for source-level (terminating) executions: init, then
    # n event-loop iterations. Returns the last error code.
    body = stackalloc("buf", C.RX_BUFFER_BYTES, block(
        call(("err",), "lightbulb_init"),
        while_(var("n"), block(
            call(("err",), "lightbulb_loop", var("buf")),
            set_("n", var("n") - 1),
        )),
    ))
    return func("lightbulb_service", ("n",), ("err",), body)


def functions():
    return {
        "lightbulb_init": make_lightbulb_init(),
        "lightbulb_loop": make_lightbulb_loop(),
        "lightbulb_service": make_lightbulb_service(),
        "main": make_main(),
    }
