"""Shared constants for the lightbulb software stack.

These mirror the FE310 memory map implemented by `repro.platform` and the
LAN9250 register layout -- the *interface* both the drivers (software side)
and the device models (hardware side) are written against. A mismatch here
is exactly the class of integration bug the paper targets.
"""

from ..platform.bus import GPIO_BASE, SPI_BASE
from ..platform import gpio as _gpio
from ..platform import lan9250 as _lan
from ..platform import spi as _spi

# MMIO addresses.
SPI_TXDATA_ADDR = SPI_BASE + _spi.SPI_TXDATA
SPI_RXDATA_ADDR = SPI_BASE + _spi.SPI_RXDATA
SPI_CSMODE_ADDR = SPI_BASE + _spi.SPI_CSMODE
GPIO_OUTPUT_EN_ADDR = GPIO_BASE + _gpio.GPIO_OUTPUT_EN
GPIO_OUTPUT_VAL_ADDR = GPIO_BASE + _gpio.GPIO_OUTPUT_VAL

LIGHTBULB_PIN = _gpio.LIGHTBULB_PIN

# SPI CSMODE values.
CSMODE_AUTO = _spi.CSMODE_AUTO
CSMODE_HOLD = _spi.CSMODE_HOLD

# LAN9250 registers and values.
LAN_RX_DATA_FIFO = _lan.RX_DATA_FIFO
LAN_RX_STATUS_FIFO = _lan.RX_STATUS_FIFO
LAN_RX_CFG = _lan.RX_CFG
RX_CFG_RX_DUMP = _lan.RX_CFG_RX_DUMP
LAN_BYTE_TEST = _lan.BYTE_TEST
LAN_HW_CFG = _lan.HW_CFG
LAN_RX_FIFO_INF = _lan.RX_FIFO_INF
LAN_MAC_CSR_CMD = _lan.MAC_CSR_CMD
LAN_MAC_CSR_DATA = _lan.MAC_CSR_DATA
LAN_RESET_CTL = _lan.RESET_CTL
BYTE_TEST_VALUE = _lan.BYTE_TEST_VALUE
HW_CFG_READY_BIT = 27
MAC_CR = _lan.MAC_CR
MAC_CR_RXEN = _lan.MAC_CR_RXEN
MAC_CSR_BUSY = _lan.MAC_CSR_BUSY

# SPI command opcodes for the LAN9250.
CMD_FAST_READ = _lan.CMD_FAST_READ
CMD_WRITE = _lan.CMD_WRITE

# Driver timeout counters (total correctness: every loop terminates --
# the paper added exactly this logic when proving totality, section 7.2.1).
SPI_PATIENCE = 64
BOOT_PATIENCE = 64

# Receive buffer size in bytes (the famous constant: the initial prototype
# confused words and bytes here and was remotely exploitable).
RX_BUFFER_BYTES = 1520

# Error codes returned by the drivers.
ERR_NONE = 0
ERR_TIMEOUT = 1
ERR_OVERSIZE = 2
