"""The unverified prototype's fast drivers (paper section 7.2.1).

The paper's initial prototype (FE310 + gcc -O3) is 10x faster than the
verified system; two of the factors live in the driver code:

* **SPI pipelining (1.4x)**: "the code first writes the outgoing command
  and address into the transmit FIFO and then reads the entire response
  out of the receive FIFO" -- exploiting the FE310 FIFOs instead of
  interleaving one-byte writes and reads.
* **No timeout counters (1.2x)**: "the unverified prototype would happily
  poll forever", saving the bookkeeping the verified code pays for total
  correctness.

This module provides both knobs independently so the benchmark can measure
each factor (``pipelined_spi`` and ``timeouts`` options), mirroring the
paper's ablation. These drivers are *not* covered by the trace spec --
that is the point of the comparison.
"""

from __future__ import annotations

from ..bedrock2.ast_ import Program
from ..bedrock2.builder import (
    block, func, if_, interact, lit, set_, var, while_,
)
from . import constants as C
from . import lan9250_driver, lightbulb, spi_driver


def make_spi_write_no_timeout():
    # while (MMIOREAD(TXDATA) >> 31) {}  -- polls forever, no counter.
    body = block(
        set_("busy", lit(1)),
        while_(var("busy"), block(
            interact(["v"], "MMIOREAD", lit(C.SPI_TXDATA_ADDR)),
            set_("busy", var("v") >> 31),
        )),
        interact([], "MMIOWRITE", lit(C.SPI_TXDATA_ADDR), var("b") & 0xFF),
        set_("busy", lit(0)),
    )
    return func("spi_write", ("b",), ("busy",), body)


def make_spi_read_no_timeout():
    body = block(
        set_("empty", lit(1)),
        set_("b", lit(0)),
        while_(var("empty"), block(
            interact(["v"], "MMIOREAD", lit(C.SPI_RXDATA_ADDR)),
            set_("empty", var("v") >> 31),
            if_(var("empty") == 0, set_("b", var("v") & 0xFF)),
        )),
        set_("busy", lit(0)),
    )
    return func("spi_read", (), ("b", "busy"), body)


def make_lan9250_readword_pipelined(timeouts: bool):
    """FE310-style pipelined read: burst all 8 command/dummy bytes into the
    TX FIFO, then drain 8 response bytes from the RX FIFO, keeping the
    last four as the register value."""
    tx_burst = []
    for expr in (lit(C.CMD_FAST_READ), (var("addr") >> 8) & 0xFF,
                 var("addr") & 0xFF, lit(0), lit(0), lit(0), lit(0), lit(0)):
        # The FIFO is 8 deep and drained afterwards, so no full-flag polls
        # are needed within a burst (the prototype relies on this).
        tx_burst.append(interact([], "MMIOWRITE", lit(C.SPI_TXDATA_ADDR),
                                 expr))
    rx_reads = []
    for i in range(8):
        dest = ("junk" if i < 4 else "b%d" % (i - 4))
        if timeouts:
            rx_reads.append(block(
                set_(dest, lit(0)),
                set_("i", lit(C.SPI_PATIENCE)),
                while_(var("i"), block(
                    interact(["v"], "MMIOREAD", lit(C.SPI_RXDATA_ADDR)),
                    if_(var("v") >> 31,
                        set_("i", var("i") - 1),
                        block(set_(dest, var("v") & 0xFF),
                              set_("i", lit(0)), set_("err", lit(0)))),
                )),
            ))
        else:
            rx_reads.append(block(
                set_("empty", lit(1)),
                set_(dest, lit(0)),
                while_(var("empty"), block(
                    interact(["v"], "MMIOREAD", lit(C.SPI_RXDATA_ADDR)),
                    set_("empty", var("v") >> 31),
                    if_(var("empty") == 0, set_(dest, var("v") & 0xFF)),
                )),
            ))
    body = block(
        set_("err", lit(C.ERR_TIMEOUT if timeouts else C.ERR_NONE)),
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_HOLD)),
        *tx_burst,
        *rx_reads,
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_AUTO)),
        set_("ret", var("b0") | (var("b1") << 8) | (var("b2") << 16)
             | (var("b3") << 24)),
    )
    return func("lan9250_readword", ("addr",), ("ret", "err"), body)


def fast_program(pipelined_spi: bool = True, timeouts: bool = False) -> Program:
    """The prototype software stack with the two speed knobs.

    ``pipelined_spi=False, timeouts=True`` reproduces the verified code;
    ``pipelined_spi=True, timeouts=False`` is the full prototype."""
    program: Program = {}
    program.update(spi_driver.functions())
    if not timeouts:
        program["spi_write"] = make_spi_write_no_timeout()
        program["spi_read"] = make_spi_read_no_timeout()
    program.update(lan9250_driver.functions())
    if pipelined_spi:
        program["lan9250_readword"] = make_lan9250_readword_pipelined(timeouts)
    program.update(lightbulb.functions())
    return program
