"""The lightbulb's trace specification (paper section 3.1).

This is our rendition of the paper's one-page application-level promise:

    goodHlTrace :=
      BootSeq +++ ((EX b: bool, Recv b +++ LightbulbCmd b)
                   ||| RecvInvalid ||| PollNone ||| DeviceFail) ^*

built bottom-up from the SPI wire protocol exactly as the software is: an
``spi_xchg`` transaction, LAN9250 word reads/writes over it, the boot
incantations, and finally the three event-loop behaviors. The existential
``EX b`` ties the GPIO write to the *command bit captured from the packet
bytes on the wire* -- the security property: the bulb changes state only
as commanded by a valid UDP packet.

Like the paper's, the spec is deliberately lax where laxness is safe
(e.g. it does not bound how many busy polls a transfer may take), and the
``DeviceFail`` arms cover driver timeouts, which exist because the paper
proves *total* correctness.
"""

from __future__ import annotations

from ..traces.predicates import (
    Epsilon,
    Exists,
    Guard,
    RepeatN,
    Star,
    TracePred,
    ld,
    seq,
    st,
    union,
    value_is,
    value_where,
)
from . import constants as C
from .lightbulb import (
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    MIN_VALID_LENGTH,
    OFF_CMD,
    OFF_ETHERTYPE,
    OFF_IP_PROTO,
)

FLAG = 1 << 31


# -- SPI layer -------------------------------------------------------------------

def _tx_busy():
    return ld(C.SPI_TXDATA_ADDR, value_where(lambda v: v & FLAG),
              "txdata busy")


def _tx_clear():
    return ld(C.SPI_TXDATA_ADDR, value_where(lambda v: not (v & FLAG)),
              "txdata clear")


def _rx_empty():
    return ld(C.SPI_RXDATA_ADDR, value_where(lambda v: v & FLAG),
              "rxdata empty")


def spi_write_ok(byte_fn) -> TracePred:
    """Busy-polls, then the store of the byte. ``byte_fn(value, env)``
    constrains/captures the written byte."""
    return seq(Star(_tx_busy()), _tx_clear(),
               st(C.SPI_TXDATA_ADDR, byte_fn, "tx byte"))


def spi_read_ok(value_fn) -> TracePred:
    return seq(Star(_rx_empty()),
               ld(C.SPI_RXDATA_ADDR,
                  lambda v, env: value_fn(v & 0xFF, env) if not (v & FLAG) else None,
                  "rx byte"))


def _accept(v, env):
    return env


def xchg_ok(tx_fn, rx_fn=_accept) -> TracePred:
    return spi_write_ok(tx_fn) + spi_read_ok(rx_fn)


def xchg_const(byte: int) -> TracePred:
    return xchg_ok(value_is(byte & 0xFF))


def spi_write_timeout() -> TracePred:
    pred = Epsilon()
    for _ in range(C.SPI_PATIENCE):
        pred = pred + _tx_busy()
    return pred


def spi_read_timeout() -> TracePred:
    pred = Epsilon()
    for _ in range(C.SPI_PATIENCE):
        pred = pred + _rx_empty()
    return pred


def xchg_fail(tx_fn) -> TracePred:
    return union(spi_write_timeout(),
                 spi_write_ok(tx_fn) + spi_read_timeout())


# -- LAN9250 word transactions over SPI --------------------------------------------

def _cs_hold():
    return st(C.SPI_CSMODE_ADDR, value_is(C.CSMODE_HOLD), "cs hold")


def _cs_auto():
    return st(C.SPI_CSMODE_ADDR, value_is(C.CSMODE_AUTO), "cs auto")


def _addr_bytes(addr: int):
    return [xchg_const((addr >> 8) & 0xFF), xchg_const(addr & 0xFF)]


def _capture_byte(name: str):
    def fn(v, env):
        new = dict(env)
        new[name] = v & 0xFF
        return new
    return fn


def lan_readword(addr: int, word_fn) -> TracePred:
    """A successful fast-read of one register. ``word_fn(value, env)``
    constrains/captures the assembled little-endian word."""

    def assemble(env):
        return (env["_b0"] | (env["_b1"] << 8) | (env["_b2"] << 16)
                | (env["_b3"] << 24))

    def guard(env):
        return word_fn(assemble(env), env) is not None

    def rebind(env):
        new = word_fn(assemble(env), env)
        return new if new is not None else env

    # Guard keeps match semantics; we thread the capture via a Step-less
    # Guard that mutates env through word_fn's return.
    class _Bind(Guard):
        def residuals(self, trace, start, env):
            new = word_fn(assemble(env), env)
            if new is not None:
                yield start, new

        def partial(self, trace, start, env):
            return start == len(trace)

    return seq(
        _cs_hold(),
        xchg_const(C.CMD_FAST_READ),
        *_addr_bytes(addr),
        xchg_const(0),  # dummy
        xchg_ok(value_is(0), _capture_byte("_b0")),
        xchg_ok(value_is(0), _capture_byte("_b1")),
        xchg_ok(value_is(0), _capture_byte("_b2")),
        xchg_ok(value_is(0), _capture_byte("_b3")),
        _Bind(lambda env: True),
        _cs_auto(),
    )


def lan_readword_fail(addr: int) -> TracePred:
    """A register read aborted by an SPI timeout at any stage."""
    prefix_steps = [xchg_const(C.CMD_FAST_READ)] + _addr_bytes(addr) \
        + [xchg_const(0)] * 5
    tx_values = ([C.CMD_FAST_READ, (addr >> 8) & 0xFF, addr & 0xFF]
                 + [0] * 5)
    arms = []
    for k in range(len(prefix_steps)):
        arms.append(seq(_cs_hold(), *prefix_steps[:k],
                        xchg_fail(value_is(tx_values[k])), _cs_auto()))
    return union(*arms)


def lan_writeword(addr: int, value_fn) -> TracePred:
    def byte_of(i):
        def fn(v, env):
            new = dict(env)
            new["_wb%d" % i] = v & 0xFF
            return new
        return fn

    class _Check(Guard):
        def residuals(self, trace, start, env):
            word = (env["_wb0"] | (env["_wb1"] << 8) | (env["_wb2"] << 16)
                    | (env["_wb3"] << 24))
            new = value_fn(word, env)
            if new is not None:
                yield start, new

        def partial(self, trace, start, env):
            return start == len(trace)

    return seq(
        _cs_hold(),
        xchg_const(C.CMD_WRITE),
        *_addr_bytes(addr),
        xchg_ok(byte_of(0)), xchg_ok(byte_of(1)),
        xchg_ok(byte_of(2)), xchg_ok(byte_of(3)),
        _Check(lambda env: True),
        _cs_auto(),
    )


def lan_writeword_fail(addr: int) -> TracePred:
    prefix = [xchg_const(C.CMD_WRITE)] + _addr_bytes(addr)
    tx_values = [C.CMD_WRITE, (addr >> 8) & 0xFF, addr & 0xFF]
    arms = []
    for k in range(8):
        if k < 3:
            arms.append(seq(_cs_hold(), *prefix[:k],
                            xchg_fail(value_is(tx_values[k])), _cs_auto()))
        else:
            # Failure while clocking a data byte (value unconstrained).
            arms.append(seq(_cs_hold(), *prefix,
                            *[xchg_ok(_accept)] * (k - 3),
                            xchg_fail(lambda v, env: env), _cs_auto()))
    return union(*arms)


# -- BootSeq (paper: "a series of incantations mandated by the Ethernet
#    controller") ------------------------------------------------------------------

def boot_seq() -> TracePred:
    gpio_setup = st(C.GPIO_OUTPUT_EN_ADDR,
                    value_is(1 << C.LIGHTBULB_PIN), "gpio enable")
    byte_test_wrong = lan_readword(
        C.LAN_BYTE_TEST,
        lambda v, env: env if v != C.BYTE_TEST_VALUE else None)
    byte_test_right = lan_readword(C.LAN_BYTE_TEST,
                                   lambda v, env: env
                                   if v == C.BYTE_TEST_VALUE else None)
    byte_test_attempt = union(byte_test_wrong,
                              lan_readword_fail(C.LAN_BYTE_TEST))
    wait_boot_ok = Star(byte_test_attempt) + byte_test_right
    wait_boot_fail = Star(byte_test_attempt)

    hw_cfg_not_ready = lan_readword(
        C.LAN_HW_CFG,
        lambda v, env: env if not ((v >> C.HW_CFG_READY_BIT) & 1) else None)
    hw_cfg_ready = lan_readword(
        C.LAN_HW_CFG,
        lambda v, env: env if (v >> C.HW_CFG_READY_BIT) & 1 else None)
    hw_attempt = union(hw_cfg_not_ready, lan_readword_fail(C.LAN_HW_CFG))
    wait_ready_ok = Star(hw_attempt) + hw_cfg_ready
    wait_ready_fail = Star(hw_attempt)

    mac_enable = seq(
        lan_writeword(C.LAN_MAC_CSR_DATA, value_is(C.MAC_CR_RXEN)),
        lan_writeword(C.LAN_MAC_CSR_CMD,
                      value_is(C.MAC_CSR_BUSY | C.MAC_CR)),
    )
    mac_enable_fail = union(
        lan_writeword_fail(C.LAN_MAC_CSR_DATA),
        lan_writeword(C.LAN_MAC_CSR_DATA, value_is(C.MAC_CR_RXEN))
        + lan_writeword_fail(C.LAN_MAC_CSR_CMD),
    )

    init_ok = wait_boot_ok + wait_ready_ok + mac_enable
    init_fail = union(wait_boot_fail,
                      wait_boot_ok + wait_ready_fail,
                      wait_boot_ok + wait_ready_ok + mac_enable_fail)
    return gpio_setup + union(init_ok, init_fail)


# -- event-loop iterations ------------------------------------------------------------

def _fifo_inf(frames_fn) -> TracePred:
    return lan_readword(C.LAN_RX_FIFO_INF, frames_fn)


def poll_none() -> TracePred:
    """PollNone: the Ethernet card reports no pending frame."""
    return _fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) == 0 else None)


def _status_capture(v, env):
    new = dict(env)
    new["len"] = (v >> 16) & 0x3FFF
    return new


def _drain(capture_cmd: bool) -> TracePred:
    """ceil(len/4) data-FIFO reads, capturing the validation words."""
    interesting = {OFF_ETHERTYPE // 4: "w_ethertype",
                   OFF_IP_PROTO // 4: "w_proto",
                   OFF_CMD // 4: "w_cmd"}

    def body(i: int) -> TracePred:
        name = interesting.get(i) if capture_cmd else None
        if name is None:
            return lan_readword(C.LAN_RX_DATA_FIFO, _accept)

        def cap(v, env):
            new = dict(env)
            new[name] = v
            return new

        return lan_readword(C.LAN_RX_DATA_FIFO, cap)

    return RepeatN(lambda env: (env["len"] + 3) >> 2, body)


def _frame_valid(env) -> bool:
    if env["len"] < MIN_VALID_LENGTH:
        return False
    ethertype = ((env["w_ethertype"] >> (8 * (OFF_ETHERTYPE % 4))) & 0xFF) << 8 \
        | ((env["w_ethertype"] >> (8 * ((OFF_ETHERTYPE + 1) % 4))) & 0xFF)
    if ethertype != ETHERTYPE_IPV4:
        return False
    proto = (env["w_proto"] >> (8 * (OFF_IP_PROTO % 4))) & 0xFF
    return proto == IP_PROTO_UDP


def _cmd_bit(env) -> int:
    return (env["w_cmd"] >> (8 * (OFF_CMD % 4))) & 1


def recv(b: int) -> TracePred:
    """Recv b: a well-formed frame whose command bit is ``b`` arrives."""
    return seq(
        _fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        lan_readword(C.LAN_RX_STATUS_FIFO, _status_capture),
        Guard(lambda env: env["len"] <= C.RX_BUFFER_BYTES, "fits buffer"),
        _drain(capture_cmd=True),
        Guard(lambda env: _frame_valid(env) and _cmd_bit(env) == b,
              "valid command %d" % b),
    )


def lightbulb_cmd(b: int) -> TracePred:
    """LightbulbCmd b: the actuation the application owes for Recv b."""
    return st(C.GPIO_OUTPUT_VAL_ADDR, value_is((b & 1) << C.LIGHTBULB_PIN),
              "bulb := %d" % b)


def recv_invalid() -> TracePred:
    """RecvInvalid: a frame arrives but is ignored -- oversize (rejected by
    the driver before any FIFO read) or drained but failing validation."""
    oversize = seq(
        _fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        lan_readword(C.LAN_RX_STATUS_FIFO, _status_capture),
        Guard(lambda env: env["len"] > C.RX_BUFFER_BYTES, "oversize"),
        # The driver dumps the RX FIFOs instead of draining the frame.
        union(lan_writeword(C.LAN_RX_CFG, value_is(C.RX_CFG_RX_DUMP)),
              lan_writeword_fail(C.LAN_RX_CFG)),
    )
    malformed = seq(
        _fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        lan_readword(C.LAN_RX_STATUS_FIFO, _status_capture),
        Guard(lambda env: env["len"] <= C.RX_BUFFER_BYTES, "fits buffer"),
        _drain(capture_cmd=True),
        Guard(lambda env: not _frame_valid(env), "fails validation"),
    )
    return union(oversize, malformed)


def device_fail() -> TracePred:
    """DeviceFail: an iteration cut short by an SPI/device timeout. Exists
    because the drivers are *total*: they give up rather than spin."""
    inf_ok = _fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None)
    status_ok = lan_readword(C.LAN_RX_STATUS_FIFO, _status_capture)
    fits = Guard(lambda env: env["len"] <= C.RX_BUFFER_BYTES, "fits buffer")

    def drain_fail_body(i: int) -> TracePred:
        return lan_readword(C.LAN_RX_DATA_FIFO, _accept)

    # A failing data read after k successful ones, k < ceil(len/4):
    class _DrainFail(TracePred):
        def residuals(self, trace, start, env):
            count = (env["len"] + 3) >> 2
            fail = lan_readword_fail(C.LAN_RX_DATA_FIFO)
            states = [(start, env)]
            for i in range(count):
                for pos, env0 in states:
                    yield from fail.residuals(trace, pos, env0)
                next_states = []
                for pos, env0 in states:
                    next_states.extend(
                        drain_fail_body(i).residuals(trace, pos, env0))
                states = next_states
                if not states:
                    return

        def partial(self, trace, start, env):
            count = (env["len"] + 3) >> 2
            fail = lan_readword_fail(C.LAN_RX_DATA_FIFO)
            body = lan_readword(C.LAN_RX_DATA_FIFO, _accept)
            states = [(start, env)]
            for i in range(count):
                for pos, env0 in states:
                    if fail.partial(trace, pos, env0) or \
                       body.partial(trace, pos, env0):
                        return True
                next_states = []
                for pos, env0 in states:
                    next_states.extend(body.residuals(trace, pos, env0))
                states = next_states
                if not states:
                    return False
            return False

    return union(
        lan_readword_fail(C.LAN_RX_FIFO_INF),
        inf_ok + lan_readword_fail(C.LAN_RX_STATUS_FIFO),
        inf_ok + status_ok + fits + _DrainFail(),
    )


# -- the top-level specification -------------------------------------------------------

def iteration() -> TracePred:
    """One event-loop iteration's allowed behaviors."""
    return union(
        Exists("b", (0, 1), lambda b: recv(b) + lightbulb_cmd(b)),
        recv_invalid(),
        poll_none(),
        device_fail(),
    )


def good_hl_trace() -> TracePred:
    """``goodHlTrace`` (paper section 3.1): the whole system's promise."""
    return boot_seq() + Star(iteration())
