"""Trace specification for the door-lock application.

Same shape as the lightbulb's `good_hl_trace` (the spec combinators and
the driver-level sub-predicates are reused verbatim -- that is the
modularity payoff), with the application arm strengthened by the PIN
check: the lock actuates only for frames carrying the secret.

    goodLockTrace := BootSeq' +++
        ((EX b, RecvAuth pin b +++ LockCmd b)
         ||| RecvUnauth ||| PollNone ||| DeviceFail) ^*
"""

from __future__ import annotations

from ..traces.predicates import Exists, Guard, Star, TracePred, seq, st, union, value_is
from . import constants as C
from . import specs as S
from .doorlock import LOCK_PIN, OFF_LOCK_CMD, OFF_PIN
from .doorlock import MIN_LOCK_LENGTH
from .lightbulb import ETHERTYPE_IPV4, IP_PROTO_UDP, OFF_ETHERTYPE, OFF_IP_PROTO


def _boot_seq() -> TracePred:
    """Identical to the lightbulb BootSeq except the GPIO pin enabled."""
    gpio_setup = st(C.GPIO_OUTPUT_EN_ADDR, value_is(1 << LOCK_PIN),
                    "lock gpio enable")
    # Reuse the whole Ethernet bring-up from the lightbulb spec.
    lan_boot = S.boot_seq()
    # boot_seq() = lightbulb gpio + lan init; strip its gpio arm by
    # rebuilding: its structure is Concat(gpio_setup, init_arms).
    from ..traces.predicates import Concat

    assert isinstance(lan_boot, Concat)
    return gpio_setup + lan_boot.second


def _drain_lock(capture: bool) -> TracePred:
    interesting = {OFF_ETHERTYPE // 4: "w_ethertype",
                   OFF_IP_PROTO // 4: "w_proto",
                   OFF_PIN // 4: "w_pin",
                   OFF_LOCK_CMD // 4: "w_cmd"}

    def body(i: int) -> TracePred:
        name = interesting.get(i) if capture else None
        if name is None:
            return S.lan_readword(C.LAN_RX_DATA_FIFO, S._accept)

        def cap(v, env):
            new = dict(env)
            new[name] = v
            return new

        return S.lan_readword(C.LAN_RX_DATA_FIFO, cap)

    from ..traces.predicates import RepeatN

    return RepeatN(lambda env: (env["len"] + 3) >> 2, body)


def _frame_authorized(env, pin: int) -> bool:
    if env["len"] < MIN_LOCK_LENGTH:
        return False
    ethertype = ((env["w_ethertype"] & 0xFF) << 8) \
        | ((env["w_ethertype"] >> 8) & 0xFF)
    if ethertype != ETHERTYPE_IPV4:
        return False
    if (env["w_proto"] >> (8 * (OFF_IP_PROTO % 4))) & 0xFF != IP_PROTO_UDP:
        return False
    return env["w_pin"] == pin


def _cmd_bit(env) -> int:
    return (env["w_cmd"] >> (8 * (OFF_LOCK_CMD % 4))) & 1


def recv_auth(pin: int, b: int) -> TracePred:
    """A frame carrying the correct PIN commanding lock state ``b``."""
    return seq(
        S._fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        S.lan_readword(C.LAN_RX_STATUS_FIFO, S._status_capture),
        Guard(lambda env: env["len"] <= C.RX_BUFFER_BYTES, "fits"),
        _drain_lock(capture=True),
        Guard(lambda env: _frame_authorized(env, pin) and _cmd_bit(env) == b,
              "authorized %d" % b),
    )


def lock_cmd(b: int) -> TracePred:
    return st(C.GPIO_OUTPUT_VAL_ADDR, value_is((b & 1) << LOCK_PIN),
              "lock := %d" % b)


def recv_unauthorized(pin: int) -> TracePred:
    """Any frame that must be ignored: oversize, malformed, or wrong PIN.
    Crucially there is NO arm that writes the GPIO here -- the security
    property is that absence."""
    oversize = seq(
        S._fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        S.lan_readword(C.LAN_RX_STATUS_FIFO, S._status_capture),
        Guard(lambda env: env["len"] > C.RX_BUFFER_BYTES, "oversize"),
        union(S.lan_writeword(C.LAN_RX_CFG, value_is(C.RX_CFG_RX_DUMP)),
              S.lan_writeword_fail(C.LAN_RX_CFG)),
    )
    rejected = seq(
        S._fifo_inf(lambda v, env: env if ((v >> 16) & 0xFF) != 0 else None),
        S.lan_readword(C.LAN_RX_STATUS_FIFO, S._status_capture),
        Guard(lambda env: env["len"] <= C.RX_BUFFER_BYTES, "fits"),
        _drain_lock(capture=True),
        Guard(lambda env: not _frame_authorized(env, pin), "unauthorized"),
    )
    return union(oversize, rejected)


def good_lock_trace(pin: int) -> TracePred:
    return _boot_seq() + Star(union(
        Exists("b", (0, 1), lambda b: recv_auth(pin, b) + lock_cmd(b)),
        recv_unauthorized(pin),
        S.poll_none(),
        S.device_fail(),
    ))
