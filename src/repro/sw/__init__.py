"""The lightbulb software stack: SPI driver, LAN9250 driver, application
(paper sections 3, 5.1), their trace specifications, and the program-logic
verification runs."""

from . import constants, lan9250_driver, lightbulb, program, spi_driver
from .program import compiled_lightbulb, lightbulb_program, make_platform

__all__ = ["constants", "spi_driver", "lan9250_driver", "lightbulb",
           "program", "lightbulb_program", "make_platform",
           "compiled_lightbulb"]
