"""The LAN9250 Ethernet device driver, in Bedrock2 (paper Figure 3).

Word-granular register access over SPI (fast-read 0x0B / write 0x02 with
big-endian addresses and little-endian data), the boot "incantations"
(BootSeq in the spec), and frame reception with the *length check* whose
absence made the paper's first prototype remotely exploitable.
"""

from __future__ import annotations

from ..bedrock2.builder import (
    block, call, func, if_, interact, lit, set_, store4, var, while_,
)
from . import constants as C


def make_lan9250_readword():
    # CS hold; send FASTREAD, addr hi, addr lo, dummy; read 4 bytes LSB-first.
    body = block(
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_HOLD)),
        call(("junk", "err"), "spi_xchg", lit(C.CMD_FAST_READ)),
        set_("ret", lit(0)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  (var("addr") >> 8) & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  var("addr") & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg", lit(0))),
        if_(var("err") == 0, block(
            call(("b0", "err"), "spi_xchg", lit(0)),
            if_(var("err") == 0, block(
                call(("b1", "err"), "spi_xchg", lit(0)),
                if_(var("err") == 0, block(
                    call(("b2", "err"), "spi_xchg", lit(0)),
                    if_(var("err") == 0, block(
                        call(("b3", "err"), "spi_xchg", lit(0)),
                        set_("ret", var("b0") | (var("b1") << 8)
                             | (var("b2") << 16) | (var("b3") << 24)),
                    )),
                )),
            )),
        )),
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_AUTO)),
    )
    return func("lan9250_readword", ("addr",), ("ret", "err"), body)


def make_lan9250_writeword():
    body = block(
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_HOLD)),
        call(("junk", "err"), "spi_xchg", lit(C.CMD_WRITE)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  (var("addr") >> 8) & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  var("addr") & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  var("w") & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  (var("w") >> 8) & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  (var("w") >> 16) & 0xFF)),
        if_(var("err") == 0, call(("junk", "err"), "spi_xchg",
                                  (var("w") >> 24) & 0xFF)),
        interact([], "MMIOWRITE", lit(C.SPI_CSMODE_ADDR), lit(C.CSMODE_AUTO)),
    )
    return func("lan9250_writeword", ("addr", "w"), ("err",), body)


def make_lan9250_wait_for_boot():
    # Poll BYTE_TEST until the chip answers 0x87654321 (bounded).
    body = block(
        set_("err", lit(C.ERR_TIMEOUT)),
        set_("i", lit(C.BOOT_PATIENCE)),
        while_(var("i"), block(
            call(("v", "e"), "lan9250_readword", lit(C.LAN_BYTE_TEST)),
            if_(var("e") != 0,
                set_("i", var("i") - 1),
                if_(var("v") == C.BYTE_TEST_VALUE,
                    block(set_("i", lit(0)), set_("err", lit(0))),
                    set_("i", var("i") - 1))),
        )),
    )
    return func("lan9250_wait_for_boot", (), ("err",), body)


def make_lan9250_init():
    # BootSeq: wait for BYTE_TEST, wait for HW_CFG.READY, enable MAC RX.
    body = block(
        call(("err",), "lan9250_wait_for_boot"),
        if_(var("err") == 0, block(
            # Poll HW_CFG until the READY bit rises (bounded).
            set_("err", lit(C.ERR_TIMEOUT)),
            set_("i", lit(C.BOOT_PATIENCE)),
            while_(var("i"), block(
                call(("v", "e"), "lan9250_readword", lit(C.LAN_HW_CFG)),
                if_(var("e") != 0,
                    set_("i", var("i") - 1),
                    if_((var("v") >> C.HW_CFG_READY_BIT) & 1,
                        block(set_("i", lit(0)), set_("err", lit(0))),
                        set_("i", var("i") - 1))),
            )),
        )),
        if_(var("err") == 0, block(
            call(("err",), "lan9250_writeword", lit(C.LAN_MAC_CSR_DATA),
                 lit(C.MAC_CR_RXEN)),
            if_(var("err") == 0,
                call(("err",), "lan9250_writeword", lit(C.LAN_MAC_CSR_CMD),
                     lit(C.MAC_CSR_BUSY | C.MAC_CR))),
        )),
    )
    return func("lan9250_init", (), ("err",), body)


def _recv_body(length_check: bool):
    """Frame reception; ``length_check=False`` reproduces the prototype's
    buffer-overflow bug (a too-large frame overruns the 1520-byte buffer --
    the exploit of paper section 3)."""
    guard = (
        if_(lit(C.RX_BUFFER_BYTES) < var("num_bytes"),
            block(
                # Too large for the buffer: refuse to drain it, and dump the
                # RX FIFOs so the next frame starts aligned (the chip's
                # RX_DUMP recovery bit).
                set_("err", lit(C.ERR_OVERSIZE)),
                call(("dumperr",), "lan9250_writeword", lit(C.LAN_RX_CFG),
                     lit(C.RX_CFG_RX_DUMP)),
            ),
            call(("err",), "lan9250_drain", var("buf"), var("num_bytes")))
        if length_check else
        call(("err",), "lan9250_drain", var("buf"), var("num_bytes"))
    )
    return block(
        set_("num_bytes", lit(0)),
        call(("info", "err"), "lan9250_readword", lit(C.LAN_RX_FIFO_INF)),
        if_(var("err") == 0, block(
            # [23:16] = number of frames waiting in the status FIFO.
            if_((var("info") >> 16) & 0xFF,
                block(
                    call(("status", "err"), "lan9250_readword",
                         lit(C.LAN_RX_STATUS_FIFO)),
                    if_(var("err") == 0, block(
                        set_("num_bytes", (var("status") >> 16) & 0x3FFF),
                        guard,
                    )),
                ),
                set_("err", lit(0))),  # no packet: PollNone
        )),
    )


def make_lan9250_drain():
    # Read ceil(n/4) words of frame data into buf.
    body = block(
        set_("err", lit(0)),
        set_("num_words", (var("n") + 3) >> 2),
        set_("i", lit(0)),
        while_(var("i") < var("num_words"), block(
            call(("w", "e"), "lan9250_readword", lit(C.LAN_RX_DATA_FIFO)),
            if_(var("e") != 0, block(
                set_("err", var("e")),
                set_("i", var("num_words")),  # abort the loop
            ), block(
                store4(var("buf") + (var("i") << 2), var("w")),
                set_("i", var("i") + 1),
            )),
        )),
    )
    return func("lan9250_drain", ("buf", "n"), ("err",), body)


def make_lan9250_tryrecv():
    return func("lan9250_tryrecv", ("buf",), ("num_bytes", "err"),
                _recv_body(length_check=True))


def make_lan9250_tryrecv_buggy():
    """The initial prototype's driver: no bound check before draining the
    frame into the 1520-byte buffer. Kept (clearly marked) so the exploit
    demo and the negative tests can show what the verification rules out."""
    return func("lan9250_tryrecv", ("buf",), ("num_bytes", "err"),
                _recv_body(length_check=False))


def functions(buggy: bool = False):
    recv = make_lan9250_tryrecv_buggy() if buggy else make_lan9250_tryrecv()
    return {
        "lan9250_readword": make_lan9250_readword(),
        "lan9250_writeword": make_lan9250_writeword(),
        "lan9250_wait_for_boot": make_lan9250_wait_for_boot(),
        "lan9250_init": make_lan9250_init(),
        "lan9250_drain": make_lan9250_drain(),
        "lan9250_tryrecv": recv,
    }
