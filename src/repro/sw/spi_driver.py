"""The SPI driver, in Bedrock2 (paper Figure 3, "SPI driver").

Three functions over the FE310-style SPI peripheral:

* ``spi_write(b) -> busy``: poll TXDATA's full flag (with a timeout
  counter), then write the byte; ``busy`` is nonzero on timeout.
* ``spi_read() -> (b, busy)``: poll RXDATA's empty flag, return the byte.
* ``spi_xchg(b) -> (r, busy)``: one synchronous byte exchange -- the
  verified code deliberately interleaves one-byte writes and reads, "the
  simplest specification we could come up with" (section 7.2.1); the
  FE310-pipelined variant lives in `repro.sw.fast` as the unverified
  baseline.
"""

from __future__ import annotations

from ..bedrock2.builder import (
    block, call, func, if_, interact, lit, set_, var, while_,
)
from . import constants as C


def make_spi_write():
    # busy = -1; i = PATIENCE;
    # while i: v = MMIOREAD(TXDATA);
    #   if v >> 31: i -= 1            (still full: keep polling)
    #   else: MMIOWRITE(TXDATA, b); i = 0; busy = 0
    body = block(
        set_("busy", lit(0xFFFFFFFF)),
        set_("i", lit(C.SPI_PATIENCE)),
        while_(var("i"), block(
            interact(["v"], "MMIOREAD", lit(C.SPI_TXDATA_ADDR)),
            if_(var("v") >> 31,
                set_("i", var("i") - 1),
                block(
                    interact([], "MMIOWRITE", lit(C.SPI_TXDATA_ADDR),
                             var("b") & 0xFF),
                    set_("i", lit(0)),
                    set_("busy", lit(0)),
                )),
        )),
    )
    return func("spi_write", ("b",), ("busy",), body)


def make_spi_read():
    # b = 0x5A (recognizable garbage); busy = -1; i = PATIENCE;
    # while i: v = MMIOREAD(RXDATA);
    #   if v >> 31: i -= 1             (empty: keep polling)
    #   else: b = v & 0xFF; i = 0; busy = 0
    body = block(
        set_("b", lit(0x5A)),
        set_("busy", lit(0xFFFFFFFF)),
        set_("i", lit(C.SPI_PATIENCE)),
        while_(var("i"), block(
            interact(["v"], "MMIOREAD", lit(C.SPI_RXDATA_ADDR)),
            if_(var("v") >> 31,
                set_("i", var("i") - 1),
                block(
                    set_("b", var("v") & 0xFF),
                    set_("i", lit(0)),
                    set_("busy", lit(0)),
                )),
        )),
    )
    return func("spi_read", (), ("b", "busy"), body)


def make_spi_xchg():
    # SPI is synchronous: writing a byte shifts one in; exchange = write+read.
    body = block(
        call(("busy",), "spi_write", var("b")),
        set_("r", lit(0)),
        if_(var("busy") == 0,
            call(("r", "busy"), "spi_read")),
    )
    return func("spi_xchg", ("b",), ("r", "busy"), body)


def functions():
    return {
        "spi_write": make_spi_write(),
        "spi_read": make_spi_read(),
        "spi_xchg": make_spi_xchg(),
    }
