"""The single-cycle specification processor (paper section 5.7).

This is the "spec" side of the Kami refinement: one rule executes one whole
instruction per step, using the *same* combinational decode/execute logic
as the pipelined implementation (`repro.kami.decexec`). The pipelined
processor's trace set must be contained in this module's -- checked by
`repro.kami.refinement`.
"""

from __future__ import annotations

from .decexec import decode_signals, exec_instr, load_result
from .framework import Module, RuleAbort
from ..riscv.insts import InvalidInstruction


def make_spec_processor(reset_pc: int = 0, name: str = "spec") -> Module:
    """A Kami module with registers ``pc``/``rf`` and one rule ``execOne``."""
    module = Module(name)
    module.reg("pc", reset_pc)
    module.reg("rf", [0] * 32)

    def exec_one(m: Module) -> None:
        pc = m.regs["pc"]
        raw = m.sys.call("memFetch", pc)
        try:
            dec = decode_signals(raw)
        except InvalidInstruction:
            # No defined behavior: the processor stops making steps (the
            # software-oriented semantics calls this state undefined).
            raise RuleAbort("invalid instruction")
        rf = m.regs["rf"]
        rs1 = rf[dec.src1] if dec.src1 is not None else 0
        rs2 = rf[dec.src2] if dec.src2 is not None else 0
        res = exec_instr(dec, pc, rs1, rs2)
        rd_value = res.rd_value
        if dec.is_load:
            addr = res.mem_addr
            if addr % dec.mem_size != 0:
                raise RuleAbort("misaligned load")
            is_ram = m.sys.call("memIsRam", addr)
            if not is_ram and dec.mem_size != 4:
                raise RuleAbort("sub-word MMIO load")
            word_val = m.sys.call("memRead", addr & 0xFFFFFFFC)
            raw_val = (word_val >> (8 * (addr & 3))) & ((1 << (8 * dec.mem_size)) - 1)
            rd_value = load_result(dec, raw_val)
        elif dec.is_store:
            addr = res.mem_addr
            if addr % dec.mem_size != 0:
                raise RuleAbort("misaligned store")
            shift = addr & 3
            byteen = ((1 << dec.mem_size) - 1) << shift
            data = (res.store_value << (8 * shift)) & 0xFFFFFFFF
            m.sys.call("memWrite", addr & 0xFFFFFFFC, data, byteen)
        if dec.writes_rd and dec.instr.rd != 0 and rd_value is not None:
            rf[dec.instr.rd] = rd_value
        m.regs["pc"] = res.next_pc

    module.rule("execOne", exec_one)
    return module
