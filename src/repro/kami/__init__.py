"""Kami-style hardware: rule-based framework, single-cycle spec processor,
4-stage pipelined processor with I$ and BTB, and refinement checking
(paper sections 5.5, 5.7, 6.4)."""

from . import decexec, framework, memory, pipeline_proc, refinement, spec_proc
from .framework import ExternalWorld, Module, System
from .refinement import build_pipelined_system, build_spec_system, check_refinement

__all__ = ["framework", "decexec", "memory", "spec_proc", "pipeline_proc",
           "refinement", "Module", "System", "ExternalWorld",
           "build_spec_system", "build_pipelined_system", "check_refinement"]
