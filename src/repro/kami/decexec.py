"""Shared combinational decode/execute logic (paper §5.7).

"The combinational-logic functions for decoding and executing instructions
are shared between baseline single-cycle processor spec and the pipelined
implementation, so we were able to extend the ISA and fix bugs in it
without needing to touch a line of proof." -- we reproduce exactly that
structure: `spec_proc` and `pipeline_proc` both call `decode_signals` and
`exec_instr` defined here, and `tests/test_kami_isa_consistency.py` checks
this logic against the software-oriented ISA semantics of `repro.riscv`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bedrock2 import word
from ..riscv.decode import decode
from ..riscv.insts import Instr


@dataclass(frozen=True)
class DecodedInstr:
    """Control signals for one instruction."""

    instr: Instr
    is_load: bool
    is_store: bool
    mem_size: int  # 1/2/4, meaningful when is_load/is_store
    load_signed: bool
    is_branch: bool
    is_jump: bool
    writes_rd: bool
    src1: Optional[int]
    src2: Optional[int]


_LOADS = {"lb": (1, True), "lbu": (1, False), "lh": (2, True),
          "lhu": (2, False), "lw": (4, False)}
_STORES = {"sb": 1, "sh": 2, "sw": 4}
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def decode_signals(raw: int) -> DecodedInstr:
    """Decode a raw instruction word into control signals.

    Raises `InvalidInstruction` like the ISA decoder -- an invalid word in
    the instruction stream is outside both models' defined behavior."""
    instr = decode(raw)
    name = instr.name
    is_load = name in _LOADS
    is_store = name in _STORES
    mem_size, load_signed = _LOADS.get(name, (_STORES.get(name, 0), False))
    is_branch = name in _BRANCHES
    is_jump = name in ("jal", "jalr")
    writes_rd = instr.rd is not None and not is_store and not is_branch
    return DecodedInstr(
        instr=instr,
        is_load=is_load,
        is_store=is_store,
        mem_size=mem_size,
        load_signed=load_signed,
        is_branch=is_branch,
        is_jump=is_jump,
        writes_rd=writes_rd,
        src1=instr.rs1,
        src2=instr.rs2,
    )


@dataclass(frozen=True)
class ExecResult:
    """Outcome of the EX stage for one instruction."""

    next_pc: int
    rd_value: Optional[int]     # value to write back (None for stores/branches)
    mem_addr: Optional[int]     # effective address for loads/stores
    store_value: Optional[int]  # value to store (masked to mem_size)
    taken: bool                 # branch/jump redirected control flow


def exec_instr(dec: DecodedInstr, pc: int, rs1_val: int,
               rs2_val: int) -> ExecResult:
    """The shared EX-stage combinational function.

    For loads, ``rd_value`` is None here: it is produced by the memory stage
    (`load_result` finishes the job). Misaligned accesses and misaligned
    branch targets are left to the memory/ISA layer; the processors pass
    addresses through byte-enable logic that wraps like real BRAM."""
    instr = dec.instr
    name = instr.name
    imm = instr.imm
    next_pc = word.add(pc, 4)
    rd_value: Optional[int] = None
    mem_addr: Optional[int] = None
    store_value: Optional[int] = None
    taken = False

    if dec.is_load:
        mem_addr = word.add(rs1_val, word.wrap(imm))
    elif dec.is_store:
        mem_addr = word.add(rs1_val, word.wrap(imm))
        store_value = rs2_val & ((1 << (8 * dec.mem_size)) - 1)
    elif dec.is_branch:
        taken = {
            "beq": rs1_val == rs2_val,
            "bne": rs1_val != rs2_val,
            "blt": word.signed(rs1_val) < word.signed(rs2_val),
            "bge": word.signed(rs1_val) >= word.signed(rs2_val),
            "bltu": rs1_val < rs2_val,
            "bgeu": rs1_val >= rs2_val,
        }[name]
        if taken:
            next_pc = word.add(pc, word.wrap(imm))
    elif name == "jal":
        rd_value = next_pc
        next_pc = word.add(pc, word.wrap(imm))
        taken = True
    elif name == "jalr":
        rd_value = next_pc
        next_pc = word.and_(word.add(rs1_val, word.wrap(imm)), 0xFFFFFFFE)
        taken = True
    elif name == "lui":
        rd_value = word.wrap(imm << 12)
    elif name == "auipc":
        rd_value = word.add(pc, word.wrap(imm << 12))
    else:
        rd_value = _alu(name, rs1_val, rs2_val, imm)
    return ExecResult(next_pc=next_pc, rd_value=rd_value, mem_addr=mem_addr,
                      store_value=store_value, taken=taken)


def _alu(name: str, a: int, b: int, imm: Optional[int]) -> int:
    if name == "add":
        return word.add(a, b)
    if name == "sub":
        return word.sub(a, b)
    if name == "sll":
        return word.sll(a, b & 31)
    if name == "slt":
        return word.lts(a, b)
    if name == "sltu":
        return word.ltu(a, b)
    if name == "xor":
        return word.xor(a, b)
    if name == "srl":
        return word.srl(a, b & 31)
    if name == "sra":
        return word.sra(a, b & 31)
    if name == "or":
        return word.or_(a, b)
    if name == "and":
        return word.and_(a, b)
    if name == "mul":
        return word.mul(a, b)
    if name == "mulh":
        return word.wrap((word.signed(a) * word.signed(b)) >> 32)
    if name == "mulhsu":
        return word.wrap((word.signed(a) * b) >> 32)
    if name == "mulhu":
        return word.mulhuu(a, b)
    if name == "div":
        return word.divs(a, b)
    if name == "divu":
        return word.divu(a, b)
    if name == "rem":
        return word.rems(a, b)
    if name == "remu":
        return word.remu(a, b)
    i = word.wrap(imm)
    if name == "addi":
        return word.add(a, i)
    if name == "slti":
        return word.lts(a, i)
    if name == "sltiu":
        return word.ltu(a, i)
    if name == "xori":
        return word.xor(a, i)
    if name == "ori":
        return word.or_(a, i)
    if name == "andi":
        return word.and_(a, i)
    if name == "slli":
        return word.sll(a, imm)
    if name == "srli":
        return word.srl(a, imm)
    if name == "srai":
        return word.sra(a, imm)
    raise ValueError("not an ALU instruction: %r" % name)


def load_result(dec: DecodedInstr, raw: int) -> int:
    """Finish a load: sign/zero extension of the memory response."""
    if dec.load_signed:
        return word.wrap(word.signed(raw, 8 * dec.mem_size))
    return raw & ((1 << (8 * dec.mem_size)) - 1)
