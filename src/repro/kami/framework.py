"""A Kami-style rule-based hardware description framework (paper §5.7).

Kami models hardware as modules with private registers, *rules* that make
atomic state changes, and *methods* other modules (or the external world)
may call. Its semantic anchor is one-rule-at-a-time execution: any
concurrent hardware schedule is equivalent to firing rules one by one.

This module reproduces that discipline executably:

* a `Module` owns registers and rules; rules read/write registers and call
  methods;
* method calls that resolve to a sibling module's method run atomically
  within the same rule step (Kami's method inlining);
* method calls with no provider are *external*: they are answered by an
  `ExternalWorld` (our device models) and recorded in the step's label --
  the trace the refinement theorem speaks about;
* the `Scheduler` fires one enabled rule per step, using a deterministic
  priority order (a legal schedule; any schedule's trace set is contained
  in the nondeterministic semantics, which is what trace containment needs).

`tests/test_kami_framework.py` checks the atomicity and labeling rules;
the processors in `spec_proc`/`pipeline_proc` are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs

# Observability: a "stall" is one disabled-rule attempt (RuleAbort) -- the
# executable analogue of a pipeline stage waiting on a FIFO/scoreboard.
_STALLS = obs.counter("kami.stalls")
_STEPS = obs.counter("kami.rules_fired")
_EXT_CALLS = obs.counter("kami.external_calls")


@dataclass(frozen=True)
class MethodCall:
    """One labeled external method call: (method name, args, result)."""

    method: str
    args: Tuple[int, ...]
    result: Optional[int]


@dataclass(frozen=True)
class StepLabel:
    """The label of one Kami step: which rule fired, and the external
    method calls it made (the observable behavior)."""

    rule: str
    calls: Tuple[MethodCall, ...]


class RuleAbort(Exception):
    """Raised inside a rule body to signal the rule is not enabled under the
    current state (its guard failed mid-computation). The step is rolled
    back -- Kami rules are atomic."""


class ExternalWorld:
    """Answers method calls that no module provides (devices, memory)."""

    def call(self, method: str, args: Tuple[int, ...]) -> Optional[int]:
        raise KeyError("no provider for external method %r" % method)


class Module:
    """A hardware module: registers + rules + methods.

    Registers hold ints or lists of ints (register files, FIFOs). Rules are
    ``fn(m)`` callables registered with `rule`; methods are ``fn(m, *args)``
    callables registered with `method`.
    """

    def __init__(self, name: str):
        self.name = name
        self.regs: Dict[str, object] = {}
        self.rules: List[Tuple[str, Callable]] = []
        self.methods: Dict[str, Callable] = {}

    def reg(self, name: str, init) -> None:
        self.regs[name] = init

    def rule(self, name: str, fn: Callable) -> None:
        self.rules.append((name, fn))

    def method(self, name: str, fn: Callable) -> None:
        self.methods[name] = fn


class System:
    """A composition of modules plus the external world.

    Implements the labeled transition system: `step` fires at most one rule
    and returns its label (or None if no rule is enabled). The trace is the
    list of labels with at least one external call -- silent steps are
    invisible, as in the paper's trace definition.
    """

    def __init__(self, modules: Sequence[Module], external: ExternalWorld,
                 rule_order: Optional[Sequence[str]] = None,
                 snapshot_rollback: bool = True):
        """``snapshot_rollback=False`` skips the per-attempt register
        snapshot; it is sound exactly when every rule raises `RuleAbort`
        only *before* its first state mutation (guards precede effects).
        The processor modules are written in that discipline and are run
        this way for simulation speed; `tests/test_kami_processors.py`
        cross-checks both modes agree."""
        self.modules = list(modules)
        self.external = external
        self.snapshot_rollback = snapshot_rollback
        for module in self.modules:
            module.sys = self  # rule/method bodies dispatch through the system
        self._methods: Dict[str, Tuple[Module, Callable]] = {}
        for module in self.modules:
            for mname, fn in module.methods.items():
                if mname in self._methods:
                    raise ValueError("duplicate method %r" % mname)
                self._methods[mname] = (module, fn)
        self._rules: List[Tuple[str, Module, Callable]] = []
        for module in self.modules:
            for rname, fn in module.rules:
                self._rules.append(("%s.%s" % (module.name, rname), module, fn))
        if rule_order is not None:
            by_name = {name: (name, m, f) for name, m, f in self._rules}
            if set(by_name) != set(rule_order):
                raise ValueError("rule_order must mention every rule exactly once")
            self._rules = [by_name[n] for n in rule_order]
        self.trace: List[StepLabel] = []
        self.steps_taken = 0
        self._pending_calls: List[MethodCall] = []
        self._next_rule = 0

    # -- method dispatch (used by rule bodies) ----------------------------------

    def call(self, method: str, *args: int) -> Optional[int]:
        """Call a method: inlined if a module provides it, external (and
        labeled) otherwise."""
        provider = self._methods.get(method)
        if provider is not None:
            module, fn = provider
            return fn(module, *args)
        result = self.external.call(method, tuple(args))
        self._pending_calls.append(MethodCall(method, tuple(args), result))
        return result

    # -- stepping -----------------------------------------------------------------

    def _try_rule(self, name: str, module: Module,
                  fn: Callable) -> Optional[StepLabel]:
        if self.snapshot_rollback:
            snapshots = [(m, _snapshot_regs(m.regs)) for m in self.modules]
        self._pending_calls = []
        try:
            fn(module)
        except RuleAbort:
            _STALLS.inc()
            if self.snapshot_rollback:
                for m, snap in snapshots:
                    m.regs = snap
            if self._pending_calls:
                # Device state cannot be rolled back; rules must evaluate
                # their guards before performing external calls.
                raise RuntimeError(
                    "rule %r aborted after making external calls; "
                    "guards must precede effects" % name)
            return None
        label = StepLabel(name, tuple(self._pending_calls))
        _STEPS.inc()
        if label.calls:
            _EXT_CALLS.inc(len(label.calls))
        if obs.ENABLED:
            obs.counter("kami.rule." + name).inc()
        self._pending_calls = []
        return label

    def step(self) -> Optional[StepLabel]:
        """Fire the highest-priority enabled rule (round-robin start)."""
        n = len(self._rules)
        for k in range(n):
            idx = (self._next_rule + k) % n
            name, module, fn = self._rules[idx]
            label = self._try_rule(name, module, fn)
            if label is not None:
                self._next_rule = (idx + 1) % n
                self.steps_taken += 1
                if label.calls:
                    self.trace.append(label)
                return label
        return None

    def cycle(self) -> int:
        """One hardware-like cycle: attempt every rule once, in priority
        order, against the sequentially-updated state.

        Kami's one-rule-at-a-time theorem is exactly what makes this
        schedule legal: firing several rules within a cycle is equivalent
        to some sequence of single-rule steps. Used by the performance
        benchmarks, where cycles (not rule firings) are the observable."""
        fired = 0
        for name, module, fn in self._rules:
            label = self._try_rule(name, module, fn)
            if label is not None:
                fired += 1
                self.steps_taken += 1
                if label.calls:
                    self.trace.append(label)
        return fired

    def run_cycles(self, max_cycles: int,
                   stop: Optional[Callable[["System"], bool]] = None) -> int:
        """Run whole cycles; returns the number of cycles executed."""
        with obs.span("kami.run_cycles", cat="kami",
                      args={"max_cycles": max_cycles}):
            for i in range(max_cycles):
                if stop is not None and stop(self):
                    return i
                if self.cycle() == 0:
                    return i
            return max_cycles

    def run(self, max_steps: int,
            stop: Optional[Callable[["System"], bool]] = None) -> int:
        """Step until quiescent, ``stop`` holds, or the budget runs out."""
        with obs.span("kami.run", cat="kami", args={"max_steps": max_steps}):
            for i in range(max_steps):
                if stop is not None and stop(self):
                    return i
                if self.step() is None:
                    return i
            return max_steps

    def mmio_trace(self) -> List[Tuple[str, int, int]]:
        """Project the label trace onto MMIO triples (paper §5.9's
        ``KamiLabelSeqR``): mmioRead -> ("ld", a, v), mmioWrite -> ("st", a, v)."""
        out = []
        for label in self.trace:
            for call in label.calls:
                if call.method == "mmioRead":
                    out.append(("ld", call.args[0], call.result))
                elif call.method == "mmioWrite":
                    out.append(("st", call.args[0], call.args[1]))
        return out


def _snapshot_regs(regs: Dict[str, object]) -> Dict[str, object]:
    snap: Dict[str, object] = {}
    for key, value in regs.items():
        if isinstance(value, list):
            snap[key] = list(value)
        elif isinstance(value, dict):
            snap[key] = dict(value)
        else:
            snap[key] = value
    return snap


class Fifo:
    """A bounded FIFO queue register helper (the ■ boxes of paper Fig. 4).

    Stored in a module register as a plain list; these helpers raise
    `RuleAbort` on enq-when-full / deq-when-empty, so rules using them are
    correctly disabled and rolled back."""

    def __init__(self, module: Module, name: str, capacity: int):
        self.module = module
        self.name = name
        self.capacity = capacity
        module.reg(name, [])

    def _queue(self) -> list:
        return self.module.regs[self.name]

    def enq(self, item) -> None:
        q = self._queue()
        if len(q) >= self.capacity:
            raise RuleAbort("%s full" % self.name)
        q.append(item)

    def deq(self):
        q = self._queue()
        if not q:
            raise RuleAbort("%s empty" % self.name)
        return q.pop(0)

    def first(self):
        q = self._queue()
        if not q:
            raise RuleAbort("%s empty" % self.name)
        return q[0]

    def clear(self) -> None:
        self.module.regs[self.name] = []

    def empty(self) -> bool:
        return not self._queue()

    def full(self) -> bool:
        return len(self._queue()) >= self.capacity
