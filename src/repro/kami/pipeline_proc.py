"""The four-stage pipelined Kami processor (paper Figure 4, section 5.5).

Reproduces the paper's processor structure: IF / ID / EX / WB stages
connected by FIFOs, an instruction cache filled eagerly from main memory at
reset (the paper's addition for running programs from BRAM), a branch
target buffer (BTB) for prediction, an epoch bit for squashing wrong-path
instructions, and a scoreboard for RAW hazards. Byte-enable signals on the
memory interface support ``lb``/``sb`` (the paper added these to reconcile
the processor with RV32I).

Decode and execute use the same combinational functions as the single-cycle
spec (`repro.kami.decexec`) -- the sharing the paper leverages so ISA fixes
never touch the refinement proof. The stale-instruction hazard of section
5.6 is faithfully present: stores do *not* update the instruction cache, so
self-modifying code diverges from the spec -- which is exactly why the
compiler proves an XAddrs discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .decexec import DecodedInstr, decode_signals, exec_instr, load_result
from .framework import Fifo, Module, RuleAbort
from .. import obs
from ..riscv.insts import InvalidInstruction

# Observability: mispredict recoveries (epoch flips) and the wrong-path
# instructions they squash -- the pipeline-health counters surfaced by
# `python -m repro stats`. Under `obs.ENABLED`, per-event trace instants
# (p4mm.stall / p4mm.squash / p4mm.redirect / p4mm.mmio) put the
# hardware-side activity on the same timeline as the software layers.
_FLUSHES = obs.counter("kami.pipeline_flushes")
_SQUASHES = obs.counter("kami.squashed_instructions")
_RETIRED = obs.counter("kami.instructions_retired")


@dataclass
class F2D:
    pc: int
    pred: int
    epoch: int
    raw: int


@dataclass
class D2E:
    pc: int
    pred: int
    epoch: int
    dec: DecodedInstr
    rs1: int
    rs2: int


@dataclass
class E2W:
    rd: Optional[int]
    value: Optional[int]


def make_pipelined_processor(reset_pc: int = 0, icache_words: int = 4096,
                             fifo_depth: int = 2, btb_enabled: bool = True,
                             name: str = "p4mm") -> Module:
    """The paper's ``p4mm``: pipelined processor + I$ + BTB.

    ``icache_words`` bounds the executable program region: at reset the
    fill engine copies that many words from main memory into FPGA-BRAM-like
    cache storage, after which fetch never touches main memory again.
    """
    module = Module(name)
    module.reg("pc", reset_pc)
    module.reg("epoch", 0)
    module.reg("rf", [0] * 32)
    module.reg("scoreboard", {})  # rd -> outstanding write count
    module.reg("btb", {})         # pc -> predicted next pc
    module.reg("icache", [0] * icache_words)
    module.reg("fill_idx", 0)
    module.reg("icache_ready", 0)
    f2d = Fifo(module, "f2d", fifo_depth)
    d2e = Fifo(module, "d2e", fifo_depth)
    e2w = Fifo(module, "e2w", fifo_depth)

    def fill(m: Module) -> None:
        """Eager I$ fill from main memory upon reset (paper §5.5)."""
        if m.regs["icache_ready"]:
            raise RuleAbort("fill done")
        idx = m.regs["fill_idx"]
        m.regs["icache"][idx] = m.sys.call("memFetch", idx * 4)
        idx += 1
        m.regs["fill_idx"] = idx
        if idx >= icache_words:
            m.regs["icache_ready"] = 1

    def fetch(m: Module) -> None:
        if not m.regs["icache_ready"]:
            raise RuleAbort("icache not ready")
        if f2d.full():
            raise RuleAbort("f2d full")
        pc = m.regs["pc"]
        if (pc >> 2) >= icache_words or pc % 4 != 0:
            raise RuleAbort("pc outside instruction cache")
        raw = m.regs["icache"][pc >> 2]
        if btb_enabled:
            pred = m.regs["btb"].get(pc, (pc + 4) & 0xFFFFFFFF)
        else:
            pred = (pc + 4) & 0xFFFFFFFF  # ablation: always predict fallthrough
        f2d.enq(F2D(pc=pc, pred=pred, epoch=m.regs["epoch"], raw=raw))
        m.regs["pc"] = pred

    def stage_decode(m: Module) -> None:
        entry: F2D = f2d.first()
        if entry.epoch != m.regs["epoch"]:
            f2d.deq()  # squashed in flight: drop silently
            _SQUASHES.inc()
            if obs.ENABLED:
                obs.instant("p4mm.squash", cat="kami",
                            args={"stage": "decode", "pc": entry.pc})
            return
        try:
            dec = decode_signals(entry.raw)
        except InvalidInstruction:
            raise RuleAbort("invalid instruction reached decode")
        sb = m.regs["scoreboard"]
        # RAW hazards: wait for outstanding writes to sources; also WAW on rd.
        for reg in (dec.src1, dec.src2,
                    dec.instr.rd if dec.writes_rd else None):
            if reg is not None and sb.get(reg, 0) > 0:
                if obs.ENABLED:
                    obs.instant("p4mm.stall", cat="kami",
                                args={"pc": entry.pc, "reg": reg})
                raise RuleAbort("scoreboard hazard on x%d" % reg)
        if d2e.full():
            raise RuleAbort("d2e full")
        f2d.deq()
        rf = m.regs["rf"]
        rs1 = rf[dec.src1] if dec.src1 is not None else 0
        rs2 = rf[dec.src2] if dec.src2 is not None else 0
        if dec.writes_rd and dec.instr.rd != 0:
            sb[dec.instr.rd] = sb.get(dec.instr.rd, 0) + 1
        d2e.enq(D2E(pc=entry.pc, pred=entry.pred, epoch=entry.epoch,
                    dec=dec, rs1=rs1, rs2=rs2))

    def stage_execute(m: Module) -> None:
        entry: D2E = d2e.first()
        dec = entry.dec
        sb = m.regs["scoreboard"]
        if entry.epoch != m.regs["epoch"]:
            d2e.deq()
            _SQUASHES.inc()
            if obs.ENABLED:
                obs.instant("p4mm.squash", cat="kami",
                            args={"stage": "execute", "pc": entry.pc})
            if dec.writes_rd and dec.instr.rd != 0:
                sb[dec.instr.rd] = sb.get(dec.instr.rd, 0) - 1
            return
        if e2w.full():
            raise RuleAbort("e2w full")
        res = exec_instr(dec, entry.pc, entry.rs1, entry.rs2)
        rd_value = res.rd_value
        # Guards precede effects: alignment checks before any memory call.
        if dec.is_load or dec.is_store:
            if res.mem_addr % dec.mem_size != 0:
                raise RuleAbort("misaligned access")
        is_ram = None
        if dec.is_load:
            is_ram = m.sys.call("memIsRam", res.mem_addr)
            if not is_ram and dec.mem_size != 4:
                raise RuleAbort("sub-word MMIO load")
        d2e.deq()
        if dec.is_load:
            if obs.ENABLED and not is_ram:
                obs.instant("p4mm.mmio", cat="kami",
                            args={"op": "read", "addr": res.mem_addr})
            word_val = m.sys.call("memRead", res.mem_addr & 0xFFFFFFFC)
            shift = res.mem_addr & 3
            raw_val = (word_val >> (8 * shift)) & ((1 << (8 * dec.mem_size)) - 1)
            rd_value = load_result(dec, raw_val)
        elif dec.is_store:
            if (obs.ENABLED and "memIsRam" in m.sys._methods
                    and not m.sys.call("memIsRam", res.mem_addr)):
                # Only when memIsRam is a provided (inlined, unlabeled)
                # module method -- an external fallback call would land
                # in the step label and perturb the refinement trace.
                obs.instant("p4mm.mmio", cat="kami",
                            args={"op": "write", "addr": res.mem_addr})
            shift = res.mem_addr & 3
            byteen = ((1 << dec.mem_size) - 1) << shift
            data = (res.store_value << (8 * shift)) & 0xFFFFFFFF
            m.sys.call("memWrite", res.mem_addr & 0xFFFFFFFC, data, byteen)
        if res.next_pc != entry.pred:
            # Mispredict: flip the epoch, redirect fetch, train the BTB.
            _FLUSHES.inc()
            if obs.ENABLED:
                obs.instant("p4mm.redirect", cat="kami",
                            args={"pc": entry.pc, "target": res.next_pc})
            m.regs["epoch"] ^= 1
            m.regs["pc"] = res.next_pc
            if btb_enabled:
                btb = m.regs["btb"]
                if res.taken:
                    btb[entry.pc] = res.next_pc
                else:
                    btb.pop(entry.pc, None)
        e2w.enq(E2W(rd=dec.instr.rd if dec.writes_rd else None,
                    value=rd_value))

    def stage_writeback(m: Module) -> None:
        entry: E2W = e2w.deq()
        _RETIRED.inc()
        if entry.rd is not None:
            if entry.rd != 0 and entry.value is not None:
                m.regs["rf"][entry.rd] = entry.value
            sb = m.regs["scoreboard"]
            sb[entry.rd] = sb.get(entry.rd, 0) - 1

    # Priority order: drain the back of the pipe first so FIFOs make room.
    module.rule("writeback", stage_writeback)
    module.rule("execute", stage_execute)
    module.rule("decode", stage_decode)
    module.rule("fetch", fetch)
    module.rule("fill", fill)
    return module
