"""The Kami memory + MMIO module (paper sections 5.5, 6.4).

"The processor itself does not distinguish ordinary memory operations from
MMIO. When the memory module is attached, it handles the loads and stores
to memory addresses but makes designated external method calls for the
rest." -- this module reproduces that factoring: it provides ``memFetch``,
``memRead`` and ``memWrite`` (word-wide, with byte enables, like the FPGA
BRAM the paper added byte-enable signals for); requests outside the RAM
range are forwarded to the external methods ``mmioRead``/``mmioWrite``,
which is where the system's observable trace is produced.

As in Kami (paper §5.8), RAM addressing has no undefined behavior: the word
index wraps modulo the RAM size.
"""

from __future__ import annotations

from .framework import Module, RuleAbort


def make_memory_module(image: bytes, ram_words: int = 1 << 18,
                       name: str = "mem") -> Module:
    """A word-addressed BRAM initialized with ``image`` at address 0.

    ``ram_words`` words of 4 bytes; addresses with word index >= ram_words
    are treated as MMIO and forwarded externally.
    """
    module = Module(name)
    words = [0] * ram_words
    for i in range(0, len(image), 4):
        chunk = image[i:i + 4].ljust(4, b"\x00")
        words[i // 4] = int.from_bytes(chunk, "little")
    module.reg("ram", words)
    module.reg("ram_words", ram_words)

    def is_ram(m: Module, addr: int) -> bool:
        return (addr >> 2) < m.regs["ram_words"]

    def mem_fetch(m: Module, addr: int) -> int:
        # Instruction fetches wrap modulo the RAM size (Kami-style).
        return m.regs["ram"][(addr >> 2) % m.regs["ram_words"]]

    def mem_read(m: Module, addr: int) -> int:
        if not is_ram(m, addr):
            return m.sys.call("mmioRead", addr & 0xFFFFFFFC)
        return m.regs["ram"][addr >> 2]

    def mem_write(m: Module, addr: int, data: int, byteen: int) -> None:
        if not is_ram(m, addr):
            if byteen != 0b1111:
                # Sub-word MMIO is not a defined operation on this platform;
                # the rule performing it is simply never enabled.
                raise RuleAbort("sub-word MMIO store")
            m.sys.call("mmioWrite", addr & 0xFFFFFFFC, data)
            return None
        idx = addr >> 2
        old = m.regs["ram"][idx]
        new = 0
        for b in range(4):
            if (byteen >> b) & 1:
                new |= data & (0xFF << (8 * b))
            else:
                new |= old & (0xFF << (8 * b))
        m.regs["ram"][idx] = new
        return None

    def is_ram_method(m: Module, addr: int) -> int:
        return 1 if is_ram(m, addr) else 0

    module.method("memFetch", mem_fetch)
    module.method("memRead", mem_read)
    module.method("memWrite", mem_write)
    module.method("memIsRam", is_ram_method)
    return module


def ram_snapshot(module: Module) -> list:
    """The RAM word array (for icache-consistency checks)."""
    return list(module.regs["ram"])
