"""Trace-containment refinement checking (paper section 5.7).

The paper proves the pipelined processor refines the single-cycle spec:
every trace of the implementation is a trace of the spec. Our executable
analogue runs both processors against *independent copies* of the same
deterministic external world and checks that the implementation's MMIO
label trace is a prefix of (or equal to) the spec's.

Determinism makes this sound and complete for a given world: the spec,
being single-cycle and deterministic, has exactly one trace per world, so
prefix-of-that-trace is precisely trace containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .. import obs
from .framework import ExternalWorld, System
from .memory import make_memory_module
from .pipeline_proc import make_pipelined_processor
from .spec_proc import make_spec_processor

_REFINEMENT_CHECKS = obs.counter("kami.refinement_checks")
_REFINEMENT_EVENTS = obs.counter("kami.refinement_events_compared")


@dataclass
class RefinementResult:
    ok: bool
    impl_trace: List[Tuple[str, int, int]]
    spec_trace: List[Tuple[str, int, int]]
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def match_trace_prefix(impl_trace: List[Tuple[str, int, int]],
                       spec_trace: List[Tuple[str, int, int]],
                       ) -> RefinementResult:
    """Check ``impl_trace`` is a prefix of (or equal to) ``spec_trace``.

    Pure trace containment, shared by `check_refinement` and the
    differential fuzzing oracle (`repro.fuzz.oracle`): on mismatch the
    result's ``detail`` pinpoints the first diverging event; an
    implementation trace longer than the spec's is also a failure (the
    impl produced events the spec never could)."""
    if spec_trace[:len(impl_trace)] == impl_trace:
        return RefinementResult(True, impl_trace, spec_trace)
    for i, (a, b) in enumerate(zip(impl_trace, spec_trace)):
        if a != b:
            return RefinementResult(
                False, impl_trace, spec_trace,
                "divergence at event %d: impl %r vs spec %r" % (i, a, b))
    return RefinementResult(
        False, impl_trace, spec_trace,
        "impl trace longer than spec could produce")


def build_spec_system(image: bytes, world: ExternalWorld,
                      ram_words: int = 1 << 16,
                      snapshot_rollback: bool = False) -> System:
    """Single-cycle spec processor attached to memory and ``world``.

    The processor rules follow the guards-before-effects discipline, so the
    fast no-snapshot scheduler is sound (see `repro.kami.framework.System`)."""
    mem = make_memory_module(image, ram_words=ram_words)
    proc = make_spec_processor()
    return System([proc, mem], world, snapshot_rollback=snapshot_rollback)


def build_pipelined_system(image: bytes, world: ExternalWorld,
                           ram_words: int = 1 << 16,
                           icache_words: int = 4096,
                           snapshot_rollback: bool = False) -> System:
    """The paper's p4mm: pipelined processor + I$ + BTB + memory."""
    mem = make_memory_module(image, ram_words=ram_words)
    proc = make_pipelined_processor(icache_words=icache_words)
    return System([proc, mem], world, snapshot_rollback=snapshot_rollback)


def check_refinement(image: bytes, make_world: Callable[[], ExternalWorld],
                     impl_steps: int, ram_words: int = 1 << 16,
                     icache_words: int = 1024,
                     spec_step_budget: Optional[int] = None) -> RefinementResult:
    """Run the pipelined implementation for ``impl_steps`` Kami steps and
    check its MMIO trace is a prefix of the spec's trace on the same world.

    ``make_world`` must construct a fresh, deterministic external world
    each call (both processors get their own copy).
    """
    _REFINEMENT_CHECKS.inc()
    with obs.span("kami.refinement_check", cat="kami",
                  args={"impl_steps": impl_steps}):
        impl = build_pipelined_system(image, make_world(),
                                      ram_words=ram_words,
                                      icache_words=icache_words)
        impl.run(impl_steps)
        impl_trace = impl.mmio_trace()

        spec = build_spec_system(image, make_world(), ram_words=ram_words)
        budget = (spec_step_budget if spec_step_budget is not None
                  else impl_steps)

        def spec_caught_up(system: System) -> bool:
            return len(system.mmio_trace()) >= len(impl_trace)

        spec.run(budget, stop=spec_caught_up)
        spec_trace = spec.mmio_trace()
    _REFINEMENT_EVENTS.inc(len(impl_trace))

    return match_trace_prefix(impl_trace, spec_trace)
