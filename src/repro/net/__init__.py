"""The fleet simulator: a discrete-event network fabric driving many
verified nodes under adversarial link conditions.

The paper's end-to-end theorem is about one lightbulb answering one
Ethernet stream; the ROADMAP north star is a production-scale system,
which means many simulated devices behind a real network fabric. This
package provides that workload layer on top of everything below it:

* `repro.net.sim`      -- deterministic discrete-event scheduler;
* `repro.net.switch`   -- virtual Ethernet switch (MAC learning,
  flooding, bounded per-port egress queues with overflow accounting);
* `repro.net.faults`   -- fault-injecting links (drop / duplicate /
  reorder / delay / bit-flip) with per-link seeded profiles;
* `repro.net.node`     -- one verified device: fast-engine
  `RiscvMachine` + full `platform` stack + an online trace-spec check;
* `repro.net.workload` -- open-loop traffic generators built on
  `platform.net` (valid command storms and adversarial mixes);
* `repro.net.fleet`    -- the runner: wires fabric + nodes together,
  shards node groups across worker processes (``--jobs N``) with a
  deterministic merge, and produces the byte-identical fleet report.

The claim being exercised at scale: every node's MMIO trace stays a
prefix of its `goodHlTrace`/`goodLockTrace` no matter what the network
does to the frames (the paper's prefix-closure reading of security).
"""

from .faults import PROFILES, FaultProfile, FaultyLink
from .fleet import run_fleet
from .node import Node
from .sim import Simulator, derive_rng
from .switch import EthernetSwitch

__all__ = [
    "PROFILES", "FaultProfile", "FaultyLink", "run_fleet", "Node",
    "Simulator", "derive_rng", "EthernetSwitch",
]
