"""One fleet node: a verified device behind a NIC on the fabric.

Each `Node` is the full vertical stack of the paper -- the compiled
application image (lightbulb or doorlock) on the fast-engine
`RiscvMachine`, attached to its own `platform` instance (SPI + LAN9250 +
GPIO on the MMIO bus) -- plus the thing the fleet exists to check: an
`OnlineChecker` holding the node's trace specification, consulted as the
scheduler interleaves the node's step quanta.

A False verdict from the incremental checker is always confirmed against
the full ``prefix_of`` before being reported; if the two ever disagree
the run aborts loudly (that would be a checker bug, not a spec
violation).
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import obs
from ..compiler import CompiledProgram, compile_program
from ..riscv.machine import RiscvMachine, RiscvUB
from ..sw import constants as C
from ..sw.doorlock import DEFAULT_PIN, LOCK_PIN, doorlock_program
from ..sw.doorlock_spec import good_lock_trace
from ..sw.program import Platform, compiled_lightbulb, make_platform
from ..sw.specs import good_hl_trace
from ..traces.online import OnlineChecker
from ..traces.predicates import TracePred

LIGHTBULB = "lightbulb"
DOORLOCK = "doorlock"
KINDS = (LIGHTBULB, DOORLOCK)

_SPEC_CHECKS = obs.counter("net.spec_checks")
_SPEC_VIOLATIONS = obs.counter("net.spec_violations")

_DOORLOCK_CACHE: Dict[int, CompiledProgram] = {}


def node_mac(index: int) -> bytes:
    """A locally-administered MAC per node index (02:52:50 = "RP")."""
    return bytes((0x02, 0x52, 0x50, 0x00, (index >> 8) & 0xFF, index & 0xFF))


def compiled_image(kind: str) -> CompiledProgram:
    if kind == LIGHTBULB:
        return compiled_lightbulb(stack_top=1 << 16)
    if kind == DOORLOCK:
        if 0 not in _DOORLOCK_CACHE:
            _DOORLOCK_CACHE[0] = compile_program(
                doorlock_program(), entry="main", stack_top=1 << 16)
        return _DOORLOCK_CACHE[0]
    raise ValueError("unknown node kind %r" % kind)


def spec_for(kind: str) -> TracePred:
    if kind == LIGHTBULB:
        return good_hl_trace()
    if kind == DOORLOCK:
        return good_lock_trace(DEFAULT_PIN)
    raise ValueError("unknown node kind %r" % kind)


def actuator_pin(kind: str) -> int:
    return C.LIGHTBULB_PIN if kind == LIGHTBULB else LOCK_PIN


class Node:
    def __init__(self, index: int, kind: str) -> None:
        if kind not in KINDS:
            raise ValueError("unknown node kind %r" % kind)
        self.index = index
        self.kind = kind
        self.mac = node_mac(index)
        self.platform: Platform = make_platform()
        compiled = compiled_image(kind)
        self.machine = RiscvMachine.with_program(
            compiled.image, mem_size=1 << 16, mmio_bus=self.platform.bus,
            fast=True)
        self.spec = spec_for(kind)
        self.checker = OnlineChecker(self.spec)
        self.frames_delivered = 0
        self.frames_accepted = 0
        self.spec_checks = 0
        self.ok = True
        self.violation: Optional[str] = None
        self.error: Optional[str] = None
        self._checked_len = -1

    # -- fabric side ---------------------------------------------------------

    def deliver(self, frame: bytes) -> None:
        """The switch delivering one frame to this node's NIC."""
        self.frames_delivered += 1
        if self.platform.lan.inject_frame(frame):
            self.frames_accepted += 1

    # -- scheduler side ------------------------------------------------------

    def run(self, steps: int) -> int:
        """Execute up to ``steps`` instructions; a machine fault (RV32IM
        undefined behavior) is a verdict, not a crash of the fleet."""
        if self.error is not None or steps <= 0:
            return 0
        before = self.machine.instret
        try:
            self.machine.run(steps)
        except RiscvUB as err:
            self.error = str(err)
            self.ok = False
        return self.machine.instret - before

    def check_spec(self) -> bool:
        """Online theorem check: is the MMIO trace so far still a prefix
        of this node's spec? Skipped once the node is already failed."""
        if not self.ok:
            return False
        trace = self.machine.trace
        if len(trace) == self._checked_len:
            return True
        self._checked_len = len(trace)
        self.spec_checks += 1
        _SPEC_CHECKS.inc()
        if self.checker.check(trace):
            return True
        # Confirm with the authoritative full predicate before reporting.
        if self.spec.prefix_of(trace):
            raise RuntimeError(
                "online checker diverged from prefix_of on node %d (%s) "
                "at %d events" % (self.index, self.kind, len(trace)))
        self.ok = False
        self.violation = ("trace (%d events) is not a prefix of the %s "
                          "spec" % (len(trace), self.kind))
        _SPEC_VIOLATIONS.inc()
        obs.instant("net.spec_violation", cat="net",
                    args={"node": self.index, "kind": self.kind,
                          "events": len(trace)})
        return False

    # -- reporting -----------------------------------------------------------

    def result(self) -> Dict:
        gpio = self.platform.gpio
        pin = actuator_pin(self.kind)
        actuations = sum(1 for kind, addr, _ in self.machine.trace
                         if kind == "st" and addr == C.GPIO_OUTPUT_VAL_ADDR)
        return {
            "node": self.index,
            "kind": self.kind,
            "mac": self.mac.hex(":"),
            "instructions": self.machine.instret,
            "mmio_events": len(self.machine.trace),
            "frames_delivered": self.frames_delivered,
            "frames_accepted": self.frames_accepted,
            "nic_dropped": self.platform.lan.dropped_frames,
            "spec_checks": self.spec_checks,
            "actuations": actuations,
            "actuator_level": (gpio.output_val >> pin) & 1,
            "ok": self.ok,
            "violation": self.violation,
            "error": self.error,
        }


__all__ = ["Node", "node_mac", "compiled_image", "spec_for",
           "actuator_pin", "LIGHTBULB", "DOORLOCK", "KINDS"]
