"""Open-loop traffic generators for the fleet.

Each node gets its own command storm: a Poisson-ish open-loop arrival
process (the generator never waits for the node -- that is what makes
the fabric independent of node execution and the ``--jobs N`` shards
byte-identical) mixing well-formed commands addressed to the node's MAC
with the adversarial variants from `repro.platform.net` -- truncated,
wrong-ethertype, non-UDP, oversize, bit-flipped, random garbage, and
(for door locks) well-formed frames carrying the wrong PIN.

The whole schedule is materialized up front from per-node derived RNGs
(`repro.net.sim.derive_rng`), merged into one deterministic timeline
sorted by ``(time, node, arrival index)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..platform.net import (
    lightbulb_packet,
    non_udp_packet,
    oversize_packet,
    random_garbage,
    truncated_packet,
    wrong_ethertype_packet,
)
from ..sw.doorlock import DEFAULT_PIN, lock_packet
from .node import DOORLOCK
from .sim import derive_rng
from .switch import BROADCAST_MAC

#: (node index, kind, mac) rows describing the fleet, independent of the
#: Node objects themselves so every shard can generate the same traffic.
NodeMeta = Tuple[int, str, bytes]


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the storm. ``mean_gap`` is per-node average units between
    frames; ``start`` lets frames race the nodes' boot sequences (the
    NIC must drop pre-RX-enable arrivals and account for them)."""

    start: int = 2_000
    mean_gap: int = 4_000
    valid_ratio: float = 0.6
    broadcast_ratio: float = 0.1


def retarget(frame: bytes, dst: bytes) -> bytes:
    """Rewrite the destination MAC (frames shorter than a MAC header are
    adversarial payloads already; they go out unchanged)."""
    if len(frame) < 6:
        return frame
    return dst + frame[6:]


def valid_command(rng: random.Random, kind: str) -> bytes:
    on = bool(rng.getrandbits(1))
    if kind == DOORLOCK:
        return lock_packet(DEFAULT_PIN, on)
    return lightbulb_packet(on)


def junk_command(rng: random.Random, kind: str) -> bytes:
    """One frame the node must *ignore* (while staying in spec)."""
    choice = rng.randrange(7)
    if choice == 0:
        return truncated_packet(rng.randint(1, 42))
    if choice == 1:
        return wrong_ethertype_packet(rng.randrange(0x10000))
    if choice == 2:
        return non_udp_packet(rng.randrange(256))
    if choice == 3:
        return oversize_packet(rng.randint(1521, 2040))
    if choice == 4:
        return random_garbage(rng)
    if choice == 5 and kind == DOORLOCK:
        # Authentic-looking but wrong PIN: the lock must not actuate.
        return lock_packet(DEFAULT_PIN ^ (1 << rng.randrange(32)),
                           bool(rng.getrandbits(1)))
    flipped = bytearray(valid_command(rng, kind))
    for _ in range(rng.randint(1, 8)):
        flipped[rng.randrange(len(flipped))] ^= 1 << rng.randrange(8)
    return bytes(flipped)


def generate(seed: int, nodes: Iterable[NodeMeta], duration: int,
             config: WorkloadConfig = WorkloadConfig()
             ) -> List[Tuple[int, bytes]]:
    """The full fleet timeline: ``(arrival time, frame)`` sorted
    deterministically. Every frame is addressed to one node's MAC (or
    broadcast), so switch learning turns the storm into unicast."""
    timeline: List[Tuple[int, int, int, bytes]] = []
    for index, kind, mac in nodes:
        rng = derive_rng(seed, "workload", index)
        t = config.start + rng.randrange(max(config.mean_gap, 1))
        arrival = 0
        while t < duration:
            if rng.random() < config.valid_ratio:
                frame = valid_command(rng, kind)
            else:
                frame = junk_command(rng, kind)
            dst = (BROADCAST_MAC if rng.random() < config.broadcast_ratio
                   else mac)
            timeline.append((t, index, arrival, retarget(frame, dst)))
            arrival += 1
            t += 1 + rng.randrange(2 * config.mean_gap)
    timeline.sort(key=lambda item: item[:3])
    return [(t, frame) for t, _, _, frame in timeline]
