"""A virtual Ethernet switch: MAC learning, flooding, bounded queues.

Standard store-and-forward behavior: the switch learns the source MAC of
every ingress frame, forwards unicast frames to the learned port, and
floods broadcasts and unknown destinations to every other port. Each
egress port has a bounded in-flight queue (frames accepted onto the
link but not yet delivered); when it is full the frame is tail-dropped
and counted -- the loss-under-load number the obs layer and the fleet
report surface.

Egress timing is entirely link-local (base latency + the link's fault
stream), never a function of what the attached node is executing: that
independence is what lets ``--jobs N`` shards replay the identical
fabric and merge byte-identically (`repro.net.fleet`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .faults import FaultyLink
from .sim import Simulator

BROADCAST_MAC = b"\xff" * 6

#: Minimum parseable frame: dst + src + ethertype.
MIN_FRAME = 14


class _Port:
    __slots__ = ("name", "link", "deliver", "in_flight", "overflows",
                 "delivered")

    def __init__(self, name: str, link: FaultyLink,
                 deliver: Optional[Callable[[bytes], None]]) -> None:
        self.name = name
        self.link = link
        self.deliver = deliver
        self.in_flight = 0
        self.overflows = 0
        self.delivered = 0


class EthernetSwitch:
    def __init__(self, sim: Simulator, queue_depth: int = 16) -> None:
        self.sim = sim
        self.queue_depth = queue_depth
        self.ports: List[_Port] = []
        self.mac_table: Dict[bytes, int] = {}
        self.frames_in = 0
        self.frames_unicast = 0
        self.frames_flooded = 0
        self.frames_filtered = 0
        self.runts = 0
        self.queue_overflows = 0

    def add_port(self, name: str, link: FaultyLink,
                 deliver: Optional[Callable[[bytes], None]] = None) -> int:
        """Attach a port; ``deliver`` receives frames that survive the
        egress link (None for ports nobody listens on)."""
        self.ports.append(_Port(name, link, deliver))
        return len(self.ports) - 1

    def ingress(self, port: int, frame: bytes) -> None:
        """A frame arrives *from* ``port``: learn, then forward."""
        self.frames_in += 1
        if len(frame) < MIN_FRAME:
            self.runts += 1
            return
        self.mac_table[frame[6:12]] = port
        dst = frame[:6]
        learned = self.mac_table.get(dst)
        if dst == BROADCAST_MAC or learned is None:
            self.frames_flooded += 1
            for index in range(len(self.ports)):
                if index != port:
                    self._egress(index, frame)
        elif learned == port:
            # Destination lives on the ingress segment: nothing to do.
            self.frames_filtered += 1
        else:
            self.frames_unicast += 1
            self._egress(learned, frame)

    def _egress(self, index: int, frame: bytes) -> None:
        port = self.ports[index]
        deliveries = port.link.transmit(frame)
        for extra_delay, data in deliveries:
            if port.in_flight >= self.queue_depth:
                port.overflows += 1
                self.queue_overflows += 1
                continue
            port.in_flight += 1
            self.sim.after(extra_delay, self._deliver_fn(port, data))

    def _deliver_fn(self, port: _Port, data: bytes) -> "Callable[[], None]":
        def deliver() -> None:
            port.in_flight -= 1
            port.delivered += 1
            if port.deliver is not None:
                port.deliver(data)
        return deliver

    def stats(self) -> Dict:
        return {
            "frames_in": self.frames_in,
            "frames_unicast": self.frames_unicast,
            "frames_flooded": self.frames_flooded,
            "frames_filtered": self.frames_filtered,
            "runts": self.runts,
            "queue_overflows": self.queue_overflows,
            "macs_learned": len(self.mac_table),
            "ports": [
                {"name": p.name, "delivered": p.delivered,
                 "overflows": p.overflows, "link": p.link.stats()}
                for p in self.ports
            ],
        }
