"""The fleet runner: fabric + nodes + sharding + the deterministic report.

One fleet run wires N heterogeneous nodes (even indices are lightbulbs,
odd are door locks) to an `EthernetSwitch` through per-node `FaultyLink`
instances, pre-schedules the whole open-loop workload, then interleaves
node execution in fixed instruction quanta (one simulation time unit ==
one retired instruction). Every ``check_every`` quanta -- and once at
the end -- each node's MMIO trace is checked online against its spec.

Sharding (``jobs > 1``) exploits a structural fact: nodes only *consume*
frames, so the fabric's evolution (workload arrivals, switching, fault
draws, queue occupancy) is completely independent of node execution.
Every shard therefore replays the *identical* fabric -- same seeds, same
event order, same RNG draw streams -- while instantiating machines only
for its owned nodes. Per-node results come from the owning shard, the
fabric section from shard 0 with an equality assertion against every
other shard (any mismatch is a determinism bug and aborts the run), and
the merged report is byte-identical across job counts -- the same
discipline `logic.dispatch` gives verification batches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from .faults import PROFILES, FaultyLink
from .node import DOORLOCK, LIGHTBULB, Node, node_mac
from .sim import Simulator, derive_rng
from .switch import BROADCAST_MAC, EthernetSwitch
from .workload import NodeMeta, generate

#: Instructions (== time units) per scheduling quantum.
QUANTUM = 500
#: Spec-check cadence, in quanta.
CHECK_EVERY = 4

#: Ethertype of the link-up announcement chatter (Loopback/CTP): sent
#: once per node at t=index so the switch learns every MAC before the
#: storm starts and the storm is genuinely unicast.
_ANNOUNCE_ETHERTYPE = b"\x90\x00"


def kind_for(index: int) -> str:
    return LIGHTBULB if index % 2 == 0 else DOORLOCK


def fleet_meta(nodes: int) -> List[NodeMeta]:
    return [(index, kind_for(index), node_mac(index))
            for index in range(nodes)]


def announce_frame(mac: bytes) -> bytes:
    return BROADCAST_MAC + mac + _ANNOUNCE_ETHERTYPE + bytes(6)


def _ingress_fn(switch: EthernetSwitch, port: int,
                frame: bytes) -> Callable[[], None]:
    def ingress() -> None:
        switch.ingress(port, frame)
    return ingress


def run_fleet_shard(nodes: int, duration: int, profile: str = "lossy",
                    seed: int = 0, owned: Optional[Sequence[int]] = None,
                    quantum: int = QUANTUM,
                    check_every: int = CHECK_EVERY) -> Dict:
    """Simulate the full fabric, executing only the ``owned`` nodes
    (default: all). Returns ``{"fabric": ..., "nodes": [...]}`` with the
    fabric section identical for every owned-set of the same run."""
    prof = PROFILES[profile]
    meta = fleet_meta(nodes)
    owned_set = set(range(nodes)) if owned is None else set(owned)
    sim = Simulator()
    switch = EthernetSwitch(sim)
    uplink = FaultyLink(PROFILES["clean"], derive_rng(seed, "uplink"))
    uplink_port = switch.add_port("uplink", uplink)
    node_objs: Dict[int, Node] = {}
    for index, kind, mac in meta:
        link = FaultyLink(prof, derive_rng(seed, "link", index))
        deliver = None
        if index in owned_set:
            node = Node(index, kind)
            node_objs[index] = node
            deliver = node.deliver
        switch.add_port("node%d" % index, link, deliver)
    # Setup order fixes same-time tie-breaking fleet-wide: announcements,
    # then workload arrivals, then step quanta; link deliveries are
    # scheduled during the run and so always fire after all of these at
    # equal times -- identically in every shard.
    for index, kind, mac in meta:
        sim.at(index, _ingress_fn(switch, 1 + index, announce_frame(mac)))
    timeline = generate(seed, meta, duration)
    for t, frame in timeline:
        sim.at(t, _ingress_fn(switch, uplink_port, frame))
    for t in range(0, duration, quantum):
        check = ((t // quantum) % check_every) == check_every - 1
        budget = min(quantum, duration - t)
        for index in sorted(node_objs):
            sim.at(t, _step_fn(node_objs[index], budget, check))
    with obs.span("net.fleet_shard", cat="net",
                  args={"nodes": nodes, "owned": len(owned_set),
                        "duration": duration}):
        sim.run_until(duration)
    for index in sorted(node_objs):
        node_objs[index].check_spec()
    fabric = {
        "frames_offered": len(timeline),
        "switch": switch.stats(),
    }
    return {"fabric": fabric,
            "nodes": [node_objs[index].result()
                      for index in sorted(node_objs)]}


def _step_fn(node: Node, budget: int, check: bool) -> Callable[[], None]:
    def step() -> None:
        node.run(budget)
        if check:
            node.check_spec()
    return step


def _flush_fabric_counters(fabric: Dict) -> None:
    """Fold the fabric's plain counters into the obs registry exactly
    once per run (shards carry identical copies; incrementing inside
    each shard would multiply them by the job count)."""
    switch = fabric["switch"]
    obs.counter("net.frames_offered").inc(fabric["frames_offered"])
    obs.counter("net.frames_switched").inc(switch["frames_in"])
    obs.counter("net.switch_queue_overflows").inc(
        switch["queue_overflows"])
    totals = {"dropped": 0, "corrupted": 0, "duplicated": 0, "reordered": 0}
    for port in switch["ports"]:
        for key in totals:
            totals[key] += port["link"][key]
    for key, value in totals.items():
        obs.counter("net.link_frames_%s" % key).inc(value)


def run_fleet(nodes: int, duration: int, profile: str = "lossy",
              seed: int = 0, jobs: int = 1, quantum: int = QUANTUM,
              check_every: int = CHECK_EVERY) -> Dict:
    """Run the fleet, optionally sharded over worker processes, and
    return the deterministic report (byte-identical across ``jobs``)."""
    if profile not in PROFILES:
        raise ValueError("unknown fault profile %r" % profile)
    obs.counter("net.fleet_runs").inc()
    common = {"nodes": nodes, "duration": duration, "profile": profile,
              "seed": seed, "quantum": quantum, "check_every": check_every}
    if jobs <= 1 or nodes <= 1:
        shards = [run_fleet_shard(owned=None, **common)]
    else:
        from ..logic.dispatch import parallel_call

        jobs = min(jobs, nodes)
        kwargs_list = [
            dict(common, owned=[i for i in range(nodes) if i % jobs == k])
            for k in range(jobs)]
        shards = parallel_call("repro.net.fleet:run_fleet_shard",
                               kwargs_list, jobs=jobs)
    fabric = shards[0]["fabric"]
    for k, shard in enumerate(shards[1:], start=1):
        if shard["fabric"] != fabric:
            raise RuntimeError(
                "fleet shard %d replayed a different fabric than shard 0 "
                "-- determinism bug in repro.net" % k)
    node_rows = sorted((row for shard in shards for row in shard["nodes"]),
                       key=lambda row: row["node"])
    _flush_fabric_counters(fabric)
    summary = {
        "nodes": nodes,
        "nodes_ok": sum(1 for row in node_rows if row["ok"]),
        "violations": sum(1 for row in node_rows if row["violation"]),
        "errors": sum(1 for row in node_rows if row["error"]),
        "frames_offered": fabric["frames_offered"],
        "frames_delivered": sum(r["frames_delivered"] for r in node_rows),
        "frames_accepted": sum(r["frames_accepted"] for r in node_rows),
        "nic_dropped": sum(r["nic_dropped"] for r in node_rows),
        "instructions": sum(r["instructions"] for r in node_rows),
        "spec_checks": sum(r["spec_checks"] for r in node_rows),
    }
    return {"config": dict(common), "summary": summary, "fabric": fabric,
            "nodes": node_rows}
