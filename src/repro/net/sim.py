"""Deterministic discrete-event simulation core.

The event queue is a heap keyed by ``(time, seq)``: ``seq`` is assigned
at scheduling time, so simultaneous events fire in the order they were
scheduled -- total, reproducible, independent of callback identity (no
comparison ever reaches the callbacks). Time is dimensionless "units";
the fleet runner equates one unit with one retired instruction.

RNG discipline matches `repro.fuzz.generator.rng_for`: every stochastic
component owns a private `random.Random` derived from the integer run
seed plus a CRC of its label -- never string/tuple seeding (which would
depend on ``PYTHONHASHSEED`` and break the byte-identical ``--jobs N``
merge), and never a shared stream (which would entangle draw order
across components).
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Callable, List, Tuple

from ..fuzz.generator import rng_for

_GOLDEN = 0x9E3779B1  # 2^32 / phi, the usual integer-mixing constant


def derive_rng(seed: int, label: str, index: int = 0) -> random.Random:
    """A private RNG for one named component of one run.

    Distinct ``(label, index)`` pairs get decorrelated streams for the
    same run seed; the derivation is pure integer arithmetic so it is
    identical across processes and platforms."""
    mix = zlib.crc32(("%s#%d" % (label, index)).encode("ascii"))
    return rng_for((seed * _GOLDEN + mix) & 0xFFFFFFFF)


class Simulator:
    """A minimal deterministic event loop: schedule, then run to a horizon."""

    def __init__(self) -> None:
        self.now = 0
        self.events_dispatched = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute ``time`` (clamped to now)."""
        heapq.heappush(self._heap, (max(int(time), self.now), self._seq, fn))
        self._seq += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        self.at(self.now + int(delay), fn)

    def run_until(self, horizon: int) -> int:
        """Dispatch every event with time <= ``horizon``; returns the
        number dispatched. The clock ends exactly at the horizon."""
        dispatched = 0
        while self._heap and self._heap[0][0] <= horizon:
            time, _, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            dispatched += 1
        self.now = horizon
        self.events_dispatched += dispatched
        return dispatched

    def pending(self) -> int:
        return len(self._heap)
