"""Fault-injecting links: the adversarial part of the fabric.

Each link owns a seeded RNG (see `repro.net.sim.derive_rng`) and a
`FaultProfile` giving per-frame probabilities of dropping, duplicating,
corrupting (bit-flips), and delaying/reordering. ``transmit`` maps one
frame to zero or more ``(extra_delay, bytes)`` deliveries; reordering is
modeled as occasional large extra delay, which against the base latency
genuinely reorders back-to-back frames.

The end-to-end claim this machinery attacks: none of these faults may
push a node's MMIO trace outside its spec -- a corrupted frame must land
in a ``RecvInvalid``/``RecvUnauth`` arm, a duplicated command is just
two valid receives, a dropped frame is silence. Counters per link feed
the fleet report and the obs registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FaultProfile:
    """Per-frame fault probabilities and timing for one link class."""

    name: str
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    latency: int = 40        # base propagation delay, time units
    jitter: int = 0          # max uniform extra delay
    reorder_span: int = 0    # extra delay making a frame overtake others


PROFILES: Dict[str, FaultProfile] = {
    "clean": FaultProfile("clean"),
    "lossy": FaultProfile("lossy", drop=0.05, duplicate=0.03, corrupt=0.04,
                          reorder=0.05, jitter=200, reorder_span=1500),
    "chaos": FaultProfile("chaos", drop=0.15, duplicate=0.10, corrupt=0.12,
                          reorder=0.15, jitter=800, reorder_span=4000),
}


class FaultyLink:
    """One unidirectional link with its own fault stream."""

    def __init__(self, profile: FaultProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.counters: Dict[str, int] = {
            "offered": 0, "dropped": 0, "duplicated": 0, "corrupted": 0,
            "delayed": 0, "reordered": 0, "delivered": 0,
        }

    def transmit(self, frame: bytes) -> List[Tuple[int, bytes]]:
        """Fault outcomes for one frame: ``(extra_delay, bytes)`` per
        surviving copy (possibly corrupted), empty if the link ate it."""
        p = self.profile
        rng = self.rng
        c = self.counters
        c["offered"] += 1
        if p.drop and rng.random() < p.drop:
            c["dropped"] += 1
            return []
        copies = 1
        if p.duplicate and rng.random() < p.duplicate:
            copies = 2
            c["duplicated"] += 1
        out: List[Tuple[int, bytes]] = []
        for _ in range(copies):
            data = frame
            if p.corrupt and frame and rng.random() < p.corrupt:
                flipped = bytearray(frame)
                for _ in range(rng.randint(1, 3)):
                    flipped[rng.randrange(len(flipped))] ^= \
                        1 << rng.randrange(8)
                data = bytes(flipped)
                c["corrupted"] += 1
            delay = p.latency
            if p.jitter:
                extra = rng.randrange(p.jitter + 1)
                if extra:
                    c["delayed"] += 1
                delay += extra
            if p.reorder and rng.random() < p.reorder:
                delay += p.reorder_span + rng.randrange(p.reorder_span + 1)
                c["reordered"] += 1
            out.append((delay, data))
        c["delivered"] += len(out)
        return out

    def stats(self) -> Dict[str, int]:
        return dict(self.counters)
