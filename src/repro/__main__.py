"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points for interactive exploration:

* ``verify``      -- program-logic verification of the lightbulb software
* ``lint``        -- static analysis of the Bedrock2 programs (B2Axxx codes);
                     ``--binary`` lints the compiled RV32IM images instead
                     (CFG recovery + abstract interpretation + translation
                     validation, B2A1xx codes); ``--binary --timing`` also
                     proves WCET/stack bounds against the committed
                     budgets (B2A2xx codes)
* ``check``       -- the per-interface integration checks (Figure 3)
* ``end2end``     -- run the end-to-end theorem checker with packets
* ``fuzz``        -- differential fuzzing of all execution layers
* ``fleet``       -- a discrete-event network fabric driving many verified
                     nodes under adversarial link conditions, every node's
                     MMIO trace spec-checked online
* ``bench``       -- the §7.2.1 latency decomposition
* ``wcet``        -- prove static WCET/stack bounds, measure tightness
* ``stats``       -- run a verify+end2end workload, print all obs counters
* ``report``      -- render ledger/trace/metrics/history into one HTML file
* ``disasm``      -- disassemble the compiled lightbulb (or doorlock)
* ``export-c``    -- print the Bedrock2-to-C export of the lightbulb
* ``demo``        -- a short interactive lightbulb session on the ISA machine

``verify``, ``lint``, ``check``, ``end2end``, ``fuzz``, ``bench`` and
``stats`` accept ``--trace-out FILE.jsonl`` to record a
Chrome-trace-format span trace (open in Perfetto); ``verify`` also
accepts ``--ledger-out FILE.jsonl`` for the per-obligation verification
ledger. Feed both to ``report`` (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys


def _obs_start(args) -> bool:
    """Enable observability if the command asked for a trace or ledger."""
    enabled = False
    if getattr(args, "trace_out", None):
        from . import obs

        # Fail on an unwritable path *before* the workload runs, not
        # after minutes of execution at export time.
        with open(args.trace_out, "w"):
            pass
        obs.enable(trace=True)
        enabled = True
    if getattr(args, "ledger_out", None):
        from . import obs

        with open(args.ledger_out, "w"):
            pass
        obs.enable_ledger()
        enabled = True
    return enabled


def _obs_finish(args) -> None:
    if getattr(args, "trace_out", None):
        from . import obs

        events = obs.export_trace(args.trace_out)
        print("wrote %d trace events to %s (Chrome trace JSONL)"
              % (events, args.trace_out))
    if getattr(args, "ledger_out", None):
        from . import obs

        volatile = bool(getattr(args, "ledger_volatile", False))
        records = obs.export_ledger(args.ledger_out, volatile=volatile)
        print("wrote %d obligation records to %s (verification ledger%s)"
              % (records, args.ledger_out,
                 ", volatile form" if volatile else ""))


def cmd_verify(args) -> int:
    from . import obs
    from .logic import solver
    from .sw.verify import verify_all, verify_doorlock, verify_drain_buggy_fails

    _obs_start(args)
    cache = None
    if args.cache:
        from .logic.cache import ProofCache

        cache = ProofCache(args.cache)
    jobs = args.jobs
    if jobs == 0:
        from .logic.dispatch import default_jobs

        jobs = default_jobs()
    run = verify_all(jobs=jobs, cache=cache, prescreen=args.prescreen)
    print(run)
    print("door-lock application (reusing the driver contracts):")
    doorlock = verify_doorlock(jobs=jobs, cache=cache,
                               prescreen=args.prescreen)
    print(doorlock)
    if args.prescreen and jobs == 1:
        prescreened = obs.counter("analysis.obligations_prescreened").value
        print("prescreen: %d obligation(s) discharged abstractly "
              "(no solver query)" % prescreened)
    with solver.cached(cache):
        err = verify_drain_buggy_fails()
    print("negative control: buggy drain fails at %s" % err.context)
    if cache is not None:
        print("proof cache %s: %d hits, %d misses, %d entries"
              % (args.cache, obs.counter("cache.hits").value,
                 obs.counter("cache.misses").value, len(cache)))
        cache.close()
    _obs_finish(args)
    return 0 if (run.ok and doorlock.ok) else 1


def _parse_suppressions(specs):
    """``CODE`` or ``CODE:FUNCTION`` strings -> suppression keys."""
    out = set()
    for spec in specs or ():
        code, _, fname = spec.partition(":")
        out.add((code, fname) if fname else code)
    return frozenset(out)


def _cmd_lint_binary(args) -> list:
    """``lint --binary``: abstract-interpret + translation-validate the
    compiled images of the shipped apps."""
    from .analysis import BinaryLintConfig, lint_binary_program
    from .compiler import compile_program
    from .platform.bus import MMIO_RANGES
    from .sw.doorlock import doorlock_program
    from .sw.program import compiled_lightbulb, lightbulb_program
    from .sw.verify import platform_mmio_spec

    apps = []
    if args.app in ("lightbulb", "all"):
        apps.append((lightbulb_program(),
                     compiled_lightbulb(stack_top=1 << 16)))
    if args.app in ("doorlock", "all"):
        program = doorlock_program()
        apps.append((program, compile_program(program, entry="main",
                                              stack_top=1 << 16)))
    suppress = _parse_suppressions(args.suppress)
    findings = []
    for program, compiled in apps:
        config = BinaryLintConfig.for_platform(
            compiled.stack_top, MMIO_RANGES,
            ext_spec=platform_mmio_spec(), suppress=suppress)
        findings.extend(lint_binary_program(program, compiled, config))
    return findings


def _timing_apps():
    """(name, CompiledProgram) for the shipped apps, compile shared."""
    from .compiler import compile_program
    from .sw.doorlock import doorlock_program
    from .sw.program import compiled_lightbulb

    return [("lightbulb", compiled_lightbulb(stack_top=1 << 16)),
            ("doorlock", compile_program(doorlock_program(), entry="main",
                                         stack_top=1 << 16))]


def _timing_report_for(compiled, loop_bounds, suppress=frozenset()):
    from .analysis.binlint import BinaryLintConfig
    from .analysis.wcet import TimingConfig, analyze_timing
    from .analysis.costmodel import pipeline_cost_model
    from .platform.bus import MMIO_RANGES

    config = TimingConfig(
        lint=BinaryLintConfig.for_platform(compiled.stack_top, MMIO_RANGES,
                                           suppress=suppress),
        model=pipeline_cost_model(strict=False),
        loop_bounds=loop_bounds)
    return analyze_timing(compiled, config)


def _cmd_lint_timing(args) -> list:
    """``lint --binary --timing``: prove WCET + stack bounds for the
    shipped apps and hold them to the committed budgets (B2A2xx)."""
    from .analysis.wcet import check_budgets, drift_findings, load_budgets

    suppress = _parse_suppressions(args.suppress)
    loop_bounds, app_budgets = load_budgets(args.budgets)
    findings = list(drift_findings())
    for name, compiled in _timing_apps():
        if args.app not in (name, "all"):
            continue
        report = _timing_report_for(compiled, loop_bounds, suppress)
        findings.extend(report.findings)
        findings.extend(check_budgets(report, app_budgets.get(name, {})))

    def keep(diag) -> bool:
        return (diag.code not in suppress
                and (diag.code, diag.function) not in suppress)

    return [d for d in findings if keep(d)]


def cmd_lint(args) -> int:
    from .analysis import LintConfig, lint_program
    from .analysis.domains import CsPairingSpec
    from .analysis.lint import render_json, render_text
    from .platform.bus import MMIO_RANGES
    from .sw import constants as C
    from .sw.doorlock import doorlock_program
    from .sw.program import lightbulb_program
    from .sw.verify import platform_mmio_spec

    _obs_start(args)
    if args.timing and not args.binary:
        parser_error = "--timing requires --binary (it analyzes images)"
        print(parser_error)
        return 2
    if args.binary:
        findings = _cmd_lint_binary(args)
        if args.timing:
            findings.extend(_cmd_lint_timing(args))
        if args.format == "json":
            print(render_json(findings))
        else:
            print(render_text(findings))
        _obs_finish(args)
        return 1 if findings else 0
    config = LintConfig(
        mmio_ranges=MMIO_RANGES,
        ext_spec=platform_mmio_spec(),
        cs_pairing=CsPairingSpec(addr=C.SPI_CSMODE_ADDR,
                                 acquire=C.CSMODE_HOLD,
                                 release=C.CSMODE_AUTO),
        suppress=_parse_suppressions(args.suppress),
    )
    findings = []
    if args.app in ("lightbulb", "all"):
        findings.extend(lint_program(lightbulb_program(), config))
    if args.app in ("doorlock", "all"):
        # The drivers are shared; lint only the doorlock's own functions
        # in "all" mode so shared-driver findings are not duplicated.
        program = doorlock_program()
        if args.app == "all":
            program = {name: fn for name, fn in program.items()
                       if name.startswith("doorlock")}
        findings.extend(lint_program(program, config))
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    _obs_finish(args)
    return 1 if findings else 0


def cmd_check(args) -> int:
    from .core.integration import run_all_checks

    _obs_start(args)
    checks = 0
    failures = 0
    for result in run_all_checks():
        print("%-45s %s" % (result.name,
                            "ok" if result.ok else "FAILED " + result.detail))
        checks += 1
        failures += 0 if result.ok else 1
    print("%d checks, %d failed" % (checks, failures))
    _obs_finish(args)
    return 1 if failures else 0


def cmd_end2end(args) -> int:
    from .core.end2end import run_adversarial, run_adversarial_suite

    _obs_start(args)
    if args.seeds:
        seeds = [int(s) for s in args.seeds.split(",") if s]
        results = run_adversarial_suite(seeds, n_frames=args.frames,
                                        processor=args.processor,
                                        max_units=args.units,
                                        jobs=args.jobs, fast=args.fast)
        ok = True
        for seed, result in zip(seeds, results):
            ok = ok and result.ok
            print("seed=%-6d %s  instructions=%d mmio_events=%d bulb=%r"
                  % (seed,
                     "in spec   " if result.ok
                     else "VIOLATION: " + result.detail,
                     result.instructions, len(result.trace),
                     result.bulb_history))
        print("%d/%d adversarial runs within goodHlTrace"
              % (sum(1 for r in results if r.ok), len(results)))
        _obs_finish(args)
        return 0 if ok else 1
    result = run_adversarial(seed=args.seed, n_frames=args.frames,
                             processor=args.processor,
                             max_units=args.units, fast=args.fast)
    print("processor=%s frames=%d: %s" % (
        args.processor, args.frames,
        "trace within goodHlTrace" if result.ok else "VIOLATION: " + result.detail))
    print("instructions=%d mmio_events=%d bulb_history=%r"
          % (result.instructions, len(result.trace), result.bulb_history))
    _obs_finish(args)
    return 0 if result.ok else 1


def _print_layer_timing() -> None:
    from . import obs
    from .fuzz.oracle import LAYERS

    rows = []
    for layer in LAYERS:
        runs = obs.counter("fuzz.layer.%s.runs" % layer).value
        micros = obs.counter("fuzz.layer.%s.micros" % layer).value
        if runs:
            rows.append((layer, runs, micros / 1e6, micros / runs / 1e3))
    if rows:
        print("%-16s %8s %10s %12s" % ("layer", "runs", "seconds",
                                       "ms/program"))
        for layer, runs, secs, ms in rows:
            print("%-16s %8d %10.2f %12.3f" % (layer, runs, secs, ms))


def cmd_fuzz(args) -> int:
    import json as json_mod

    from .fuzz.generator import PROFILES
    from .fuzz.oracle import run_campaign

    _obs_start(args)
    if args.jobs == 0:
        from .logic.dispatch import default_jobs

        args.jobs = default_jobs()

    if args.replay:
        from .fuzz.shrink import replay_file

        result = replay_file(args.replay)
        print("%s: %s (expected %s, got %s)"
              % (result["path"],
                 "reproduced" if result["ok"] else "FAILED",
                 result["expected"], result["got"]))
        _obs_finish(args)
        return 0 if result["ok"] else 1

    if args.mutation_score or args.mutation_tier1:
        from .fuzz.mutate import score_differential, score_tier1

        exit_code = 0
        if args.mutation_score:
            report = score_differential(jobs=args.jobs)
            print("differential-oracle mutation score:")
            for name in sorted(report["mutations"]):
                entry = report["mutations"][name]
                print("  %-28s %-12s %s" % (
                    name, entry["layer"],
                    "killed by seed %d" % entry["killed_by_seed"]
                    if entry["killed"] else "SURVIVED"))
            print("killed %d/%d (%.0f%%)"
                  % (report["killed"], report["total"],
                     100 * report["kill_rate"]))
            if report["killed"] != report["total"]:
                exit_code = 1
        if args.mutation_tier1:
            report = score_tier1()
            print("tier-1 test-suite mutation score:")
            for name in sorted(report["mutations"]):
                entry = report["mutations"][name]
                print("  %-28s %-12s %s" % (
                    name, entry["layer"],
                    "killed" if entry["killed"] else "SURVIVED"))
            print("killed %d/%d (%.0f%%)"
                  % (report["killed"], report["total"],
                     100 * report["kill_rate"]))
            if report["killed"] != report["total"]:
                exit_code = 1
        _obs_finish(args)
        return exit_code

    config = PROFILES[args.profile]
    seeds = list(range(args.seed_start, args.seed_start + args.seeds))
    from .fuzz.oracle import LAYERS

    layers = LAYERS if args.fast else tuple(
        name for name in LAYERS if name != "fast")
    report = run_campaign(seeds, config=config, mutation=args.mutate,
                          logic_sample=args.logic_sample, jobs=args.jobs,
                          time_budget=args.time_budget, layers=layers)
    summary = report["summary"]
    if args.json:
        with open(args.json, "w") as fh:
            json_mod.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print("fuzz: %d program(s), %d divergence(s), %d invalid, "
          "logic obligations %d checked / %d failed"
          % (summary["programs"], summary["divergences"], summary["invalid"],
             summary["logic_checked"], summary["logic_failed"]))
    _print_layer_timing()

    divergent = [r for r in report["seeds"] if r["status"] == "divergence"]
    for entry in divergent[:10]:
        print("  seed %d: %s divergence in %s: %s"
              % (entry["seed"], entry["divergence"]["kind"],
                 entry["divergence"]["layer"], entry["divergence"]["detail"]))
    if divergent and args.shrink:
        from .fuzz.generator import generate_program
        from .fuzz.shrink import save_reproducer, shrink_reproducer

        entry = divergent[0]
        program = generate_program(entry["seed"], config)
        shrunk, stats = shrink_reproducer(program, entry["divergence"],
                                          mutation=args.mutate)
        path = save_reproducer(args.corpus, entry["seed"], shrunk,
                               entry["divergence"], mutation=args.mutate,
                               stats=stats)
        print("shrunk seed %d: %d -> %d statements (%d predicate evals); "
              "saved %s" % (entry["seed"], stats["original_stmts"],
                            stats["shrunk_stmts"], stats["evals"], path))
    _obs_finish(args)
    if args.mutate is not None:
        # Triage mode: success means the oracle *caught* the mutation.
        if divergent:
            print("mutation %r killed" % args.mutate)
            return 0
        print("mutation %r SURVIVED %d seed(s)" % (args.mutate,
                                                   summary["programs"]))
        return 1
    return 1 if (summary["divergences"] or summary["invalid"]) else 0


def cmd_fleet(args) -> int:
    import json as json_mod

    from .net import run_fleet

    _obs_start(args)
    if args.jobs == 0:
        from .logic.dispatch import default_jobs

        args.jobs = default_jobs()
    report = run_fleet(nodes=args.nodes, duration=args.duration,
                       profile=args.profile, seed=args.seed, jobs=args.jobs)
    if args.json:
        with open(args.json, "w") as fh:
            json_mod.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    summary = report["summary"]
    switch = report["fabric"]["switch"]
    print("fleet: %d node(s), %d units, profile=%s seed=%d"
          % (args.nodes, args.duration, args.profile, args.seed))
    print("fabric: %d offered, %d switched (%d unicast / %d flooded), "
          "%d queue overflow(s)"
          % (summary["frames_offered"], switch["frames_in"],
             switch["frames_unicast"], switch["frames_flooded"],
             switch["queue_overflows"]))
    print("nodes:  %d delivered, %d accepted, %d NIC-dropped, "
          "%d instructions, %d spec check(s)"
          % (summary["frames_delivered"], summary["frames_accepted"],
             summary["nic_dropped"], summary["instructions"],
             summary["spec_checks"]))
    for row in report["nodes"]:
        if not row["ok"]:
            print("  node %d (%s): %s" % (row["node"], row["kind"],
                                          row["violation"] or row["error"]))
    print("%d/%d node(s) within spec, %d violation(s), %d error(s)"
          % (summary["nodes_ok"], summary["nodes"], summary["violations"],
             summary["errors"]))
    _obs_finish(args)
    return 0 if summary["nodes_ok"] == summary["nodes"] else 1


def cmd_bench(args) -> int:
    from .core.timing import factor_decomposition

    _obs_start(args)
    decomposition = factor_decomposition()
    print("%-18s %9s %7s" % ("factor", "measured", "paper"))
    for key in ("spi_pipelining", "timeout_logic", "compiler", "processor",
                "total"):
        print("%-18s %8.2fx %6.1fx" % (key, decomposition[key],
                                       decomposition["paper"][key]))
    _obs_finish(args)
    return 0


def cmd_stats(args) -> int:
    """Run a representative verify + end2end workload with observability
    enabled and print every counter/gauge/histogram in the registry."""
    from . import obs
    from .core.end2end import run_adversarial
    from .sw.verify import verify_all

    obs.enable(trace=True)
    run = verify_all()
    print("verified %d functions, %d obligations discharged"
          % (len(run.reports), run.total_obligations))
    result = run_adversarial(seed=args.seed, n_frames=args.frames,
                             max_units=args.units, fast=args.fast)
    print("end2end (%d units): %s, %d instructions, %d MMIO events"
          % (args.units,
             "in spec" if result.ok else "VIOLATION: " + result.detail,
             result.instructions, len(result.trace)))
    from .net import run_fleet

    fleet = run_fleet(nodes=2, duration=10_000, profile="lossy",
                      seed=args.seed)
    print("fleet (2 nodes, lossy links): %d/%d in spec, %d frame(s) "
          "switched, %d NIC drop(s)"
          % (fleet["summary"]["nodes_ok"], fleet["summary"]["nodes"],
             fleet["fabric"]["switch"]["frames_in"],
             fleet["summary"]["nic_dropped"]))
    print()
    print(obs.REGISTRY.render())
    _obs_finish(args)
    fleet_ok = (fleet["summary"]["nodes_ok"] == fleet["summary"]["nodes"])
    return 0 if (result.ok and fleet_ok) else 1


def cmd_wcet(args) -> int:
    """Prove per-app WCET/stack bounds, then measure tightness on a
    deterministic fuzz-program sample (static bound / measured pipeline
    firings); writes the JSON artifact the HTML report renders."""
    import json

    from .analysis.wcet import check_budgets, drift_findings, load_budgets

    _obs_start(args)
    loop_bounds, app_budgets = load_budgets(args.budgets)
    doc = {"format": "repro-wcet", "version": 1, "apps": {},
           "drift": [d.render() for d in drift_findings()],
           "tightness": None}
    failed = bool(doc["drift"])
    for name, compiled in _timing_apps():
        report = _timing_report_for(compiled, loop_bounds)
        budget = app_budgets.get(name, {})
        over = check_budgets(report, budget)
        failed = failed or bool(report.findings) or bool(over)
        doc["apps"][name] = {
            "report": report.to_json(),
            "budgets": budget,
            "budget_findings": [d.render() for d in over],
        }
        print("%-10s startup %s  iteration %s  stack %s  findings %d  "
              "budget %s"
              % (name, report.startup_cycles, report.iteration_cycles,
                 report.stack_bound, len(report.findings),
                 "OVER" if over else "ok"))
    if args.seeds > 0:
        from .fuzz.generator import generate_program
        from .fuzz.oracle import run_differential

        ratios = []
        sound = True
        for seed in range(args.seeds):
            result = run_differential(generate_program(seed))
            wcet = result.get("wcet") or {}
            if result["status"] != "ok" or not wcet.get("measured_cycles"):
                sound = False
                continue
            ratios.append(wcet["static_cycles"] / wcet["measured_cycles"])
        doc["tightness"] = {
            "seeds": args.seeds,
            "proved": len(ratios),
            "sound": sound,
            "mean": (round(sum(ratios) / len(ratios), 3)
                     if ratios else None),
            "max": round(max(ratios), 3) if ratios else None,
        }
        failed = failed or not sound
        print("tightness over %d seeds: mean %s  max %s  (%d proved)"
              % (args.seeds, doc["tightness"]["mean"],
                 doc["tightness"]["max"], len(ratios)))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.json)
    _obs_finish(args)
    return 1 if failed else 0


def cmd_report(args) -> int:
    """Render the observability artifacts of a run -- verification
    ledger, span trace, bench history -- into one self-contained HTML
    file (inline CSS, zero dependencies)."""
    from .obs.report import build_report

    html = build_report(ledger_path=args.ledger, trace_path=args.trace,
                        history_dir=args.history, fleet_path=args.fleet,
                        wcet_path=args.wcet, title=args.title)
    with open(args.output, "w") as fh:
        fh.write(html)
    print("wrote %s (%d bytes, self-contained)"
          % (args.output, len(html.encode("utf-8"))))
    return 0


def cmd_disasm(args) -> int:
    from .riscv.disasm import disassemble

    if args.app == "doorlock":
        from .compiler import compile_program
        from .sw.doorlock import doorlock_program

        compiled = compile_program(doorlock_program(), entry="main",
                                   stack_top=1 << 16)
    else:
        from .sw.program import compiled_lightbulb

        compiled = compiled_lightbulb(stack_top=1 << 16)
    symbols = {name: addr for name, addr in compiled.symbols.items()
               if name.startswith("func.") or name in ("_start", "halt")}
    for line in disassemble(compiled.image, symbols=symbols):
        print(line)
    return 0


def cmd_export_c(args) -> int:
    from .bedrock2.c_export import export_program
    from .sw.program import lightbulb_program

    print(export_program(lightbulb_program()))
    return 0


def cmd_demo(args) -> int:
    from .platform.net import lightbulb_packet, oversize_packet
    from .riscv.machine import RiscvMachine
    from .sw.program import compiled_lightbulb, make_platform
    from .sw.specs import good_hl_trace

    compiled = compiled_lightbulb(stack_top=1 << 16)
    plat = make_platform()
    machine = RiscvMachine.with_program(compiled.image, mem_size=1 << 16,
                                        mmio_bus=plat.bus)
    machine.run(400_000, stop=lambda m: plat.lan.rx_enabled)
    print("booted (%d instructions); bulb off" % machine.instret)
    script = [("ON command", lightbulb_packet(True)),
              ("2KB oversize attack", oversize_packet(2000)),
              ("OFF command", lightbulb_packet(False))]
    for label, frame in script:
        plat.lan.inject_frame(frame)
        machine.run(2_000_000, stop=lambda m: not plat.lan.frames
                    and not plat.lan._active_words)
        machine.run(30_000)  # let the loop iteration finish actuating
        print("%-18s -> bulb %s" % (label,
                                    "ON" if plat.gpio.bulb_on else "OFF"))
    ok = good_hl_trace().prefix_of(machine.trace)
    print("trace (%d events) within goodHlTrace: %s"
          % (len(machine.trace), ok))
    return 0 if ok else 1


def main(argv=None) -> int:
    from .fuzz.generator import PROFILES

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_out(p):
        p.add_argument("--trace-out", metavar="FILE.jsonl", default=None,
                       help="write a Chrome-trace-format span trace "
                            "(open in Perfetto / chrome://tracing)")

    p = sub.add_parser("verify", help="verify the lightbulb software")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="verify N functions in parallel worker processes "
                        "(0 = one per core; default 1)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="content-addressed proof cache directory: decided "
                        "VCs are skipped on re-verification "
                        "(see docs/incremental.md)")
    p.add_argument("--prescreen", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="discharge obligations by abstract interpretation "
                        "before the SAT solver (see docs/static-analysis.md)")
    p.add_argument("--ledger-out", metavar="FILE.jsonl", default=None,
                   help="write the verification ledger: one record per VC "
                        "obligation (fingerprint, source location, tier, "
                        "effort); canonical form is byte-identical across "
                        "--jobs values")
    p.add_argument("--ledger-volatile", action="store_true",
                   help="keep per-run fields (wall_us, pid) in the ledger "
                        "instead of the canonical deterministic form")
    add_trace_out(p)
    p = sub.add_parser("lint", help="static analysis of the Bedrock2 apps")
    p.add_argument("--app", choices=("lightbulb", "doorlock", "all"),
                   default="all")
    p.add_argument("--binary", action="store_true",
                   help="lint the compiled RV32IM images instead of the "
                        "source (CFG recovery + abstract interpretation + "
                        "translation validation; B2A1xx codes)")
    p.add_argument("--timing", action="store_true",
                   help="with --binary: also prove static WCET and stack "
                        "bounds and check them against the committed "
                        "budgets (B2A201-B2A205)")
    p.add_argument("--budgets", metavar="FILE.json",
                   default="timing-budgets.json",
                   help="per-app WCET/stack budgets and loop flow-fact "
                        "annotations (default timing-budgets.json)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--suppress", action="append", metavar="CODE[:FUNC]",
                   default=None,
                   help="suppress a diagnostic code, optionally only in one "
                        "function (repeatable)")
    add_trace_out(p)
    p = sub.add_parser("check", help="run the integration checks")
    add_trace_out(p)
    p = sub.add_parser("end2end",
                       help="check the end-to-end theorem on (adversarial) "
                            "packet streams")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--seeds", metavar="S1,S2,...", default=None,
                   help="run an adversarial sweep over many seeds "
                        "(overrides --seed)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes for --seeds sweeps")
    p.add_argument("--frames", type=int, default=10)
    p.add_argument("--units", type=int, default=600_000,
                   help="execution units (instructions or Kami steps)")
    p.add_argument("--processor", choices=("isa", "kami-spec", "p4mm"),
                   default="isa")
    p.add_argument("--fast", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="run the ISA machine through the fast-path engine "
                        "(decode cache + fused blocks; bit-identical to "
                        "the reference interpreter)")
    add_trace_out(p)
    p = sub.add_parser("fuzz",
                       help="differential fuzzing: co-simulate generated "
                            "programs on every execution layer")
    p.add_argument("--seeds", type=int, default=50, metavar="N",
                   help="number of generated programs (default 50)")
    p.add_argument("--seed-start", type=int, default=0, metavar="K",
                   help="first seed (seeds K..K+N-1 are used)")
    p.add_argument("--time-budget", type=float, default=None, metavar="S",
                   help="stop launching new programs after S seconds")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes (0 = one per core)")
    p.add_argument("--profile", choices=sorted(PROFILES), default="default",
                   help="generator size profile (small = smoke tests)")
    p.add_argument("--logic-sample", type=int, default=5, metavar="N",
                   help="cross-check vcgen obligations on the first N seeds")
    p.add_argument("--shrink", action="store_true",
                   help="shrink the first divergence into fuzz-corpus/")
    p.add_argument("--corpus", metavar="DIR", default="fuzz-corpus",
                   help="corpus directory for shrunk reproducers")
    p.add_argument("--mutate", metavar="NAME", default=None,
                   help="inject one catalog mutation and expect the oracle "
                        "to kill it (see docs/fuzzing.md)")
    p.add_argument("--mutation-score", action="store_true",
                   help="kill rate of the differential oracle over the "
                        "whole mutation catalog")
    p.add_argument("--mutation-tier1", action="store_true",
                   help="kill rate of the repo's own fast test subset")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="replay one fuzz-corpus file and check it still "
                        "reproduces")
    p.add_argument("--fast", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="include the fast-engine differential layer "
                        "(fast-vs-reference bit-identical machine state)")
    p.add_argument("--json", metavar="OUT", default=None,
                   help="write the deterministic campaign report as JSON")
    add_trace_out(p)
    p = sub.add_parser("fleet",
                       help="simulate a fleet of verified nodes on an "
                            "adversarial network fabric, spec-checking "
                            "every node's MMIO trace online")
    p.add_argument("--nodes", type=int, default=8, metavar="N",
                   help="fleet size; even indices are lightbulbs, odd are "
                        "door locks (default 8)")
    p.add_argument("--duration", type=int, default=50_000, metavar="T",
                   help="simulated time units == instructions per node "
                        "(default 50000)")
    p.add_argument("--profile", choices=("clean", "lossy", "chaos"),
                   default="lossy",
                   help="per-link fault profile (default lossy)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard nodes over N worker processes (0 = one per "
                        "core); the report is byte-identical across values")
    p.add_argument("--seed", type=int, default=0,
                   help="root seed for workload and link fault streams")
    p.add_argument("--json", metavar="OUT", default=None,
                   help="write the deterministic fleet report as JSON")
    add_trace_out(p)
    p = sub.add_parser("bench", help="latency decomposition (§7.2.1)")
    add_trace_out(p)
    p = sub.add_parser("wcet",
                       help="prove static WCET/stack bounds for the "
                            "shipped apps and measure bound tightness "
                            "on fuzz programs")
    p.add_argument("--budgets", metavar="FILE.json",
                   default="timing-budgets.json",
                   help="committed budgets + loop annotations")
    p.add_argument("--seeds", type=int, default=25, metavar="N",
                   help="fuzz programs for the tightness sample "
                        "(0 disables; default 25)")
    p.add_argument("--json", metavar="OUT", default=None,
                   help="write the wcet artifact (rendered by `report "
                        "--wcet`)")
    add_trace_out(p)
    p = sub.add_parser("stats", help="run a workload, print obs counters")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--frames", type=int, default=2)
    p.add_argument("--units", type=int, default=60_000,
                   help="end2end execution units for the stats workload")
    p.add_argument("--fast", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="run the ISA machine through the fast-path engine")
    add_trace_out(p)
    p = sub.add_parser("report",
                       help="render ledger/trace/metrics/history into one "
                            "self-contained HTML file")
    p.add_argument("-o", "--output", metavar="FILE.html",
                   default="report.html")
    p.add_argument("--ledger", metavar="FILE.jsonl", default="ledger.jsonl",
                   help="verification ledger from `verify --ledger-out` "
                        "(section omitted when the file is absent)")
    p.add_argument("--trace", metavar="FILE.jsonl", default="trace.jsonl",
                   help="Chrome-trace JSONL from `--trace-out` "
                        "(section omitted when the file is absent)")
    p.add_argument("--history", metavar="DIR", default="benchmarks/history",
                   help="bench-history store for the trend sparklines")
    p.add_argument("--fleet", metavar="FILE.json", default="fleet.json",
                   help="fleet report from `fleet --json` "
                        "(section omitted when the file is absent)")
    p.add_argument("--wcet", metavar="FILE.json", default="wcet.json",
                   help="timing artifact from `wcet --json` "
                        "(section omitted when the file is absent)")
    p.add_argument("--title", default="repro verification report")
    p = sub.add_parser("disasm", help="disassemble a compiled app")
    p.add_argument("--app", choices=("lightbulb", "doorlock"),
                   default="lightbulb")
    sub.add_parser("export-c", help="print the C export of the lightbulb")
    sub.add_parser("demo", help="interactive lightbulb session")
    args = parser.parse_args(argv)
    handler = {
        "verify": cmd_verify,
        "lint": cmd_lint,
        "check": cmd_check,
        "end2end": cmd_end2end,
        "fuzz": cmd_fuzz,
        "fleet": cmd_fleet,
        "bench": cmd_bench,
        "wcet": cmd_wcet,
        "stats": cmd_stats,
        "report": cmd_report,
        "disasm": cmd_disasm,
        "export-c": cmd_export_c,
        "demo": cmd_demo,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
