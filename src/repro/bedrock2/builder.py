"""A C-like eDSL for writing Bedrock2 programs in Python.

The paper writes Bedrock2 programs with Coq notations that look like C and
elaborate to syntax trees; this module plays the same role for Python. The
drivers and the lightbulb application in `repro.sw` are written with it.

Expressions support Python operator overloading on the `E` wrapper::

    x, y = E.var("x"), E.var("y")
    expr = (x + y) & E.lit(0xFF)

Statements are built with lowercase combinators and assembled with
``block(...)``::

    body = block(
        set_("i", lit(0)),
        while_((E.var("i") < lit(10)), block(
            store4(buf + E.var("i") * lit(4), E.var("i")),
            set_("i", E.var("i") + lit(1)),
        )),
    )
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, TypeVar, Union

from .ast_ import (
    Cmd,
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    Function,
    SCall,
    SIf,
    SInteract,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
    seq,
)

ExprLike = Union["E", Expr, int, str]

_Node = TypeVar("_Node")


def _mark(node: _Node) -> _Node:
    """Attach the eDSL caller's source location to an AST node.

    The AST dataclasses are frozen but not slotted, so a ``loc``
    attribute (``(filename, lineno)``) can ride along without changing
    equality or the node structure. Diagnostics from `repro.analysis`
    use it; everything else ignores it. Best-effort: nodes built outside
    the combinators (tests, generated code) simply have no ``loc``.
    """
    frame = sys._getframe(2)
    object.__setattr__(node, "loc", (frame.f_code.co_filename,
                                     frame.f_lineno))
    return node


def _unwrap(e: ExprLike) -> Expr:
    if isinstance(e, E):
        return e.node
    if isinstance(e, Expr):
        return e
    if isinstance(e, int):
        return ELit(e)
    if isinstance(e, str):
        return EVar(e)
    raise TypeError("cannot interpret %r as a Bedrock2 expression" % (e,))


class E:
    """Expression wrapper providing C-like operators.

    Comparison operators return 0/1 words, exactly as in Bedrock2 (and C).
    ``>>`` is the *unsigned* (logical) shift; use `E.sar` for arithmetic.
    """

    __slots__ = ("node",)

    def __init__(self, node: ExprLike):
        self.node = _unwrap(node)

    @staticmethod
    def lit(value: int) -> "E":
        return E(ELit(value))

    @staticmethod
    def var(name: str) -> "E":
        return E(EVar(name))

    def _bin(self, op: str, other: ExprLike) -> "E":
        return E(EOp(op, self.node, _unwrap(other)))

    def _rbin(self, op: str, other: ExprLike) -> "E":
        return E(EOp(op, _unwrap(other), self.node))

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._rbin("add", other)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._rbin("sub", other)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __rmul__(self, other):
        return self._rbin("mul", other)

    def __and__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __lshift__(self, other):
        return self._bin("slu", other)

    def __rshift__(self, other):
        return self._bin("sru", other)

    def sar(self, other):
        """Arithmetic (sign-propagating) right shift."""
        return self._bin("srs", other)

    def udiv(self, other):
        return self._bin("divu", other)

    def umod(self, other):
        return self._bin("remu", other)

    def mulhuu(self, other):
        return self._bin("mulhuu", other)

    def __lt__(self, other):
        return self._bin("ltu", other)

    def __gt__(self, other):
        return self._rbin("ltu", other)

    def slt(self, other):
        """Signed less-than (Bedrock2's ``lts``)."""
        return self._bin("lts", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return E(EOp("eq", EOp("eq", self.node, _unwrap(other)), ELit(0)))

    def __hash__(self):
        return hash(self.node)

    def __repr__(self):
        return "E(%r)" % (self.node,)


def lit(value: int) -> E:
    return E.lit(value)


def var(name: str) -> E:
    return E.var(name)


def load1(addr: ExprLike) -> E:
    return E(ELoad(1, _unwrap(addr)))


def load2(addr: ExprLike) -> E:
    return E(ELoad(2, _unwrap(addr)))


def load4(addr: ExprLike) -> E:
    return E(ELoad(4, _unwrap(addr)))


# -- statements ---------------------------------------------------------------

def skip() -> Cmd:
    return _mark(SSkip())


def set_(name: str, value: ExprLike) -> Cmd:
    return _mark(SSet(name, _unwrap(value)))


def store1(addr: ExprLike, value: ExprLike) -> Cmd:
    return _mark(SStore(1, _unwrap(addr), _unwrap(value)))


def store2(addr: ExprLike, value: ExprLike) -> Cmd:
    return _mark(SStore(2, _unwrap(addr), _unwrap(value)))


def store4(addr: ExprLike, value: ExprLike) -> Cmd:
    return _mark(SStore(4, _unwrap(addr), _unwrap(value)))


def if_(cond: ExprLike, then_: Cmd, else_: Optional[Cmd] = None) -> Cmd:
    return _mark(SIf(_unwrap(cond), then_,
                     else_ if else_ is not None else SSkip()))


def while_(cond: ExprLike, body: Cmd, spec=None) -> Cmd:
    return _mark(SWhile(_unwrap(cond), body, spec=spec))


def block(*cmds: Cmd) -> Cmd:
    return seq(*cmds)


def call(binds: Sequence[str], func: str, *args: ExprLike) -> Cmd:
    return _mark(SCall(tuple(binds), func, tuple(_unwrap(a) for a in args)))


def interact(binds: Sequence[str], action: str, *args: ExprLike) -> Cmd:
    return _mark(SInteract(tuple(binds), action,
                           tuple(_unwrap(a) for a in args)))


def stackalloc(name: str, nbytes: int, body: Cmd) -> Cmd:
    return _mark(SStackalloc(name, nbytes, body))


def func(name: str, params: Sequence[str], rets: Sequence[str], body: Cmd,
         spec=None) -> Function:
    return _mark(Function(name, tuple(params), tuple(rets), body, spec=spec))
