"""Abstract syntax of the Bedrock2 source language (paper section 5.2).

Bedrock2 is a syntactic subset of C: all values are machine words, memory
is a flat byte-addressed space, statements are assignment, 1/2/4-byte loads
and stores, if/while, stack allocation, calls to Bedrock2 functions, and
syntactically distinguished *external* calls (`SInteract`) which is how all
I/O -- MMIO in the lightbulb -- enters the language.

The AST is plain immutable dataclasses; the eDSL in `repro.bedrock2.builder`
constructs these, mirroring how the paper's programs are written as Coq
notations that elaborate to Bedrock2 syntax trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

# Binary operators of Bedrock2 (the paper's bopname enumeration).
BINOPS = (
    "add", "sub", "mul", "mulhuu", "divu", "remu",
    "and", "or", "xor", "sru", "slu", "srs",
    "lts", "ltu", "eq",
)

ACCESS_SIZES = (1, 2, 4)


class Expr:
    """Base class of expressions. All expressions evaluate to one word."""

    __slots__ = ()


@dataclass(frozen=True)
class ELit(Expr):
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", self.value & 0xFFFFFFFF)


@dataclass(frozen=True)
class EVar(Expr):
    name: str


@dataclass(frozen=True)
class ELoad(Expr):
    """``load1``/``load2``/``load4``: little-endian load of ``size`` bytes."""

    size: int
    addr: Expr

    def __post_init__(self):
        if self.size not in ACCESS_SIZES:
            raise ValueError("bad load size %r" % (self.size,))


@dataclass(frozen=True)
class EOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in BINOPS:
            raise ValueError("unknown binary operator %r" % (self.op,))


class Cmd:
    """Base class of commands (statements)."""

    __slots__ = ()


@dataclass(frozen=True)
class SSkip(Cmd):
    pass


@dataclass(frozen=True)
class SSet(Cmd):
    name: str
    value: Expr


@dataclass(frozen=True)
class SStore(Cmd):
    size: int
    addr: Expr
    value: Expr

    def __post_init__(self):
        if self.size not in ACCESS_SIZES:
            raise ValueError("bad store size %r" % (self.size,))


@dataclass(frozen=True)
class SStackalloc(Cmd):
    """``stackalloc x[n] { body }``: ``x`` is bound to the address of a fresh
    ``n``-byte region for the duration of ``body`` (n must be a multiple of
    the word size, as in Bedrock2). The address itself is *internally
    nondeterministic* -- this is the compiler-proof stress case the paper
    highlights when motivating CPS semantics."""

    name: str
    nbytes: int
    body: "Cmd"


@dataclass(frozen=True)
class SIf(Cmd):
    cond: Expr
    then_: Cmd
    else_: Cmd


@dataclass(frozen=True)
class SWhile(Cmd):
    cond: Expr
    body: Cmd
    # Verification metadata (not part of the operational language): an
    # optional `LoopSpec` consumed by the program logic, mirroring how the
    # paper's loops are annotated with invariants and decreasing measures.
    spec: Optional[object] = field(default=None, compare=False)


@dataclass(frozen=True)
class SSeq(Cmd):
    first: Cmd
    rest: Cmd


@dataclass(frozen=True)
class SCall(Cmd):
    """Call to a Bedrock2-defined function, binding its return tuple."""

    binds: Tuple[str, ...]
    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class SInteract(Cmd):
    """External call (paper section 6.1): the only source of I/O.

    The semantics of the action is a *parameter* of the language; the
    lightbulb instantiates it with MMIOREAD/MMIOWRITE.
    """

    binds: Tuple[str, ...]
    action: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Function:
    """A Bedrock2 function: named parameters, named return values, a body."""

    name: str
    params: Tuple[str, ...]
    rets: Tuple[str, ...]
    body: Cmd
    # Optional contract used for modular verification (`repro.bedrock2.vcgen`).
    spec: Optional[object] = field(default=None, compare=False)


Program = Dict[str, Function]


def seq(*cmds: Cmd) -> Cmd:
    """Right-nested sequence of commands; the empty sequence is ``skip``."""
    if not cmds:
        return SSkip()
    result = cmds[-1]
    for cmd in reversed(cmds[:-1]):
        result = SSeq(cmd, result)
    return result


def expr_vars(e: Expr, acc: Optional[set] = None) -> set:
    if acc is None:
        acc = set()
    if isinstance(e, EVar):
        acc.add(e.name)
    elif isinstance(e, ELoad):
        expr_vars(e.addr, acc)
    elif isinstance(e, EOp):
        expr_vars(e.lhs, acc)
        expr_vars(e.rhs, acc)
    return acc


def modified_vars(c: Cmd, acc: Optional[set] = None) -> set:
    """Variables possibly assigned by ``c`` (used for loop havoc in vcgen)."""
    if acc is None:
        acc = set()
    if isinstance(c, SSet):
        acc.add(c.name)
    elif isinstance(c, SStackalloc):
        acc.add(c.name)
        modified_vars(c.body, acc)
    elif isinstance(c, SIf):
        modified_vars(c.then_, acc)
        modified_vars(c.else_, acc)
    elif isinstance(c, SWhile):
        modified_vars(c.body, acc)
    elif isinstance(c, SSeq):
        modified_vars(c.first, acc)
        modified_vars(c.rest, acc)
    elif isinstance(c, (SCall, SInteract)):
        acc.update(c.binds)
    return acc


def cmd_size(c: Cmd) -> int:
    """Number of AST nodes; used in LoC-style accounting and as a fuel hint."""
    if isinstance(c, (SSkip, SSet, SStore, SCall, SInteract)):
        return 1
    if isinstance(c, SStackalloc):
        return 1 + cmd_size(c.body)
    if isinstance(c, SIf):
        return 1 + cmd_size(c.then_) + cmd_size(c.else_)
    if isinstance(c, SWhile):
        return 1 + cmd_size(c.body)
    if isinstance(c, SSeq):
        return cmd_size(c.first) + cmd_size(c.rest)
    raise TypeError("not a command: %r" % (c,))
