"""Concrete machine-word arithmetic shared by all executable layers.

Bedrock2, the compiler IRs, the RISC-V semantics, and the Kami processors
all compute on the same fixed-width words (Table 2 of the paper lists the
bitwidth as a cross-stack parameter). Every function here takes and returns
plain ints in ``[0, 2**width)``.
"""

from __future__ import annotations

WIDTH = 32
MASK = (1 << WIDTH) - 1
MIN_SIGNED = 1 << (WIDTH - 1)


def wrap(value: int, width: int = WIDTH) -> int:
    return value & ((1 << width) - 1)


def signed(value: int, width: int = WIDTH) -> int:
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def add(a: int, b: int) -> int:
    return (a + b) & MASK


def sub(a: int, b: int) -> int:
    return (a - b) & MASK


def mul(a: int, b: int) -> int:
    return (a * b) & MASK


def mulhuu(a: int, b: int) -> int:
    """High word of the unsigned product (Bedrock2's ``mulhuu``)."""
    return ((a * b) >> WIDTH) & MASK


def divu(a: int, b: int) -> int:
    """Unsigned division with the RISC-V division-by-zero convention."""
    if b == 0:
        return MASK
    return (a // b) & MASK


def remu(a: int, b: int) -> int:
    if b == 0:
        return a
    return (a % b) & MASK


def divs(a: int, b: int) -> int:
    """Signed division, RISC-V conventions (div by 0 -> -1; overflow wraps)."""
    if b == 0:
        return MASK
    sa, sb = signed(a), signed(b)
    if sa == -MIN_SIGNED and sb == -1:
        return wrap(-MIN_SIGNED)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return wrap(q)


def rems(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = signed(a), signed(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return wrap(r)


def and_(a: int, b: int) -> int:
    return a & b


def or_(a: int, b: int) -> int:
    return a | b


def xor(a: int, b: int) -> int:
    return a ^ b


def sll(a: int, b: int) -> int:
    return (a << (b % WIDTH)) & MASK


def srl(a: int, b: int) -> int:
    return (a >> (b % WIDTH)) & MASK


def sra(a: int, b: int) -> int:
    return wrap(signed(a) >> (b % WIDTH))


def ltu(a: int, b: int) -> int:
    return 1 if a < b else 0


def lts(a: int, b: int) -> int:
    return 1 if signed(a) < signed(b) else 0


def eq(a: int, b: int) -> int:
    return 1 if a == b else 0
