"""Executable semantics of Bedrock2 (paper section 4).

The interpreter is written in postcondition-passing ("CPS") style where it
matters for fidelity: every run either terminates in a final state, raises
`UndefinedBehavior` (out-of-bounds access, unknown variable, unknown
function), or exhausts its fuel (`OutOfFuel`) -- the paper identifies
nontermination with undefined behavior, and fuel makes that decision
executable.

External calls (`SInteract`) are delegated to an `ExtHandler` parameter and
recorded in the interaction trace as `IOEvent` entries, exactly mirroring
the paper's parameterization of the source semantics over external-call
behavior (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import word
from .ast_ import (
    Cmd,
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    Program,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
)


class UndefinedBehavior(Exception):
    """The program hit undefined behavior (the semantics has no next state)."""


class OutOfFuel(Exception):
    """The fuel bound was exhausted; treated as nontermination."""


@dataclass(frozen=True)
class IOEvent:
    """One entry of the interaction trace: an external call with its
    arguments and results. For MMIO, `to_mmio_triple` renders it in the
    paper's ("ld"/"st", addr, value) format."""

    action: str
    args: Tuple[int, ...]
    rets: Tuple[int, ...]

    def to_mmio_triple(self) -> Tuple[str, int, int]:
        if self.action == "MMIOREAD":
            return ("ld", self.args[0], self.rets[0])
        if self.action == "MMIOWRITE":
            return ("st", self.args[0], self.args[1])
        raise ValueError("not an MMIO event: %r" % (self,))


def to_mmio_triples(trace: Sequence[IOEvent]) -> List[Tuple[str, int, int]]:
    return [event.to_mmio_triple() for event in trace]


class Memory:
    """A flat, byte-addressed, *partial* memory.

    Addresses not in the map are not owned by the program; touching them is
    undefined behavior (like Bedrock2's map-based memory). Multi-byte
    accesses are little-endian, as on RISC-V.
    """

    __slots__ = ("_bytes",)

    def __init__(self, contents: Optional[Dict[int, int]] = None):
        self._bytes: Dict[int, int] = dict(contents) if contents else {}

    @classmethod
    def from_regions(cls, regions: Sequence[Tuple[int, bytes]]) -> "Memory":
        mem = cls()
        for base, data in regions:
            for i, b in enumerate(data):
                mem._bytes[word.add(base, i)] = b
        return mem

    def owns(self, addr: int, nbytes: int = 1) -> bool:
        return all(word.add(addr, i) in self._bytes for i in range(nbytes))

    def load(self, addr: int, nbytes: int) -> int:
        value = 0
        for i in range(nbytes):
            a = word.add(addr, i)
            if a not in self._bytes:
                raise UndefinedBehavior("load of unowned address 0x%x" % a)
            value |= self._bytes[a] << (8 * i)
        return value

    def store(self, addr: int, nbytes: int, value: int) -> None:
        for i in range(nbytes):
            a = word.add(addr, i)
            if a not in self._bytes:
                raise UndefinedBehavior("store to unowned address 0x%x" % a)
        for i in range(nbytes):
            self._bytes[word.add(addr, i)] = (value >> (8 * i)) & 0xFF
    def add_region(self, base: int, data: bytes) -> None:
        for i, b in enumerate(data):
            a = word.add(base, i)
            if a in self._bytes:
                raise ValueError("region overlap at 0x%x" % a)
            self._bytes[a] = b

    def remove_region(self, base: int, nbytes: int) -> bytes:
        out = bytearray()
        for i in range(nbytes):
            a = word.add(base, i)
            if a not in self._bytes:
                raise UndefinedBehavior("stackalloc region lost byte 0x%x" % a)
            out.append(self._bytes.pop(a))
        return bytes(out)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._bytes)

    def __len__(self) -> int:
        return len(self._bytes)


class ExtHandler:
    """Semantics of external calls -- the language parameter of section 6.1.

    Subclasses implement `call`; the default rejects everything, modeling a
    platform with no I/O."""

    def call(self, action: str, args: Tuple[int, ...],
             mem: Memory) -> Tuple[int, ...]:
        raise UndefinedBehavior("no external call %r on this platform" % action)


class MMIOExtHandler(ExtHandler):
    """MMIO instantiation: MMIOREAD/MMIOWRITE against a device bus.

    ``bus`` must expose ``read(addr) -> value`` and ``write(addr, value)``
    plus ``is_mmio(addr) -> bool`` (see `repro.platform.bus`). Calls outside
    the MMIO range are undefined behavior, as required by the paper's
    external-call specification."""

    def __init__(self, bus):
        self.bus = bus

    def call(self, action, args, mem):
        if action == "MMIOREAD":
            (addr,) = args
            if not self.bus.is_mmio(addr):
                raise UndefinedBehavior("MMIOREAD outside MMIO range: 0x%x" % addr)
            return (self.bus.read(addr) & word.MASK,)
        if action == "MMIOWRITE":
            addr, value = args
            if not self.bus.is_mmio(addr):
                raise UndefinedBehavior("MMIOWRITE outside MMIO range: 0x%x" % addr)
            self.bus.write(addr, value)
            return ()
        raise UndefinedBehavior("unknown external call %r" % action)


_BINOP_FN: Dict[str, Callable[[int, int], int]] = {
    "add": word.add, "sub": word.sub, "mul": word.mul, "mulhuu": word.mulhuu,
    "divu": word.divu, "remu": word.remu, "and": word.and_, "or": word.or_,
    "xor": word.xor, "sru": word.srl, "slu": word.sll, "srs": word.sra,
    "lts": word.lts, "ltu": word.ltu, "eq": word.eq,
}


class State:
    """Mutable interpreter state: trace, memory, locals."""

    __slots__ = ("trace", "mem", "locals")

    def __init__(self, mem: Memory, locals_: Optional[Dict[str, int]] = None,
                 trace: Optional[List[IOEvent]] = None):
        self.trace: List[IOEvent] = trace if trace is not None else []
        self.mem = mem
        self.locals: Dict[str, int] = dict(locals_) if locals_ else {}


class Interpreter:
    """Big-step interpreter, parameterized by external-call semantics.

    ``stack_base`` simulates the internal nondeterminism of `SStackalloc`:
    addresses are drawn from a region that callers may vary to check that
    programs do not depend on the allocation address.
    """

    def __init__(self, program: Program, ext: Optional[ExtHandler] = None,
                 fuel: int = 10_000_000, stack_base: int = 0x8000_0000):
        self.program = program
        self.ext = ext if ext is not None else ExtHandler()
        self.fuel = fuel
        self.stack_base = stack_base
        self._stack_off = 0

    # -- expressions ---------------------------------------------------------

    def eval_expr(self, e: Expr, state: State) -> int:
        if isinstance(e, ELit):
            return e.value
        if isinstance(e, EVar):
            if e.name not in state.locals:
                raise UndefinedBehavior("unbound variable %r" % e.name)
            return state.locals[e.name]
        if isinstance(e, ELoad):
            addr = self.eval_expr(e.addr, state)
            if addr % e.size != 0:
                raise UndefinedBehavior(
                    "misaligned %d-byte load at 0x%x" % (e.size, addr))
            return state.mem.load(addr, e.size)
        if isinstance(e, EOp):
            lhs = self.eval_expr(e.lhs, state)
            rhs = self.eval_expr(e.rhs, state)
            return _BINOP_FN[e.op](lhs, rhs)
        raise TypeError("not an expression: %r" % (e,))

    # -- commands ------------------------------------------------------------

    def exec_cmd(self, c: Cmd, state: State) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise OutOfFuel()
        if isinstance(c, SSkip):
            return
        if isinstance(c, SSet):
            state.locals[c.name] = self.eval_expr(c.value, state)
            return
        if isinstance(c, SStore):
            addr = self.eval_expr(c.addr, state)
            value = self.eval_expr(c.value, state)
            if addr % c.size != 0:
                raise UndefinedBehavior(
                    "misaligned %d-byte store at 0x%x" % (c.size, addr))
            state.mem.store(addr, c.size, value)
            return
        if isinstance(c, SStackalloc):
            if c.nbytes % 4 != 0:
                raise UndefinedBehavior("stackalloc size not word-aligned")
            base = word.add(self.stack_base, self._stack_off)
            self._stack_off += c.nbytes
            state.mem.add_region(base, bytes(c.nbytes))
            # As in Bedrock2, the binding survives the block (locals are
            # function-scoped); only the memory region is reclaimed.
            state.locals[c.name] = base
            try:
                self.exec_cmd(c.body, state)
            finally:
                state.mem.remove_region(base, c.nbytes)
                self._stack_off -= c.nbytes
            return
        if isinstance(c, SIf):
            if self.eval_expr(c.cond, state) != 0:
                self.exec_cmd(c.then_, state)
            else:
                self.exec_cmd(c.else_, state)
            return
        if isinstance(c, SWhile):
            while self.eval_expr(c.cond, state) != 0:
                self.exec_cmd(c.body, state)
                self.fuel -= 1
                if self.fuel <= 0:
                    raise OutOfFuel()
            return
        if isinstance(c, SSeq):
            # Walk the SSeq spine iteratively (long blocks must not recurse
            # once per statement).
            node = c
            while isinstance(node, SSeq):
                self.exec_cmd(node.first, state)
                node = node.rest
            self.exec_cmd(node, state)
            return
        if isinstance(c, SCall):
            self._call_function(c, state)
            return
        if isinstance(c, SInteract):
            args = tuple(self.eval_expr(a, state) for a in c.args)
            rets = self.ext.call(c.action, args, state.mem)
            if len(rets) != len(c.binds):
                raise UndefinedBehavior(
                    "external call %r returned %d values, expected %d"
                    % (c.action, len(rets), len(c.binds)))
            state.trace.append(IOEvent(c.action, args, tuple(rets)))
            for name, value in zip(c.binds, rets):
                state.locals[name] = value & word.MASK
            return
        raise TypeError("not a command: %r" % (c,))

    def _call_function(self, c: SCall, state: State) -> None:
        fn = self.program.get(c.func)
        if fn is None:
            raise UndefinedBehavior("call to unknown function %r" % c.func)
        if len(c.args) != len(fn.params):
            raise UndefinedBehavior("arity mismatch calling %r" % c.func)
        if len(c.binds) != len(fn.rets):
            raise UndefinedBehavior("return-arity mismatch calling %r" % c.func)
        args = [self.eval_expr(a, state) for a in c.args]
        callee = State(state.mem, dict(zip(fn.params, args)), state.trace)
        self.exec_cmd(fn.body, callee)
        for name in fn.rets:
            if name not in callee.locals:
                raise UndefinedBehavior(
                    "function %r did not define return variable %r"
                    % (c.func, name))
        for bind, ret in zip(c.binds, fn.rets):
            state.locals[bind] = callee.locals[ret]


def run_function(program: Program, fname: str, args: Sequence[int],
                 mem: Optional[Memory] = None, ext: Optional[ExtHandler] = None,
                 fuel: int = 10_000_000,
                 stack_base: int = 0x8000_0000) -> Tuple[Tuple[int, ...], State]:
    """Run ``program[fname]`` on concrete ``args``.

    Returns ``(return_values, final_state)``; the final state carries the
    I/O trace and memory."""
    fn = program[fname]
    if len(args) != len(fn.params):
        raise ValueError("expected %d args, got %d" % (len(fn.params), len(args)))
    state = State(mem if mem is not None else Memory(),
                  dict(zip(fn.params, (a & word.MASK for a in args))))
    interp = Interpreter(program, ext=ext, fuel=fuel, stack_base=stack_base)
    interp.exec_cmd(fn.body, state)
    rets = []
    for name in fn.rets:
        if name not in state.locals:
            raise UndefinedBehavior("missing return variable %r" % name)
        rets.append(state.locals[name])
    return tuple(rets), state
