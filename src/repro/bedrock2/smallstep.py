"""Traditional small-step operational semantics for Bedrock2.

Section 5.8 of the paper proves that the CPS semantics agrees with standard
small-step semantics "to make sure our top-level theorem does not depend on
this semantics that is not (yet) well-established". We reproduce the same
hedge: this module is an independent implementation of Bedrock2 as a
small-step transition system, and `tests/test_bedrock2_agreement.py` checks
it against the big-step interpreter on a program corpus plus
hypothesis-generated programs.

A configuration is ``(continuation stack, state)``; one `step` rewrites the
top of the continuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import word
from .ast_ import (
    Cmd,
    Program,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
)
from .semantics import (
    ExtHandler,
    Interpreter,
    IOEvent,
    Memory,
    State,
    UndefinedBehavior,
)


@dataclass
class KCmd:
    """Continuation frame: execute a command."""

    cmd: Cmd


@dataclass
class KPopStack:
    """Continuation frame: deallocate a stackalloc region. The name binding
    survives (Bedrock2 locals are function-scoped)."""

    base: int
    nbytes: int


@dataclass
class KPopCall:
    """Continuation frame: return from a function call, copying the callee's
    return variables into the caller's binders."""

    binds: Tuple[str, ...]
    rets: Tuple[str, ...]
    caller_locals: dict


class SmallStepMachine:
    """A Bedrock2 configuration that can be stepped one rule at a time."""

    def __init__(self, program: Program, cmd: Cmd, state: State,
                 ext: Optional[ExtHandler] = None,
                 stack_base: int = 0x8000_0000):
        self.program = program
        self.state = state
        self.stack: List[object] = [KCmd(cmd)]
        self.ext = ext if ext is not None else ExtHandler()
        self.stack_base = stack_base
        self._stack_off = 0
        # Reuse the interpreter's expression evaluator: expressions are pure
        # and total-or-UB, so sharing it cannot hide a divergence in command
        # sequencing, which is what this semantics independently re-derives.
        self._expr = Interpreter(program, ext=self.ext).eval_expr

    def done(self) -> bool:
        return not self.stack

    def step(self) -> None:
        """Perform one small step; raises UndefinedBehavior exactly when the
        big-step semantics would."""
        if self.done():
            raise RuntimeError("stepping a finished machine")
        frame = self.stack.pop()
        state = self.state
        if isinstance(frame, KPopStack):
            state.mem.remove_region(frame.base, frame.nbytes)
            self._stack_off -= frame.nbytes
            return
        if isinstance(frame, KPopCall):
            callee_locals = state.locals
            for name in frame.rets:
                if name not in callee_locals:
                    raise UndefinedBehavior("missing return variable %r" % name)
            restored = frame.caller_locals
            for bind, ret in zip(frame.binds, frame.rets):
                restored[bind] = callee_locals[ret]
            state.locals = restored
            return
        assert isinstance(frame, KCmd)
        c = frame.cmd
        if isinstance(c, SSkip):
            return
        if isinstance(c, SSet):
            state.locals[c.name] = self._expr(c.value, state)
            return
        if isinstance(c, SStore):
            addr = self._expr(c.addr, state)
            value = self._expr(c.value, state)
            if addr % c.size != 0:
                raise UndefinedBehavior(
                    "misaligned %d-byte store at 0x%x" % (c.size, addr))
            state.mem.store(addr, c.size, value)
            return
        if isinstance(c, SSeq):
            self.stack.append(KCmd(c.rest))
            self.stack.append(KCmd(c.first))
            return
        if isinstance(c, SIf):
            if self._expr(c.cond, state) != 0:
                self.stack.append(KCmd(c.then_))
            else:
                self.stack.append(KCmd(c.else_))
            return
        if isinstance(c, SWhile):
            if self._expr(c.cond, state) != 0:
                self.stack.append(KCmd(c))
                self.stack.append(KCmd(c.body))
            return
        if isinstance(c, SStackalloc):
            if c.nbytes % 4 != 0:
                raise UndefinedBehavior("stackalloc size not word-aligned")
            base = word.add(self.stack_base, self._stack_off)
            self._stack_off += c.nbytes
            state.mem.add_region(base, bytes(c.nbytes))
            state.locals[c.name] = base
            self.stack.append(KPopStack(base, c.nbytes))
            self.stack.append(KCmd(c.body))
            return
        if isinstance(c, SCall):
            fn = self.program.get(c.func)
            if fn is None:
                raise UndefinedBehavior("call to unknown function %r" % c.func)
            if len(c.args) != len(fn.params) or len(c.binds) != len(fn.rets):
                raise UndefinedBehavior("arity mismatch calling %r" % c.func)
            args = [self._expr(a, state) for a in c.args]
            self.stack.append(KPopCall(c.binds, fn.rets, state.locals))
            state.locals = dict(zip(fn.params, args))
            self.stack.append(KCmd(fn.body))
            return
        if isinstance(c, SInteract):
            args = tuple(self._expr(a, state) for a in c.args)
            rets = self.ext.call(c.action, args, state.mem)
            if len(rets) != len(c.binds):
                raise UndefinedBehavior("external call arity mismatch")
            state.trace.append(IOEvent(c.action, args, tuple(rets)))
            for name, value in zip(c.binds, rets):
                state.locals[name] = value & word.MASK
            return
        raise TypeError("not a command: %r" % (c,))

    def run(self, max_steps: int = 10_000_000) -> int:
        """Step to completion; returns the number of steps taken."""
        steps = 0
        while not self.done():
            if steps >= max_steps:
                raise RuntimeError("small-step fuel exhausted")
            self.step()
            steps += 1
        return steps


def run_function_smallstep(program: Program, fname: str, args,
                           mem: Optional[Memory] = None,
                           ext: Optional[ExtHandler] = None,
                           stack_base: int = 0x8000_0000,
                           max_steps: int = 10_000_000):
    """Small-step analogue of `repro.bedrock2.semantics.run_function`."""
    fn = program[fname]
    state = State(mem if mem is not None else Memory(),
                  dict(zip(fn.params, (a & word.MASK for a in args))))
    machine = SmallStepMachine(program, fn.body, state, ext=ext,
                               stack_base=stack_base)
    machine.run(max_steps=max_steps)
    rets = []
    for name in fn.rets:
        if name not in state.locals:
            raise UndefinedBehavior("missing return variable %r" % name)
        rets.append(state.locals[name])
    return tuple(rets), state
