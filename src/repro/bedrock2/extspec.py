"""External-call specifications (the paper's ``vcextern``, section 6.1).

The Bedrock2 program logic is parameterized over the meaning of external
calls. For the lightbulb platform the instantiation is MMIO: an
``MMIOREAD``/``MMIOWRITE`` call must target a word-aligned address inside
the platform's MMIO ranges (an *obligation* the programmer proves), and the
read value is universally quantified (a fresh symbol the programmer must
handle for all values) -- exactly the ∀-vs-∃ split the paper describes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..logic import terms as T
from .vcgen import SymEvent, SymState, VC, VerificationError


class SymExtSpec:
    """Base class: no external calls allowed."""

    def action_signature(self, action: str) -> Optional[Tuple[int, int]]:
        """``(num_args, num_results)`` for a known action, else ``None``.

        Static metadata mirroring `apply`'s dynamic arity checks, so the
        analyzer (`repro.analysis`) can flag bad external calls without
        running symbolic execution.
        """
        return None

    def apply(self, vc: VC, state: SymState, action: str,
              args: Tuple[T.Term, ...], context: str) -> Tuple[T.Term, ...]:
        raise VerificationError(context, "no external call %r on this platform"
                                % action)


class MMIOSpec(SymExtSpec):
    """MMIO instantiation of ``vcextern``.

    ``ranges`` is a list of half-open address intervals (the platform's
    memory map); the obligation for each call is membership plus 4-byte
    alignment, matching the paper's ``nonmem_load`` instance in section 6.2.
    """

    #: action -> (num_args, num_results); kept in sync with `apply`.
    SIGNATURES = {"MMIOREAD": (1, 1), "MMIOWRITE": (2, 0)}

    def __init__(self, ranges: Sequence[Tuple[int, int]]):
        self.ranges = tuple(ranges)

    def action_signature(self, action: str) -> Optional[Tuple[int, int]]:
        return self.SIGNATURES.get(action)

    def is_mmio_addr(self, addr: T.Term) -> T.Term:
        cases = [T.and_(T.ule(T.const(lo), addr), T.ult(addr, T.const(hi)))
                 for lo, hi in self.ranges]
        return T.or_(*cases)

    def aligned(self, addr: T.Term) -> T.Term:
        return T.eq(T.band(addr, T.const(3)), T.const(0))

    def apply(self, vc, state, action, args, context):
        if action == "MMIOREAD":
            if len(args) != 1:
                raise VerificationError(context, "MMIOREAD takes 1 argument")
            (addr,) = args
            vc.prove(state, self.is_mmio_addr(addr), context + "/isMMIOAddr")
            vc.prove(state, self.aligned(addr), context + "/isMMIOAligned")
            value = vc.fresh("mmio_read")
            state.trace.append(SymEvent("MMIOREAD", (addr,), (value,)))
            return (value,)
        if action == "MMIOWRITE":
            if len(args) != 2:
                raise VerificationError(context, "MMIOWRITE takes 2 arguments")
            addr, value = args
            vc.prove(state, self.is_mmio_addr(addr), context + "/isMMIOAddr")
            vc.prove(state, self.aligned(addr), context + "/isMMIOAligned")
            state.trace.append(SymEvent("MMIOWRITE", (addr, value), ()))
            return ()
        raise VerificationError(context, "unknown external call %r" % action)
