"""The Bedrock2 program logic (paper sections 4.1 and 6.1).

This is the verification-condition generator: a symbolic executor in
postcondition-passing style. Where the paper's ``vcgen`` computes a weakest
precondition that is then proven in Coq, ours walks the program with
symbolic words (`repro.logic.terms`), emits each side condition as a
quantifier-free bitvector formula, and *decides* it with the portfolio
solver -- failures carry concrete countermodels.

Supported reasoning, mirroring the paper's usage:

* full functional verification of straight-line and branching scalar code;
* loops via `LoopSpec` (invariant + strictly decreasing unsigned measure --
  the paper proves *total* correctness, hence the timeout counters in the
  drivers) or via bounded unrolling when the condition resolves concretely;
* modular function calls via `Contract`s (callee verified separately; call
  site proves the precondition and assumes the postcondition), the paper's
  central modularity mechanism;
* external calls via a symbolic external-call specification (`vcextern` in
  the paper), instantiated for MMIO in `repro.bedrock2.extspec`;
* memory via named regions (separation-logic flavor): concrete-offset
  accesses track byte contents exactly; symbolic-offset accesses are proven
  in bounds and conservatively havoc contents (sound for safety and trace
  properties; see DESIGN.md "Known deviations").
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..logic import cache as C
from ..logic import solver as S
from ..logic import terms as T
from .ast_ import (
    Cmd,
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    Program,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
)

# Observability: verification-condition production counters (pre-bound;
# see docs/observability.md). Spans per VC are emitted by `VC.prove`.
_VCS_PROVED = obs.counter("vcgen.obligations_proved")
_VCS_ASSUMED = obs.counter("vcgen.assumptions_made")
_VCS_TIMEOUT = obs.counter("vcgen.obligations_timeout")
_PATHS = obs.counter("vcgen.paths_explored")
_FUNCTIONS = obs.counter("vcgen.functions_verified")
_OBLIGATION_SECONDS = obs.histogram("vcgen.obligation_seconds")

# Pre-bound solver counters the ledger attributes per obligation: effort
# is the delta across the query; the tier is whichever tier counter
# moved. (Registry get-or-create returns the same objects solver.py and
# cache.py already bind.)
_EFFORT_REFS = tuple(
    (key, obs.counter(name))
    for key, name in (("decisions", "sat.decisions"),
                      ("propagations", "sat.propagations"),
                      ("conflicts", "sat.conflicts"),
                      ("cnf_vars", "bitblast.cnf_vars"),
                      ("cnf_clauses", "bitblast.cnf_clauses")))
_TIER_REFS = tuple(
    (tier, obs.counter("solver.tier." + tier))
    for tier in ("structural", "interval", "sat"))
_CACHE_HITS = obs.counter("cache.hits")
_CACHE_MISSES = obs.counter("cache.misses")


def _solver_snapshot() -> tuple:
    """Counter baseline taken before a ledgered solver query."""
    return (tuple(counter.value for _, counter in _EFFORT_REFS),
            tuple(counter.value for _, counter in _TIER_REFS),
            _CACHE_HITS.value, _CACHE_MISSES.value)


def _solver_delta(snapshot: tuple):
    """(effort dict, tier, cache hit/miss) attributed to the query since
    ``snapshot``. The cache tier wins over the portfolio tiers (a cache
    hit runs no tier at all)."""
    effort0, tiers0, hits0, misses0 = snapshot
    effort = {key: counter.value - before
              for (key, counter), before in zip(_EFFORT_REFS, effort0)}
    tier = None
    for (name, counter), before in zip(_TIER_REFS, tiers0):
        if counter.value > before:
            tier = name
            break
    cache_state = None
    if _CACHE_HITS.value > hits0:
        tier, cache_state = "cache", "hit"
    elif _CACHE_MISSES.value > misses0:
        cache_state = "miss"
    return effort, tier, cache_state


def _short_loc(loc) -> Optional[str]:
    """Render a builder frame-stamp ``(filename, lineno)`` as a stable
    ``path:line`` string (paths shortened to the in-repo suffix so the
    ledger does not depend on the checkout location)."""
    if loc is None:
        return None
    filename, lineno = loc
    cut = filename.rfind("repro" + os.sep)
    if cut >= 0:
        filename = filename[cut:]
    else:
        filename = os.path.basename(filename)
    return "%s:%d" % (filename.replace(os.sep, "/"), lineno)


class VerificationError(Exception):
    """A side condition failed, with location context and countermodel."""

    def __init__(self, context: str, detail: str,
                 model: Optional[Dict[str, int]] = None):
        self.context = context
        self.detail = detail
        self.model = model
        super().__init__("%s: %s%s" % (
            context, detail, ("\n  countermodel: %r" % (model,)) if model else ""))

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__`` and breaks; rebuild from the parts
        # instead so the error round-trips through dispatcher workers.
        return (VerificationError, (self.context, self.detail, self.model))


@dataclass(frozen=True)
class SymEvent:
    """A symbolic interaction-trace entry."""

    action: str
    args: Tuple[T.Term, ...]
    rets: Tuple[T.Term, ...]


@dataclass(frozen=True)
class TraceHole:
    """An abstract trace segment produced by a havocked loop or a callee
    contract: "zero or more events, each satisfying the tagged shape".
    Trace predicates over symbolic traces interpret holes by tag."""

    tag: str


@dataclass
class Region:
    """A named, owned byte region at a (usually symbolic) base address.

    ``contents`` is a list of byte terms when precisely tracked, or ``None``
    after a conservative havoc."""

    name: str
    base: T.Term
    size: int
    contents: Optional[List[T.Term]]

    def havoc(self, fresh: Callable[[str, int], T.Term]) -> None:
        self.contents = None

    def byte(self, offset: int, fresh: Callable[[str, int], T.Term]) -> T.Term:
        if self.contents is None:
            # Unknown contents: each read sees an arbitrary byte.
            return fresh("%s_b%d" % (self.name, offset), 8)
        return self.contents[offset]


@dataclass
class LoopSpec:
    """Loop annotation for the program logic.

    ``invariant(state) -> Term`` must hold at every loop head;
    ``measure(state) -> Term`` (unsigned word) must strictly decrease on
    every iteration (total correctness, as in the paper);
    ``modified`` lists havocked locals (inferred from the AST if None);
    ``modified_regions`` lists memory regions the body may write;
    ``event_filter(event, vc, state)`` is an obligation every event emitted
    inside the loop must satisfy -- the loop's trace contribution becomes a
    `TraceHole` whose tag promises exactly this shape;
    ``tag`` names the hole."""

    invariant: Callable
    measure: Optional[Callable] = None
    modified: Optional[Sequence[str]] = None
    modified_regions: Sequence[str] = ()
    event_filter: Optional[Callable] = None
    tag: str = "loop"


@dataclass
class Contract:
    """A function contract for modular verification (section 6.1).

    ``pre(vc, args, state)`` proves obligations at the call site;
    ``rets`` is the number of returned values (fresh symbols);
    ``post(vc, args, rets, state)`` assumes facts about the results;
    ``trace_effect(args, rets) -> list`` of SymEvent/TraceHole appended to
    the trace (the callee's visible I/O summary);
    ``modified_regions``: caller regions conservatively havocked."""

    name: str
    pre: Optional[Callable] = None
    post: Optional[Callable] = None
    trace_effect: Optional[Callable] = None
    modified_regions: Sequence[str] = ()


class SymState:
    """One symbolic execution state (a conjunction of path facts plus a
    symbolic store, memory, and trace)."""

    __slots__ = ("locals", "path", "trace", "regions")

    def __init__(self):
        self.locals: Dict[str, T.Term] = {}
        self.path: List[T.Term] = []
        self.trace: List[object] = []
        self.regions: Dict[str, Region] = {}

    def copy(self) -> "SymState":
        other = SymState()
        other.locals = dict(self.locals)
        other.path = list(self.path)
        other.trace = list(self.trace)
        other.regions = {
            name: Region(r.name, r.base, r.size,
                         list(r.contents) if r.contents is not None else None)
            for name, r in self.regions.items()
        }
        return other

    def assume(self, fact: T.Term) -> None:
        if fact is not T.TRUE:
            self.path.append(fact)
            _VCS_ASSUMED.inc()

    def infeasible(self) -> bool:
        return T.and_(*self.path) is T.FALSE


class VC:
    """The verification-condition engine shared by a whole run: fresh-name
    supply, obligation discharge, and statistics.

    ``record_timeouts`` (the default) makes a per-obligation SAT-budget
    exhaustion a recorded ``timeout`` status in the final report instead
    of an exception that aborts the whole run -- one stuck VC must not
    take down a parallel batch of otherwise-decidable obligations. Pass
    ``record_timeouts=False`` to get the old abort-on-timeout behavior.

    ``prescreen`` is an optional ``(state, goal) -> bool`` hook consulted
    before the solver; returning True means the goal is *proved* under
    the state's path condition, so the obligation is counted as
    discharged without a solver query. The hook must be sound -- it may
    only claim goals that `S.check_valid` would also prove. The standard
    implementation is `repro.analysis.prescreen.Prescreener` (injected
    here rather than imported, keeping the Figure-3 layering acyclic).
    """

    def __init__(self, max_conflicts: int = 2_000_000,
                 record_timeouts: bool = True,
                 prescreen: Optional[Callable[["SymState", T.Term], bool]] = None,
                 function: str = ""):
        self._counter = itertools.count()
        self.max_conflicts = max_conflicts
        self.record_timeouts = record_timeouts
        self.prescreen = prescreen
        self.function = function
        #: eDSL source location of the statement currently executing
        #: (set by `SymExec._exec` from the builder's frame stamps);
        #: ledger records attribute obligations to it.
        self.current_loc: Optional[tuple] = None
        self._ledger_seq = itertools.count()
        self.obligations_proved = 0
        self.assumptions_made = 0
        self.timeouts: List[str] = []

    def prescreened(self, state: SymState, goal: T.Term) -> bool:
        """True when the prescreen hook soundly discharges ``goal``."""
        return self.prescreen is not None and self.prescreen(state, goal)

    def fresh(self, hint: str = "v", width: int = 32) -> T.Term:
        name = "%s!%d" % (hint, next(self._counter))
        if width == 0:
            return T.bool_var(name)
        return T.var(name, width)

    def _ledger(self, led, state: SymState, goal: T.Term, context: str,
                status: str, snapshot: Optional[tuple], t0: float,
                tier: Optional[str] = None,
                prescreen: Optional[str] = None) -> None:
        """Append one obligation record to the active ledger."""
        if snapshot is not None:
            effort, solved_tier, cache_state = _solver_delta(snapshot)
            if tier is None:
                tier = solved_tier
        else:
            effort, cache_state = {key: 0 for key, _ in _EFFORT_REFS}, None
        # The same formula `solver.check_valid` decides, fingerprinted
        # the same way the proof cache keys it.
        digest, _ = C.fingerprint(
            T.and_(*(list(state.path) + [T.not_(goal)])))
        led.append({
            "function": self.function,
            "seq": next(self._ledger_seq),
            "context": context,
            "loc": _short_loc(self.current_loc),
            "fp": digest,
            "status": status,
            "tier": tier,
            "cache": cache_state,
            "prescreen": prescreen,
            "effort": effort,
            "wall_us": int((time.perf_counter() - t0) * 1e6),
            "pid": os.getpid(),
        })

    def prove(self, state: SymState, goal: T.Term, context: str) -> None:
        """Discharge an obligation under the current path condition."""
        t0 = time.perf_counter()
        led = obs.ledger()
        snapshot = _solver_snapshot() if led is not None else None
        with obs.span("vc.prove", cat="vcgen", args={"context": context}):
            if self.prescreened(state, goal):
                self.obligations_proved += 1
                _VCS_PROVED.inc()
                _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
                if led is not None:
                    reason = ("const-goal" if goal is T.TRUE
                              else "abstract-interp")
                    self._ledger(led, state, goal, context, "proved", None,
                                 t0, tier="prescreen", prescreen=reason)
                return
            try:
                result = S.check_valid(goal, hypotheses=state.path,
                                       max_conflicts=self.max_conflicts)
            except S.SolverTimeout:
                _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
                if led is not None:
                    self._ledger(led, state, goal, context, "timeout",
                                 snapshot, t0)
                if not self.record_timeouts:
                    raise
                # Distinguish the budget-exceeded VC from a refuted one:
                # it is *unknown*, recorded per obligation, and the rest
                # of the run proceeds.
                self.timeouts.append(context)
                _VCS_TIMEOUT.inc()
                return
        _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
        if not result.valid:
            if led is not None:
                self._ledger(led, state, goal, context, "unprovable",
                             snapshot, t0)
            raise VerificationError(context, "cannot prove %r" % (goal,),
                                    result.model)
        self.obligations_proved += 1
        _VCS_PROVED.inc()
        if led is not None:
            self._ledger(led, state, goal, context, "proved", snapshot, t0)

    def check_bounds(self, state: SymState, goal: T.Term,
                     context: str) -> bool:
        """Decide a memory-safety side condition (symbolic access within
        an owned region). Returns True when proved -- counted and
        ledgered like any obligation -- and False when not provable
        under this region (the resolver tries the next candidate, so an
        unprovable bounds record is not by itself a failed run)."""
        t0 = time.perf_counter()
        led = obs.ledger()
        snapshot = _solver_snapshot() if led is not None else None
        if self.prescreened(state, goal):
            self.obligations_proved += 1
            _VCS_PROVED.inc()
            _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
            if led is not None:
                reason = "const-goal" if goal is T.TRUE else "abstract-interp"
                self._ledger(led, state, goal, context, "proved", None,
                             t0, tier="prescreen", prescreen=reason)
            return True
        try:
            result = S.check_valid(goal, hypotheses=state.path,
                                   max_conflicts=self.max_conflicts)
        except S.SolverTimeout:
            _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
            if led is not None:
                self._ledger(led, state, goal, context, "timeout",
                             snapshot, t0)
            raise
        _OBLIGATION_SECONDS.record(time.perf_counter() - t0)
        if result.valid:
            self.obligations_proved += 1
            _VCS_PROVED.inc()
            if led is not None:
                self._ledger(led, state, goal, context, "proved",
                             snapshot, t0)
            return True
        if led is not None:
            self._ledger(led, state, goal, context, "unprovable",
                         snapshot, t0)
        return False

    def feasible(self, state: SymState) -> bool:
        """Cheap path-feasibility check (used to prune dead branches)."""
        conj = T.and_(*state.path)
        if conj is T.FALSE:
            return False
        return True


class SymExec:
    """Symbolic executor for Bedrock2 commands.

    `run` explores every feasible path (branching duplicates the state) and
    invokes ``on_exit(state)`` at each normal exit. Loop and call handling
    follow the rules documented on `LoopSpec` and `Contract`.
    """

    def __init__(self, program: Program, vc: VC, ext_spec,
                 contracts: Optional[Dict[str, Contract]] = None,
                 unroll_limit: int = 64, max_paths: int = 4096):
        self.program = program
        self.vc = vc
        self.ext_spec = ext_spec
        self.contracts = contracts or {}
        self.unroll_limit = unroll_limit
        self.max_paths = max_paths
        self._paths_done = 0

    # -- expressions ---------------------------------------------------------

    def eval_expr(self, e: Expr, state: SymState, context: str) -> T.Term:
        if isinstance(e, ELit):
            return T.const(e.value)
        if isinstance(e, EVar):
            if e.name not in state.locals:
                raise VerificationError(context, "unbound variable %r" % e.name)
            return state.locals[e.name]
        if isinstance(e, ELoad):
            addr = self.eval_expr(e.addr, state, context)
            return self._load(state, addr, e.size, context)
        if isinstance(e, EOp):
            lhs = self.eval_expr(e.lhs, state, context)
            rhs = self.eval_expr(e.rhs, state, context)
            return _sym_binop(e.op, lhs, rhs)
        raise TypeError("not an expression: %r" % (e,))

    # -- memory --------------------------------------------------------------

    def _resolve(self, state: SymState, addr: T.Term, nbytes: int,
                 context: str):
        """Find the region owning [addr, addr+nbytes): returns
        (region, concrete_offset or None, offset_term)."""
        from ..logic.simplify import normalize_bv

        for region in state.regions.values():
            offset = normalize_bv(T.sub(addr, region.base))
            if offset.is_const():
                if offset.value + nbytes <= region.size:
                    return region, offset.value, offset
                continue
            # Symbolic offset: accept if provably in bounds.
            in_bounds = T.ule(offset, T.const(region.size - nbytes))
            if self.vc.check_bounds(state, in_bounds,
                                    context + "/bounds:" + region.name):
                return region, None, offset
        raise VerificationError(
            context,
            "cannot prove %d-byte access at %r lies within an owned region"
            % (nbytes, addr))

    def _check_aligned(self, state: SymState, addr: T.Term, nbytes: int,
                       context: str) -> None:
        if nbytes > 1:
            goal = T.eq(T.band(addr, T.const(nbytes - 1)), T.const(0))
            self.vc.prove(state, goal, context + "/aligned")

    def _load(self, state: SymState, addr: T.Term, nbytes: int,
              context: str) -> T.Term:
        self._check_aligned(state, addr, nbytes, context)
        region, concrete, _ = self._resolve(state, addr, nbytes, context)
        byte_terms = []
        for i in range(nbytes):
            if concrete is not None and region.contents is not None:
                byte_terms.append(region.contents[concrete + i])
            else:
                byte_terms.append(self.vc.fresh("%s_ld" % region.name, 8))
        value = byte_terms[0]
        for b in byte_terms[1:]:
            value = T.concat(b, value)
        return T.zext(value, 32)

    def _store(self, state: SymState, addr: T.Term, nbytes: int,
               value: T.Term, context: str) -> None:
        self._check_aligned(state, addr, nbytes, context)
        region, concrete, _ = self._resolve(state, addr, nbytes, context)
        if concrete is not None and region.contents is not None:
            for i in range(nbytes):
                region.contents[concrete + i] = T.extract(value, 8 * i + 7, 8 * i)
        else:
            # Symbolic offset (or already-abstract region): contents unknown.
            region.havoc(self.vc.fresh)

    # -- commands ------------------------------------------------------------

    def run(self, cmd: Cmd, state: SymState, on_exit: Callable[[SymState], None],
            context: str = "") -> None:
        self._exec(cmd, state, on_exit, context)

    def _exec(self, c: Cmd, state: SymState,
              k: Callable[[SymState], None], ctx: str) -> None:
        loc = getattr(c, "loc", None)
        if loc is not None:
            # Builder frame stamp: obligations raised while this command
            # executes are attributed to its eDSL source line.
            self.vc.current_loc = loc
        if isinstance(c, SSkip):
            k(state)
            return
        if isinstance(c, SSet):
            state.locals[c.name] = self.eval_expr(c.value, state, ctx)
            k(state)
            return
        if isinstance(c, SStore):
            addr = self.eval_expr(c.addr, state, ctx)
            value = self.eval_expr(c.value, state, ctx)
            self._store(state, addr, c.size, value, ctx + "/store")
            k(state)
            return
        if isinstance(c, SSeq):
            self._exec(c.first, state, lambda s: self._exec(c.rest, s, k, ctx), ctx)
            return
        if isinstance(c, SIf):
            cond = self.eval_expr(c.cond, state, ctx)
            taken = T.ne(cond, T.const(0))
            if taken is T.TRUE:
                self._exec(c.then_, state, k, ctx + "/then")
                return
            if taken is T.FALSE:
                self._exec(c.else_, state, k, ctx + "/else")
                return
            then_state = state.copy()
            then_state.assume(taken)
            if self.vc.feasible(then_state) and self._branch_feasible(then_state):
                self._exec(c.then_, then_state, k, ctx + "/then")
            else_state = state
            else_state.assume(T.not_(taken))
            if self.vc.feasible(else_state) and self._branch_feasible(else_state):
                self._exec(c.else_, else_state, k, ctx + "/else")
            return
        if isinstance(c, SWhile):
            self._exec_while(c, state, k, ctx)
            return
        if isinstance(c, SStackalloc):
            self._exec_stackalloc(c, state, k, ctx)
            return
        if isinstance(c, SCall):
            self._exec_call(c, state, k, ctx)
            return
        if isinstance(c, SInteract):
            args = tuple(self.eval_expr(a, state, ctx) for a in c.args)
            rets = self.ext_spec.apply(self.vc, state, c.action, args,
                                       ctx + "/" + c.action)
            if len(rets) != len(c.binds):
                raise VerificationError(ctx, "external call arity mismatch")
            for name, value in zip(c.binds, rets):
                state.locals[name] = value
            k(state)
            return
        raise TypeError("not a command: %r" % (c,))

    def _branch_feasible(self, state: SymState) -> bool:
        """SAT-check the path; prunes provably dead branches so that
        verification of e.g. error-handling ladders stays linear."""
        result = S.is_satisfiable(T.and_(*state.path),
                                  max_conflicts=self.vc.max_conflicts)
        return result.valid

    # -- loops ----------------------------------------------------------------

    def _exec_while(self, c: SWhile, state: SymState,
                    k: Callable[[SymState], None], ctx: str) -> None:
        spec = c.spec
        if spec is None:
            self._unroll_while(c, state, k, ctx, self.unroll_limit)
            return
        if not isinstance(spec, LoopSpec):
            raise VerificationError(ctx, "loop spec is not a LoopSpec")
        ctx = ctx + "/while[%s]" % spec.tag
        # 1. Invariant holds on entry.
        self.vc.prove(state, spec.invariant(state), ctx + "/inv-init")
        # 2. Havoc the modified state; assume the invariant.
        modified = spec.modified
        if modified is None:
            from .ast_ import modified_vars
            modified = sorted(modified_vars(c.body))
        head = state.copy()
        for name in modified:
            head.locals[name] = self.vc.fresh(name)
        for rname in spec.modified_regions:
            if rname in head.regions:
                head.regions[rname].havoc(self.vc.fresh)
        head.trace = head.trace + [TraceHole(spec.tag)]
        head.assume(spec.invariant(head))
        # 3. One arbitrary iteration re-establishes the invariant and
        #    decreases the measure.
        body_state = head.copy()
        cond = self.eval_expr(c.cond, body_state, ctx)
        taken = T.ne(cond, T.const(0))
        body_state.assume(taken)
        if self.vc.feasible(body_state) and self._branch_feasible(body_state):
            measure_before = (spec.measure(body_state)
                              if spec.measure is not None else None)
            trace_mark = len(body_state.trace)

            def at_backedge(s: SymState) -> None:
                # Events emitted this iteration must satisfy the filter.
                new_events = s.trace[trace_mark:]
                for event in new_events:
                    if isinstance(event, TraceHole):
                        continue  # inner loop summarized by its own spec
                    if spec.event_filter is not None:
                        spec.event_filter(self.vc, s, event, ctx + "/events")
                self.vc.prove(s, spec.invariant(s), ctx + "/inv-preserved")
                if measure_before is not None:
                    self.vc.prove(s, T.ult(spec.measure(s), measure_before),
                                  ctx + "/measure-decreases")

            self._exec(c.body, body_state, at_backedge, ctx + "/body")
        # 4. Continue after the loop from the havocked head with the
        #    condition false.
        exit_state = head
        cond = self.eval_expr(c.cond, exit_state, ctx)
        exit_state.assume(T.eq(cond, T.const(0)))
        if self.vc.feasible(exit_state):
            k(exit_state)

    def _unroll_while(self, c: SWhile, state: SymState,
                      k: Callable[[SymState], None], ctx: str,
                      budget: int) -> None:
        if budget <= 0:
            raise VerificationError(
                ctx, "loop did not terminate within the unroll limit; "
                     "attach a LoopSpec")
        cond = self.eval_expr(c.cond, state, ctx)
        taken = T.ne(cond, T.const(0))
        if taken is T.FALSE:
            k(state)
            return
        if taken is T.TRUE:
            self._exec(c.body, state,
                       lambda s: self._unroll_while(c, s, k, ctx, budget - 1),
                       ctx + "/body")
            return
        exit_state = state.copy()
        exit_state.assume(T.not_(taken))
        if self.vc.feasible(exit_state) and self._branch_feasible(exit_state):
            k(exit_state)
        state.assume(taken)
        if self.vc.feasible(state) and self._branch_feasible(state):
            self._exec(c.body, state,
                       lambda s: self._unroll_while(c, s, k, ctx, budget - 1),
                       ctx + "/body")

    # -- allocation & calls ----------------------------------------------------

    def _exec_stackalloc(self, c: SStackalloc, state: SymState,
                         k: Callable[[SymState], None], ctx: str) -> None:
        if c.nbytes % 4 != 0:
            raise VerificationError(ctx, "stackalloc size not word-aligned")
        base = self.vc.fresh("stk_%s" % c.name)
        # The address is arbitrary but word-aligned and non-wrapping --
        # exactly the guarantees the compiler provides.
        state.assume(T.eq(T.band(base, T.const(3)), T.const(0)))
        state.assume(T.ule(base, T.const(0xFFFFFFFF - c.nbytes)))
        region_name = "stack_%s_%d" % (c.name, next(self.vc._counter))
        region = Region(region_name, base, c.nbytes,
                        [self.vc.fresh("%s_init" % region_name, 8)
                         for _ in range(c.nbytes)])
        state.regions[region_name] = region
        state.locals[c.name] = base

        def after(s: SymState) -> None:
            s.regions.pop(region_name, None)
            k(s)

        self._exec(c.body, state, after, ctx + "/stackalloc")

    def _exec_call(self, c: SCall, state: SymState,
                   k: Callable[[SymState], None], ctx: str) -> None:
        contract = self.contracts.get(c.func)
        args = tuple(self.eval_expr(a, state, ctx) for a in c.args)
        if contract is not None:
            cctx = ctx + "/call:" + c.func
            if contract.pre is not None:
                contract.pre(self.vc, state, args, cctx + "/pre")
            fn = self.program.get(c.func)
            n_rets = len(fn.rets) if fn is not None else len(c.binds)
            rets = tuple(self.vc.fresh("%s_ret" % c.func) for _ in range(n_rets))
            for rname in contract.modified_regions:
                if rname in state.regions:
                    state.regions[rname].havoc(self.vc.fresh)
            if contract.trace_effect is not None:
                effect = contract.trace_effect(args, rets)
                state.trace = state.trace + list(effect)
            if contract.post is not None:
                contract.post(self.vc, state, args, rets, cctx + "/post")
            if len(rets) != len(c.binds):
                raise VerificationError(ctx, "return-arity mismatch")
            for name, value in zip(c.binds, rets):
                state.locals[name] = value
            k(state)
            return
        # No contract: inline the callee (whole-program fallback).
        fn = self.program.get(c.func)
        if fn is None:
            raise VerificationError(ctx, "call to unknown function %r" % c.func)
        if len(args) != len(fn.params) or len(c.binds) != len(fn.rets):
            raise VerificationError(ctx, "arity mismatch calling %r" % c.func)
        saved_locals = state.locals
        state.locals = dict(zip(fn.params, args))

        def after(s: SymState) -> None:
            rets = []
            for name in fn.rets:
                if name not in s.locals:
                    raise VerificationError(ctx, "missing return %r" % name)
                rets.append(s.locals[name])
            s.locals = dict(saved_locals)
            for bind, value in zip(c.binds, rets):
                s.locals[bind] = value
            k(s)

        self._exec(fn.body, state, after, ctx + "/inline:" + c.func)


def _sym_binop(op: str, a: T.Term, b: T.Term) -> T.Term:
    if op == "add":
        return T.add(a, b)
    if op == "sub":
        return T.sub(a, b)
    if op == "mul":
        return T.mul(a, b)
    if op == "mulhuu":
        wide = T.mul(T.zext(a, 64), T.zext(b, 64))
        return T.extract(wide, 63, 32)
    if op == "divu":
        return T.bv_binop("udiv", a, b)
    if op == "remu":
        return T.bv_binop("urem", a, b)
    if op == "and":
        return T.band(a, b)
    if op == "or":
        return T.bor(a, b)
    if op == "xor":
        return T.bxor(a, b)
    if op == "sru":
        return T.lshr(a, T.band(b, T.const(31)))
    if op == "slu":
        return T.shl(a, T.band(b, T.const(31)))
    if op == "srs":
        return T.ashr(a, T.band(b, T.const(31)))
    if op == "lts":
        return T.bool_to_word(T.slt(a, b))
    if op == "ltu":
        return T.bool_to_word(T.ult(a, b))
    if op == "eq":
        return T.bool_to_word(T.eq(a, b))
    raise ValueError("unknown binop %r" % op)


@dataclass
class FunctionSpec:
    """Top-level specification of a Bedrock2 function for verification.

    ``pre(vc, state, args)`` sets up regions and assumptions;
    ``post(vc, state, args, rets)`` proves the final obligations (it may
    inspect ``state.trace``, including `TraceHole`s)."""

    pre: Optional[Callable] = None
    post: Optional[Callable] = None


@dataclass
class VerifyReport:
    """Outcome summary of verifying one function.

    ``timeouts`` lists the contexts of obligations whose solver budget
    ran out: those VCs are *unknown*, not proved -- `ok` is False until
    they are re-run with a larger budget.
    """

    function: str
    paths: int
    obligations: int
    timeouts: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.timeouts

    def __str__(self):
        base = ("verified %s: %d paths, %d obligations discharged"
                % (self.function, self.paths, self.obligations))
        if self.timeouts:
            base += " (%d TIMED OUT: %s)" % (len(self.timeouts),
                                             ", ".join(self.timeouts))
        return base


def verify_function(program: Program, fname: str, spec: FunctionSpec,
                    ext_spec, contracts: Optional[Dict[str, Contract]] = None,
                    unroll_limit: int = 64,
                    max_conflicts: int = 2_000_000,
                    record_timeouts: bool = True,
                    prescreen: Optional[Callable[[SymState, T.Term], bool]] = None,
                    ) -> VerifyReport:
    """Verify ``program[fname]`` against ``spec``.

    Every feasible symbolic path through the body is explored; `spec.post`
    runs at each exit. Raises `VerificationError` on any failed obligation;
    budget-exceeded obligations are reported per VC in
    ``VerifyReport.timeouts`` (see `VC`). ``prescreen`` is forwarded to
    `VC` (see there for the soundness contract).
    """
    fn = program[fname]
    vc = VC(max_conflicts=max_conflicts, record_timeouts=record_timeouts,
            prescreen=prescreen, function=fname)
    state = SymState()
    args = tuple(vc.fresh(p) for p in fn.params)
    state.locals = dict(zip(fn.params, args))
    with obs.span("verify." + fname, cat="vcgen") as sp:
        if spec.pre is not None:
            spec.pre(vc, state, args)
        executor = SymExec(program, vc, ext_spec, contracts=contracts,
                           unroll_limit=unroll_limit)
        paths = [0]

        def on_exit(final: SymState) -> None:
            paths[0] += 1
            # Postcondition obligations belong to the spec, not to
            # whichever statement happened to execute last on the path.
            vc.current_loc = None
            rets = []
            for name in fn.rets:
                if name not in final.locals:
                    raise VerificationError(fname,
                                            "missing return variable %r" % name)
                rets.append(final.locals[name])
            if spec.post is not None:
                spec.post(vc, final, args, tuple(rets))

        executor.run(fn.body, state, on_exit, context=fname)
        sp.set("paths", paths[0])
        sp.set("obligations", vc.obligations_proved)
    _FUNCTIONS.inc()
    _PATHS.inc(paths[0])
    return VerifyReport(fname, paths[0], vc.obligations_proved,
                        tuple(vc.timeouts))
