"""The Bedrock2 source language: syntax, semantics, program logic.

Paper sections 4 (CPS semantics), 5.2 (the language), 6.1 (I/O as external
calls). The three software source files of the lightbulb system are written
in this language via the `builder` eDSL; see `repro.sw`.
"""

from . import ast_, builder, extspec, semantics, smallstep, vcgen, word

__all__ = ["ast_", "builder", "semantics", "smallstep", "vcgen", "extspec", "word"]
