"""Compiler phase 2: register allocation (paper Figure 3).

Maps FlatImp variables to RISC-V registers, spilling to stack slots when a
function uses more variables than the allocatable set. The output is again
FlatImp ("FlatImp with registers"): variable names are ``x5``..``x28`` plus
``$spillN`` markers that the code generator lowers to frame accesses via
scratch registers -- the same two-FlatImp-stage structure as the paper.

Register convention (RV32 standard names in comments):

====== ===========================================
x0     hard zero
x1     return address (ra)
x2     stack pointer (sp)
x5-x9  allocatable
x10-17 argument/return registers (a0-a7)
x18-28 allocatable
x29-31 code-generator scratch (t4-t6)
====== ===========================================
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .flatimp import (
    FCall,
    FFunction,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FProgram,
    FSetLit,
    FSetVar,
    FStackalloc,
    FStmt,
    FStore,
    FWhile,
)

ALLOCATABLE = tuple(range(5, 10)) + tuple(range(18, 29))
ARG_REGS = tuple(range(10, 18))  # a0..a7
SCRATCH = (29, 30, 31)
MAX_ARGS = len(ARG_REGS)


class TooManyArguments(Exception):
    """Function signature exceeds the a0..a7 calling convention."""


def reg_name(reg: int) -> str:
    return "x%d" % reg


def spill_name(slot: int) -> str:
    return "$spill%d" % slot


def is_spill(name: str) -> bool:
    return name.startswith("$spill")


def spill_slot(name: str) -> int:
    return int(name[len("$spill"):])


class Allocation:
    """The allocation result for one function."""

    def __init__(self, mapping: Dict[str, str], num_spills: int):
        self.mapping = mapping
        self.num_spills = num_spills

    def __getitem__(self, var: str) -> str:
        return self.mapping[var]


def _collect_vars_in_order(fn: FFunction) -> List[str]:
    """All variables in order of first occurrence (params first), giving
    params and long-lived user variables priority for real registers."""
    order: List[str] = []
    seen = set()

    def visit_var(name: str) -> None:
        if name not in seen:
            seen.add(name)
            order.append(name)

    def visit(stmts: Sequence[FStmt]) -> None:
        for s in stmts:
            if isinstance(s, FSetLit):
                visit_var(s.dst)
            elif isinstance(s, FSetVar):
                visit_var(s.src)
                visit_var(s.dst)
            elif isinstance(s, FOp):
                visit_var(s.lhs)
                visit_var(s.rhs)
                visit_var(s.dst)
            elif isinstance(s, FLoad):
                visit_var(s.addr)
                visit_var(s.dst)
            elif isinstance(s, FStore):
                visit_var(s.addr)
                visit_var(s.value)
            elif isinstance(s, FStackalloc):
                visit_var(s.dst)
                visit(s.body)
            elif isinstance(s, FIf):
                visit_var(s.cond)
                visit(s.then_)
                visit(s.else_)
            elif isinstance(s, FWhile):
                visit(s.cond_stmts)
                visit_var(s.cond_var)
                visit(s.body)
            elif isinstance(s, (FCall, FInteract)):
                for a in s.args:
                    visit_var(a)
                for b in s.binds:
                    visit_var(b)

    for p in fn.params:
        visit_var(p)
    visit(fn.body)
    for r in fn.rets:
        visit_var(r)
    return order


def allocate_function(fn: FFunction) -> Tuple[FFunction, Allocation]:
    """Rename every variable to a register or spill slot."""
    if len(fn.params) > MAX_ARGS or len(fn.rets) > MAX_ARGS:
        raise TooManyArguments(fn.name)
    order = _collect_vars_in_order(fn)
    mapping: Dict[str, str] = {}
    free_regs = list(ALLOCATABLE)
    spills = 0
    for var in order:
        if free_regs:
            mapping[var] = reg_name(free_regs.pop(0))
        else:
            mapping[var] = spill_name(spills)
            spills += 1

    def rename(stmts: Sequence[FStmt]) -> Tuple[FStmt, ...]:
        out: List[FStmt] = []
        for s in stmts:
            if isinstance(s, FSetLit):
                out.append(FSetLit(mapping[s.dst], s.value))
            elif isinstance(s, FSetVar):
                out.append(FSetVar(mapping[s.dst], mapping[s.src]))
            elif isinstance(s, FOp):
                out.append(FOp(mapping[s.dst], s.op, mapping[s.lhs],
                               mapping[s.rhs]))
            elif isinstance(s, FLoad):
                out.append(FLoad(mapping[s.dst], s.size, mapping[s.addr]))
            elif isinstance(s, FStore):
                out.append(FStore(s.size, mapping[s.addr], mapping[s.value]))
            elif isinstance(s, FStackalloc):
                out.append(FStackalloc(mapping[s.dst], s.nbytes,
                                       rename(s.body)))
            elif isinstance(s, FIf):
                out.append(FIf(mapping[s.cond], rename(s.then_),
                               rename(s.else_)))
            elif isinstance(s, FWhile):
                out.append(FWhile(rename(s.cond_stmts), mapping[s.cond_var],
                                  rename(s.body)))
            elif isinstance(s, FCall):
                out.append(FCall(tuple(mapping[b] for b in s.binds), s.func,
                                 tuple(mapping[a] for a in s.args)))
            elif isinstance(s, FInteract):
                out.append(FInteract(tuple(mapping[b] for b in s.binds),
                                     s.action,
                                     tuple(mapping[a] for a in s.args)))
            else:
                raise TypeError("not a FlatImp statement: %r" % (s,))
        return tuple(out)

    new_fn = FFunction(fn.name,
                       tuple(mapping[p] for p in fn.params),
                       tuple(mapping[r] for r in fn.rets),
                       rename(fn.body))
    return new_fn, Allocation(mapping, spills)


def allocate_program(program: FProgram):
    """Phase 2 entry point. Returns (register-FlatImp program, allocations)."""
    out: Dict[str, FFunction] = {}
    allocations: Dict[str, Allocation] = {}
    for name, fn in program.items():
        new_fn, alloc = allocate_function(fn)
        out[name] = new_fn
        allocations[name] = alloc
    return out, allocations
