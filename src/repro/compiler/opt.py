"""Optimizing FlatImp passes: the unverified "gcc -O3"-like baseline.

Paper section 7.2.1 attributes a 2.1x slowdown to the verified compiler
lacking constant propagation, function inlining, and caller-saved-register
exploitation. To reproduce that comparison we provide exactly those
optimizations as FlatImp-to-FlatImp passes, *outside* the verified-style
pipeline (they are checked by differential testing like everything else,
but they model the unverified production-compiler baseline):

* function inlining (bottom-up, non-recursive call graphs only);
* constant & copy propagation with folding (flow-sensitive, joins at
  control-flow merges, loop-modified variables killed);
* dead-code elimination (backward liveness; pure defs of dead vars drop).

``compile_program_optimized`` plugs them between flattening and register
allocation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bedrock2 import word
from ..bedrock2.ast_ import Program
from .codegen import ExtCallCompiler
from .flatimp import (
    FCall,
    FFunction,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FProgram,
    FSetLit,
    FSetVar,
    FStackalloc,
    FStmt,
    FStore,
    FWhile,
    stmt_vars,
)
from .flatten import flatten_program
from .pipeline import CompiledProgram

_FOLD = {
    "add": word.add, "sub": word.sub, "mul": word.mul, "mulhuu": word.mulhuu,
    "divu": word.divu, "remu": word.remu, "and": word.and_, "or": word.or_,
    "xor": word.xor, "sru": word.srl, "slu": word.sll, "srs": word.sra,
    "lts": word.lts, "ltu": word.ltu, "eq": word.eq,
}


# -- inlining ------------------------------------------------------------------------

def _inlinable(fn: FFunction, max_size: int) -> bool:
    return _size(fn.body) <= max_size and not _has_stackalloc(fn.body)


def _size(stmts: Sequence[FStmt]) -> int:
    total = 0
    for s in stmts:
        total += 1
        if isinstance(s, FStackalloc):
            total += _size(s.body)
        elif isinstance(s, FIf):
            total += _size(s.then_) + _size(s.else_)
        elif isinstance(s, FWhile):
            total += _size(s.cond_stmts) + _size(s.body)
    return total


def _has_stackalloc(stmts: Sequence[FStmt]) -> bool:
    for s in stmts:
        if isinstance(s, FStackalloc):
            return True
        if isinstance(s, FIf) and (_has_stackalloc(s.then_)
                                   or _has_stackalloc(s.else_)):
            return True
        if isinstance(s, FWhile) and (_has_stackalloc(s.cond_stmts)
                                      or _has_stackalloc(s.body)):
            return True
    return False


class Inliner:
    def __init__(self, program: FProgram, max_size: int = 40):
        self.program = program
        self.max_size = max_size
        self._counter = itertools.count()

    def _rename(self, stmts: Sequence[FStmt],
                mapping: Dict[str, str]) -> Tuple[FStmt, ...]:
        def r(name: str) -> str:
            return mapping[name]

        out: List[FStmt] = []
        for s in stmts:
            if isinstance(s, FSetLit):
                out.append(FSetLit(r(s.dst), s.value))
            elif isinstance(s, FSetVar):
                out.append(FSetVar(r(s.dst), r(s.src)))
            elif isinstance(s, FOp):
                out.append(FOp(r(s.dst), s.op, r(s.lhs), r(s.rhs)))
            elif isinstance(s, FLoad):
                out.append(FLoad(r(s.dst), s.size, r(s.addr)))
            elif isinstance(s, FStore):
                out.append(FStore(s.size, r(s.addr), r(s.value)))
            elif isinstance(s, FIf):
                out.append(FIf(r(s.cond), self._rename(s.then_, mapping),
                               self._rename(s.else_, mapping)))
            elif isinstance(s, FWhile):
                out.append(FWhile(self._rename(s.cond_stmts, mapping),
                                  r(s.cond_var), self._rename(s.body, mapping)))
            elif isinstance(s, FCall):
                out.append(FCall(tuple(r(b) for b in s.binds), s.func,
                                 tuple(r(a) for a in s.args)))
            elif isinstance(s, FInteract):
                out.append(FInteract(tuple(r(b) for b in s.binds), s.action,
                                     tuple(r(a) for a in s.args)))
            else:
                raise TypeError(s)
        return tuple(out)

    def inline_stmts(self, stmts: Sequence[FStmt],
                     inlinable: Set[str]) -> Tuple[FStmt, ...]:
        out: List[FStmt] = []
        for s in stmts:
            if isinstance(s, FCall) and s.func in inlinable:
                callee = self.program[s.func]
                suffix = "$i%d" % next(self._counter)
                names = stmt_vars(callee.body) | set(callee.params) \
                    | set(callee.rets)
                mapping = {n: n + suffix for n in names}
                for param, arg in zip(callee.params, s.args):
                    out.append(FSetVar(mapping[param], arg))
                out.extend(self.inline_stmts(
                    self._rename(callee.body, mapping), inlinable))
                for bind, ret in zip(s.binds, callee.rets):
                    out.append(FSetVar(bind, mapping[ret]))
            elif isinstance(s, FStackalloc):
                out.append(FStackalloc(s.dst, s.nbytes,
                                       self.inline_stmts(s.body, inlinable)))
            elif isinstance(s, FIf):
                out.append(FIf(s.cond, self.inline_stmts(s.then_, inlinable),
                               self.inline_stmts(s.else_, inlinable)))
            elif isinstance(s, FWhile):
                out.append(FWhile(self.inline_stmts(s.cond_stmts, inlinable),
                                  s.cond_var,
                                  self.inline_stmts(s.body, inlinable)))
            else:
                out.append(s)
        return tuple(out)


def inline_program(program: FProgram, max_size: int = 40,
                   rounds: int = 3) -> FProgram:
    """Bottom-up inlining of small functions; several rounds so chains of
    small helpers (spi_write inside spi_xchg inside lan9250_readword)
    flatten out like gcc's inliner would."""
    current = dict(program)
    for _ in range(rounds):
        inliner = Inliner(current, max_size)
        inlinable = {name for name, fn in current.items()
                     if _inlinable(fn, max_size)}
        new_program = {}
        changed = False
        for name, fn in current.items():
            new_body = inliner.inline_stmts(
                fn.body, inlinable - {name})
            if new_body != fn.body:
                changed = True
            new_program[name] = FFunction(fn.name, fn.params, fn.rets,
                                          new_body)
        current = new_program
        if not changed:
            break
    return current


# -- constant & copy propagation --------------------------------------------------------

Const = Dict[str, int]   # var -> known constant
Copy = Dict[str, str]    # var -> equal-valued source var


def _kill(env: Const, copies: Copy, var: str) -> None:
    env.pop(var, None)
    copies.pop(var, None)
    for k in [k for k, v in copies.items() if v == var]:
        del copies[k]


def _resolve(copies: Copy, var: str) -> str:
    seen = set()
    while var in copies and var not in seen:
        seen.add(var)
        var = copies[var]
    return var


def const_prop_stmts(stmts: Sequence[FStmt], env: Const,
                     copies: Copy) -> Tuple[FStmt, ...]:
    out: List[FStmt] = []
    for s in stmts:
        if isinstance(s, FSetLit):
            _kill(env, copies, s.dst)
            env[s.dst] = s.value
            out.append(s)
        elif isinstance(s, FSetVar):
            src = _resolve(copies, s.src)
            if src in env:
                _kill(env, copies, s.dst)
                env[s.dst] = env[src]
                out.append(FSetLit(s.dst, env[s.dst]))
            else:
                _kill(env, copies, s.dst)
                copies[s.dst] = src
                out.append(FSetVar(s.dst, src))
        elif isinstance(s, FOp):
            lhs = _resolve(copies, s.lhs)
            rhs = _resolve(copies, s.rhs)
            if lhs in env and rhs in env:
                value = _FOLD[s.op](env[lhs], env[rhs])
                _kill(env, copies, s.dst)
                env[s.dst] = value
                out.append(FSetLit(s.dst, value))
            else:
                _kill(env, copies, s.dst)
                out.append(FOp(s.dst, s.op, lhs, rhs))
        elif isinstance(s, FLoad):
            addr = _resolve(copies, s.addr)
            _kill(env, copies, s.dst)
            out.append(FLoad(s.dst, s.size, addr))
        elif isinstance(s, FStore):
            out.append(FStore(s.size, _resolve(copies, s.addr),
                              _resolve(copies, s.value)))
        elif isinstance(s, FStackalloc):
            _kill(env, copies, s.dst)
            body = const_prop_stmts(s.body, env, copies)
            out.append(FStackalloc(s.dst, s.nbytes, body))
        elif isinstance(s, FIf):
            cond = _resolve(copies, s.cond)
            if cond in env:
                branch = s.then_ if env[cond] != 0 else s.else_
                out.extend(const_prop_stmts(branch, env, copies))
                continue
            env_t, copies_t = dict(env), dict(copies)
            env_e, copies_e = dict(env), dict(copies)
            then_ = const_prop_stmts(s.then_, env_t, copies_t)
            else_ = const_prop_stmts(s.else_, env_e, copies_e)
            out.append(FIf(cond, then_, else_))
            # Join: keep facts agreed on by both branches.
            env.clear()
            env.update({k: v for k, v in env_t.items()
                        if env_e.get(k) == v})
            copies.clear()
            copies.update({k: v for k, v in copies_t.items()
                           if copies_e.get(k) == v})
        elif isinstance(s, FWhile):
            killed = stmt_vars(s.body) | stmt_vars(s.cond_stmts)
            for name in killed:
                _kill(env, copies, name)
            cond_stmts = const_prop_stmts(s.cond_stmts, dict(env),
                                          dict(copies))
            body = const_prop_stmts(s.body, dict(env), dict(copies))
            out.append(FWhile(cond_stmts, s.cond_var, body))
            for name in killed:
                _kill(env, copies, name)
        elif isinstance(s, FCall):
            args = tuple(_resolve(copies, a) for a in s.args)
            for b in s.binds:
                _kill(env, copies, b)
            out.append(FCall(s.binds, s.func, args))
        elif isinstance(s, FInteract):
            args = tuple(_resolve(copies, a) for a in s.args)
            for b in s.binds:
                _kill(env, copies, b)
            out.append(FInteract(s.binds, s.action, args))
        else:
            raise TypeError(s)
    return tuple(out)


def const_prop_program(program: FProgram) -> FProgram:
    return {name: FFunction(fn.name, fn.params, fn.rets,
                            const_prop_stmts(fn.body, {}, {}))
            for name, fn in program.items()}


# -- dead code elimination ----------------------------------------------------------------

def _dce_stmts(stmts: Sequence[FStmt], live: Set[str]) -> Tuple[FStmt, ...]:
    """Backward liveness; drops pure definitions of dead variables.

    Loads are treated as pure here: removing one can only make a program
    *more* defined, which forward simulation permits."""
    out: List[FStmt] = []
    for s in reversed(stmts):
        if isinstance(s, (FSetLit, FSetVar, FOp, FLoad)):
            if s.dst not in live:
                continue
            live.discard(s.dst)
            if isinstance(s, FSetVar):
                live.add(s.src)
            elif isinstance(s, FOp):
                live.update((s.lhs, s.rhs))
            elif isinstance(s, FLoad):
                live.add(s.addr)
            out.append(s)
        elif isinstance(s, FStore):
            live.update((s.addr, s.value))
            out.append(s)
        elif isinstance(s, FStackalloc):
            body = _dce_stmts(s.body, live)
            live.discard(s.dst)
            out.append(FStackalloc(s.dst, s.nbytes, body))
        elif isinstance(s, FIf):
            live_t = set(live)
            live_e = set(live)
            then_ = _dce_stmts(s.then_, live_t)
            else_ = _dce_stmts(s.else_, live_e)
            if not then_ and not else_:
                continue
            live.clear()
            live.update(live_t | live_e | {s.cond})
            out.append(FIf(s.cond, then_, else_))
        elif isinstance(s, FWhile):
            # Fixpoint: body may feed its own next iteration.
            live_in = set(live) | {s.cond_var}
            while True:
                trial = set(live_in)
                trial_body = _dce_stmts(s.body, set(trial))
                used = stmt_vars(trial_body) | stmt_vars(s.cond_stmts) \
                    | {s.cond_var} | live
                if used <= live_in:
                    break
                live_in |= used
            body = _dce_stmts(s.body, set(live_in))
            cond_stmts = _dce_stmts(s.cond_stmts, set(live_in))
            live.clear()
            live.update(live_in | stmt_vars(cond_stmts) | stmt_vars(body))
            out.append(FWhile(cond_stmts, s.cond_var, body))
        elif isinstance(s, FCall):
            live.difference_update(s.binds)
            live.update(s.args)
            out.append(s)
        elif isinstance(s, FInteract):
            live.difference_update(s.binds)
            live.update(s.args)
            out.append(s)
        else:
            raise TypeError(s)
    return tuple(reversed(out))


def dce_program(program: FProgram) -> FProgram:
    out = {}
    for name, fn in program.items():
        live = set(fn.rets)
        out[name] = FFunction(fn.name, fn.params, fn.rets,
                              _dce_stmts(fn.body, live))
    return out


# -- liveness-based register allocation -------------------------------------------------

def _live_ranges(fn: FFunction) -> Dict[str, Tuple[int, int]]:
    """Approximate live ranges over a linearization of the body.

    A variable whose value can cross a loop backedge must stay allocated
    for the whole loop. The sound-but-sharp criterion used here: a
    variable's raw textual range ``[first, last]`` suffices iff its first
    occurrence is a *dominating definition* -- a def at the top level of
    the innermost loop body enclosing all its occurrences (or at function
    top level). Any other variable touched by loops is widened to the
    extent of the outermost loop containing it. Widening everything (the
    naive rule) spills every hot-loop temporary; widening nothing
    miscompiles accumulators."""
    ranges: Dict[str, Tuple[int, int]] = {}
    first_info: Dict[str, Tuple[str, int]] = {}  # var -> (kind, cond depth)
    counter = [0]
    depth = [0]
    loop_extents: List[Tuple[int, int, int]] = []  # (start, end, entry depth)
    loop_stack: List[Tuple[int, int]] = []  # (start, entry depth)

    def note(name: str, kind: str) -> None:
        idx = counter[0]
        if name not in ranges:
            ranges[name] = (idx, idx)
            first_info[name] = (kind, depth[0])
        else:
            lo, hi = ranges[name]
            ranges[name] = (min(lo, idx), max(hi, idx))

    def tick() -> None:
        counter[0] += 1

    def walk(stmts: Sequence[FStmt]) -> None:
        for s in stmts:
            tick()
            if isinstance(s, FSetLit):
                note(s.dst, "def")
            elif isinstance(s, FSetVar):
                note(s.src, "use")
                note(s.dst, "def")
            elif isinstance(s, FOp):
                note(s.lhs, "use")
                note(s.rhs, "use")
                note(s.dst, "def")
            elif isinstance(s, FLoad):
                note(s.addr, "use")
                note(s.dst, "def")
            elif isinstance(s, FStore):
                note(s.addr, "use")
                note(s.value, "use")
            elif isinstance(s, FStackalloc):
                note(s.dst, "def")
                walk(s.body)
            elif isinstance(s, FIf):
                note(s.cond, "use")
                depth[0] += 1
                walk(s.then_)
                walk(s.else_)
                depth[0] -= 1
            elif isinstance(s, FWhile):
                start = counter[0]
                loop_stack.append((start, depth[0]))
                depth[0] += 1
                walk(s.cond_stmts)
                note(s.cond_var, "use")
                walk(s.body)
                depth[0] -= 1
                loop_stack.pop()
                loop_extents.append((start, counter[0], depth[0]))
            elif isinstance(s, (FCall, FInteract)):
                for a in s.args:
                    note(a, "use")
                for b in s.binds:
                    note(b, "def")

    for p in fn.params:
        note(p, "def")
    walk(fn.body)
    tick()
    for r in fn.rets:
        note(r, "use")

    for name in list(ranges):
        kind, first_depth = first_info[name]
        # Fixpoint: widening over one loop can bring the range into overlap
        # with further loops.
        while True:
            lo, hi = ranges[name]
            overlapping = [(s, e, d) for (s, e, d) in loop_extents
                           if not (e < lo or hi < s)]
            enclosing = [t for t in overlapping
                         if t[0] <= lo and hi <= t[1]]
            partial = [t for t in overlapping if t not in enclosing]
            lo2, hi2 = lo, hi
            # A range that straddles a loop boundary is live across that
            # loop's iterations: cover the whole loop. (This is the inner-
            # loop cond-var case: init before the loop, updated inside.)
            for (s, e, _) in partial:
                lo2, hi2 = min(lo2, s), max(hi2, e)
            if enclosing:
                innermost = max(enclosing, key=lambda t: t[0])
                dominated = (kind == "def"
                             and first_depth == innermost[2] + 1)
                if not dominated:
                    # May cross the enclosing backedges too.
                    for (s, e, _) in enclosing:
                        lo2, hi2 = min(lo2, s), max(hi2, e)
            if (lo2, hi2) == (lo, hi):
                break
            ranges[name] = (lo2, hi2)
    return ranges


def allocate_function_linear_scan(fn: FFunction):
    """Linear-scan allocation with register reuse -- the "exploit registers
    properly" half of the gcc-baseline comparison."""
    from .regalloc import ALLOCATABLE, Allocation, MAX_ARGS, TooManyArguments, reg_name, spill_name

    if len(fn.params) > MAX_ARGS or len(fn.rets) > MAX_ARGS:
        raise TooManyArguments(fn.name)
    ranges = _live_ranges(fn)
    order = sorted(ranges, key=lambda n: (ranges[n][0], ranges[n][1]))
    free = list(ALLOCATABLE)
    active: List[Tuple[int, str, int]] = []  # (end, var, reg)
    mapping: Dict[str, str] = {}
    spills = 0
    for name in order:
        start, end = ranges[name]
        active.sort()
        while active and active[0][0] < start:
            _, _, reg = active.pop(0)
            free.append(reg)
        if free:
            reg = free.pop(0)
            mapping[name] = reg_name(reg)
            active.append((end, name, reg))
        elif active and active[-1][0] > end:
            # Standard linear-scan choice: spill the interval that lives
            # longest, keeping short (hot-loop) ranges in registers.
            victim_end, victim, reg = active.pop()
            mapping[victim] = spill_name(spills)
            spills += 1
            mapping[name] = reg_name(reg)
            active.append((end, name, reg))
        else:
            mapping[name] = spill_name(spills)
            spills += 1

    def rename(stmts: Sequence[FStmt]) -> Tuple[FStmt, ...]:
        out: List[FStmt] = []
        for s in stmts:
            if isinstance(s, FSetLit):
                out.append(FSetLit(mapping[s.dst], s.value))
            elif isinstance(s, FSetVar):
                out.append(FSetVar(mapping[s.dst], mapping[s.src]))
            elif isinstance(s, FOp):
                out.append(FOp(mapping[s.dst], s.op, mapping[s.lhs],
                               mapping[s.rhs]))
            elif isinstance(s, FLoad):
                out.append(FLoad(mapping[s.dst], s.size, mapping[s.addr]))
            elif isinstance(s, FStore):
                out.append(FStore(s.size, mapping[s.addr], mapping[s.value]))
            elif isinstance(s, FStackalloc):
                out.append(FStackalloc(mapping[s.dst], s.nbytes,
                                       rename(s.body)))
            elif isinstance(s, FIf):
                out.append(FIf(mapping[s.cond], rename(s.then_),
                               rename(s.else_)))
            elif isinstance(s, FWhile):
                out.append(FWhile(rename(s.cond_stmts), mapping[s.cond_var],
                                  rename(s.body)))
            elif isinstance(s, FCall):
                out.append(FCall(tuple(mapping[b] for b in s.binds), s.func,
                                 tuple(mapping[a] for a in s.args)))
            elif isinstance(s, FInteract):
                out.append(FInteract(tuple(mapping[b] for b in s.binds),
                                     s.action,
                                     tuple(mapping[a] for a in s.args)))
            else:
                raise TypeError(s)
        return tuple(out)

    new_fn = FFunction(fn.name,
                       tuple(mapping[p] for p in fn.params),
                       tuple(mapping[r] for r in fn.rets),
                       rename(fn.body))
    return new_fn, Allocation(mapping, spills)


def allocate_program_linear_scan(program: FProgram):
    out = {}
    allocations = {}
    for name, fn in program.items():
        new_fn, alloc = allocate_function_linear_scan(fn)
        out[name] = new_fn
        allocations[name] = alloc
    return out, allocations


# -- the optimizing pipeline -----------------------------------------------------------------

def _opt_pass(name: str, fn, flat: FProgram) -> FProgram:
    """Run one FlatImp pass under a span carrying the IR size delta."""
    from .flatimp import program_size
    from .pipeline import timed_pass

    with timed_pass(name, program_size(flat)) as sp:
        flat = fn(flat)
        sp.set("stmts_out", program_size(flat))
    return flat


def optimize(flat: FProgram, inline_max_size: int = 40) -> FProgram:
    flat = _opt_pass("inline",
                     lambda f: inline_program(f, max_size=inline_max_size),
                     flat)
    for _ in range(2):
        flat = _opt_pass("const_prop", const_prop_program, flat)
        flat = _opt_pass("dce", dce_program, flat)
    return flat


def compile_program_optimized(program: Program, entry: str = "main",
                              ext_compiler: Optional[ExtCallCompiler] = None,
                              base: int = 0, stack_top: int = 1 << 20,
                              inline_max_size: int = 40) -> CompiledProgram:
    """The baseline compiler: flatten, optimize, then the usual backend."""
    from .codegen import FunctionCompiler, JumpTo, Label, MMIOExtCallCompiler, resolve_labels
    from .pipeline import compute_stack_bound
    from ..riscv.encode import encode_program

    if ext_compiler is None:
        ext_compiler = MMIOExtCallCompiler()
    from .. import obs
    with obs.span("compiler.compile_program_optimized", cat="compiler",
                  args={"entry": entry}):
        flat = optimize(flatten_program(program), inline_max_size)
        reg_flat, allocations = allocate_program_linear_scan(flat)

        from .codegen import RA, SP, ZERO
        items = []
        start = FunctionCompiler(FFunction("_start", (), (), ()),
                                 ext_compiler, 0)
        start.emit(Label("_start"))
        start.emit_li(SP, stack_top)
        start.emit(JumpTo(RA, "func." + entry))
        start.emit(Label("halt"))
        start.emit(JumpTo(ZERO, "halt"))
        items += start.items
        frame_sizes = {}
        for name in sorted(reg_flat):
            fn = reg_flat[name]
            fc = FunctionCompiler(fn, ext_compiler,
                                  allocations[name].num_spills)
            items += fc.compile_function()
            frame_sizes[name] = fc.frame_size
        symbols = {}
        pc = base
        for item in items:
            if isinstance(item, Label):
                symbols[item.name] = pc
            else:
                pc += 4
        instrs = resolve_labels(items, base=base)
        return CompiledProgram(
            instrs=instrs,
            image=encode_program(instrs),
            symbols=symbols,
            entry=entry,
            halt_pc=symbols["halt"],
            stack_top=stack_top,
            frame_sizes=frame_sizes,
            stack_bound=compute_stack_bound(flat, frame_sizes, entry),
        )
