"""Translation validation for register allocation.

The paper's compiler proves its phases once and for all; our *optimizing*
baseline is deliberately unverified (it models gcc). This module adds the
classic middle ground the verification literature recommends for such
passes: **translation validation** -- an independent checker that validates
each allocation instance instead of the allocator itself.

Two validators:

* `check_allocation_static` -- recomputes conservative live ranges (the
  widen-everything rule, deliberately *different* from the allocator's
  sharper analysis) and verifies no two variables sharing a register have
  overlapping conservative ranges, except when separated by a dominating
  redefinition. Incomparable analyses double-check each other.
* `ShadowChecker` -- a dynamic validator: interprets the *pre-allocation*
  FlatImp while tracking which variable each physical register would hold;
  any use of a variable whose register was since clobbered by a different
  variable is reported. This is the oracle that caught two real allocator
  bugs during this project's development (see git-less history in
  DESIGN.md's narrative: loop-widening and backedge-crossing cond vars).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bedrock2.semantics import ExtHandler, IOEvent, Memory
from .flatimp import (
    FCall,
    FFunction,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FProgram,
    FSetLit,
    FSetVar,
    FStackalloc,
    FStmt,
    FStore,
    FWhile,
    FlatInterpreter,
)


class AllocationError(Exception):
    """A register-allocation validation failure."""


# -- static validation -------------------------------------------------------------

def _conservative_ranges(fn: FFunction) -> Dict[str, Tuple[int, int]]:
    """Widen-everything live ranges: every variable touched by a loop is
    live for the whole loop. Sound by construction; used as the cross-check
    against the allocator's sharper analysis."""
    ranges: Dict[str, Tuple[int, int]] = {}
    counter = [0]
    loop_extents: List[Tuple[int, int]] = []

    def note(name: str) -> None:
        idx = counter[0]
        lo, hi = ranges.get(name, (idx, idx))
        ranges[name] = (min(lo, idx), max(hi, idx))

    def walk(stmts: Sequence[FStmt]) -> None:
        for s in stmts:
            counter[0] += 1
            if isinstance(s, FSetLit):
                note(s.dst)
            elif isinstance(s, FSetVar):
                note(s.src), note(s.dst)
            elif isinstance(s, FOp):
                note(s.lhs), note(s.rhs), note(s.dst)
            elif isinstance(s, FLoad):
                note(s.addr), note(s.dst)
            elif isinstance(s, FStore):
                note(s.addr), note(s.value)
            elif isinstance(s, FStackalloc):
                note(s.dst)
                walk(s.body)
            elif isinstance(s, FIf):
                note(s.cond)
                walk(s.then_), walk(s.else_)
            elif isinstance(s, FWhile):
                start = counter[0]
                walk(s.cond_stmts)
                note(s.cond_var)
                walk(s.body)
                loop_extents.append((start, counter[0]))
            elif isinstance(s, (FCall, FInteract)):
                for a in s.args:
                    note(a)
                for b in s.binds:
                    note(b)

    for p in fn.params:
        note(p)
    walk(fn.body)
    counter[0] += 1
    for r in fn.rets:
        note(r)
    changed = True
    while changed:
        changed = False
        for name, (lo, hi) in list(ranges.items()):
            for s, e in loop_extents:
                if (s <= lo <= e or s <= hi <= e) and (lo > s or hi < e):
                    ranges[name] = (min(lo, s), max(hi, e))
                    changed = True
    return ranges


def check_allocation_static(fn: FFunction,
                            mapping: Dict[str, str]) -> List[str]:
    """Return human-readable warnings for same-register pairs whose
    *conservative* ranges overlap. Overlaps are not automatically bugs
    (the allocator's sharper analysis may justify them via dominating
    per-iteration redefinition), so this is a review list, not a verdict;
    the dynamic checker gives the verdict."""
    ranges = _conservative_ranges(fn)
    by_reg: Dict[str, List[Tuple[Tuple[int, int], str]]] = {}
    for var, loc in mapping.items():
        if loc.startswith("x") and var in ranges:
            by_reg.setdefault(loc, []).append((ranges[var], var))
    warnings = []
    for reg, entries in by_reg.items():
        entries.sort()
        for (r1, v1), (r2, v2) in zip(entries, entries[1:]):
            if r2[0] <= r1[1]:
                warnings.append("%s: %r%r overlaps %r%r" % (reg, v1, r1,
                                                            v2, r2))
    return warnings


# -- dynamic validation ---------------------------------------------------------------

class ShadowChecker(FlatInterpreter):
    """Interpret pre-allocation FlatImp while shadowing the register file.

    For each executed definition of ``v``, record that ``mapping[v]`` now
    belongs to ``v``; on each use, verify the variable still owns its
    location. Spill slots are exclusive per variable, so only registers
    are tracked."""

    def __init__(self, program: FProgram,
                 mappings: Dict[str, Dict[str, str]], **kwargs):
        super().__init__(program, **kwargs)
        self.mappings = mappings
        self._owner_stack: List[Dict[str, str]] = []
        self._fn_stack: List[str] = []
        self.violations: List[str] = []

    def run_function_checked(self, fname: str, args, mem: Optional[Memory] = None):
        fn = self.program[fname]
        env = {p: a & 0xFFFFFFFF for p, a in zip(fn.params, args)}
        self._owner_stack.append({})
        self._fn_stack.append(fname)
        for p in fn.params:
            self._note_def(p)
        trace: List[IOEvent] = []
        self.exec_stmts(fn.body, env, mem if mem is not None else Memory(),
                        trace)
        for r in fn.rets:
            self._check_use(r)
        self._owner_stack.pop()
        self._fn_stack.pop()
        return tuple(env[r] for r in fn.rets), trace

    def _mapping(self) -> Dict[str, str]:
        return self.mappings.get(self._fn_stack[-1], {}) if self._fn_stack \
            else {}

    def _note_def(self, var: str) -> None:
        loc = self._mapping().get(var)
        if loc and loc.startswith("x") and self._owner_stack:
            self._owner_stack[-1][loc] = var

    def _check_use(self, var: str) -> None:
        loc = self._mapping().get(var)
        if loc and loc.startswith("x") and self._owner_stack:
            owner = self._owner_stack[-1].get(loc, var)
            if owner != var:
                self.violations.append(
                    "%s: use of %r in %s, but %s last defined it"
                    % (self._fn_stack[-1], var, loc, owner))

    def exec_stmt(self, s, env, mem, trace):
        if isinstance(s, (FSetLit,)):
            self._note_def(s.dst)
        elif isinstance(s, FSetVar):
            self._check_use(s.src)
        elif isinstance(s, FOp):
            self._check_use(s.lhs), self._check_use(s.rhs)
        elif isinstance(s, FLoad):
            self._check_use(s.addr)
        elif isinstance(s, FStore):
            self._check_use(s.addr), self._check_use(s.value)
        elif isinstance(s, FWhile):
            pass  # cond var checked when its computing stmt runs
        elif isinstance(s, (FCall, FInteract)):
            for a in s.args:
                self._check_use(a)
        if isinstance(s, FCall):
            fn = self.program.get(s.func)
            if fn is not None:
                # Enter callee shadow frame.
                self._owner_stack.append({})
                self._fn_stack.append(s.func)
                for p in fn.params:
                    self._note_def(p)
                callee_env = {p: env[a] for p, a in zip(fn.params, s.args)}
                self.exec_stmts(fn.body, callee_env, mem, trace)
                for r in fn.rets:
                    self._check_use(r)
                self._owner_stack.pop()
                self._fn_stack.pop()
                for bind, ret in zip(s.binds, fn.rets):
                    env[bind] = callee_env[ret]
                    self._note_def(bind)
                return
        super().exec_stmt(s, env, mem, trace)
        if isinstance(s, (FSetVar, FOp, FLoad)):
            self._note_def(s.dst)
        elif isinstance(s, FStackalloc):
            self._note_def(s.dst)
        elif isinstance(s, FInteract):
            for b in s.binds:
                self._note_def(b)


def validate_allocation_dynamic(program: FProgram,
                                mappings: Dict[str, Dict[str, str]],
                                entry: str, args,
                                ext: Optional[ExtHandler] = None,
                                mem: Optional[Memory] = None,
                                fuel: int = 5_000_000) -> List[str]:
    """Run the shadow checker over one execution; returns violations."""
    checker = ShadowChecker(program, mappings, ext=ext, fuel=fuel)
    checker.run_function_checked(entry, args, mem=mem)
    return checker.violations
