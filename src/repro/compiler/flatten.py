"""Compiler phase 1: flattening Bedrock2 to FlatImp (paper Figure 3).

Expression trees become sequences of assignments to fresh temporaries; all
control flow survives structurally. Fresh names use a ``$`` prefix, which
cannot appear in source programs, so user variables are never captured.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from ..bedrock2.ast_ import (
    Cmd,
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    Function,
    Program,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
)
from .flatimp import (
    FCall,
    FFunction,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FProgram,
    FSetLit,
    FSetVar,
    FStackalloc,
    FStmt,
    FStore,
    FWhile,
)


class Flattener:
    def __init__(self):
        self._counter = itertools.count()

    def fresh(self) -> str:
        return "$t%d" % next(self._counter)

    # -- expressions -----------------------------------------------------------

    def flatten_expr(self, e: Expr) -> Tuple[List[FStmt], str]:
        """Returns (statements, variable holding the value)."""
        if isinstance(e, EVar):
            return [], e.name
        if isinstance(e, ELit):
            tmp = self.fresh()
            return [FSetLit(tmp, e.value)], tmp
        if isinstance(e, ELoad):
            stmts, addr_var = self.flatten_expr(e.addr)
            tmp = self.fresh()
            stmts.append(FLoad(tmp, e.size, addr_var))
            return stmts, tmp
        if isinstance(e, EOp):
            lhs_stmts, lhs_var = self.flatten_expr(e.lhs)
            rhs_stmts, rhs_var = self.flatten_expr(e.rhs)
            tmp = self.fresh()
            return lhs_stmts + rhs_stmts + [FOp(tmp, e.op, lhs_var, rhs_var)], tmp
        raise TypeError("not an expression: %r" % (e,))

    def flatten_expr_into(self, e: Expr, dst: str) -> List[FStmt]:
        """Flatten ``e`` with the result in ``dst``."""
        if isinstance(e, ELit):
            return [FSetLit(dst, e.value)]
        if isinstance(e, EVar):
            return [FSetVar(dst, e.name)] if e.name != dst else []
        stmts, var = self.flatten_expr(e)
        stmts.append(FSetVar(dst, var))
        return stmts

    # -- commands --------------------------------------------------------------

    def flatten_cmd(self, c: Cmd) -> List[FStmt]:
        if isinstance(c, SSkip):
            return []
        if isinstance(c, SSet):
            return self.flatten_expr_into(c.value, c.name)
        if isinstance(c, SStore):
            addr_stmts, addr_var = self.flatten_expr(c.addr)
            val_stmts, val_var = self.flatten_expr(c.value)
            return addr_stmts + val_stmts + [FStore(c.size, addr_var, val_var)]
        if isinstance(c, SSeq):
            # Iterate along the SSeq spine: long straight-line blocks must
            # not recurse once per statement.
            out: List[FStmt] = []
            node: Cmd = c
            while isinstance(node, SSeq):
                out += self.flatten_cmd(node.first)
                node = node.rest
            out += self.flatten_cmd(node)
            return out
        if isinstance(c, SIf):
            cond_stmts, cond_var = self.flatten_expr(c.cond)
            return cond_stmts + [FIf(cond_var,
                                     tuple(self.flatten_cmd(c.then_)),
                                     tuple(self.flatten_cmd(c.else_)))]
        if isinstance(c, SWhile):
            cond_stmts, cond_var = self.flatten_expr(c.cond)
            return [FWhile(tuple(cond_stmts), cond_var,
                           tuple(self.flatten_cmd(c.body)))]
        if isinstance(c, SStackalloc):
            return [FStackalloc(c.name, c.nbytes,
                                tuple(self.flatten_cmd(c.body)))]
        if isinstance(c, SCall):
            stmts: List[FStmt] = []
            arg_vars = []
            for arg in c.args:
                arg_stmts, arg_var = self.flatten_expr(arg)
                stmts += arg_stmts
                arg_vars.append(arg_var)
            stmts.append(FCall(c.binds, c.func, tuple(arg_vars)))
            return stmts
        if isinstance(c, SInteract):
            stmts = []
            arg_vars = []
            for arg in c.args:
                arg_stmts, arg_var = self.flatten_expr(arg)
                stmts += arg_stmts
                arg_vars.append(arg_var)
            stmts.append(FInteract(c.binds, c.action, tuple(arg_vars)))
            return stmts
        raise TypeError("not a command: %r" % (c,))


def flatten_function(fn: Function) -> FFunction:
    flattener = Flattener()
    body = tuple(flattener.flatten_cmd(fn.body))
    return FFunction(fn.name, fn.params, fn.rets, body)


def flatten_program(program: Program) -> FProgram:
    """Phase 1 entry point: flatten every function."""
    return {name: flatten_function(fn) for name, fn in program.items()}
