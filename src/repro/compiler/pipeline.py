"""The compiler driver: Bedrock2 -> FlatImp -> registers -> RISC-V -> bytes.

``compile_program`` runs the three phases of paper Figure 3 and links the
result into a flat binary image with a tiny ``_start`` stub (set up the
stack pointer, call the entry function, spin). There is deliberately no
bootloader and no runtime: the paper emphasizes that its end-to-end theorem
needs nothing but the binary at address 0.

Also computes the static stack bound (`stack_usage`) that underlies the
paper's never-out-of-memory guarantee: recursion is rejected, every frame
is statically sized, so the deepest call path gives a hard bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bedrock2.ast_ import Program
from ..riscv import insts as I
from ..riscv.encode import encode_program
from .codegen import (
    A0,
    RA,
    SP,
    ZERO,
    CompileError,
    ExtCallCompiler,
    FunctionCompiler,
    Item,
    JumpTo,
    Label,
    MMIOExtCallCompiler,
    resolve_labels,
)
from .flatimp import (
    FCall,
    FFunction,
    FIf,
    FProgram,
    FStackalloc,
    FStmt,
    FWhile,
    program_size,
)
from .flatten import flatten_program
from .regalloc import allocate_program

# Observability: per-pass timing histograms and IR-size gauges; spans are
# emitted around each pass when tracing is enabled (`repro.obs`).
_COMPILES = obs.counter("compiler.compiles")
_INSTRS_EMITTED = obs.counter("compiler.instrs_emitted")
_IMAGE_BYTES = obs.gauge("compiler.image_bytes")
_FLAT_STMTS = obs.gauge("compiler.flatimp_stmts")


def timed_pass(name: str, size_in: Optional[int] = None):
    """Span + histogram wrapper for one compiler pass. Returns a context
    manager whose span carries the IR size before the pass; callers attach
    the post-pass size with ``sp.set("stmts_out", n)``."""
    args = {"stmts_in": size_in} if size_in is not None else None
    return _PassTimer(name, args)


class _PassTimer:
    """Times a pass into ``compiler.pass.<name>.seconds`` and, when
    tracing, nests a span under the enclosing compile span."""

    __slots__ = ("name", "args", "_span", "_t0")

    def __init__(self, name: str, args):
        self.name = name
        self.args = args
        self._span = None
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        self._span = obs.span("compiler." + self.name, cat="compiler",
                              args=self.args)
        self._span.__enter__()
        return self._span

    def __exit__(self, *exc):
        self._span.__exit__(*exc)
        if obs.ENABLED:
            obs.histogram("compiler.pass.%s.seconds" % self.name).record(
                time.perf_counter() - self._t0)
        return False


@dataclass
class CompiledProgram:
    """The linked output of the compiler."""

    instrs: List[I.Instr]
    image: bytes
    symbols: Dict[str, int]
    entry: str
    halt_pc: int
    stack_top: int
    frame_sizes: Dict[str, int]
    stack_bound: int

    @property
    def size(self) -> int:
        return len(self.image)


def _call_targets(stmts: Sequence[FStmt], acc: set) -> None:
    for s in stmts:
        if isinstance(s, FCall):
            acc.add(s.func)
        elif isinstance(s, FStackalloc):
            _call_targets(s.body, acc)
        elif isinstance(s, FIf):
            _call_targets(s.then_, acc)
            _call_targets(s.else_, acc)
        elif isinstance(s, FWhile):
            _call_targets(s.cond_stmts, acc)
            _call_targets(s.body, acc)


def compute_stack_bound(flat: FProgram, frame_sizes: Dict[str, int],
                        entry: str) -> int:
    """Static bound on stack usage from ``entry``; rejects recursion."""
    call_graph = {}
    for name, fn in flat.items():
        targets: set = set()
        _call_targets(fn.body, targets)
        call_graph[name] = targets

    visiting: set = set()
    memo: Dict[str, int] = {}

    def usage(fname: str) -> int:
        if fname in memo:
            return memo[fname]
        if fname in visiting:
            raise CompileError("recursion detected through %r; the compiler "
                               "requires an acyclic call graph" % fname)
        if fname not in flat:
            raise CompileError("call to undefined function %r" % fname)
        visiting.add(fname)
        deepest = 0
        for callee in call_graph[fname]:
            deepest = max(deepest, usage(callee))
        visiting.discard(fname)
        memo[fname] = frame_sizes[fname] + deepest
        return memo[fname]

    return usage(entry)


def compile_program(program: Program, entry: str = "main",
                    ext_compiler: Optional[ExtCallCompiler] = None,
                    base: int = 0, stack_top: int = 1 << 20) -> CompiledProgram:
    """Compile a Bedrock2 program to a flat RV32IM image.

    The image starts with ``_start`` at ``base``: it loads ``stack_top``
    into ``sp``, calls ``entry``, and spins at ``halt`` if it ever returns.
    """
    if entry not in program:
        raise CompileError("entry function %r not defined" % entry)
    if ext_compiler is None:
        ext_compiler = MMIOExtCallCompiler()

    _COMPILES.inc()
    with obs.span("compiler.compile_program", cat="compiler",
                  args={"entry": entry}):
        with timed_pass("flatten") as sp:
            flat = flatten_program(program)
            sp.set("stmts_out", program_size(flat))
        with timed_pass("regalloc", program_size(flat)) as sp:
            reg_flat, allocations = allocate_program(flat)
            sp.set("stmts_out", program_size(reg_flat))

        items: List[Item] = []
        # _start stub.
        start = FunctionCompiler(FFunction("_start", (), (), ()),
                                 ext_compiler, 0)
        start.emit(Label("_start"))
        start.emit_li(SP, stack_top)
        start.emit(JumpTo(RA, "func." + entry))
        start.emit(Label("halt"))
        start.emit(JumpTo(ZERO, "halt"))
        items += start.items

        frame_sizes: Dict[str, int] = {}
        with timed_pass("codegen", program_size(reg_flat)) as sp:
            for name in sorted(reg_flat):
                fn = reg_flat[name]
                fc = FunctionCompiler(fn, ext_compiler,
                                      allocations[name].num_spills)
                items += fc.compile_function()
                frame_sizes[name] = fc.frame_size
            sp.set("items_out", len(items))

        # Symbol table (label -> address).
        symbols: Dict[str, int] = {}
        pc = base
        for item in items:
            if isinstance(item, Label):
                symbols[item.name] = pc
            else:
                pc += 4

        with timed_pass("encode") as sp:
            instrs = resolve_labels(items, base=base)
            image = encode_program(instrs)
            sp.set("image_bytes", len(image))
        stack_bound = compute_stack_bound(flat, frame_sizes, entry)
        _INSTRS_EMITTED.inc(len(instrs))
        _IMAGE_BYTES.set(len(image))
        _FLAT_STMTS.set(program_size(flat))
    return CompiledProgram(
        instrs=instrs,
        image=image,
        symbols=symbols,
        entry=entry,
        halt_pc=symbols["halt"],
        stack_top=stack_top,
        frame_sizes=frame_sizes,
        stack_bound=stack_bound,
    )


def run_compiled(compiled: CompiledProgram, args: Sequence[int],
                 n_rets: int = 1, mem_size: int = 1 << 20,
                 mmio_bus=None, max_steps: int = 5_000_000,
                 extra_memory: Sequence[Tuple[int, bytes]] = ()):
    """Run a compiled program's entry function on the ISA-level machine.

    Returns ``(return_values, machine)``; the machine's ``trace`` carries
    the MMIO triples. Used pervasively by the compiler-correctness
    differential tests.
    """
    from ..riscv.machine import RiscvMachine

    machine = RiscvMachine.with_program(compiled.image, base=0, pc=0,
                                        mem_size=mem_size, mmio_bus=mmio_bus)
    for base_addr, data in extra_memory:
        for i, b in enumerate(data):
            machine.mem[base_addr + i] = b
    for i, arg in enumerate(args):
        machine.set_register(A0 + i, arg)
    machine.run(max_steps, until_pc=compiled.halt_pc)
    if machine.pc != compiled.halt_pc:
        raise RuntimeError("program did not reach halt within %d steps"
                           % max_steps)
    rets = tuple(machine.get_register(A0 + i) for i in range(n_rets))
    return rets, machine
