"""The verified-style 3-phase Bedrock2 compiler (paper section 5.3):
flattening, register allocation, RISC-V code generation -- plus the
optimizing variant used as the unverified "gcc -O3" baseline of the
performance evaluation (section 7.2.1)."""

from . import codegen, flatimp, flatten, pipeline, regalloc
from .pipeline import CompiledProgram, compile_program, run_compiled

__all__ = ["flatimp", "flatten", "regalloc", "codegen", "pipeline",
           "compile_program", "run_compiled", "CompiledProgram"]
