"""Compiler phase 3: FlatImp-with-registers to RISC-V (paper Figure 3).

Emits position-independent RV32IM: all control transfers are pc-relative
(``jal``/branches), so the output can be placed at any base address -- the
property the paper's ``compiler_correct`` states. Functions follow a simple
calling convention (arguments/results in ``a0``-``a7``, everything the
function touches is callee-saved), stack frames are statically sized, and
recursion is rejected so total stack usage is a static bound (the paper's
no-out-of-memory guarantee, section 5.3).

The lowering of external calls is a parameter (`ExtCallCompiler`), the
paper's "external-calls compiler" of section 6.3; the MMIO instance turns
``MMIOREAD``/``MMIOWRITE`` into single ``lw``/``sw`` instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..riscv import insts as I
from .flatimp import (
    FCall, FFunction, FIf, FInteract, FLoad, FOp, FSetLit, FSetVar,
    FStackalloc, FStmt, FStore, FWhile,
)
from .regalloc import SCRATCH, is_spill, spill_slot

SP = 2
RA = 1
ZERO = 0
A0 = 10


class CompileError(Exception):
    pass


@dataclass(frozen=True)
class Label:
    name: str


@dataclass(frozen=True)
class BranchTo:
    """Unresolved conditional branch to a label."""

    name: str
    rs1: int
    rs2: int
    label: str


@dataclass(frozen=True)
class JumpTo:
    """Unresolved ``jal`` to a label."""

    rd: int
    label: str


Item = Union[I.Instr, Label, BranchTo, JumpTo]


class ExtCallCompiler:
    """The external-calls compiler parameter (paper section 6.3)."""

    def compile_ext(self, action: str, bind_regs: Sequence[int],
                    arg_regs: Sequence[int]) -> List[I.Instr]:
        raise CompileError("no external-calls compiler for %r" % action)


class MMIOExtCallCompiler(ExtCallCompiler):
    """MMIO instance: loads and stores at the device address."""

    def compile_ext(self, action, bind_regs, arg_regs):
        if action == "MMIOREAD":
            if len(arg_regs) != 1 or len(bind_regs) != 1:
                raise CompileError("MMIOREAD arity")
            return [I.load("lw", bind_regs[0], arg_regs[0], 0)]
        if action == "MMIOWRITE":
            if len(arg_regs) != 2 or len(bind_regs) != 0:
                raise CompileError("MMIOWRITE arity")
            return [I.store("sw", arg_regs[0], arg_regs[1], 0)]
        raise CompileError("unknown external call %r" % action)


def _alloca_sites(stmts: Sequence[FStmt], acc: List[int]) -> None:
    for s in stmts:
        if isinstance(s, FStackalloc):
            acc.append(s.nbytes)
            _alloca_sites(s.body, acc)
        elif isinstance(s, FIf):
            _alloca_sites(s.then_, acc)
            _alloca_sites(s.else_, acc)
        elif isinstance(s, FWhile):
            _alloca_sites(s.cond_stmts, acc)
            _alloca_sites(s.body, acc)


def _written_regs(stmts: Sequence[FStmt], acc: set) -> None:
    def reg_of(name: str) -> Optional[int]:
        if name.startswith("x"):
            return int(name[1:])
        return None

    for s in stmts:
        if isinstance(s, (FSetLit, FSetVar, FOp, FLoad, FStackalloc)):
            r = reg_of(s.dst)
            if r is not None:
                acc.add(r)
        if isinstance(s, FStackalloc):
            _written_regs(s.body, acc)
        elif isinstance(s, FIf):
            _written_regs(s.then_, acc)
            _written_regs(s.else_, acc)
        elif isinstance(s, FWhile):
            _written_regs(s.cond_stmts, acc)
            _written_regs(s.body, acc)
        elif isinstance(s, (FCall, FInteract)):
            for b in s.binds:
                r = reg_of(b)
                if r is not None:
                    acc.add(r)


class FunctionCompiler:
    """Compiles one FlatImp-with-registers function to labeled items."""

    def __init__(self, fn: FFunction, ext_compiler: ExtCallCompiler,
                 num_spills: int):
        self.fn = fn
        self.ext_compiler = ext_compiler
        self.num_spills = num_spills
        self.items: List[Item] = []
        self._label_counter = 0
        sites: List[int] = []
        _alloca_sites(fn.body, sites)
        self._alloca_offsets: List[int] = []
        offset = 0
        for size in sites:
            self._alloca_offsets.append(offset)
            offset += size
        self.alloca_total = offset
        self._alloca_cursor = 0
        written: set = set()
        _written_regs(fn.body, written)
        for p in fn.params:
            if not is_spill(p):
                written.add(int(p[1:]))
        self.saved_regs = sorted(r for r in written if r not in SCRATCH)
        # Frame: [alloca][spills][saved regs][ra]
        self.spill_base = self.alloca_total
        self.saved_base = self.spill_base + 4 * num_spills
        self.ra_off = self.saved_base + 4 * len(self.saved_regs)
        frame = self.ra_off + 4
        self.frame_size = (frame + 15) & ~15

    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return "%s.%s.%d" % (self.fn.name, hint, self._label_counter)

    def emit(self, item: Item) -> None:
        self.items.append(item)

    # -- frame access (large frames need multi-instruction addressing) ----------

    def emit_load_sp(self, rd: int, offset: int) -> None:
        """rd := mem32[sp + offset]; offset may exceed the 12-bit range
        (rd doubles as the address scratch, which is always safe)."""
        if -2048 <= offset < 2048:
            self.emit(I.load("lw", rd, SP, offset))
        else:
            self.emit_li(rd, offset)
            self.emit(I.r_type("add", rd, rd, SP))
            self.emit(I.load("lw", rd, rd, 0))

    def emit_store_sp(self, src: int, offset: int, addr_scratch: int) -> None:
        """mem32[sp + offset] := src, via ``addr_scratch`` when far."""
        if -2048 <= offset < 2048:
            self.emit(I.store("sw", SP, src, offset))
        else:
            self.emit_li(addr_scratch, offset)
            self.emit(I.r_type("add", addr_scratch, addr_scratch, SP))
            self.emit(I.store("sw", addr_scratch, src, 0))

    def emit_addi_sp_into(self, rd: int, offset: int) -> None:
        """rd := sp + offset (stackalloc addresses in large frames)."""
        if -2048 <= offset < 2048:
            self.emit(I.i_type("addi", rd, SP, offset))
        else:
            self.emit_li(rd, offset)
            self.emit(I.r_type("add", rd, rd, SP))

    def emit_sp_adjust(self, delta: int) -> None:
        if -2048 <= delta < 2048:
            self.emit(I.i_type("addi", SP, SP, delta))
        else:
            self.emit_li(SCRATCH[2], delta)
            self.emit(I.r_type("add", SP, SP, SCRATCH[2]))

    # -- variable access -------------------------------------------------------

    def _spill_off(self, name: str) -> int:
        return self.spill_base + 4 * spill_slot(name)

    def read_var(self, name: str, scratch: int) -> int:
        """Materialize ``name`` in a register; spills load into ``scratch``."""
        if is_spill(name):
            self.emit_load_sp(scratch, self._spill_off(name))
            return scratch
        return int(name[1:])

    def write_var(self, name: str) -> Tuple[int, Optional[object]]:
        """Destination register for ``name`` plus the writeback, if spilled."""
        if is_spill(name):
            return SCRATCH[2], self._spill_off(name)
        return int(name[1:]), None

    def _writeback(self, post: Optional[object]) -> None:
        # ``post`` is the frame offset to store SCRATCH[2] back to. SCRATCH
        # operand registers are dead once the computing instruction has
        # been emitted, so SCRATCH[1] is free for far addressing.
        if post is not None:
            self.emit_store_sp(SCRATCH[2], post, SCRATCH[1])

    # -- helpers ---------------------------------------------------------------

    def emit_li(self, rd: int, value: int) -> None:
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value >= (1 << 31) else value
        if -2048 <= signed < 2048:
            self.emit(I.i_type("addi", rd, ZERO, signed))
            return
        lo = value & 0xFFF
        if lo >= 0x800:
            lo -= 0x1000
        hi = ((value - lo) >> 12) & 0xFFFFF
        self.emit(I.u_type("lui", rd, hi))
        if lo != 0:
            self.emit(I.i_type("addi", rd, rd, lo))

    def emit_mv(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit(I.i_type("addi", rd, rs, 0))

    # -- statements --------------------------------------------------------------

    def compile_stmts(self, stmts: Sequence[FStmt]) -> None:
        for s in stmts:
            self.compile_stmt(s)

    def compile_stmt(self, s: FStmt) -> None:
        if isinstance(s, FSetLit):
            rd, post = self.write_var(s.dst)
            self.emit_li(rd, s.value)
            self._writeback(post)
        elif isinstance(s, FSetVar):
            src = self.read_var(s.src, SCRATCH[0])
            rd, post = self.write_var(s.dst)
            self.emit_mv(rd, src)
            self._writeback(post)
        elif isinstance(s, FOp):
            self._compile_op(s)
        elif isinstance(s, FLoad):
            addr = self.read_var(s.addr, SCRATCH[0])
            rd, post = self.write_var(s.dst)
            mnemonic = {1: "lbu", 2: "lhu", 4: "lw"}[s.size]
            self.emit(I.load(mnemonic, rd, addr, 0))
            self._writeback(post)
        elif isinstance(s, FStore):
            addr = self.read_var(s.addr, SCRATCH[0])
            value = self.read_var(s.value, SCRATCH[1])
            mnemonic = {1: "sb", 2: "sh", 4: "sw"}[s.size]
            self.emit(I.store(mnemonic, addr, value, 0))
        elif isinstance(s, FStackalloc):
            offset = self._alloca_offsets[self._alloca_cursor]
            self._alloca_cursor += 1
            rd, post = self.write_var(s.dst)
            self.emit_addi_sp_into(rd, offset)
            self._writeback(post)
            self.compile_stmts(s.body)
        elif isinstance(s, FIf):
            else_label = self._fresh_label("else")
            end_label = self._fresh_label("endif")
            cond = self.read_var(s.cond, SCRATCH[0])
            self.emit(BranchTo("beq", cond, ZERO, else_label))
            self.compile_stmts(s.then_)
            self.emit(JumpTo(ZERO, end_label))
            self.emit(Label(else_label))
            self.compile_stmts(s.else_)
            self.emit(Label(end_label))
        elif isinstance(s, FWhile):
            head = self._fresh_label("loop")
            exit_ = self._fresh_label("endloop")
            self.emit(Label(head))
            self.compile_stmts(s.cond_stmts)
            cond = self.read_var(s.cond_var, SCRATCH[0])
            self.emit(BranchTo("beq", cond, ZERO, exit_))
            self.compile_stmts(s.body)
            self.emit(JumpTo(ZERO, head))
            self.emit(Label(exit_))
        elif isinstance(s, FCall):
            if len(s.args) > 8 or len(s.binds) > 8:
                raise CompileError("too many arguments in call to %r" % s.func)
            for i, arg in enumerate(s.args):
                src = self.read_var(arg, SCRATCH[0])
                self.emit_mv(A0 + i, src)
            self.emit(JumpTo(RA, "func." + s.func))
            for i, bind in enumerate(s.binds):
                rd, post = self.write_var(bind)
                self.emit_mv(rd, A0 + i)
                self._writeback(post)
        elif isinstance(s, FInteract):
            arg_regs = [self.read_var(a, SCRATCH[k % 2])
                        for k, a in enumerate(s.args)]
            if len(arg_regs) > 2:
                raise CompileError("external calls take at most 2 arguments")
            bind_regs = []
            posts = []
            for b in s.binds:
                rd, post = self.write_var(b)
                bind_regs.append(rd)
                posts.append(post)
            for instr in self.ext_compiler.compile_ext(s.action, bind_regs,
                                                       arg_regs):
                self.emit(instr)
            for post in posts:
                self._writeback(post)
        else:
            raise TypeError("not a FlatImp statement: %r" % (s,))

    _OP_MAP = {
        "add": "add", "sub": "sub", "mul": "mul", "mulhuu": "mulhu",
        "divu": "divu", "remu": "remu", "and": "and", "or": "or",
        "xor": "xor", "sru": "srl", "slu": "sll", "srs": "sra",
        "lts": "slt", "ltu": "sltu",
    }

    def _compile_op(self, s: FOp) -> None:
        lhs = self.read_var(s.lhs, SCRATCH[0])
        rhs = self.read_var(s.rhs, SCRATCH[1])
        rd, post = self.write_var(s.dst)
        if s.op == "eq":
            # d = (a == b)  ~>  sub d,a,b ; sltiu d,d,1
            self.emit(I.r_type("sub", rd, lhs, rhs))
            self.emit(I.i_type("sltiu", rd, rd, 1))
        else:
            self.emit(I.r_type(self._OP_MAP[s.op], rd, lhs, rhs))
        self._writeback(post)

    # -- function wrapper --------------------------------------------------------

    def compile_function(self) -> List[Item]:
        self.emit(Label("func." + self.fn.name))
        self.emit_sp_adjust(-self.frame_size)
        self.emit_store_sp(RA, self.ra_off, SCRATCH[2])
        for j, reg in enumerate(self.saved_regs):
            self.emit_store_sp(reg, self.saved_base + 4 * j, SCRATCH[2])
        for i, param in enumerate(self.fn.params):
            rd, post = self.write_var(param)
            self.emit_mv(rd, A0 + i)
            self._writeback(post)
        self.compile_stmts(self.fn.body)
        for i, ret in enumerate(self.fn.rets):
            src = self.read_var(ret, SCRATCH[0])
            self.emit_mv(A0 + i, src)
        for j, reg in enumerate(self.saved_regs):
            self.emit_load_sp(reg, self.saved_base + 4 * j)
        self.emit_load_sp(RA, self.ra_off)
        self.emit_sp_adjust(self.frame_size)
        self.emit(I.jalr(ZERO, RA, 0))
        return self.items


_BRANCH_INVERSE = {"beq": "bne", "bne": "beq", "blt": "bge", "bge": "blt",
                   "bltu": "bgeu", "bgeu": "bltu"}


def _compute_addresses(items: Sequence[Item], base: int) -> Dict[str, int]:
    addresses: Dict[str, int] = {}
    pc = base
    for item in items:
        if isinstance(item, Label):
            if item.name in addresses:
                raise CompileError("duplicate label %r" % item.name)
            addresses[item.name] = pc
        else:
            pc += 4
    return addresses


def _relax_branches(items: Sequence[Item], base: int) -> List[Item]:
    """Rewrite conditional branches whose targets exceed the +-4KB B-type
    range into an inverted branch over a ``jal`` (which reaches +-1MB).
    Iterates to a fixpoint since relaxation moves labels."""
    work = list(items)
    relax_counter = 0
    for _ in range(64):
        addresses = _compute_addresses(work, base)
        pc = base
        patch: Optional[Tuple[int, BranchTo]] = None
        for idx, item in enumerate(work):
            if isinstance(item, Label):
                continue
            if isinstance(item, BranchTo):
                target = addresses.get(item.label)
                if target is None:
                    raise CompileError("undefined label %r" % item.label)
                if not (-4096 <= target - pc < 4096):
                    patch = (idx, item)
                    break
            pc += 4
        if patch is None:
            return work
        idx, item = patch
        relax_counter += 1
        skip = "%s.relax.%d" % (item.label, relax_counter)
        work[idx:idx + 1] = [
            BranchTo(_BRANCH_INVERSE[item.name], item.rs1, item.rs2, skip),
            JumpTo(ZERO, item.label),
            Label(skip),
        ]
    raise CompileError("branch relaxation did not converge")


def resolve_labels(items: Sequence[Item], base: int = 0) -> List[I.Instr]:
    """Two-pass assembly with branch relaxation: compute label addresses,
    patch branches/jumps."""
    items = _relax_branches(items, base)
    addresses = _compute_addresses(items, base)
    pc = base
    out: List[I.Instr] = []
    pc = base
    for item in items:
        if isinstance(item, Label):
            continue
        if isinstance(item, BranchTo):
            if item.label not in addresses:
                raise CompileError("undefined label %r" % item.label)
            offset = addresses[item.label] - pc
            if not (-4096 <= offset < 4096):
                raise CompileError("branch to %r out of range (%d)"
                                   % (item.label, offset))
            out.append(I.branch(item.name, item.rs1, item.rs2, offset))
        elif isinstance(item, JumpTo):
            if item.label not in addresses:
                raise CompileError("undefined label %r" % item.label)
            offset = addresses[item.label] - pc
            out.append(I.jal(item.rd, offset))
        else:
            out.append(item)
        pc += 4
    return out
