"""FlatImp: the compiler's intermediate language (paper section 5.3).

FlatImp is Bedrock2 with expressions flattened: every operand is a variable
or a literal bound by an earlier assignment. The paper's compiler has two
FlatImp stages -- "FlatImp with variables" and, after register allocation,
"FlatImp with registers" -- which share this syntax; only the interpretation
of names differs (arbitrary strings vs register names ``x5``...).

The executable semantics here mirrors the Bedrock2 interpreter and is used
for per-phase differential testing of the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bedrock2 import word
from ..bedrock2.semantics import ExtHandler, IOEvent, Memory, UndefinedBehavior


class FStmt:
    __slots__ = ()


@dataclass(frozen=True)
class FSetLit(FStmt):
    dst: str
    value: int


@dataclass(frozen=True)
class FSetVar(FStmt):
    dst: str
    src: str


@dataclass(frozen=True)
class FOp(FStmt):
    """dst = op(lhs, rhs) with variable operands."""

    dst: str
    op: str
    lhs: str
    rhs: str


@dataclass(frozen=True)
class FLoad(FStmt):
    dst: str
    size: int
    addr: str


@dataclass(frozen=True)
class FStore(FStmt):
    size: int
    addr: str
    value: str


@dataclass(frozen=True)
class FStackalloc(FStmt):
    dst: str
    nbytes: int
    body: Tuple[FStmt, ...]


@dataclass(frozen=True)
class FIf(FStmt):
    cond: str
    then_: Tuple[FStmt, ...]
    else_: Tuple[FStmt, ...]


@dataclass(frozen=True)
class FWhile(FStmt):
    """``while: cond_stmts; if !cond_var break; body``.

    The condition computation is a statement list because flattening an
    expression produces instructions that must re-run on every iteration.
    """

    cond_stmts: Tuple[FStmt, ...]
    cond_var: str
    body: Tuple[FStmt, ...]


@dataclass(frozen=True)
class FCall(FStmt):
    binds: Tuple[str, ...]
    func: str
    args: Tuple[str, ...]


@dataclass(frozen=True)
class FInteract(FStmt):
    binds: Tuple[str, ...]
    action: str
    args: Tuple[str, ...]


@dataclass(frozen=True)
class FFunction:
    name: str
    params: Tuple[str, ...]
    rets: Tuple[str, ...]
    body: Tuple[FStmt, ...]


FProgram = Dict[str, FFunction]

_BINOP = {
    "add": word.add, "sub": word.sub, "mul": word.mul, "mulhuu": word.mulhuu,
    "divu": word.divu, "remu": word.remu, "and": word.and_, "or": word.or_,
    "xor": word.xor, "sru": word.srl, "slu": word.sll, "srs": word.sra,
    "lts": word.lts, "ltu": word.ltu, "eq": word.eq,
}


class FlatInterpreter:
    """Reference interpreter for FlatImp, any naming regime."""

    def __init__(self, program: FProgram, ext: Optional[ExtHandler] = None,
                 fuel: int = 10_000_000, stack_base: int = 0x8000_0000):
        self.program = program
        self.ext = ext if ext is not None else ExtHandler()
        self.fuel = fuel
        self.stack_base = stack_base
        self._stack_off = 0

    def _get(self, env: Dict[str, int], name: str) -> int:
        if name not in env:
            raise UndefinedBehavior("unbound FlatImp variable %r" % name)
        return env[name]

    def exec_stmts(self, stmts: Sequence[FStmt], env: Dict[str, int],
                   mem: Memory, trace: List[IOEvent]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env, mem, trace)

    def exec_stmt(self, s: FStmt, env: Dict[str, int], mem: Memory,
                  trace: List[IOEvent]) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise UndefinedBehavior("FlatImp fuel exhausted")
        if isinstance(s, FSetLit):
            env[s.dst] = word.wrap(s.value)
        elif isinstance(s, FSetVar):
            env[s.dst] = self._get(env, s.src)
        elif isinstance(s, FOp):
            env[s.dst] = _BINOP[s.op](self._get(env, s.lhs), self._get(env, s.rhs))
        elif isinstance(s, FLoad):
            addr = self._get(env, s.addr)
            if addr % s.size != 0:
                raise UndefinedBehavior("misaligned FlatImp load")
            env[s.dst] = mem.load(addr, s.size)
        elif isinstance(s, FStore):
            addr = self._get(env, s.addr)
            if addr % s.size != 0:
                raise UndefinedBehavior("misaligned FlatImp store")
            mem.store(addr, s.size, self._get(env, s.value))
        elif isinstance(s, FStackalloc):
            base = word.add(self.stack_base, self._stack_off)
            self._stack_off += s.nbytes
            mem.add_region(base, bytes(s.nbytes))
            env[s.dst] = base
            try:
                self.exec_stmts(s.body, env, mem, trace)
            finally:
                mem.remove_region(base, s.nbytes)
                self._stack_off -= s.nbytes
        elif isinstance(s, FIf):
            if self._get(env, s.cond) != 0:
                self.exec_stmts(s.then_, env, mem, trace)
            else:
                self.exec_stmts(s.else_, env, mem, trace)
        elif isinstance(s, FWhile):
            while True:
                self.exec_stmts(s.cond_stmts, env, mem, trace)
                if self._get(env, s.cond_var) == 0:
                    break
                self.exec_stmts(s.body, env, mem, trace)
                self.fuel -= 1
                if self.fuel <= 0:
                    raise UndefinedBehavior("FlatImp fuel exhausted")
        elif isinstance(s, FCall):
            fn = self.program.get(s.func)
            if fn is None:
                raise UndefinedBehavior("unknown FlatImp function %r" % s.func)
            callee_env = {p: self._get(env, a) for p, a in zip(fn.params, s.args)}
            self.exec_stmts(fn.body, callee_env, mem, trace)
            for bind, ret in zip(s.binds, fn.rets):
                env[bind] = self._get(callee_env, ret)
        elif isinstance(s, FInteract):
            args = tuple(self._get(env, a) for a in s.args)
            rets = self.ext.call(s.action, args, mem)
            if len(rets) != len(s.binds):
                raise UndefinedBehavior("FlatImp external call arity mismatch")
            trace.append(IOEvent(s.action, args, tuple(rets)))
            for bind, value in zip(s.binds, rets):
                env[bind] = value & word.MASK
        else:
            raise TypeError("not a FlatImp statement: %r" % (s,))


def run_flat_function(program: FProgram, fname: str, args,
                      mem: Optional[Memory] = None,
                      ext: Optional[ExtHandler] = None,
                      fuel: int = 10_000_000,
                      stack_base: int = 0x8000_0000):
    """FlatImp analogue of `repro.bedrock2.semantics.run_function`."""
    fn = program[fname]
    env = {p: word.wrap(a) for p, a in zip(fn.params, args)}
    mem = mem if mem is not None else Memory()
    trace: List[IOEvent] = []
    interp = FlatInterpreter(program, ext=ext, fuel=fuel, stack_base=stack_base)
    interp.exec_stmts(fn.body, env, mem, trace)
    rets = tuple(env[r] for r in fn.rets)
    return rets, env, mem, trace


def stmt_vars(stmts: Sequence[FStmt], acc: Optional[set] = None) -> set:
    """All variable names occurring in a statement list."""
    if acc is None:
        acc = set()
    for s in stmts:
        if isinstance(s, FSetLit):
            acc.add(s.dst)
        elif isinstance(s, FSetVar):
            acc.update((s.dst, s.src))
        elif isinstance(s, FOp):
            acc.update((s.dst, s.lhs, s.rhs))
        elif isinstance(s, FLoad):
            acc.update((s.dst, s.addr))
        elif isinstance(s, FStore):
            acc.update((s.addr, s.value))
        elif isinstance(s, FStackalloc):
            acc.add(s.dst)
            stmt_vars(s.body, acc)
        elif isinstance(s, FIf):
            acc.add(s.cond)
            stmt_vars(s.then_, acc)
            stmt_vars(s.else_, acc)
        elif isinstance(s, FWhile):
            acc.add(s.cond_var)
            stmt_vars(s.cond_stmts, acc)
            stmt_vars(s.body, acc)
        elif isinstance(s, (FCall, FInteract)):
            acc.update(s.binds)
            acc.update(s.args)
    return acc


def stmt_count(stmts: Sequence[FStmt]) -> int:
    """Number of statements, counting nested bodies (the IR-size measure
    reported by the compiler's observability spans)."""
    n = 0
    for s in stmts:
        n += 1
        if isinstance(s, FStackalloc):
            n += stmt_count(s.body)
        elif isinstance(s, FIf):
            n += stmt_count(s.then_) + stmt_count(s.else_)
        elif isinstance(s, FWhile):
            n += stmt_count(s.cond_stmts) + stmt_count(s.body)
    return n


def program_size(flat: "FProgram") -> int:
    """Total statement count of a FlatImp program."""
    return sum(stmt_count(fn.body) for fn in flat.values())
