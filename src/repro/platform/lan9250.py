"""LAN9250 Ethernet controller model (paper sections 3, 5.1).

The LAN9250's API is "a range of SPI-accessible address space where reads
and writes to different addresses correspond to different operations". This
model implements the register subset the lightbulb driver uses:

========== ======= ====================================================
offset     name    behavior modeled
========== ======= ====================================================
0x00       RX_DATA_FIFO    pops one word of the active received frame
0x40       RX_STATUS_FIFO  pops a status word: bits 16..29 = frame bytes
0x64       BYTE_TEST       0x87654321 once powered up (garbage before)
0x74       HW_CFG          READY bit 27 after power-up; config writable
0x7C       RX_FIFO_INF     [23:16] status words used, [15:0] data bytes
0xA4/0xA8  MAC_CSR_CMD/DATA indirect MAC registers (MAC_CR RX enable)
0x1F8      RESET_CTL       digital reset (re-runs the power-up delay)
========== ======= ====================================================

The SPI transaction format is the chip's: command byte (0x03 read /
0x0B fast-read with one dummy byte / 0x02 write), two address bytes
big-endian, then little-endian data words, auto-incrementing, until chip
deselect.

Frames are injected with `inject_frame`; the model accepts frames up to
``max_frame`` bytes (default 9000 -- oversize/jumbo frames *do* arrive on
real networks, which is exactly why the paper's driver bug mattered; the
protection the theorem guarantees lives in the driver, not here).

RX buffering is finite, like the real chip's: ``fifo_bytes`` of data
FIFO (word-padded, counting the in-flight frame being drained) and
``status_slots`` status words. A frame that does not fit is tail-dropped
and accounted in ``dropped_frames`` plus the obs registry -- the
loss-under-load signal the fleet simulator's storms are designed to
exercise.
"""

from __future__ import annotations

from typing import Deque, List

from collections import deque

from .. import obs
from .spi import SpiSlave

# Register offsets.
RX_DATA_FIFO = 0x00
RX_STATUS_FIFO = 0x40
RX_STATUS_FIFO_PEEK = 0x44
BYTE_TEST = 0x64
FIFO_INT = 0x68
RX_CFG = 0x6C
HW_CFG = 0x74
RX_FIFO_INF = 0x7C
IRQ_CFG = 0x54
MAC_CSR_CMD = 0xA4
MAC_CSR_DATA = 0xA8
RESET_CTL = 0x1F8

BYTE_TEST_VALUE = 0x87654321
HW_CFG_READY = 1 << 27
# RX_CFG force-discard: clears the RX data and status FIFOs (the chip's
# recovery path after software declines to drain a frame).
RX_CFG_RX_DUMP = 1 << 15

# MAC indirect registers.
MAC_CR = 1
MAC_CR_RXEN = 1 << 2
MAC_CSR_BUSY = 1 << 31

# SPI opcodes.
CMD_READ = 0x03
CMD_FAST_READ = 0x0B
CMD_WRITE = 0x02

_DROPPED = obs.counter("platform.lan9250_dropped_frames")


class Lan9250(SpiSlave):
    def __init__(self, power_up_reads: int = 3, max_frame: int = 2048,
                 fifo_bytes: int = 10240, status_slots: int = 64):
        self.power_up_reads = power_up_reads
        self.max_frame = max_frame
        self.fifo_bytes = fifo_bytes
        self.status_slots = status_slots
        self._powerup_countdown = power_up_reads
        self.hw_cfg = 0
        self.rx_cfg = 0
        self.fifo_int = 0
        self.irq_cfg = 0
        self.mac_regs = {MAC_CR: 0}
        self._mac_csr_cmd = 0
        self._mac_csr_data = 0
        self.frames: Deque[bytes] = deque()
        self._active_words: List[int] = []
        self.dropped_frames = 0
        # SPI transaction state machine.
        self._phase = "idle"
        self._cmd = 0
        self._addr_bytes: List[int] = []
        self._addr = 0
        self._out_bytes: List[int] = []
        self._in_bytes: List[int] = []

    # -- host-side API ---------------------------------------------------------

    @property
    def rx_enabled(self) -> bool:
        return bool(self.mac_regs.get(MAC_CR, 0) & MAC_CR_RXEN)

    def rx_used_bytes(self) -> int:
        """Word-padded bytes occupying the RX data FIFO, including the
        partially drained active frame."""
        return (sum(_padded_len(f) for f in self.frames)
                + 4 * len(self._active_words))

    def inject_frame(self, frame: bytes) -> bool:
        """Deliver an Ethernet frame from the wire. Returns False if the
        controller dropped it (receiver off, frame too large, or the RX
        FIFOs full)."""
        if not self.rx_enabled or len(frame) > self.max_frame or not frame:
            self._drop()
            return False
        if (len(self.frames) >= self.status_slots
                or self.rx_used_bytes() + _padded_len(frame)
                > self.fifo_bytes):
            self._drop()
            return False
        self.frames.append(bytes(frame))
        return True

    def _drop(self) -> None:
        self.dropped_frames += 1
        _DROPPED.inc()

    # -- register file ------------------------------------------------------------

    def reg_read(self, addr: int) -> int:
        if addr == BYTE_TEST:
            if self._powerup_countdown > 0:
                self._powerup_countdown -= 1
                return 0xFFFFFFFF
            return BYTE_TEST_VALUE
        if addr == HW_CFG:
            if self._powerup_countdown > 0:
                self._powerup_countdown -= 1
                return self.hw_cfg
            return self.hw_cfg | HW_CFG_READY
        if addr == RX_FIFO_INF:
            status_words = len(self.frames)
            data_bytes = sum(_padded_len(f) for f in self.frames) \
                + 4 * len(self._active_words)
            return ((status_words & 0xFF) << 16) | (data_bytes & 0xFFFF)
        if addr in (RX_STATUS_FIFO, RX_STATUS_FIFO_PEEK):
            if not self.frames:
                return 0
            frame = self.frames[0]
            status = (len(frame) & 0x3FFF) << 16
            if addr == RX_STATUS_FIFO:
                self.frames.popleft()
                self._active_words.extend(_frame_words(frame))
            return status
        if addr == RX_DATA_FIFO:
            if self._active_words:
                return self._active_words.pop(0)
            return 0
        if addr == RX_CFG:
            return self.rx_cfg
        if addr == FIFO_INT:
            return self.fifo_int
        if addr == IRQ_CFG:
            return self.irq_cfg
        if addr == MAC_CSR_CMD:
            return self._mac_csr_cmd & ~MAC_CSR_BUSY  # completes immediately
        if addr == MAC_CSR_DATA:
            return self._mac_csr_data
        if addr == RESET_CTL:
            return 0
        return 0

    def reg_write(self, addr: int, value: int) -> None:
        if addr == HW_CFG:
            self.hw_cfg = value & ~HW_CFG_READY
        elif addr == RX_CFG:
            self.rx_cfg = value & ~RX_CFG_RX_DUMP
            if value & RX_CFG_RX_DUMP:
                # Force-discard: both FIFOs empty, alignment restored.
                self.frames.clear()
                self._active_words = []
        elif addr == FIFO_INT:
            self.fifo_int = value
        elif addr == IRQ_CFG:
            self.irq_cfg = value
        elif addr == MAC_CSR_DATA:
            self._mac_csr_data = value
        elif addr == MAC_CSR_CMD:
            self._mac_csr_cmd = value
            index = value & 0xFF
            if value & MAC_CSR_BUSY:
                if value & (1 << 30):  # read command
                    self._mac_csr_data = self.mac_regs.get(index, 0)
                else:
                    self.mac_regs[index] = self._mac_csr_data
        elif addr == RESET_CTL:
            if value & 1:
                self._reset()

    def _reset(self) -> None:
        self._powerup_countdown = self.power_up_reads
        self.hw_cfg = 0
        self.mac_regs = {MAC_CR: 0}
        self.frames.clear()
        self._active_words = []
        self._phase = "idle"

    # -- SPI slave protocol ----------------------------------------------------------

    def exchange(self, mosi: int) -> int:
        mosi &= 0xFF
        if self._phase == "idle":
            if mosi in (CMD_READ, CMD_FAST_READ, CMD_WRITE):
                self._cmd = mosi
                self._addr_bytes = []
                self._phase = "addr"
            return 0xFF
        if self._phase == "addr":
            self._addr_bytes.append(mosi)
            if len(self._addr_bytes) == 2:
                self._addr = (self._addr_bytes[0] << 8) | self._addr_bytes[1]
                if self._cmd == CMD_FAST_READ:
                    self._phase = "dummy"
                elif self._cmd == CMD_READ:
                    self._begin_read()
                else:
                    self._in_bytes = []
                    self._phase = "write_data"
            return 0xFF
        if self._phase == "dummy":
            self._begin_read()
            return 0xFF
        if self._phase == "read_data":
            if not self._out_bytes:
                self._load_read_word()
            return self._out_bytes.pop(0)
        if self._phase == "write_data":
            self._in_bytes.append(mosi)
            if len(self._in_bytes) == 4:
                value = int.from_bytes(bytes(self._in_bytes), "little")
                self.reg_write(self._addr, value)
                self._addr = (self._addr + 4) & 0xFFFF
                self._in_bytes = []
            return 0xFF
        return 0xFF

    def _begin_read(self) -> None:
        self._phase = "read_data"
        self._out_bytes = []

    def _load_read_word(self) -> None:
        value = self.reg_read(self._addr)
        self._addr = (self._addr + 4) & 0xFFFF if self._addr not in (
            RX_DATA_FIFO, RX_STATUS_FIFO) else self._addr
        self._out_bytes = list(value.to_bytes(4, "little"))

    def chip_deselect(self) -> None:
        self._phase = "idle"
        self._out_bytes = []
        self._in_bytes = []


def _padded_len(frame: bytes) -> int:
    return (len(frame) + 3) & ~3


def _frame_words(frame: bytes) -> List[int]:
    padded = frame + bytes(_padded_len(frame) - len(frame))
    return [int.from_bytes(padded[i:i + 4], "little")
            for i in range(0, len(padded), 4)]
