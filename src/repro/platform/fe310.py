"""FE310 baseline model: the "commercial RISC-V processor" of the paper.

The paper's unverified prototype ran on a SiFive FE310 (Rocket RV32IMAC
core) and the verified system's 10x latency gap is decomposed against it
(section 7.2.1). We model the FE310 as the ISA-level machine with a
1-instruction-per-cycle timing model (the paper approximates "the Rocket
core as executing 1 instruction per cycle") attached to the same device
bus as the Kami processor.
"""

from __future__ import annotations

from ..riscv.machine import RiscvMachine
from .bus import MMIOBus


class Fe310Machine(RiscvMachine):
    """RiscvMachine with an FE310-like cycle counter: CPI = 1.

    ``cycles`` is the timing observable the performance benchmarks report;
    for the Kami pipelined processor the corresponding figure is the number
    of scheduler cycles (see `repro.core.timing`)."""

    @property
    def cycles(self) -> int:
        return self.instret


def make_fe310_system(image: bytes, bus: MMIOBus,
                      mem_size: int = 1 << 20) -> Fe310Machine:
    """An FE310 with ``image`` in flash-mapped-at-0 memory and ``bus``
    providing the SPI/GPIO peripherals."""
    return Fe310Machine.with_program(image, base=0, pc=0, mem_size=mem_size,
                                     mmio_bus=bus)
