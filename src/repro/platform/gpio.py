"""GPIO device: the lightbulb power switch (paper Figure 2).

FE310-style GPIO block: an output-enable register and an output-value
register. The lightbulb's solid-state relay hangs off one pin; the device
keeps a history of pin transitions so tests and the end-to-end checker can
observe exactly when the bulb turned on or off.
"""

from __future__ import annotations

from typing import List

from .bus import Device, GPIO_BASE

# Register offsets (FE310 GPIO block).
GPIO_OUTPUT_EN = 0x08
GPIO_OUTPUT_VAL = 0x0C

# The lightbulb relay pin (the original demo drives pin 23).
LIGHTBULB_PIN = 23

GPIO_OUTPUT_EN_ADDR = GPIO_BASE + GPIO_OUTPUT_EN
GPIO_OUTPUT_VAL_ADDR = GPIO_BASE + GPIO_OUTPUT_VAL


class Gpio(Device):
    base = GPIO_BASE
    size = 0x1000

    def __init__(self):
        self.output_en = 0
        self.output_val = 0
        # (event index, pin-23 level) transitions of the bulb.
        self.bulb_history: List[int] = []

    def read(self, offset: int) -> int:
        if offset == GPIO_OUTPUT_EN:
            return self.output_en
        if offset == GPIO_OUTPUT_VAL:
            return self.output_val
        return 0

    def write(self, offset: int, value: int) -> None:
        if offset == GPIO_OUTPUT_EN:
            self.output_en = value
        elif offset == GPIO_OUTPUT_VAL:
            old_bulb = self.bulb_on
            self.output_val = value
            if self.bulb_on != old_bulb or not self.bulb_history:
                self.bulb_history.append(1 if self.bulb_on else 0)

    @property
    def bulb_on(self) -> bool:
        return bool((self.output_val >> LIGHTBULB_PIN) & 1
                    and (self.output_en >> LIGHTBULB_PIN) & 1)
