"""Ethernet/IPv4/UDP frame construction and the lightbulb command packets.

The workload generator for the evaluation: well-formed ON/OFF command
packets, plus the malformed-at-every-layer variants used to exercise the
``RecvInvalid`` arm of the specification (truncated frames, wrong
ethertype, non-UDP protocol, oversize frames, random garbage).
"""

from __future__ import annotations

import random
import struct
from typing import List, Optional

ETHERTYPE_IPV4 = 0x0800
IP_PROTO_UDP = 0x11

DEFAULT_DST_MAC = bytes.fromhex("0200000000fe")
DEFAULT_SRC_MAC = bytes.fromhex("020000000001")
LIGHTBULB_UDP_PORT = 1234

# Offsets the lightbulb app inspects (paper section 5.1's validation).
OFF_ETHERTYPE = 12
OFF_IP_PROTO = 23
OFF_CMD = 42
MIN_VALID_LENGTH = 43  # must be able to read the command byte


def ipv4_header(payload_len: int, proto: int = IP_PROTO_UDP,
                src: bytes = b"\x0a\x00\x00\x01",
                dst: bytes = b"\x0a\x00\x00\x02") -> bytes:
    total = 20 + payload_len
    header = struct.pack(">BBHHHBBH4s4s", 0x45, 0, total, 0, 0, 64, proto, 0,
                         src, dst)
    checksum = _ip_checksum(header)
    return header[:10] + struct.pack(">H", checksum) + header[12:]


def _ip_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def udp_datagram(payload: bytes, sport: int = 40000,
                 dport: int = LIGHTBULB_UDP_PORT) -> bytes:
    return struct.pack(">HHHH", sport, dport, 8 + len(payload), 0) + payload


def ethernet_frame(payload: bytes, ethertype: int = ETHERTYPE_IPV4,
                   dst: bytes = DEFAULT_DST_MAC,
                   src: bytes = DEFAULT_SRC_MAC) -> bytes:
    return dst + src + struct.pack(">H", ethertype) + payload


def lightbulb_packet(on: bool, extra_payload: bytes = b"") -> bytes:
    """A well-formed command frame: first UDP payload byte's bit 0 selects
    on/off (the paper: 'depending on the first byte of the received
    packet')."""
    command = bytes([0x01 if on else 0x00]) + extra_payload
    udp = udp_datagram(command)
    ip = ipv4_header(len(udp)) + udp
    return ethernet_frame(ip)


# -- malformed workloads -------------------------------------------------------

def truncated_packet(length: int = 20) -> bytes:
    """Too short to contain a command byte."""
    return lightbulb_packet(True)[:length]


def wrong_ethertype_packet(ethertype: int = 0x0806) -> bytes:
    """E.g. an ARP frame: must be ignored."""
    inner = lightbulb_packet(True)[14:]
    return ethernet_frame(inner, ethertype=ethertype)


def non_udp_packet(proto: int = 0x06) -> bytes:
    """An IPv4/TCP-looking frame: must be ignored."""
    udp = udp_datagram(b"\x01")
    ip = ipv4_header(len(udp), proto=proto) + udp
    return ethernet_frame(ip)


def oversize_packet(size: int = 2000, on: bool = True) -> bytes:
    """An oversize frame carrying a valid-looking command: larger than the
    driver's 1520-byte buffer but within the NIC's ~2 KB FIFO, so it is
    *delivered* -- the driver must reject it rather than overflow (the
    paper's prototype bug). Frames beyond the NIC limit are dropped by the
    MAC itself and never reach software."""
    base = lightbulb_packet(on)
    return base + bytes((i * 37) & 0xFF for i in range(size - len(base)))


def random_garbage(rng: random.Random, max_len: int = 100) -> bytes:
    """Uniformly random bytes that are guaranteed *not* to parse as a
    valid command. Pure chance can assemble a well-formed frame (43+
    random bytes have a ~2^-72 shot, but seeded fuzz corpora replay
    forever), which would silently flip an oracle expecting garbage to be
    ignored -- so re-roll until the frame is genuinely unparseable."""
    while True:
        frame = bytes(rng.randrange(256)
                      for _ in range(rng.randint(1, max_len)))
        if is_valid_command(frame) is None:
            return frame


def adversarial_stream(rng: random.Random, count: int) -> List[bytes]:
    """A mixed stream of valid and malicious frames for fuzzing the
    end-to-end theorem."""
    frames: List[bytes] = []
    for _ in range(count):
        choice = rng.randrange(7)
        if choice == 0:
            frames.append(lightbulb_packet(bool(rng.getrandbits(1))))
        elif choice == 1:
            frames.append(truncated_packet(rng.randint(1, 42)))
        elif choice == 2:
            frames.append(wrong_ethertype_packet(rng.randrange(0x10000)))
        elif choice == 3:
            frames.append(non_udp_packet(rng.randrange(256)))
        elif choice == 4:
            frames.append(oversize_packet(rng.randint(1521, 2040)))
        elif choice == 5:
            frames.append(random_garbage(rng))
        else:
            # Bit-flipped valid packet.
            frame = bytearray(lightbulb_packet(bool(rng.getrandbits(1))))
            for _ in range(rng.randint(1, 8)):
                frame[rng.randrange(len(frame))] ^= 1 << rng.randrange(8)
            frames.append(bytes(frame))
    return frames


def is_valid_command(frame: bytes) -> Optional[bool]:
    """The *specification-level* packet validation: returns the commanded
    state for frames the app must act on, None for frames it must ignore.
    Mirrors the checks in the lightbulb app (length, ethertype, UDP)."""
    if len(frame) < MIN_VALID_LENGTH or len(frame) > 1520:
        return None
    ethertype = (frame[OFF_ETHERTYPE] << 8) | frame[OFF_ETHERTYPE + 1]
    if ethertype != ETHERTYPE_IPV4:
        return None
    if frame[OFF_IP_PROTO] != IP_PROTO_UDP:
        return None
    return bool(frame[OFF_CMD] & 1)
