"""A DMA engine: the paper's section 6.2 extension, made concrete.

"The same interface is also powerful enough to model direct memory access
(DMA), by recording memory-ownership changes in the I/O trace, but we do
not make use of this feature in the lightbulb application."

This module exercises exactly that design point. The engine is a
memory-mapped device with ADDR/LEN/VALUE/CTRL/STATUS registers. Writing
CTRL=1 *takes ownership* of ``[ADDR, ADDR+LEN)`` away from the processor:
the machine's owned-memory footprint shrinks, so any CPU access to the
region while the transfer is in flight is undefined behavior -- the
ownership discipline the paper's trace events would enforce. Reading
STATUS polls the transfer; when it completes (after a programmable number
of polls, so software really waits), ownership returns with the region
filled by the device.

At the trace level the protocol is ordinary MMIO (the ownership changes
are a function of the CTRL/STATUS events), so the same trace-predicate
language specifies it -- see `dma_transfer_spec`.
"""

from __future__ import annotations

from .bus import MMIO_RANGES as _RANGES
from .bus import Device

DMA_BASE = 0x10030000
DMA_SIZE = 0x1000

DMA_ADDR = 0x00
DMA_LEN = 0x04
DMA_VALUE = 0x08
DMA_CTRL = 0x0C
DMA_STATUS = 0x10

STATUS_BUSY = 1
STATUS_IDLE = 0

# Extend the platform MMIO map with the DMA engine's range.
if (DMA_BASE, DMA_BASE + DMA_SIZE) not in _RANGES:
    _RANGES.append((DMA_BASE, DMA_BASE + DMA_SIZE))


class DmaEngine(Device):
    """A fill engine: writes LEN bytes of VALUE at ADDR, asynchronously.

    ``attach_machine`` wires the ownership callbacks; the engine then
    borrows the region from the machine for the duration of the transfer.
    """

    base = DMA_BASE
    size = DMA_SIZE

    def __init__(self, transfer_polls: int = 3):
        self.transfer_polls = transfer_polls
        self.addr = 0
        self.length = 0
        self.value = 0
        self._busy_polls_left = 0
        self._machine = None
        self.transfers_completed = 0

    def attach_machine(self, machine) -> None:
        """Bind the processor whose memory this engine masters."""
        self._machine = machine

    def read(self, offset: int) -> int:
        if offset == DMA_STATUS:
            if self._busy_polls_left > 0:
                self._busy_polls_left -= 1
                if self._busy_polls_left == 0:
                    self._complete()
                return STATUS_BUSY
            return STATUS_IDLE
        if offset == DMA_ADDR:
            return self.addr
        if offset == DMA_LEN:
            return self.length
        if offset == DMA_VALUE:
            return self.value
        return 0

    def write(self, offset: int, value: int) -> None:
        if offset == DMA_ADDR:
            self.addr = value
        elif offset == DMA_LEN:
            self.length = value
        elif offset == DMA_VALUE:
            self.value = value & 0xFF
        elif offset == DMA_CTRL and value & 1:
            self._start()

    def _start(self) -> None:
        if self._machine is not None and self.length:
            # Ownership leaves the processor: CPU touches are now UB.
            self._machine.loan_out(self.addr, self.length)
        self._busy_polls_left = self.transfer_polls

    def _complete(self) -> None:
        if self._machine is not None and self.length:
            data = bytes([self.value]) * self.length
            self._machine.loan_return(self.addr, data)
        self.transfers_completed += 1


def dma_transfer_spec(addr: int, length: int, fill: int):
    """Trace predicate for one complete DMA fill transaction: program the
    registers, kick CTRL, poll STATUS busy*, then idle. Ownership changes
    are implied by the CTRL (take) and final STATUS (return) events --
    exactly how the paper proposes recording DMA in the trace."""
    from ..traces.predicates import Star, ld, seq, st, value_is

    return seq(
        st(DMA_BASE + DMA_ADDR, value_is(addr)),
        st(DMA_BASE + DMA_LEN, value_is(length)),
        st(DMA_BASE + DMA_VALUE, value_is(fill)),
        st(DMA_BASE + DMA_CTRL, value_is(1)),            # ownership: CPU -> DMA
        Star(ld(DMA_BASE + DMA_STATUS, value_is(STATUS_BUSY))),
        ld(DMA_BASE + DMA_STATUS, value_is(STATUS_IDLE)),  # ownership: DMA -> CPU
    )
