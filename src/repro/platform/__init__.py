"""Device models: MMIO bus, GPIO (lightbulb switch), SPI peripheral,
LAN9250 Ethernet controller, and network-packet workloads (paper §3, §5.1).
`fe310` adds the commercial-microcontroller baseline of the evaluation."""

from . import bus, fe310, gpio, lan9250, net, spi
from .bus import KamiWorldAdapter, MMIOBus
from .gpio import Gpio
from .lan9250 import Lan9250
from .spi import Spi

__all__ = ["bus", "gpio", "spi", "lan9250", "net", "fe310",
           "MMIOBus", "KamiWorldAdapter", "Gpio", "Spi", "Lan9250"]
