"""SPI peripheral model (paper section 5.1).

Replicates the FE310 SPI interface the paper copied: send and receive
queues exposed over MMIO, with *polling* to detect peripheral-initiated
flag changes. Writing a byte to TXDATA clocks it out to the attached slave
(the LAN9250), which -- SPI being synchronous and bidirectional -- shifts a
response byte back into the RX queue.

Two fidelity knobs matter for the performance evaluation (section 7.2.1):

* ``rx_latency``: reads of RXDATA report "empty" this many times before a
  shifted-in byte becomes visible, so polling loops really poll;
* the FIFO depth enables the FE310's *SPI pipelining* usage pattern (queue
  a whole 4-byte command, then drain 4 responses), which the unverified
  prototype exploits and the verified driver forgoes -- the paper's 1.4x.
"""

from __future__ import annotations

from typing import List, Optional

from .bus import Device, SPI_BASE

# Register offsets (FE310 QSPI block).
SPI_SCKDIV = 0x00
SPI_CSID = 0x10
SPI_CSDEF = 0x14
SPI_CSMODE = 0x18
SPI_TXDATA = 0x48
SPI_RXDATA = 0x4C

SPI_TXDATA_ADDR = SPI_BASE + SPI_TXDATA
SPI_RXDATA_ADDR = SPI_BASE + SPI_RXDATA
SPI_CSMODE_ADDR = SPI_BASE + SPI_CSMODE

# Flag bit: top bit of TXDATA reads = full, top bit of RXDATA reads = empty.
FLAG_BIT = 0x80000000

CSMODE_AUTO = 0
CSMODE_HOLD = 2


class SpiSlave:
    """Interface for devices on the SPI bus (the LAN9250 implements it)."""

    def exchange(self, mosi_byte: int) -> int:
        """Shift one byte out to the slave; returns the MISO response."""
        raise NotImplementedError

    def chip_deselect(self) -> None:
        """CS deasserted: transaction boundary."""


class Spi(Device):
    base = SPI_BASE
    size = 0x1000

    def __init__(self, slave: Optional[SpiSlave] = None, fifo_depth: int = 8,
                 rx_latency: int = 1):
        self.slave = slave
        self.fifo_depth = fifo_depth
        self.rx_latency = rx_latency
        self.rx_fifo: List[int] = []
        self._rx_wait = 0
        self.csmode = CSMODE_AUTO
        self.sckdiv = 3
        self.bytes_transferred = 0

    def read(self, offset: int) -> int:
        if offset == SPI_TXDATA:
            # Full flag: our TX side is synchronous, so full only when the
            # RX fifo has no room for the response byte.
            return FLAG_BIT if len(self.rx_fifo) >= self.fifo_depth else 0
        if offset == SPI_RXDATA:
            if not self.rx_fifo:
                return FLAG_BIT
            if self._rx_wait > 0:
                self._rx_wait -= 1
                return FLAG_BIT
            byte = self.rx_fifo.pop(0) & 0xFF
            if self.rx_fifo:
                self._rx_wait = self.rx_latency  # next byte needs clocking in
            return byte
        if offset == SPI_CSMODE:
            return self.csmode
        if offset == SPI_SCKDIV:
            return self.sckdiv
        return 0

    def write(self, offset: int, value: int) -> None:
        if offset == SPI_TXDATA:
            if len(self.rx_fifo) >= self.fifo_depth:
                return  # overrun: byte lost (the driver must check the flag)
            response = self.slave.exchange(value & 0xFF) if self.slave else 0xFF
            if not self.rx_fifo:
                self._rx_wait = self.rx_latency  # shifting takes time
            self.rx_fifo.append(response & 0xFF)
            self.bytes_transferred += 1
        elif offset == SPI_CSMODE:
            old = self.csmode
            self.csmode = value & 3
            if old == CSMODE_HOLD and self.csmode == CSMODE_AUTO:
                if self.slave is not None:
                    self.slave.chip_deselect()
        elif offset == SPI_SCKDIV:
            self.sckdiv = value
