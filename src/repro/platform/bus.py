"""The MMIO device bus: the platform's memory map.

This is the boundary the paper's end-to-end theorem speaks about: every
MMIO load and store the processor issues crosses this bus and becomes a
trace event. The address map mirrors the SiFive FE310 microcontroller the
paper replicated its SPI and GPIO interfaces from (section 5.1), which is
what allowed the authors to test hardware and software separately.
"""

from __future__ import annotations

from typing import List, Tuple

from .. import obs

# Every MMIO access in the whole system -- from the ISA machine, the Kami
# processors, or the Bedrock2 interpreters -- crosses this bus, so these
# two counters are the ground truth for MMIO event totals.
_BUS_READS = obs.counter("platform.bus_reads")
_BUS_WRITES = obs.counter("platform.bus_writes")

# FE310-compatible memory map (section 5.1).
GPIO_BASE = 0x10012000
GPIO_SIZE = 0x1000
SPI_BASE = 0x10024000
SPI_SIZE = 0x1000

MMIO_RANGES: List[Tuple[int, int]] = [
    (GPIO_BASE, GPIO_BASE + GPIO_SIZE),
    (SPI_BASE, SPI_BASE + SPI_SIZE),
]


class Device:
    """A memory-mapped device occupying an address range."""

    base = 0
    size = 0

    def read(self, offset: int) -> int:
        raise NotImplementedError

    def write(self, offset: int, value: int) -> None:
        raise NotImplementedError

    def covers(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class MMIOBus:
    """Routes word-aligned MMIO reads/writes to devices.

    Reads from unmapped-but-in-range addresses return 0 and writes are
    dropped, like a bus with no slave response check -- the *software* is
    what is verified never to touch undefined registers."""

    def __init__(self, devices=()):
        self.devices = list(devices)

    def attach(self, device: Device) -> None:
        self.devices.append(device)

    def is_mmio(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in MMIO_RANGES)

    def read(self, addr: int) -> int:
        _BUS_READS.inc()
        if obs.ENABLED:
            obs.instant("mmio.read", cat="platform", args={"addr": addr})
        for device in self.devices:
            if device.covers(addr):
                return device.read(addr - device.base) & 0xFFFFFFFF
        return 0

    def write(self, addr: int, value: int) -> None:
        _BUS_WRITES.inc()
        if obs.ENABLED:
            obs.instant("mmio.write", cat="platform",
                        args={"addr": addr, "value": value})
        for device in self.devices:
            if device.covers(addr):
                device.write(addr - device.base, value & 0xFFFFFFFF)
                return


class KamiWorldAdapter:
    """Presents an `MMIOBus` as a Kami `ExternalWorld` so the same device
    models sit behind the Kami processors and the ISA-level machine."""

    def __init__(self, bus: MMIOBus):
        self.bus = bus

    def call(self, method: str, args):
        if method == "mmioRead":
            return self.bus.read(args[0])
        if method == "mmioWrite":
            self.bus.write(args[0], args[1])
            return None
        raise KeyError("no provider for external method %r" % method)
