"""The RV32IM instruction set (paper section 5.4).

The paper uses RISC-V precisely because it is a *standardized* ISA with
commercial implementations; this module defines the instruction vocabulary
shared by the compiler backend, the encoder/decoder, the ISA semantics, and
the Kami processors' decode logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Instruction mnemonics by format. RV32I base + M extension, which is the
# subset the Bedrock2 compiler targets (the paper reconciled the Kami
# processor with RV32I and the compiler emits M-extension multiply/divide).
R_TYPE = (
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
)
I_ARITH = ("addi", "slti", "sltiu", "xori", "ori", "andi")
I_SHIFT = ("slli", "srli", "srai")
I_LOAD = ("lb", "lh", "lw", "lbu", "lhu")
S_TYPE = ("sb", "sh", "sw")
B_TYPE = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
U_TYPE = ("lui", "auipc")
J_TYPE = ("jal",)
I_JUMP = ("jalr",)

ALL_MNEMONICS = (R_TYPE + I_ARITH + I_SHIFT + I_LOAD + S_TYPE + B_TYPE
                 + U_TYPE + J_TYPE + I_JUMP)


@dataclass(frozen=True)
class Instr:
    """One RISC-V instruction. Unused fields are None.

    ``imm`` is stored as a plain (possibly negative) Python int with the
    natural signedness of the format; encoding masks it appropriately.
    """

    name: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None

    def __post_init__(self):
        if self.name not in ALL_MNEMONICS:
            raise ValueError("unknown mnemonic %r" % (self.name,))
        for reg in (self.rd, self.rs1, self.rs2):
            if reg is not None and not (0 <= reg < 32):
                raise ValueError("bad register x%r" % (reg,))

    def __str__(self):
        parts = [self.name]
        if self.rd is not None:
            parts.append("x%d" % self.rd)
        if self.rs1 is not None:
            parts.append("x%d" % self.rs1)
        if self.rs2 is not None:
            parts.append("x%d" % self.rs2)
        if self.imm is not None:
            parts.append(str(self.imm))
        return " ".join(parts)


class InvalidInstruction(Exception):
    """Raised by the decoder on an unencodable/unknown word."""

    def __init__(self, word: int):
        self.word = word
        super().__init__("invalid instruction word 0x%08x" % word)


# Convenience constructors used by the compiler backend. Keeping these as
# functions (rather than 40 classes) matches the paper's Haskell-derived
# spec, where instructions are one algebraic datatype.

def r_type(name, rd, rs1, rs2):
    return Instr(name, rd=rd, rs1=rs1, rs2=rs2)


def i_type(name, rd, rs1, imm):
    _check_imm12(name, imm)
    return Instr(name, rd=rd, rs1=rs1, imm=imm)


def shift_imm(name, rd, rs1, shamt):
    if not (0 <= shamt < 32):
        raise ValueError("shift amount out of range: %r" % (shamt,))
    return Instr(name, rd=rd, rs1=rs1, imm=shamt)


def load(name, rd, rs1, imm):
    _check_imm12(name, imm)
    return Instr(name, rd=rd, rs1=rs1, imm=imm)


def store(name, rs1, rs2, imm):
    _check_imm12(name, imm)
    return Instr(name, rs1=rs1, rs2=rs2, imm=imm)


def branch(name, rs1, rs2, imm):
    if not (-4096 <= imm < 4096) or imm % 2 != 0:
        raise ValueError("bad branch offset %r" % (imm,))
    return Instr(name, rs1=rs1, rs2=rs2, imm=imm)


def u_type(name, rd, imm):
    if not (0 <= imm < (1 << 20)):
        raise ValueError("bad U-type immediate %r" % (imm,))
    return Instr(name, rd=rd, imm=imm)


def jal(rd, imm):
    if not (-(1 << 20) <= imm < (1 << 20)) or imm % 2 != 0:
        raise ValueError("bad JAL offset %r" % (imm,))
    return Instr("jal", rd=rd, imm=imm)


def jalr(rd, rs1, imm):
    _check_imm12("jalr", imm)
    return Instr("jalr", rd=rd, rs1=rs1, imm=imm)


def _check_imm12(name, imm):
    if not (-2048 <= imm < 2048):
        raise ValueError("immediate %r out of 12-bit range for %s" % (imm, name))
