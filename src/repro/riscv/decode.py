"""RISC-V instruction decoding.

The inverse of `repro.riscv.encode`; used by the ISA-level machines and --
critically for the paper's section 5.8 consistency story -- shared as the
reference against which the Kami processors' combinational decode logic is
checked (`repro.kami.decexec`). Round-tripping is property-tested in
`tests/test_riscv_encode.py`.
"""

from __future__ import annotations

from typing import Dict

from .insts import Instr, InvalidInstruction

_R_BY_FUNCT = {
    (0b000, 0b0000000): "add", (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll", (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu", (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl", (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or", (0b111, 0b0000000): "and",
    (0b000, 0b0000001): "mul", (0b001, 0b0000001): "mulh",
    (0b010, 0b0000001): "mulhsu", (0b011, 0b0000001): "mulhu",
    (0b100, 0b0000001): "div", (0b101, 0b0000001): "divu",
    (0b110, 0b0000001): "rem", (0b111, 0b0000001): "remu",
}

_I_ARITH_BY_FUNCT = {0b000: "addi", 0b010: "slti", 0b011: "sltiu",
                     0b100: "xori", 0b110: "ori", 0b111: "andi"}
_LOAD_BY_FUNCT = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu",
                  0b101: "lhu"}
_STORE_BY_FUNCT = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_BRANCH_BY_FUNCT = {0b000: "beq", 0b001: "bne", 0b100: "blt", 0b101: "bge",
                    0b110: "bltu", 0b111: "bgeu"}


def _sext(value: int, bits: int) -> int:
    if value >> (bits - 1):
        return value - (1 << bits)
    return value


def decode(word: int) -> Instr:
    """Decode a 32-bit word; raises `InvalidInstruction` on junk."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == 0b0110011:  # R-type
        name = _R_BY_FUNCT.get((funct3, funct7))
        if name is None:
            raise InvalidInstruction(word)
        return Instr(name, rd=rd, rs1=rs1, rs2=rs2)

    if opcode == 0b0010011:  # I-type arithmetic / shifts
        if funct3 == 0b001:
            if funct7 != 0:
                raise InvalidInstruction(word)
            return Instr("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return Instr("srli", rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0b0100000:
                return Instr("srai", rd=rd, rs1=rs1, imm=rs2)
            raise InvalidInstruction(word)
        name = _I_ARITH_BY_FUNCT.get(funct3)
        if name is None:
            raise InvalidInstruction(word)
        return Instr(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    if opcode == 0b0000011:  # loads
        name = _LOAD_BY_FUNCT.get(funct3)
        if name is None:
            raise InvalidInstruction(word)
        return Instr(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    if opcode == 0b0100011:  # stores
        name = _STORE_BY_FUNCT.get(funct3)
        if name is None:
            raise InvalidInstruction(word)
        imm = (funct7 << 5) | rd
        return Instr(name, rs1=rs1, rs2=rs2, imm=_sext(imm, 12))

    if opcode == 0b1100011:  # branches
        name = _BRANCH_BY_FUNCT.get(funct3)
        if name is None:
            raise InvalidInstruction(word)
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        return Instr(name, rs1=rs1, rs2=rs2, imm=_sext(imm, 13))

    if opcode == 0b0110111:
        return Instr("lui", rd=rd, imm=word >> 12)

    if opcode == 0b0010111:
        return Instr("auipc", rd=rd, imm=word >> 12)

    if opcode == 0b1101111:  # jal
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return Instr("jal", rd=rd, imm=_sext(imm, 21))

    if opcode == 0b1100111:  # jalr
        if funct3 != 0:
            raise InvalidInstruction(word)
        return Instr("jalr", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    raise InvalidInstruction(word)


#: `decode` memo, keyed by the raw word. `Instr` is a frozen value type
#: and `decode` is pure, so entries are shared freely across machines;
#: being content-addressed, the memo never needs invalidation. Invalid
#: words are not negatively cached (they end a run anyway).
_DECODE_CACHE: Dict[int, Instr] = {}
_DECODE_CACHE_MAX = 1 << 16


def decode_cached(word: int) -> Instr:
    """`decode` through the process-wide raw-word memo."""
    instr = _DECODE_CACHE.get(word)
    if instr is None:
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        instr = decode(word)
        _DECODE_CACHE[word] = instr
    return instr
