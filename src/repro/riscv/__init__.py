"""The RISC-V instruction set: encoding, decoding, formal-style semantics,
and executable machines (paper sections 5.4, 5.6, 6.2)."""

from . import decode, encode, insts, machine, semantics

__all__ = ["insts", "encode", "decode", "semantics", "machine"]
