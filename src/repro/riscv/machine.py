"""RISC-V machine states instantiating the abstract ISA primitives.

`RiscvMachine` is the software-oriented machine the compiler is verified
against (paper sections 5.4, 5.6, 6.2):

* flat partial byte memory ("owned" by the program);
* loads/stores outside the owned memory are *nonmemory* accesses: with an
  attached MMIO bus they become I/O-trace events (``("ld"/"st", addr,
  value)`` triples); without a bus they are undefined behavior;
* an XAddrs set of executable addresses implements the stale-instruction
  discipline: fetching outside XAddrs is undefined behavior, and every
  store removes the touched addresses from the set. (Internally the
  *complement* -- addresses made non-executable by stores -- is tracked,
  which is finite and cheap; at boot XAddrs covers all owned memory,
  exactly as in the paper.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import obs
from ..bedrock2 import word
from .decode import decode_cached
from .insts import Instr, InvalidInstruction
from .semantics import Primitives, execute

# Observability (see docs/observability.md): instructions are flushed as a
# batch per `run` call; MMIO events are counted at trace-append time (they
# are orders of magnitude rarer than instructions). Per-opcode counts are
# only collected on the instrumented path (`obs.ENABLED`).
_INSTRUCTIONS = obs.counter("riscv.instructions")
_MMIO_LOADS = obs.counter("riscv.mmio_loads")
_MMIO_STORES = obs.counter("riscv.mmio_stores")
_SP_MIN = obs.gauge("riscv.sp_min")


class RiscvUB(Exception):
    """Undefined behavior at the ISA level: the software-oriented step
    relation has no successor state (the paper's ``∀ S, ¬ swstep s S``)."""


class MachineMemory:
    """Owned memory: a contiguous RAM block plus sparse extra bytes.

    Subscript access (``mem[addr]``) is byte-granular, mirroring the
    map-of-bytes model in the paper's semantics, while staying O(1) in
    space for the common "RAM at 0" layout."""

    __slots__ = ("ram", "ram_base", "extra", "epoch")

    def __init__(self, ram_size: int = 0, ram_base: int = 0,
                 sparse: Optional[Dict[int, int]] = None):
        self.ram = bytearray(ram_size)
        self.ram_base = ram_base
        self.extra: Dict[int, int] = dict(sparse) if sparse else {}
        # Bumped on every subscript/`add_byte` write so the fast-path
        # engine (repro.riscv.fastpath) can detect memory modified behind
        # its back (test pokes, DMA returns) and drop its fused blocks.
        self.epoch = 0

    def __contains__(self, addr: int) -> bool:
        return (self.ram_base <= addr < self.ram_base + len(self.ram)
                or addr in self.extra)

    def __getitem__(self, addr: int) -> int:
        if self.ram_base <= addr < self.ram_base + len(self.ram):
            return self.ram[addr - self.ram_base]
        return self.extra[addr]

    def __setitem__(self, addr: int, value: int) -> None:
        if self.ram_base <= addr < self.ram_base + len(self.ram):
            self.ram[addr - self.ram_base] = value & 0xFF
        elif addr in self.extra:
            self.extra[addr] = value & 0xFF
        else:
            raise KeyError(addr)
        self.epoch += 1

    def add_byte(self, addr: int, value: int) -> None:
        """Extend the owned footprint by one byte (test setup helper)."""
        if addr in self:
            self[addr] = value
        else:
            self.extra[addr] = value & 0xFF
            self.epoch += 1


class RiscvMachine(Primitives):
    """Executable RISC-V machine with optional MMIO and XAddrs tracking."""

    def __init__(self, memory: Optional[Dict[int, int]] = None, pc: int = 0,
                 mmio_bus=None, track_xaddrs: bool = True,
                 mmio_ranges: Optional[List[Tuple[int, int]]] = None,
                 fast: bool = False):
        self.regs = [0] * 32
        self.pc = pc
        self.mem = MachineMemory(sparse=memory)
        self.mmio_bus = mmio_bus
        self.mmio_ranges = mmio_ranges
        self.trace: List[Tuple[str, int, int]] = []
        self.track_xaddrs = track_xaddrs
        # XAddrs = owned memory minus this set (paper section 5.6).
        self.nonexec: Set[int] = set()
        # Regions currently on loan to a DMA master (paper section 6.2):
        # list of (base, length). CPU access inside a loan is UB.
        self.loans: List[Tuple[int, int]] = []
        self.instret = 0
        # Stack high-water watermark: the lowest value ever written to
        # x2/sp. Starts at the all-ones word (sp unset); the static WCET
        # analyzer's stack bound is checked against `stack_top - sp_min`.
        self.sp_min = word.MASK
        # Fast-path execution (repro.riscv.fastpath): decode cache +
        # fused basic blocks, required to be bit-identical to `step`.
        # The engine is created lazily so `with_program` can swap the
        # memory in first.
        self.fast = fast
        self._fast_engine = None

    @classmethod
    def with_program(cls, image: bytes, base: int = 0, pc: int = 0,
                     mem_size: int = 1 << 20, **kwargs) -> "RiscvMachine":
        """A machine whose memory is ``mem_size`` zero bytes with ``image``
        placed at ``base`` -- the end-to-end theorem's initial state."""
        machine = cls(pc=pc, **kwargs)
        machine.mem = MachineMemory(ram_size=mem_size, ram_base=0)
        machine.mem.ram[base:base + len(image)] = image
        return machine

    # -- primitives -----------------------------------------------------------

    def get_register(self, reg: int) -> int:
        if reg == 0:
            return 0
        return self.regs[reg]

    def set_register(self, reg: int, value: int) -> None:
        if reg != 0:
            value &= word.MASK
            self.regs[reg] = value
            if reg == 2 and value < self.sp_min:
                self.sp_min = value

    def get_pc(self) -> int:
        return self.pc

    def set_pc(self, value: int) -> None:
        self.pc = value & word.MASK

    def _owned(self, addr: int, nbytes: int) -> bool:
        for i in range(nbytes):
            a = word.add(addr, i)
            if a not in self.mem:
                return False
            for base, length in self.loans:
                if base <= a < base + length:
                    return False
        return True

    # -- DMA ownership transfer (paper section 6.2) -----------------------------

    def loan_out(self, base: int, length: int) -> None:
        """Transfer ownership of [base, base+length) to an external master.
        CPU accesses inside the region become undefined behavior until the
        region is returned."""
        self.loans.append((base, length))
        if self._fast_engine is not None:
            # Fused blocks cache successful fetches; a loan may cover
            # code, making those fetches UB, so re-arm the checks.
            self._fast_engine.flush()

    def loan_return(self, base: int, data: Optional[bytes] = None) -> None:
        """Return a loaned region, optionally with new contents written by
        the device."""
        for i, (b, length) in enumerate(self.loans):
            if b == base:
                del self.loans[i]
                if data is not None:
                    for j, byte in enumerate(data[:length]):
                        self.mem[base + j] = byte
                        if self.track_xaddrs:
                            self.nonexec.add(base + j)
                if self._fast_engine is not None:
                    self._fast_engine.flush()
                return
        raise ValueError("no outstanding loan at 0x%x" % base)

    def _is_mmio(self, addr: int) -> bool:
        if self.mmio_bus is not None:
            return self.mmio_bus.is_mmio(addr)
        if self.mmio_ranges is not None:
            return any(lo <= addr < hi for lo, hi in self.mmio_ranges)
        return False

    def load(self, nbytes: int, addr: int, kind: str = "execute") -> int:
        if kind == "fetch":
            if not self._owned(addr, nbytes):
                raise RiscvUB("fetch from unowned address 0x%x" % addr)
            if self.track_xaddrs:
                for i in range(nbytes):
                    if word.add(addr, i) in self.nonexec:
                        raise RiscvUB(
                            "fetch from non-executable address 0x%x "
                            "(stale-instruction discipline)" % addr)
            return self._load_owned(addr, nbytes)
        if self._owned(addr, nbytes):
            return self._load_owned(addr, nbytes)
        # Nonmemory load (section 6.2): MMIO if in range, else UB.
        if self._is_mmio(addr) and nbytes == 4:
            if self.mmio_bus is not None:
                value = self.mmio_bus.read(addr) & word.MASK
            else:
                value = 0
            self.trace.append(("ld", addr, value))
            _MMIO_LOADS.inc()
            return value
        raise RiscvUB("load from unowned non-MMIO address 0x%x" % addr)

    def _load_owned(self, addr: int, nbytes: int) -> int:
        value = 0
        for i in range(nbytes):
            value |= self.mem[word.add(addr, i)] << (8 * i)
        return value

    def store(self, nbytes: int, addr: int, value: int) -> None:
        if self._owned(addr, nbytes):
            for i in range(nbytes):
                a = word.add(addr, i)
                self.mem[a] = (value >> (8 * i)) & 0xFF
                if self.track_xaddrs:
                    self.nonexec.add(a)
            return
        if self._is_mmio(addr) and nbytes == 4:
            if self.mmio_bus is not None:
                self.mmio_bus.write(addr, value)
            self.trace.append(("st", addr, value))
            _MMIO_STORES.inc()
            return
        raise RiscvUB("store to unowned non-MMIO address 0x%x" % addr)

    def raise_exception(self, message: str) -> None:
        raise RiscvUB(message)

    # -- execution ------------------------------------------------------------

    def step(self) -> Instr:
        """Fetch-decode-execute one instruction; returns the decoded
        instruction (used by the instrumented run loop)."""
        raw = self.load(4, self.pc, kind="fetch")
        try:
            instr = decode_cached(raw)
        except InvalidInstruction as exc:
            raise RiscvUB("invalid instruction at pc=0x%x: %s"
                          % (self.pc, exc)) from exc
        execute(instr, self)
        self.instret += 1
        return instr

    def _engine(self):
        """The lazily created fast-path engine (`repro.riscv.fastpath`).

        Rebuilt when the memory object was swapped out after construction
        (`with_program` does this), since the engine's executor closures
        bind the RAM buffer directly."""
        engine = self._fast_engine
        if engine is None or engine.mem is not self.mem:
            from .fastpath import FastEngine  # deferred: cyclic import

            engine = self._fast_engine = FastEngine(self)
        return engine

    def run(self, max_steps: int, until_pc: Optional[int] = None,
            stop: Optional[Callable[["RiscvMachine"], bool]] = None) -> int:
        """Step up to ``max_steps`` times; returns the number of steps taken.

        Stops early when the PC reaches ``until_pc`` or ``stop(self)`` holds
        (checked before each step). With ``fast`` set, execution goes
        through the fast-path engine -- fused basic blocks when no ``stop``
        predicate is given (the predicate must see every intermediate
        state, so it forces single-stepping) -- with identical observable
        behavior."""
        if obs.ENABLED:
            return self._run_instrumented(max_steps, until_pc, stop)
        start = self.instret
        try:
            if self.fast:
                engine = self._engine()
                if stop is None:
                    return engine.run(max_steps, until_pc)
                return engine.run_steps(max_steps, until_pc, stop)
            for i in range(max_steps):
                if until_pc is not None and self.pc == until_pc:
                    return i
                if stop is not None and stop(self):
                    return i
                self.step()
            return max_steps
        finally:
            _INSTRUCTIONS.inc(self.instret - start)
            _SP_MIN.set(self.sp_min)

    def _run_instrumented(self, max_steps: int,
                          until_pc: Optional[int] = None,
                          stop: Optional[Callable[["RiscvMachine"], bool]]
                          = None) -> int:
        """`run` with a span and per-opcode execution counts (obs enabled).

        On a ``fast`` machine the per-opcode counts live on the decode
        cache entries -- one integer add per step instead of a dict
        get/put -- and are flushed to the ``riscv.op.*`` counters at run
        boundaries, so instrumented runs stay near fast-path speed."""
        start = self.instret
        taken = max_steps
        with obs.span("riscv.run", cat="riscv",
                      args={"max_steps": max_steps}) as sp:
            if self.fast:
                engine = self._engine()
                try:
                    taken = engine.run_steps(max_steps, until_pc, stop,
                                             counted=True)
                finally:
                    retired = self.instret - start
                    _INSTRUCTIONS.inc(retired)
                    _SP_MIN.set(self.sp_min)
                    sp.set("instructions", retired)
                    engine.flush_opcounts()
                return taken
            opcounts: Dict[str, int] = {}
            try:
                for i in range(max_steps):
                    if until_pc is not None and self.pc == until_pc:
                        taken = i
                        break
                    if stop is not None and stop(self):
                        taken = i
                        break
                    instr = self.step()
                    name = instr.name
                    opcounts[name] = opcounts.get(name, 0) + 1
            finally:
                retired = self.instret - start
                _INSTRUCTIONS.inc(retired)
                _SP_MIN.set(self.sp_min)
                sp.set("instructions", retired)
                for name, n in opcounts.items():
                    obs.counter("riscv.op." + name).inc(n)
        return taken
