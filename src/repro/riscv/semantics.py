"""ISA semantics in the riscv-coq style (paper section 5.4).

Following the paper's Haskell-derived specification, each instruction's
meaning is given *only* in terms of a small set of abstract primitives
(``get_register``, ``load_word``, ...) with no commitment to a state type.
Different machines (`repro.riscv.machine`) instantiate the primitives:
a deterministic executable machine, the compiler-facing machine with MMIO
and executable-address (XAddrs) tracking, and the lock-step oracle used by
the processor-ISA consistency tests.
"""

from __future__ import annotations

from ..bedrock2 import word
from .insts import Instr

#: Access width in bytes per load/store mnemonic. Shared with the
#: fast-path executor (`repro.riscv.fastpath`), which must agree with
#: these semantics byte-for-byte.
LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4}


class Primitives:
    """The abstract machine interface instructions are defined against.

    ``kind`` on memory operations is "fetch" or "execute", letting
    instantiations implement the XAddrs discipline of section 5.6.
    """

    def get_register(self, reg: int) -> int:
        raise NotImplementedError

    def set_register(self, reg: int, value: int) -> None:
        raise NotImplementedError

    def get_pc(self) -> int:
        raise NotImplementedError

    def set_pc(self, value: int) -> None:
        raise NotImplementedError

    def load(self, nbytes: int, addr: int, kind: str = "execute") -> int:
        raise NotImplementedError

    def store(self, nbytes: int, addr: int, value: int) -> None:
        raise NotImplementedError

    def raise_exception(self, message: str) -> None:
        raise NotImplementedError


def execute(instr: Instr, m: Primitives) -> None:
    """Execute one decoded instruction against the primitives.

    The PC is advanced here (or set by the jump/branch cases); callers fetch
    and decode, then call this once per instruction.
    """
    name = instr.name
    pc = m.get_pc()
    next_pc = word.add(pc, 4)

    def rs1() -> int:
        return m.get_register(instr.rs1)

    def rs2() -> int:
        return m.get_register(instr.rs2)

    imm = instr.imm

    if name == "add":
        m.set_register(instr.rd, word.add(rs1(), rs2()))
    elif name == "sub":
        m.set_register(instr.rd, word.sub(rs1(), rs2()))
    elif name == "sll":
        m.set_register(instr.rd, word.sll(rs1(), rs2() & 31))
    elif name == "slt":
        m.set_register(instr.rd, word.lts(rs1(), rs2()))
    elif name == "sltu":
        m.set_register(instr.rd, word.ltu(rs1(), rs2()))
    elif name == "xor":
        m.set_register(instr.rd, word.xor(rs1(), rs2()))
    elif name == "srl":
        m.set_register(instr.rd, word.srl(rs1(), rs2() & 31))
    elif name == "sra":
        m.set_register(instr.rd, word.sra(rs1(), rs2() & 31))
    elif name == "or":
        m.set_register(instr.rd, word.or_(rs1(), rs2()))
    elif name == "and":
        m.set_register(instr.rd, word.and_(rs1(), rs2()))
    elif name == "mul":
        m.set_register(instr.rd, word.mul(rs1(), rs2()))
    elif name == "mulh":
        product = word.signed(rs1()) * word.signed(rs2())
        m.set_register(instr.rd, word.wrap(product >> 32))
    elif name == "mulhsu":
        product = word.signed(rs1()) * rs2()
        m.set_register(instr.rd, word.wrap(product >> 32))
    elif name == "mulhu":
        m.set_register(instr.rd, word.mulhuu(rs1(), rs2()))
    elif name == "div":
        m.set_register(instr.rd, word.divs(rs1(), rs2()))
    elif name == "divu":
        m.set_register(instr.rd, word.divu(rs1(), rs2()))
    elif name == "rem":
        m.set_register(instr.rd, word.rems(rs1(), rs2()))
    elif name == "remu":
        m.set_register(instr.rd, word.remu(rs1(), rs2()))
    elif name == "addi":
        m.set_register(instr.rd, word.add(rs1(), word.wrap(imm)))
    elif name == "slti":
        m.set_register(instr.rd, word.lts(rs1(), word.wrap(imm)))
    elif name == "sltiu":
        m.set_register(instr.rd, word.ltu(rs1(), word.wrap(imm)))
    elif name == "xori":
        m.set_register(instr.rd, word.xor(rs1(), word.wrap(imm)))
    elif name == "ori":
        m.set_register(instr.rd, word.or_(rs1(), word.wrap(imm)))
    elif name == "andi":
        m.set_register(instr.rd, word.and_(rs1(), word.wrap(imm)))
    elif name == "slli":
        m.set_register(instr.rd, word.sll(rs1(), imm))
    elif name == "srli":
        m.set_register(instr.rd, word.srl(rs1(), imm))
    elif name == "srai":
        m.set_register(instr.rd, word.sra(rs1(), imm))
    elif name in ("lb", "lh", "lw", "lbu", "lhu"):
        addr = word.add(rs1(), word.wrap(imm))
        size = LOAD_SIZES[name]
        if addr % size != 0:
            m.raise_exception("misaligned load at 0x%x" % addr)
            return
        raw = m.load(size, addr, kind="execute")
        if name == "lb":
            raw = word.wrap(word.signed(raw, 8))
        elif name == "lh":
            raw = word.wrap(word.signed(raw, 16))
        m.set_register(instr.rd, raw)
    elif name in ("sb", "sh", "sw"):
        addr = word.add(rs1(), word.wrap(imm))
        size = STORE_SIZES[name]
        if addr % size != 0:
            m.raise_exception("misaligned store at 0x%x" % addr)
            return
        m.store(size, addr, rs2() & ((1 << (8 * size)) - 1))
    elif name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        lhs, rhs = rs1(), rs2()
        taken = {
            "beq": lhs == rhs,
            "bne": lhs != rhs,
            "blt": word.signed(lhs) < word.signed(rhs),
            "bge": word.signed(lhs) >= word.signed(rhs),
            "bltu": lhs < rhs,
            "bgeu": lhs >= rhs,
        }[name]
        if taken:
            next_pc = word.add(pc, word.wrap(imm))
    elif name == "lui":
        m.set_register(instr.rd, word.wrap(imm << 12))
    elif name == "auipc":
        m.set_register(instr.rd, word.add(pc, word.wrap(imm << 12)))
    elif name == "jal":
        m.set_register(instr.rd, next_pc)
        next_pc = word.add(pc, word.wrap(imm))
    elif name == "jalr":
        target = word.and_(word.add(rs1(), word.wrap(imm)), 0xFFFFFFFE)
        m.set_register(instr.rd, next_pc)
        next_pc = target
    else:
        m.raise_exception("unimplemented instruction %r" % name)
        return
    if next_pc % 4 != 0:
        m.raise_exception("misaligned jump target 0x%x" % next_pc)
        return
    m.set_pc(next_pc)
