"""RISC-V instruction encoding (the paper's ``instrencode``).

Encodes `Instr` values to 32-bit little-endian machine words following the
RISC-V unprivileged specification formats (R/I/S/B/U/J). The end-to-end
theorem's precondition -- "memory contains ``instrencode lightbulb_insts``
at address 0" -- is produced by `encode_program`.
"""

from __future__ import annotations

from typing import List, Sequence

from .insts import Instr

_OPCODE = {
    "R": 0b0110011,
    "I_ARITH": 0b0010011,
    "I_LOAD": 0b0000011,
    "S": 0b0100011,
    "B": 0b1100011,
    "LUI": 0b0110111,
    "AUIPC": 0b0010111,
    "JAL": 0b1101111,
    "JALR": 0b1100111,
}

# (funct3, funct7) per R-type mnemonic.
_R_FUNCT = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}

_I_ARITH_FUNCT = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011,
    "xori": 0b100, "ori": 0b110, "andi": 0b111,
}

_I_SHIFT_FUNCT = {"slli": (0b001, 0b0000000), "srli": (0b101, 0b0000000),
                  "srai": (0b101, 0b0100000)}

_LOAD_FUNCT = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100, "lhu": 0b101}
_STORE_FUNCT = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
_BRANCH_FUNCT = {"beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101,
                 "bltu": 0b110, "bgeu": 0b111}


def encode(instr: Instr) -> int:
    """Encode one instruction to its 32-bit word."""
    name = instr.name
    if name in _R_FUNCT:
        funct3, funct7 = _R_FUNCT[name]
        return (funct7 << 25) | (instr.rs2 << 20) | (instr.rs1 << 15) \
            | (funct3 << 12) | (instr.rd << 7) | _OPCODE["R"]
    if name in _I_ARITH_FUNCT:
        imm = instr.imm & 0xFFF
        return (imm << 20) | (instr.rs1 << 15) | (_I_ARITH_FUNCT[name] << 12) \
            | (instr.rd << 7) | _OPCODE["I_ARITH"]
    if name in _I_SHIFT_FUNCT:
        funct3, funct7 = _I_SHIFT_FUNCT[name]
        return (funct7 << 25) | ((instr.imm & 0x1F) << 20) | (instr.rs1 << 15) \
            | (funct3 << 12) | (instr.rd << 7) | _OPCODE["I_ARITH"]
    if name in _LOAD_FUNCT:
        imm = instr.imm & 0xFFF
        return (imm << 20) | (instr.rs1 << 15) | (_LOAD_FUNCT[name] << 12) \
            | (instr.rd << 7) | _OPCODE["I_LOAD"]
    if name in _STORE_FUNCT:
        imm = instr.imm & 0xFFF
        return ((imm >> 5) << 25) | (instr.rs2 << 20) | (instr.rs1 << 15) \
            | (_STORE_FUNCT[name] << 12) | ((imm & 0x1F) << 7) | _OPCODE["S"]
    if name in _BRANCH_FUNCT:
        imm = instr.imm & 0x1FFF
        return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
            | (instr.rs2 << 20) | (instr.rs1 << 15) \
            | (_BRANCH_FUNCT[name] << 12) | (((imm >> 1) & 0xF) << 8) \
            | (((imm >> 11) & 1) << 7) | _OPCODE["B"]
    if name == "lui":
        return (instr.imm << 12) | (instr.rd << 7) | _OPCODE["LUI"]
    if name == "auipc":
        return (instr.imm << 12) | (instr.rd << 7) | _OPCODE["AUIPC"]
    if name == "jal":
        imm = instr.imm & 0x1FFFFF
        return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
            | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
            | (instr.rd << 7) | _OPCODE["JAL"]
    if name == "jalr":
        imm = instr.imm & 0xFFF
        return (imm << 20) | (instr.rs1 << 15) | (0b000 << 12) \
            | (instr.rd << 7) | _OPCODE["JALR"]
    raise ValueError("cannot encode %r" % (instr,))


def encode_program(instrs: Sequence[Instr]) -> bytes:
    """``instrencode``: the little-endian byte image of an instruction list."""
    out = bytearray()
    for instr in instrs:
        word = encode(instr)
        out += word.to_bytes(4, "little")
    return bytes(out)


def words_of(instrs: Sequence[Instr]) -> List[int]:
    return [encode(i) for i in instrs]
