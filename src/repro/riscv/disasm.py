"""RISC-V disassembler: objdump-style listings of compiled images.

Used by the CLI (`python -m repro disasm`) and handy when debugging the
compiler; round-trips through `repro.riscv.decode`, so it is also a
secondary consumer of the shared instruction model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .decode import decode
from .insts import (
    B_TYPE, I_ARITH, I_LOAD, I_SHIFT, Instr, InvalidInstruction, R_TYPE,
    S_TYPE, U_TYPE,
)

# ABI register names.
ABI_NAMES = (
    "zero ra sp gp tp t0 t1 t2 s0 s1 a0 a1 a2 a3 a4 a5 a6 a7 "
    "s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 t3 t4 t5 t6"
).split()


def reg(n: Optional[int]) -> str:
    return ABI_NAMES[n] if n is not None else "?"


def format_instr(instr: Instr, pc: Optional[int] = None) -> str:
    """One instruction in conventional assembly syntax."""
    name = instr.name
    if name in R_TYPE:
        return "%-6s %s, %s, %s" % (name, reg(instr.rd), reg(instr.rs1),
                                    reg(instr.rs2))
    if name in I_ARITH or name in I_SHIFT:
        return "%-6s %s, %s, %d" % (name, reg(instr.rd), reg(instr.rs1),
                                    instr.imm)
    if name in I_LOAD:
        return "%-6s %s, %d(%s)" % (name, reg(instr.rd), instr.imm,
                                    reg(instr.rs1))
    if name in S_TYPE:
        return "%-6s %s, %d(%s)" % (name, reg(instr.rs2), instr.imm,
                                    reg(instr.rs1))
    if name in B_TYPE:
        target = ("0x%x" % ((pc + instr.imm) & 0xFFFFFFFF)
                  if pc is not None else str(instr.imm))
        return "%-6s %s, %s, %s" % (name, reg(instr.rs1), reg(instr.rs2),
                                    target)
    if name in U_TYPE:
        return "%-6s %s, 0x%x" % (name, reg(instr.rd), instr.imm)
    if name == "jal":
        target = ("0x%x" % ((pc + instr.imm) & 0xFFFFFFFF)
                  if pc is not None else str(instr.imm))
        if instr.rd == 0:
            return "j      %s" % target
        return "%-6s %s, %s" % (name, reg(instr.rd), target)
    if name == "jalr":
        if instr.rd == 0 and instr.imm == 0:
            return "jr     %s" % reg(instr.rs1)
        return "%-6s %s, %d(%s)" % (name, reg(instr.rd), instr.imm,
                                    reg(instr.rs1))
    return str(instr)


def disassemble(image: bytes, base: int = 0,
                symbols: Optional[Dict[str, int]] = None) -> List[str]:
    """An objdump-style listing: address, raw word, mnemonic, symbols."""
    by_addr: Dict[int, List[str]] = {}
    for name, addr in (symbols or {}).items():
        by_addr.setdefault(addr, []).append(name)
    lines: List[str] = []
    for offset in range(0, len(image) - len(image) % 4, 4):
        addr = base + offset
        for name in sorted(by_addr.get(addr, [])):
            lines.append("%s:" % name)
        word = int.from_bytes(image[offset:offset + 4], "little")
        try:
            text = format_instr(decode(word), pc=addr)
        except InvalidInstruction:
            text = ".word  0x%08x" % word
        lines.append("  %8x:\t%08x\t%s" % (addr, word, text))
    return lines
