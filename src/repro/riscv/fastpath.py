"""Fast-path execution engine for the ISA-level RISC-V machine.

The reference interpreter in `repro.riscv.machine` pays, on every single
step, for a byte-at-a-time owned-memory fetch, a fresh `decode`, and the
long dispatch chain in `repro.riscv.semantics.execute`. Every end-to-end
theorem check, fuzz layer, and adversarial sweep bottoms out in that
loop, so this module provides a second engine that is required to be
**bit-identical** to the reference -- same registers, memory, PC,
``instret``, MMIO trace, XAddrs set, and exceptions -- while skipping
the per-step interpretation overhead:

* a **decoded-instruction cache** keyed by the raw 32-bit instruction
  word. Each entry holds a *specialized executor closure* with the
  operands, immediates, and masks pre-bound, so executing a cached
  instruction is one zero-argument call. The cache is content-addressed
  (the key is the instruction bytes themselves), so it never needs
  invalidation;
* **basic-block discovery and fusion**: straight-line runs of
  instructions are fetched once -- through the reference
  ``load(kind="fetch")`` path, so owned-memory and stale-instruction
  (XAddrs) undefined behavior is detected exactly as the reference
  would -- and replayed as a list of closures with no per-step fetch.
  Stores into cached code invalidate the covering blocks (see below),
  re-arming the reference fetch checks;
* **flat RAM access**: executor closures read and write the contiguous
  `MachineMemory.ram` bytearray directly (the dict-of-bytes view stays
  the reference model); sparse bytes, MMIO, and loan-checked accesses
  fall back to the reference `machine.load`/`machine.store`, so traces
  and UB are identical by construction.

Invalidation uses 64-byte *code pages*: every built block registers the
pages its instruction bytes span, and every store probes the page map
(one dict lookup on the hot path). A hit removes all blocks on the
touched pages and bumps the engine generation counter, which the block
execution loop re-checks after every instruction -- so even a store into
the *currently executing* block aborts fused execution and falls back to
a reference fetch, which then raises the stale-instruction UB exactly
like the interpreter. `loan_out`/`loan_return` (DMA ownership transfer)
and `MachineMemory` writes from outside the engine bump epochs that
flush all blocks on the next run.

Known limitation: writing the `MachineMemory.ram` bytearray directly
(not through ``machine.mem[addr] = v`` or the machine's store path)
bypasses invalidation; no code in the repository does that after a
machine has started executing.

The engine also serves the instrumented (observability) run loop: each
decode-cache entry carries a per-opcode execution count slot, so
per-opcode statistics cost one attribute increment per step instead of a
dict get/put (see `RiscvMachine._run_instrumented`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from .. import obs
from ..bedrock2 import word
from .decode import decode_cached
from .insts import InvalidInstruction, Instr
from .machine import RiscvUB
from .semantics import LOAD_SIZES, STORE_SIZES

MASK = 0xFFFFFFFF
_SIGN = 0x80000000

#: Longest fused basic block, in instructions.
MAX_BLOCK = 64

#: Stores probe the block map at this granularity (64-byte pages).
PAGE_SHIFT = 6

#: Mnemonics that set the PC non-sequentially and therefore end a block.
ENDS_BLOCK = frozenset(("beq", "bne", "blt", "bge", "bltu", "bgeu",
                        "jal", "jalr"))

# Cold-path metrics only: the hot loop increments nothing per step
# (dispatch counts are accumulated locally and flushed per `run` call).
_DCACHE_MISSES = obs.counter("riscv.fast.dcache_misses")
_BLOCKS_BUILT = obs.counter("riscv.fast.blocks_built")
_INVALIDATIONS = obs.counter("riscv.fast.invalidations")
_BLOCK_RUNS = obs.counter("riscv.fast.block_runs")
_BLOCK_LEN = obs.histogram("riscv.fast.block_len")

# R-type / I-type arithmetic, specialized where hot and delegated to
# `word` where cold; all results are exactly the reference's.
_ALU_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & MASK,
    "sub": lambda a, b: (a - b) & MASK,
    "sll": lambda a, b: (a << (b & 31)) & MASK,
    "slt": lambda a, b: 1 if (a ^ _SIGN) < (b ^ _SIGN) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (word.signed(a) >> (b & 31)) & MASK,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: (a * b) & MASK,
    "mulh": lambda a, b: ((word.signed(a) * word.signed(b)) >> 32) & MASK,
    "mulhsu": lambda a, b: ((word.signed(a) * b) >> 32) & MASK,
    "mulhu": word.mulhuu,
    "div": word.divs,
    "divu": word.divu,
    "rem": word.rems,
    "remu": word.remu,
}

#: I-type arithmetic reuses the R-type op on a pre-wrapped immediate
#: (`execute` does word.op(rs1, wrap(imm)) -- same composition).
_I_ALU = {"addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
          "ori": "or", "andi": "and",
          "slli": "sll", "srli": "srl", "srai": "sra"}


def machine_state_diff(ref, fast) -> Optional[str]:
    """First observable difference between two machines' final states,
    or None when they are bit-identical.

    This is the fast-vs-reference equivalence check used by the fuzz
    oracle's "fast" layer and the corpus-replay tier-1 test: *everything*
    the ISA machine exposes is compared -- registers, PC, retired
    instruction count, the full owned memory (flat RAM and sparse
    bytes), the MMIO trace, and the XAddrs complement set.
    """
    if fast.instret != ref.instret:
        return "instret %d vs %d" % (fast.instret, ref.instret)
    if fast.pc != ref.pc:
        return "pc %#x vs %#x" % (fast.pc, ref.pc)
    if fast.regs != ref.regs:
        i = next(i for i in range(32) if fast.regs[i] != ref.regs[i])
        return "x%d = %#x vs %#x" % (i, fast.regs[i], ref.regs[i])
    if fast.trace != ref.trace:
        return "MMIO trace %r vs %r" % (fast.trace[-4:], ref.trace[-4:])
    if fast.mem.ram != ref.mem.ram:
        i = next(i for i, (a, b) in enumerate(zip(fast.mem.ram,
                                                  ref.mem.ram)) if a != b)
        return ("ram[%#x] = %#x vs %#x"
                % (fast.mem.ram_base + i, fast.mem.ram[i], ref.mem.ram[i]))
    if fast.mem.extra != ref.mem.extra:
        return "sparse memory differs"
    if fast.nonexec != ref.nonexec:
        return ("nonexec sets differ (symmetric difference %r)"
                % sorted(fast.nonexec ^ ref.nonexec)[:8])
    return None


class DecodedEntry:
    """One decode-cache entry: the raw word's specialized executor."""

    __slots__ = ("raw", "name", "ex", "ends_block", "count")

    def __init__(self, raw: int, name: str, ex: Callable[[], None],
                 ends_block: bool):
        self.raw = raw
        self.name = name
        self.ex = ex
        self.ends_block = ends_block
        self.count = 0  # per-opcode execution count (instrumented runs)


class Block:
    """A fused basic block: executors for [start, start + 4*n)."""

    __slots__ = ("start", "code", "n", "pages")

    def __init__(self, start: int, code: List[Callable[[], None]],
                 pages: range):
        self.start = start
        self.code = code
        self.n = len(code)
        self.pages = pages


class FastEngine:
    """Per-machine fast executor; created lazily by `RiscvMachine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.mem = machine.mem
        self.dcache: Dict[int, DecodedEntry] = {}
        self.blocks: Dict[int, Block] = {}
        self.code_pages: Dict[int, Set[int]] = {}
        #: Bumped on every block invalidation; the block loop re-checks it
        #: after each instruction so self-modifying stores abort fusion.
        self.gen = 0
        self._mem_epoch = self.mem.epoch

    # -- decode cache ---------------------------------------------------------

    def entry_for(self, raw: int, pc: int) -> DecodedEntry:
        """The (cached) specialized executor for an instruction word."""
        entry = self.dcache.get(raw)
        if entry is None:
            _DCACHE_MISSES.inc()
            try:
                instr = decode_cached(raw)
            except InvalidInstruction as exc:
                raise RiscvUB("invalid instruction at pc=0x%x: %s"
                              % (pc, exc)) from exc
            fn = self._compile(instr)
            if instr.rd == 2:
                fn = self._watermark_sp(fn)
            entry = DecodedEntry(raw, instr.name, fn,
                                 instr.name in ENDS_BLOCK)
            self.dcache[raw] = entry
        return entry

    def _watermark_sp(self, inner: Callable[[], None]
                      ) -> Callable[[], None]:
        """Keep `RiscvMachine.sp_min` (the stack high-water watermark)
        exact on the fast path: closures write `regs` directly, so any
        executor targeting x2 is wrapped here."""
        m = self.machine
        regs = m.regs

        def ex() -> None:
            # try/finally: jal/jalr link before their target-alignment
            # check, so the write must be recorded even on a UB raise,
            # exactly as the reference `set_register` path does.
            try:
                inner()
            finally:
                if regs[2] < m.sp_min:
                    m.sp_min = regs[2]
        return ex

    def flush_opcounts(self) -> None:
        """Move per-entry execution counts into the `riscv.op.*` counters."""
        for entry in self.dcache.values():
            if entry.count:
                obs.counter("riscv.op." + entry.name).inc(entry.count)
                entry.count = 0

    # -- specialization -------------------------------------------------------

    def _compile(self, instr: Instr) -> Callable[[], None]:
        """Build the zero-argument executor closure for one instruction.

        Closures replicate `semantics.execute` on `RiscvMachine`
        primitives *exactly*, including effect order (e.g. jal/jalr link
        before the target-alignment check) and exception messages.
        """
        m = self.machine
        regs = m.regs
        mem = self.mem
        ram = mem.ram
        base = mem.ram_base
        eng = self
        name = instr.name
        rd = instr.rd
        rs1 = instr.rs1
        rs2 = instr.rs2
        imm = instr.imm
        imm_w = word.wrap(imm) if imm is not None else 0
        nonexec = m.nonexec

        def advance() -> None:
            """Shared straight-line epilogue for rd == x0 no-ops."""
            npc = (m.pc + 4) & MASK
            if npc & 3:
                raise RiscvUB("misaligned jump target 0x%x" % npc)
            m.pc = npc
            m.instret += 1

        if name in _ALU_OPS or name in _I_ALU:
            op = _ALU_OPS[_I_ALU.get(name, name)]
            if rd == 0:
                return advance  # pure ALU write to x0: PC/instret only
            if name == "addi":
                def ex() -> None:
                    regs[rd] = (regs[rs1] + imm_w) & MASK
                    npc = (m.pc + 4) & MASK
                    if npc & 3:
                        raise RiscvUB("misaligned jump target 0x%x" % npc)
                    m.pc = npc
                    m.instret += 1
                return ex
            if name == "add":
                def ex() -> None:
                    regs[rd] = (regs[rs1] + regs[rs2]) & MASK
                    npc = (m.pc + 4) & MASK
                    if npc & 3:
                        raise RiscvUB("misaligned jump target 0x%x" % npc)
                    m.pc = npc
                    m.instret += 1
                return ex
            if name in _I_ALU:
                # Shift-immediates store the shamt in `imm` unwrapped;
                # wrap() is the identity on 0..31 so imm_w covers both.
                def ex() -> None:
                    regs[rd] = op(regs[rs1], imm_w)
                    npc = (m.pc + 4) & MASK
                    if npc & 3:
                        raise RiscvUB("misaligned jump target 0x%x" % npc)
                    m.pc = npc
                    m.instret += 1
                return ex

            def ex() -> None:
                regs[rd] = op(regs[rs1], regs[rs2])
                npc = (m.pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name in LOAD_SIZES:
            size = LOAD_SIZES[name]
            hi = base + len(ram) - size
            sign_bit = {"lb": 0x80, "lh": 0x8000}.get(name, 0)
            sign_ext = {0x80: 0xFFFFFF00, 0x8000: 0xFFFF0000}.get(sign_bit, 0)
            align = size - 1

            def ex() -> None:
                a = (regs[rs1] + imm_w) & MASK
                if a & align:
                    raise RiscvUB("misaligned load at 0x%x" % a)
                if base <= a <= hi and not m.loans:
                    off = a - base
                    if size == 4:
                        v = (ram[off] | ram[off + 1] << 8
                             | ram[off + 2] << 16 | ram[off + 3] << 24)
                    elif size == 2:
                        v = ram[off] | ram[off + 1] << 8
                    else:
                        v = ram[off]
                else:
                    v = m.load(size, a)
                if sign_bit and v & sign_bit:
                    v |= sign_ext
                if rd:
                    regs[rd] = v
                npc = (m.pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name in STORE_SIZES:
            size = STORE_SIZES[name]
            hi = base + len(ram) - size
            smask = (1 << (8 * size)) - 1
            align = size - 1
            pages = self.code_pages

            def ex() -> None:
                a = (regs[rs1] + imm_w) & MASK
                if a & align:
                    raise RiscvUB("misaligned store at 0x%x" % a)
                v = regs[rs2] & smask
                if base <= a <= hi and not m.loans:
                    off = a - base
                    ram[off] = v & 0xFF
                    if size > 1:
                        ram[off + 1] = (v >> 8) & 0xFF
                        if size > 2:
                            ram[off + 2] = (v >> 16) & 0xFF
                            ram[off + 3] = (v >> 24) & 0xFF
                    if m.track_xaddrs:
                        nonexec.add(a)
                        if size > 1:
                            nonexec.add(a + 1)
                            if size > 2:
                                nonexec.add(a + 2)
                                nonexec.add(a + 3)
                else:
                    m.store(size, a, v)
                if (a >> PAGE_SHIFT in pages
                        or (a + size - 1) >> PAGE_SHIFT in pages):
                    eng.invalidate(a, size)
                npc = (m.pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name in ("beq", "bne", "bltu", "bgeu"):
            cond = {"beq": lambda a, b: a == b,
                    "bne": lambda a, b: a != b,
                    "bltu": lambda a, b: a < b,
                    "bgeu": lambda a, b: a >= b}[name]

            def ex() -> None:
                pc = m.pc
                if cond(regs[rs1], regs[rs2]):
                    npc = (pc + imm_w) & MASK
                else:
                    npc = (pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name in ("blt", "bge"):
            want_lt = name == "blt"

            def ex() -> None:
                pc = m.pc
                lt = (regs[rs1] ^ _SIGN) < (regs[rs2] ^ _SIGN)
                if lt == want_lt:
                    npc = (pc + imm_w) & MASK
                else:
                    npc = (pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name == "lui":
            value = (imm << 12) & MASK
            if rd == 0:
                return advance

            def ex() -> None:
                regs[rd] = value
                npc = (m.pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name == "auipc":
            offset = (imm << 12) & MASK
            if rd == 0:
                return advance

            def ex() -> None:
                pc = m.pc
                regs[rd] = (pc + offset) & MASK
                npc = (pc + 4) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name == "jal":
            def ex() -> None:
                pc = m.pc
                if rd:
                    regs[rd] = (pc + 4) & MASK
                npc = (pc + imm_w) & MASK
                if npc & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % npc)
                m.pc = npc
                m.instret += 1
            return ex

        if name == "jalr":
            def ex() -> None:
                pc = m.pc
                target = (regs[rs1] + imm_w) & 0xFFFFFFFE
                if rd:
                    regs[rd] = (pc + 4) & MASK
                if target & 3:
                    raise RiscvUB("misaligned jump target 0x%x" % target)
                m.pc = target
                m.instret += 1
            return ex

        # `decode` only produces the mnemonics handled above; anything
        # else is a decoder extension this engine does not know yet.
        raise RiscvUB("unimplemented instruction %r" % name)

    # -- basic blocks ---------------------------------------------------------

    def build_block(self, start: int) -> Block:
        """Fetch (with full reference UB checks) and fuse a straight-line
        block starting at ``start``.

        A fetch or decode failure *after* the first instruction truncates
        the block instead of raising: the reference only faults when
        execution actually reaches that PC, and the dispatch loop's next
        fetch at the fall-through PC reproduces the fault at the right
        time with the right message.
        """
        m = self.machine
        code: List[Callable[[], None]] = []
        pc = start
        while True:
            try:
                raw = m.load(4, pc, kind="fetch")
                entry = self.entry_for(raw, pc)
            except RiscvUB:
                if not code:
                    raise
                break
            code.append(entry.ex)
            if entry.ends_block or len(code) >= MAX_BLOCK:
                break
            pc = (pc + 4) & MASK
        pages = range(start >> PAGE_SHIFT,
                      ((start + 4 * len(code) - 1) >> PAGE_SHIFT) + 1)
        block = Block(start, code, pages)
        self.blocks[start] = block
        for p in pages:
            self.code_pages.setdefault(p, set()).add(start)
        _BLOCKS_BUILT.inc()
        _BLOCK_LEN.record(len(code))
        return block

    def invalidate(self, addr: int, nbytes: int) -> None:
        """Drop every cached block on the code pages touched by a store
        to [addr, addr+nbytes); bumps the generation counter so in-flight
        fused execution re-dispatches through a reference fetch."""
        lo = addr >> PAGE_SHIFT
        hi = (addr + nbytes - 1) >> PAGE_SHIFT
        hit = False
        for p in range(lo, hi + 1):
            starts = self.code_pages.get(p)
            if not starts:
                continue
            hit = True
            for s in tuple(starts):
                block = self.blocks.pop(s, None)
                if block is None:
                    continue
                for q in block.pages:
                    qs = self.code_pages.get(q)
                    if qs is not None:
                        qs.discard(s)
                        if not qs:
                            del self.code_pages[q]
        if hit:
            _INVALIDATIONS.inc()
            self.gen += 1

    def flush(self) -> None:
        """Invalidate every cached block (ownership or memory changed
        behind the engine's back: DMA loans, sparse writes, test pokes)."""
        self.blocks.clear()
        self.code_pages.clear()
        self.gen += 1

    # -- execution ------------------------------------------------------------

    def _sync(self) -> None:
        if self.mem.epoch != self._mem_epoch:
            self.flush()
            self._mem_epoch = self.mem.epoch

    def run(self, max_steps: int, until_pc: Optional[int] = None) -> int:
        """Fused block execution; the fast analogue of `RiscvMachine.run`
        without a stop predicate. Returns the number of steps taken."""
        self._sync()
        m = self.machine
        blocks = self.blocks
        taken = 0
        dispatches = 0
        try:
            while taken < max_steps:
                pc = m.pc
                if pc == until_pc:
                    break
                block = blocks.get(pc)
                if block is None:
                    block = self.build_block(pc)
                dispatches += 1
                code = block.code
                n = block.n
                budget = max_steps - taken
                if n > budget:
                    n = budget
                if until_pc is not None:
                    d = (until_pc - pc) & MASK
                    if not d & 3:
                        stop_at = d >> 2
                        if stop_at < n:
                            n = stop_at
                gen0 = self.gen
                i = 0
                while i < n:
                    code[i]()
                    i += 1
                    if self.gen != gen0:
                        break  # a store hit cached code: re-dispatch
                taken += i
        finally:
            if dispatches:
                _BLOCK_RUNS.inc(dispatches)
        return taken

    def run_steps(self, max_steps: int, until_pc: Optional[int] = None,
                  stop=None, counted: bool = False) -> int:
        """Single-step execution through the decode cache: every step does
        the full reference fetch (so arbitrary ``stop`` predicates and
        external memory writes are observed exactly as the reference
        would), but decode+dispatch cost one dict probe and one call.
        ``counted`` accumulates per-opcode counts on the cache entries."""
        m = self.machine
        dcache = self.dcache
        taken = 0
        while taken < max_steps:
            pc = m.pc
            if pc == until_pc:
                break
            if stop is not None and stop(m):
                break
            raw = m.load(4, pc, kind="fetch")
            entry = dcache.get(raw)
            if entry is None:
                entry = self.entry_for(raw, pc)
            entry.ex()
            if counted:
                entry.count += 1
            taken += 1
        return taken
