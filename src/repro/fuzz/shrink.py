"""Deterministic delta-debugging shrinker + the fuzz-corpus store.

Given a diverging program, `shrink_reproducer` greedily reduces it while
a predicate ("still diverges in the same layer, under the same injected
mutation") holds, using three deterministic passes run to fixpoint under
an evaluation budget:

* **statement deletion** -- ddmin-style chunk removal inside every
  statement sequence, at every nesting depth;
* **structural replacement** -- an ``if`` becomes one of its arms, a
  ``while`` its body (or ``skip``), a ``stackalloc`` disappears, unused
  helper functions are dropped;
* **expression simplification** -- an expression becomes one of its
  subexpressions, ``0``/``1``, or (for literals) its half.

Candidates that make the program ill-formed (an unbound variable, a
missing return) fail the predicate by construction -- the oracle reports
them as invalid, not divergent -- so no validity bookkeeping is needed.

Shrunk reproducers are serialized into ``fuzz-corpus/`` as JSON
(`repro.fuzz.astjson`) with enough metadata to replay them:
``python -m repro fuzz --replay fuzz-corpus/<file>.json`` re-runs the
program (re-applying the recorded mutation, if any) and checks the
recorded expectation still holds. `tests/test_fuzz_corpus.py` replays
every checked-in file as part of tier-1.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Callable, List, Optional, Tuple

from .. import obs
from ..bedrock2.ast_ import Program
from .astjson import program_from_json, program_to_json
from .generator import fuel_bounds
from .oracle import LAYERS, _run_interp, logic_crosscheck, run_differential

_SHRINK_STEPS = obs.counter("fuzz.shrink.steps")
_SHRINK_EVALS = obs.counter("fuzz.shrink.evals")

_STMT_TAGS = ("set", "store", "stackalloc", "if", "while", "call", "interact")


def stmt_count_json(doc: dict) -> int:
    """Number of statement nodes (excluding skip/seq glue) in a program
    JSON document -- the shrink metric."""
    def count(node) -> int:
        tag = node[0]
        if tag == "seq":
            return sum(count(s) for s in node[1:])
        if tag == "skip":
            return 0
        n = 1
        if tag == "if":
            n += count(node[2]) + count(node[3])
        elif tag == "while":
            n += count(node[2])
        elif tag == "stackalloc":
            n += count(node[3])
        return n

    return sum(count(fd["body"]) for fd in doc.values())


def stmt_count(program: Program) -> int:
    return stmt_count_json(program_to_json(program))


def _get(node, path):
    for i in path:
        node = node[i]
    return node


def _set(node, path, value) -> None:
    for i in path[:-1]:
        node = node[i]
    node[path[-1]] = value


def _child_bodies(tag: str) -> Tuple[int, ...]:
    if tag == "if":
        return (2, 3)
    if tag == "while":
        return (2,)
    if tag == "stackalloc":
        return (3,)
    return ()


def _walk_cmds(node, path, out) -> None:
    """Collect (path, node) for every command node in preorder."""
    out.append((tuple(path), node))
    tag = node[0]
    if tag == "seq":
        for i in range(1, len(node)):
            _walk_cmds(node[i], path + [i], out)
    else:
        for i in _child_bodies(tag):
            _walk_cmds(node[i], path + [i], out)


def _expr_positions(node, path, out) -> None:
    """Collect (path, node) for every expression node under a command."""
    def walk_expr(e, p) -> None:
        out.append((tuple(p), e))
        tag = e[0]
        if tag == "load":
            walk_expr(e[2], p + [2])
        elif tag == "op":
            walk_expr(e[2], p + [2])
            walk_expr(e[3], p + [3])

    tag = node[0]
    if tag == "set":
        walk_expr(node[2], path + [2])
    elif tag == "store":
        walk_expr(node[2], path + [2])
        walk_expr(node[3], path + [3])
    elif tag in ("if", "while"):
        walk_expr(node[1], path + [1])
    elif tag in ("call", "interact"):
        for i in range(len(node[3])):
            walk_expr(node[3][i], path + [3, i])


def _expr_replacements(e) -> List[list]:
    tag = e[0]
    if tag == "lit":
        out = []
        if e[1] not in (0, 1):
            out.append(["lit", e[1] // 2])
            out.append(["lit", 1])
            out.append(["lit", 0])
        return out
    out = [["lit", 0], ["lit", 1]]
    if tag == "op":
        out = [copy.deepcopy(e[2]), copy.deepcopy(e[3])] + out
    elif tag == "load":
        out = [copy.deepcopy(e[2])] + out
    return out


class _Shrinker:
    def __init__(self, doc: dict, predicate: Callable[[dict], bool],
                 max_evals: int):
        self.doc = doc
        self.predicate = predicate
        self.evals = 0
        self.max_evals = max_evals
        self.steps = 0

    def budget_left(self) -> bool:
        return self.evals < self.max_evals

    def try_accept(self, candidate: dict) -> bool:
        if not self.budget_left():
            return False
        self.evals += 1
        _SHRINK_EVALS.inc()
        if self.predicate(candidate):
            self.doc = candidate
            self.steps += 1
            _SHRINK_STEPS.inc()
            return True
        return False

    # -- passes (each returns True if the document got smaller) --------------

    def pass_drop_functions(self) -> bool:
        called = set()
        for fd in self.doc.values():
            cmds: list = []
            _walk_cmds(fd["body"], [], cmds)
            called.update(n[2] for _p, n in cmds if n[0] == "call")
        improved = False
        for name in sorted(self.doc):
            if name == "main" or name in called:
                continue
            candidate = copy.deepcopy(self.doc)
            del candidate[name]
            if self.try_accept(candidate):
                improved = True
        return improved

    def pass_delete_statements(self, fname: str) -> bool:
        improved = False
        progress = True
        while progress and self.budget_left():
            progress = False
            cmds: list = []
            _walk_cmds(self.doc[fname]["body"], [], cmds)
            seqs = [(p, n) for p, n in cmds if n[0] == "seq"]
            for path, node in seqs:
                k = len(node) - 1
                chunk = k
                while chunk >= 1 and self.budget_left():
                    start = 0
                    while start + chunk <= k:
                        kept = node[1:1 + start] + node[1 + start + chunk:]
                        if len(kept) == 0:
                            repl = ["skip"]
                        elif len(kept) == 1:
                            repl = kept[0]
                        else:
                            repl = ["seq"] + kept
                        candidate = copy.deepcopy(self.doc)
                        if path:
                            _set(candidate[fname]["body"], list(path),
                                 copy.deepcopy(repl))
                        else:
                            candidate[fname]["body"] = copy.deepcopy(repl)
                        if self.try_accept(candidate):
                            progress = improved = True
                            break
                        start += max(1, chunk)
                    if progress:
                        break
                    chunk //= 2
                if progress:
                    break
        return improved

    def pass_structural(self, fname: str) -> bool:
        improved = True
        any_improved = False
        while improved and self.budget_left():
            improved = False
            cmds: list = []
            _walk_cmds(self.doc[fname]["body"], [], cmds)
            for path, node in cmds:
                tag = node[0]
                if tag == "if":
                    repls = [node[2], node[3], ["skip"]]
                elif tag == "while":
                    repls = [node[2], ["skip"]]
                elif tag in ("stackalloc", "store", "interact", "call", "set"):
                    repls = [["skip"]]
                else:
                    continue
                for repl in repls:
                    if repl == node:
                        continue
                    candidate = copy.deepcopy(self.doc)
                    if path:
                        _set(candidate[fname]["body"], list(path),
                             copy.deepcopy(repl))
                    else:
                        candidate[fname]["body"] = copy.deepcopy(repl)
                    if self.try_accept(candidate):
                        improved = any_improved = True
                        break
                if improved:
                    break
        return any_improved

    def pass_expressions(self, fname: str) -> bool:
        improved = True
        any_improved = False
        while improved and self.budget_left():
            improved = False
            cmds: list = []
            _walk_cmds(self.doc[fname]["body"], [], cmds)
            exprs: list = []
            for path, node in cmds:
                if node[0] != "seq":
                    _expr_positions(node, list(path), exprs)
            for path, e in exprs:
                for repl in _expr_replacements(e):
                    if repl == e:
                        continue
                    candidate = copy.deepcopy(self.doc)
                    _set(candidate[fname]["body"], list(path), repl)
                    if self.try_accept(candidate):
                        improved = any_improved = True
                        break
                if improved:
                    break
        return any_improved

    def run(self) -> dict:
        with obs.span("fuzz.shrink", cat="fuzz"):
            progress = True
            while progress and self.budget_left():
                progress = False
                progress |= self.pass_drop_functions()
                for fname in sorted(self.doc):
                    if fname not in self.doc:
                        continue
                    progress |= self.pass_delete_statements(fname)
                    progress |= self.pass_structural(fname)
                # Expressions last: they rarely unlock more deletions.
                if not progress:
                    for fname in sorted(self.doc):
                        progress |= self.pass_expressions(fname)
        return self.doc


def divergence_predicate(layer: str,
                         mutation: Optional[str] = None) -> Callable[[dict], bool]:
    """Predicate: the program still diverges *in the same layer* (with
    the same mutation applied, if any). Earlier layers are run too so
    the first-diverging-layer semantics stay faithful."""
    if layer == "logic":
        def logic_pred(doc: dict) -> bool:
            try:
                program = program_from_json(doc)
                reference = _run_interp(program)
                return logic_crosscheck(program, reference)["failed"] > 0
            except Exception:
                return False
        return logic_pred

    upto = LAYERS[:LAYERS.index(layer) + 1]

    def pred(doc: dict) -> bool:
        try:
            program = program_from_json(doc)
            if mutation is not None:
                from .mutate import mutation_context
                with mutation_context(mutation):
                    result = run_differential(program, layers=upto)
            else:
                result = run_differential(program, layers=upto)
        except Exception:
            return False
        return (result["status"] == "divergence"
                and result["divergence"]["layer"] == layer)

    return pred


def shrink_reproducer(program: Program, divergence: dict,
                      mutation: Optional[str] = None,
                      max_evals: int = 400) -> Tuple[Program, dict]:
    """Shrink a diverging program; returns ``(shrunk_program, stats)``."""
    doc = program_to_json(program)
    predicate = divergence_predicate(divergence["layer"], mutation)
    before = stmt_count_json(doc)
    shrinker = _Shrinker(copy.deepcopy(doc), predicate, max_evals)
    shrunk = shrinker.run()
    stats = {"original_stmts": before, "shrunk_stmts": stmt_count_json(shrunk),
             "evals": shrinker.evals, "steps": shrinker.steps}
    return program_from_json(shrunk), stats


# -- corpus ------------------------------------------------------------------

CORPUS_FORMAT = "repro-fuzz-corpus"


def save_reproducer(corpus_dir: str, seed: int, program: Program,
                    divergence: dict, mutation: Optional[str] = None,
                    stats: Optional[dict] = None) -> str:
    """Serialize a (shrunk) reproducer; returns the file path."""
    os.makedirs(corpus_dir, exist_ok=True)
    name = "seed%d-%s-%s.json" % (seed, mutation or "clean",
                                  divergence["kind"])
    path = os.path.join(corpus_dir, name)
    doc = {
        "format": CORPUS_FORMAT,
        "version": 1,
        "seed": seed,
        "mutation": mutation,
        "divergence": divergence,
        "program": program_to_json(program),
        # Ground-truth fuel bounds (per function, pre-order): lets tests
        # cross-check the static WCET analyzer's inferred loop bounds
        # against known ones over the whole corpus.
        "fuel_bounds": fuel_bounds(program),
    }
    if stats:
        doc["original_stmts"] = stats["original_stmts"]
        doc["shrunk_stmts"] = stats["shrunk_stmts"]
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def replay_file(path: str) -> dict:
    """Replay a corpus file and check its expectation.

    A reproducer recorded under a mutation must still diverge in the
    recorded layer *or an earlier one* (a new, stricter layer -- e.g.
    the static binlint pass -- catching the same defect sooner is a
    strictly stronger kill, not a regression); one recorded without a
    mutation documents a since-fixed real bug and must now agree
    everywhere. Returns ``{"ok": bool, "expected": ..., "got": ...,
    "path": ...}``.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != CORPUS_FORMAT:
        return {"ok": False, "path": path,
                "expected": CORPUS_FORMAT, "got": doc.get("format")}
    program = program_from_json(doc["program"])
    mutation = doc.get("mutation")
    layer = doc["divergence"]["layer"]
    if layer == "logic":
        reference = _run_interp(program)
        failed = logic_crosscheck(program, reference)["failed"]
        return {"ok": failed > 0, "path": path,
                "expected": "logic obligation failure",
                "got": "%d failed" % failed}
    if mutation is not None:
        from .mutate import mutation_context
        with mutation_context(mutation):
            result = run_differential(program)
        ok = result["status"] == "divergence"
        if ok and layer in LAYERS:
            got_layer = result["divergence"]["layer"]
            ok = (got_layer in LAYERS
                  and LAYERS.index(got_layer) <= LAYERS.index(layer))
        return {"ok": ok, "path": path,
                "expected": "divergence in %s (or earlier) under %s"
                % (layer, mutation),
                "got": result["status"] if not ok else "reproduced"}
    result = run_differential(program)
    return {"ok": result["status"] == "ok", "path": path,
            "expected": "agreement (bug was fixed)",
            "got": result["status"]}
