"""Seeded, well-formed Bedrock2 program generator.

Programs are built through the eDSL (`repro.bedrock2.builder`) so every
statement carries a source location for the lint/analysis machinery, and
they are *UB-free by construction* so that a divergence between layers
can only mean a bug in a layer, never a program walking off the map:

* every load/store address is ``SCRATCH_BASE + (expr & mask)`` where the
  mask keeps the access both in-bounds and aligned for its size;
* external calls target the synthetic MMIO device at `DEV_BASE`, always
  4-byte aligned and in-range;
* loops are fuel-bounded: each nesting depth owns a reserved counter
  variable (``f0``, ``f1``, ...) that bodies never assign, initialized
  from a literal and decremented exactly once per iteration;
* stackalloc blocks initialize every word before any load, and the
  pointer never escapes into data (its value differs between the
  interpreters and the compiled stack, so leaking it would be a false
  divergence);
* every variable is assigned before use; helper calls are straight-line
  and acyclic.

Each generated ``main`` ends with a fixed epilogue that guarantees a
kill surface for the whole mutation catalog (`repro.fuzz.mutate`): a
``sub``/``ltu``/``eq`` checksum with operand patterns that distinguish
the mutated lowerings, a ``store4``+``store1`` pair into the same word
(byte-enable bugs), a bounded loop (branch-offset bugs), and a final
MMIO write publishing the checksum (so pure-register corruption still
reaches the trace).

This module is also the single RNG discipline for the repo's fuzzing:
`adversarial_frames` seeds the `end2end --seeds` packet streams, so one
seed means one behavior across both commands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, asdict
from typing import List, Optional, Tuple, Union

from ..bedrock2.ast_ import EOp, Program
from ..bedrock2.builder import (
    E,
    block,
    call,
    func,
    if_,
    interact,
    lit,
    load1,
    load2,
    load4,
    set_,
    stackalloc,
    store1,
    store2,
    store4,
    var,
    while_,
)

#: Scratch data region shared by every execution layer: inside RAM on the
#: machine/Kami side (image at 0 never grows this far), its own owned
#: region on the interpreter side.
SCRATCH_BASE = 0x8000
SCRATCH_SIZE = 256

#: Synthetic MMIO device: outside RAM in every layer.
DEV_BASE = 0x4000_0000
DEV_WORDS = 16
DEV_SIZE = DEV_WORDS * 4

#: Address masks keeping scratch accesses in-bounds *and* aligned.
_SIZE_MASK = {1: 0xFF, 2: 0xFE, 4: 0xFC}

_INTERESTING_LITERALS = (
    0, 1, 2, 3, 4, 7, 8, 16, 0xFF, 0x100, 0xFFFF,
    0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xAAAAAAAA, 0x12345678,
)

_BINOP_POOL = (
    "add", "sub", "mul", "mulhuu", "divu", "remu",
    "and", "or", "xor", "sru", "slu", "srs",
    "lts", "ltu", "eq",
)


def rng_for(seed: int) -> random.Random:
    """The one seeding discipline: an explicit `random.Random` per seed.

    Only integer seeds (string/tuple seeding would depend on
    ``PYTHONHASHSEED`` and break cross-process determinism)."""
    return random.Random(int(seed))


def adversarial_frames(seed: int, n_frames: int) -> List[bytes]:
    """Adversarial packet stream for `repro.core.end2end`, derived from
    the same RNG discipline as program generation."""
    from ..platform.net import adversarial_stream

    return adversarial_stream(rng_for(seed), n_frames)


@dataclass(frozen=True)
class GenConfig:
    """Knobs of the program generator; all sizes are small on purpose --
    the pipelined Kami processor is the slow layer, and short programs
    shrink better."""

    n_vars: int = 4
    max_depth: int = 2          # if/while nesting
    block_stmts: Tuple[int, int] = (2, 5)
    expr_depth: int = 3
    max_loop_iters: int = 4
    max_helpers: int = 2
    allow_stackalloc: bool = True
    two_rets: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Optional[dict]) -> "GenConfig":
        if doc is None:
            return cls()
        doc = dict(doc)
        if "block_stmts" in doc:
            doc["block_stmts"] = tuple(doc["block_stmts"])
        return cls(**doc)


#: Reduced profile for smoke tests and the byte-identical-report test:
#: no nesting beyond one level, tiny loops, no helpers.
SMALL_CONFIG = GenConfig(n_vars=3, max_depth=1, block_stmts=(1, 3),
                         expr_depth=2, max_loop_iters=2, max_helpers=0,
                         allow_stackalloc=False, two_rets=False)

PROFILES = {"default": GenConfig(), "small": SMALL_CONFIG}


def _binop(op: str, a: E, b: E) -> E:
    return E(EOp(op, a.node, b.node))


class _Generator:
    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.vars = ["v%d" % i for i in range(config.n_vars)]
        self.helpers: List[Tuple[str, int]] = []  # (name, arity)

    # -- expressions ---------------------------------------------------------

    def literal(self) -> E:
        rng = self.rng
        if rng.random() < 0.6:
            return lit(rng.choice(_INTERESTING_LITERALS))
        return lit(rng.getrandbits(32))

    def expr(self, depth: Optional[int] = None) -> E:
        rng = self.rng
        if depth is None:
            depth = self.config.expr_depth
        if depth <= 0 or rng.random() < 0.3:
            if self.vars and rng.random() < 0.6:
                return var(rng.choice(self.vars))
            return self.literal()
        kind = rng.random()
        if kind < 0.85:
            return _binop(rng.choice(_BINOP_POOL),
                          self.expr(depth - 1), self.expr(depth - 1))
        size = rng.choice((1, 2, 4))
        return self.scratch_load(size, depth - 1)

    def scratch_addr(self, size: int, depth: int = 1) -> E:
        """In-bounds, aligned scratch address: base + (expr & mask)."""
        return lit(SCRATCH_BASE) + (self.expr(depth) & lit(_SIZE_MASK[size]))

    def scratch_load(self, size: int, depth: int = 1) -> E:
        load = {1: load1, 2: load2, 4: load4}[size]
        return load(self.scratch_addr(size, depth))

    def dev_addr(self) -> E:
        rng = self.rng
        if rng.random() < 0.7:
            return lit(DEV_BASE + 4 * rng.randrange(DEV_WORDS))
        return lit(DEV_BASE) + (self.expr(1) & lit(DEV_SIZE - 4))

    # -- statements ----------------------------------------------------------

    def stmt(self, depth: int):
        rng = self.rng
        kinds = ["set", "set", "store", "mmio_read", "mmio_write"]
        if depth < self.config.max_depth:
            kinds += ["if", "if", "while"]
        if self.helpers:
            kinds.append("call")
        kind = rng.choice(kinds)
        if kind == "set":
            return set_(rng.choice(self.vars), self.expr())
        if kind == "store":
            size = rng.choice((1, 2, 4))
            store = {1: store1, 2: store2, 4: store4}[size]
            return store(self.scratch_addr(size), self.expr())
        if kind == "mmio_read":
            return interact([rng.choice(self.vars)], "MMIOREAD",
                            self.dev_addr())
        if kind == "mmio_write":
            return interact([], "MMIOWRITE", self.dev_addr(), self.expr())
        if kind == "if":
            then_ = self.gen_block(depth + 1)
            else_ = self.gen_block(depth + 1) if rng.random() < 0.5 else None
            return if_(self.expr(), then_, else_)
        if kind == "while":
            counter = "f%d" % depth
            iters = rng.randint(1, self.config.max_loop_iters)
            body = self.gen_block(depth + 1)
            return block(
                set_(counter, lit(iters)),
                while_(var(counter), block(
                    body,
                    set_(counter, var(counter) - lit(1)),
                )),
            )
        helper, arity = rng.choice(self.helpers)
        return call([rng.choice(self.vars)], helper,
                    *[self.expr(1) for _ in range(arity)])

    def gen_block(self, depth: int):
        lo, hi = self.config.block_stmts
        return block(*[self.stmt(depth) for _ in range(self.rng.randint(lo, hi))])

    def stackalloc_block(self):
        """A stackalloc whose pointer never escapes: every word is
        initialized before any load, all offsets are constant."""
        rng = self.rng
        nwords = rng.choice((1, 2, 4))
        ptr = "p0"
        init = [store4(var(ptr) + lit(4 * i), self.expr(1))
                for i in range(nwords)]
        uses = [set_(rng.choice(self.vars),
                     load4(var(ptr) + lit(4 * rng.randrange(nwords)))
                     + self.expr(1))
                for _ in range(rng.randint(1, 2))]
        return stackalloc(ptr, 4 * nwords, block(*(init + uses)))

    # -- functions -----------------------------------------------------------

    def helper_function(self, name: str):
        """Straight-line helper: params in, one ret out, optional MMIO."""
        rng = self.rng
        params = ("hx", "hy")[:rng.randint(1, 2)]
        saved_vars = self.vars
        self.vars = list(params)
        body = [set_("ht", self.expr(2))]
        self.vars.append("ht")
        if rng.random() < 0.4:
            body.append(interact(["ht"], "MMIOREAD", self.dev_addr()))
        if rng.random() < 0.4:
            body.append(store4(self.scratch_addr(4), self.expr(1)))
        body.append(set_("hr", self.expr(2)))
        self.vars = saved_vars
        return func(name, params, ("hr",), block(*body))

    def epilogue(self):
        """Deterministic mutation-kill surface; see the module docstring."""
        rng = self.rng
        v = [var(name) for name in self.vars]
        word_off = 4 * rng.randrange(SCRATCH_SIZE // 4)
        word_addr = lit(SCRATCH_BASE + word_off)
        nonzero = lit(rng.randint(1, 0xFF))
        # sub with a nonzero constant (a+c != a-c for c not in {0, 2^31}),
        # ltu whose operands have opposite signedness readings, eq of
        # identical operands (1, but 0 once the sltiu normalization is
        # dropped) -- each mutated lowering changes this checksum.
        checksum = _binop("sub", v[0], nonzero)
        checksum = _binop("add", checksum,
                          _binop("ltu", lit(1), v[1 % len(v)] | lit(0x80000000)))
        checksum = _binop("add", checksum, _binop("eq", v[0], v[0]))
        stmts = [
            interact([self.vars[0]], "MMIOREAD",
                     lit(DEV_BASE + 4 * rng.randrange(DEV_WORDS))),
            # store4 then a sub-word overwrite of the same word: a
            # byte-enable bug wipes the surviving 0xFF bytes.
            store4(word_addr, self.expr(1) | lit(0xFF0000FF)),
            store1(word_addr, self.expr(1)),
            store2(lit(SCRATCH_BASE + (word_off + 4) % SCRATCH_SIZE),
                   self.expr(1)),
            # A loop that always runs twice: branch-offset mutations
            # derail it even when the random body had no loop.
            set_("f9", lit(2)),
            while_(var("f9"), block(
                set_(self.vars[0], v[0] + checksum),
                set_("f9", var("f9") - lit(1)),
            )),
            interact([], "MMIOWRITE",
                     lit(DEV_BASE + 4 * rng.randrange(DEV_WORDS)),
                     v[0] ^ checksum),
            set_("r0", v[0] + checksum),
        ]
        if self.config.two_rets:
            stmts.append(set_("r1", load4(word_addr) ^ v[len(v) - 1]))
        return stmts

    def program(self) -> Program:
        rng = self.rng
        program: Program = {}
        n_helpers = rng.randint(0, self.config.max_helpers)
        for i in range(n_helpers):
            name = "aux%d" % i
            program[name] = self.helper_function(name)
            self.helpers.append((name, len(program[name].params)))
        prologue = [set_(name, self.literal()) for name in self.vars]
        body = [self.gen_block(0)]
        if self.config.allow_stackalloc and rng.random() < 0.5:
            body.append(self.stackalloc_block())
            body.append(self.gen_block(0))
        rets = ("r0", "r1") if self.config.two_rets else ("r0",)
        program["main"] = func(
            "main", (), rets,
            block(*(prologue + body + self.epilogue())))
        return program


def generate_program(seed_or_rng: Union[int, random.Random],
                     config: Optional[GenConfig] = None) -> Program:
    """Generate one UB-free Bedrock2 program (deterministic per seed)."""
    rng = (seed_or_rng if isinstance(seed_or_rng, random.Random)
           else rng_for(seed_or_rng))
    return _Generator(rng, config or GenConfig()).program()


def fuel_bounds(program: Program) -> dict:
    """Ground-truth loop bounds of a generated program, per function.

    Every loop this generator emits is the fuel idiom -- ``f<k> :=
    literal`` immediately before ``while f<k>`` -- so the bound is read
    straight off the AST: the value of the counter's most recent literal
    assignment when its ``while`` is reached, in pre-order (the
    compiler lays statements out linearly, so for loops that survive to
    the binary this matches the WCET analyzer's header-pc ordering).
    Recorded into corpus metadata by `repro.fuzz.shrink` so tests can
    cross-check inferred bounds against known ones corpus-wide.
    """
    from ..bedrock2 import ast_ as A

    def walk(cmd: A.Cmd, env: dict, out: List[int]) -> None:
        if isinstance(cmd, A.SSeq):
            walk(cmd.first, env, out)
            walk(cmd.rest, env, out)
        elif isinstance(cmd, A.SSet):
            if (cmd.name.startswith("f") and cmd.name[1:].isdigit()
                    and isinstance(cmd.value, A.ELit)):
                env[cmd.name] = cmd.value.value
        elif isinstance(cmd, A.SWhile):
            if isinstance(cmd.cond, A.EVar) and cmd.cond.name in env:
                out.append(env[cmd.cond.name])
            walk(cmd.body, env, out)
        elif isinstance(cmd, A.SIf):
            walk(cmd.then_, env, out)
            walk(cmd.else_, env, out)
        elif isinstance(cmd, A.SStackalloc):
            walk(cmd.body, env, out)

    bounds = {}
    for name, function in program.items():
        out: List[int] = []
        walk(function.body, {}, out)
        if out:
            bounds[name] = out
    return bounds
