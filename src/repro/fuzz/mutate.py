"""Mutation testing: seeded semantic bugs that measure oracle strength.

Each catalog entry injects one realistic integration bug -- a wrong
lowering in the compiler, an off-by-one in the instruction encoder, a
broken hazard path in the pipelined processor, a byte-enable bug in the
Kami memory -- via monkeypatching inside a context manager; source files
are never edited and every patch is undone on exit. A mutation is
*killed* when the differential oracle (or, for `--mutation-tier1`, the
repo's own test suite) reports a divergence/failure while it is active.

The kill rate is the number ISSUE 4 asks us to gate on: an oracle that
cannot kill a planted bug would not catch the real one either. The
generator's epilogue (`repro.fuzz.generator`) is designed so that every
mutation below is killed deterministically -- on *every* seed, not just
eventually.

``REPRO_MUTATION=<name>`` in the environment activates a mutation for a
whole process (used by the tier-1 scoring subprocess; see the repo
``conftest.py``).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..compiler import codegen
from ..compiler import flatten
from ..kami import framework as kami_framework
from ..kami import memory as kami_memory
from ..kami import pipeline_proc as kami_pipeline
from ..riscv import encode as rv_encode
from ..riscv.insts import B_TYPE, S_TYPE

#: Fast tier-1 subset used for mutation scoring of the repo's own tests.
TIER1_SUBSET = (
    "tests/test_compiler_correctness.py",
    "tests/test_riscv_encode.py",
    "tests/test_kami_processors.py",
    "tests/test_fuzz_corpus.py",
    "tests/test_binlint.py",
)


@contextmanager
def _patched(obj, attr: str, value) -> Iterator[None]:
    original = getattr(obj, attr)
    setattr(obj, attr, value)
    try:
        yield
    finally:
        setattr(obj, attr, original)


# -- compiler lowering mutations ---------------------------------------------


def _cm_sub_as_add():
    op_map = dict(codegen.FunctionCompiler._OP_MAP)
    op_map["sub"] = "add"
    return _patched(codegen.FunctionCompiler, "_OP_MAP", op_map)


def _cm_ltu_as_lts():
    op_map = dict(codegen.FunctionCompiler._OP_MAP)
    op_map["ltu"] = "slt"
    return _patched(codegen.FunctionCompiler, "_OP_MAP", op_map)


def _cm_eq_no_normalize():
    original = codegen.FunctionCompiler._compile_op

    def mutated(self, s):
        if s.op != "eq":
            return original(self, s)
        lhs = self.read_var(s.lhs, codegen.SCRATCH[0])
        rhs = self.read_var(s.rhs, codegen.SCRATCH[1])
        rd, post = self.write_var(s.dst)
        # Bug: keeps the sub but forgets the sltiu that turns a
        # difference into a boolean.
        self.emit(codegen.I.r_type("sub", rd, lhs, rhs))
        self._writeback(post)

    return _patched(codegen.FunctionCompiler, "_compile_op", mutated)


def _cm_flatten_drop_store():
    from ..bedrock2.ast_ import SStore
    original = flatten.Flattener.flatten_cmd

    def mutated(self, c):
        out = original(self, c)
        if isinstance(c, SStore):
            out = [s for s in out if not isinstance(s, flatten.FStore)]
        return out

    return _patched(flatten.Flattener, "flatten_cmd", mutated)


# -- instruction encoder mutations -------------------------------------------


def _encode_with(rewrite: Callable):
    original = rv_encode.encode

    def mutated(instr):
        return original(rewrite(instr))

    return _patched(rv_encode, "encode", mutated)


def _cm_branch_plus4():
    def rewrite(instr):
        if instr.name in B_TYPE:
            return dataclasses.replace(instr, imm=instr.imm + 4)
        return instr

    return _encode_with(rewrite)


def _cm_store_imm_off_by_4():
    def rewrite(instr):
        if instr.name in S_TYPE:
            return dataclasses.replace(instr, imm=instr.imm + 4)
        return instr

    return _encode_with(rewrite)


def _cm_jal_rd_zero():
    def rewrite(instr):
        if instr.name == "jal":
            return dataclasses.replace(instr, rd=0)
        return instr

    return _encode_with(rewrite)


def _cm_jalr_imm_plus1():
    # Runtime-silent: every engine computes (rs1 + imm) & ~1 and ra is
    # always 4-aligned, so returns still land on the call site.  Only the
    # binary linter sees the misaligned return immediate (B2A101).
    def rewrite(instr):
        if instr.name == "jalr":
            return dataclasses.replace(instr, imm=(instr.imm or 0) + 1)
        return instr

    return _encode_with(rewrite)


def _cm_regalloc_drop_callee_save():
    # Runtime-silent: `_start` reads no allocatable register after main
    # returns, so clobbering one callee-saved register in main's frame
    # never changes an execution.  Only the binary linter's per-function
    # ABI check catches the missing save/restore pair (B2A106).
    original = codegen.FunctionCompiler.compile_function

    def mutated(self):
        if self.fn.name == "main" and self.saved_regs:
            self.saved_regs = self.saved_regs[1:]
        return original(self)

    return _patched(codegen.FunctionCompiler, "compile_function", mutated)


# -- Kami pipeline / memory mutations ----------------------------------------


def _cm_pipeline_rs_swap():
    original = kami_pipeline.decode_signals

    def mutated(raw):
        dec = original(raw)
        if (dec.src1 is not None and dec.src2 is not None
                and dec.src1 != dec.src2):
            return dataclasses.replace(dec, src1=dec.src2, src2=dec.src1)
        return dec

    return _patched(kami_pipeline, "decode_signals", mutated)


def _cm_pipeline_fifo_lifo():
    class LifoFifo(kami_framework.Fifo):
        def deq(self):
            q = self._queue()
            if not q:
                raise kami_framework.RuleAbort("%s empty" % self.name)
            return q.pop()

        def first(self):
            q = self._queue()
            if not q:
                raise kami_framework.RuleAbort("%s empty" % self.name)
            return q[-1]

    return _patched(kami_pipeline, "Fifo", LifoFifo)


def _cm_kami_mem_wide_store():
    original_make = kami_memory.make_memory_module

    def mutated(image, ram_words=1 << 18, name="mem"):
        module = original_make(image, ram_words=ram_words, name=name)
        original_write = module.methods["memWrite"]

        def wide_write(m, addr, data, byteen):
            # Bug: the byte-enable lanes are stuck at full-word.
            return original_write(m, addr, data, 0b1111 if byteen else 0)

        module.methods["memWrite"] = wide_write
        return module

    return _patched(kami_memory, "make_memory_module", mutated)


@dataclass(frozen=True)
class Mutation:
    name: str
    layer: str
    description: str
    enter: Callable[[], object]   # returns a context manager


CATALOG: Dict[str, Mutation] = {
    m.name: m for m in (
        Mutation("codegen-sub-as-add", "compiler",
                 "lower the 'sub' binop to RISC-V add", _cm_sub_as_add),
        Mutation("codegen-ltu-as-lts", "compiler",
                 "lower unsigned 'ltu' to signed slt", _cm_ltu_as_lts),
        Mutation("codegen-eq-no-normalize", "compiler",
                 "drop the sltiu normalization of 'eq' (leaves a-b)",
                 _cm_eq_no_normalize),
        Mutation("flatten-drop-store", "compiler",
                 "flatten SStore but drop the FStore itself",
                 _cm_flatten_drop_store),
        Mutation("encode-branch-plus4", "encoder",
                 "encode branch offsets 4 bytes too far", _cm_branch_plus4),
        Mutation("encode-store-imm-off-by-4", "encoder",
                 "encode sb/sh/sw immediates 4 bytes too far",
                 _cm_store_imm_off_by_4),
        Mutation("encode-jal-rd-zero", "encoder",
                 "encode jal with rd=x0 (drops the return address)",
                 _cm_jal_rd_zero),
        Mutation("encode-jalr-imm-plus1", "encoder",
                 "encode jalr immediates one byte too far (masked at "
                 "runtime; only the binary lint layer sees it)",
                 _cm_jalr_imm_plus1),
        Mutation("regalloc-drop-callee-save", "compiler",
                 "drop one callee-saved save/restore pair from main "
                 "(runtime-silent; only the binary lint layer sees it)",
                 _cm_regalloc_drop_callee_save),
        Mutation("pipeline-rs-swap", "pipeline",
                 "swap rs1/rs2 in the pipelined processor's decode",
                 _cm_pipeline_rs_swap),
        Mutation("pipeline-fifo-lifo", "pipeline",
                 "turn the pipeline latches into LIFO stacks",
                 _cm_pipeline_fifo_lifo),
        Mutation("kami-mem-wide-store", "kami-memory",
                 "byte-enable lanes stuck at full-word in memWrite",
                 _cm_kami_mem_wide_store),
    )
}


def mutation_context(name: str):
    """Context manager applying catalog mutation ``name``."""
    return CATALOG[name].enter()


_ACTIVE: List[object] = []


def activate(name: str) -> None:
    """Apply a mutation for the rest of the process (no deactivation;
    used via ``REPRO_MUTATION`` for tier-1 scoring subprocesses)."""
    cm = mutation_context(name)
    cm.__enter__()
    _ACTIVE.append(cm)


# -- scoring -----------------------------------------------------------------


#: Default seed set for `score_differential`: chosen so every catalog
#: mutation is killed deterministically (most die on seed 0; the fifo
#: reorder needs a program whose pipeline backs up, seed 4).
DEFAULT_SCORE_SEEDS = tuple(range(8))


def score_differential(seeds: Sequence[int] = DEFAULT_SCORE_SEEDS,
                       config: Optional[dict] = None, jobs: int = 1,
                       names: Optional[Sequence[str]] = None) -> dict:
    """Kill rate of the differential oracle: for each mutation, run the
    oracle over ``seeds`` until the first divergence (= killed)."""
    from ..logic.dispatch import parallel_call

    names = list(names) if names is not None else sorted(CATALOG)
    step = max(1, jobs)
    results = {}
    for name in names:
        killed_by = None
        kind = None
        # Dispatch in job-sized chunks so a mutation killed by the first
        # seed doesn't pay for the rest of the seed list.
        for start in range(0, len(seeds), step):
            chunk = list(seeds)[start:start + step]
            kwargs_list = [{"seed": s, "config": config, "mutation": name}
                           for s in chunk]
            for outcome in parallel_call("repro.fuzz.oracle:run_fuzz_seed",
                                         kwargs_list, jobs=jobs):
                if outcome["status"] == "divergence":
                    killed_by = outcome["seed"]
                    kind = outcome["divergence"]
                    break
            if killed_by is not None:
                break
        results[name] = {"killed": killed_by is not None,
                         "layer": CATALOG[name].layer,
                         "killed_by_seed": killed_by,
                         "divergence": kind}
    killed = sum(r["killed"] for r in results.values())
    return {"mutations": results, "killed": killed, "total": len(results),
            "kill_rate": killed / len(results) if results else 1.0}


def score_tier1(names: Optional[Sequence[str]] = None,
                tests: Sequence[str] = TIER1_SUBSET,
                timeout: int = 600) -> dict:
    """Kill rate of the repo's own tests: run a fast tier-1 subset in a
    subprocess with ``REPRO_MUTATION=<name>``; a nonzero exit kills."""
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    names = list(names) if names is not None else sorted(CATALOG)
    results = {}
    for name in names:
        env = dict(os.environ)
        env["REPRO_MUTATION"] = name
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-x", "-q", *tests],
            cwd=repo_root, env=env, timeout=timeout,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        results[name] = {"killed": proc.returncode != 0,
                         "layer": CATALOG[name].layer}
    killed = sum(r["killed"] for r in results.values())
    return {"mutations": results, "killed": killed, "total": len(results),
            "kill_rate": killed / len(results) if results else 1.0}
