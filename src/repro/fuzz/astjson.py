"""JSON serialization of the Bedrock2 AST (corpus files, replay).

Shrunk divergence reproducers live in ``fuzz-corpus/`` as plain JSON so
they can be diffed, reviewed, and replayed without pickling concerns.
Expressions and commands are tagged lists (compact and stable under
``json.dumps(..., sort_keys=True)``); a program is a name -> function
object map. ``SSeq`` spines are flattened into a single ``["seq", ...]``
node for readability and rebuilt with `repro.bedrock2.ast_.seq`.
"""

from __future__ import annotations

from typing import Any, List

from ..bedrock2.ast_ import (
    Cmd,
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    Function,
    Program,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
    seq,
)


def expr_to_json(e: Expr) -> List[Any]:
    if isinstance(e, ELit):
        return ["lit", e.value]
    if isinstance(e, EVar):
        return ["var", e.name]
    if isinstance(e, ELoad):
        return ["load", e.size, expr_to_json(e.addr)]
    if isinstance(e, EOp):
        return ["op", e.op, expr_to_json(e.lhs), expr_to_json(e.rhs)]
    raise TypeError("not an expression: %r" % (e,))


def expr_from_json(doc: List[Any]) -> Expr:
    tag = doc[0]
    if tag == "lit":
        return ELit(doc[1])
    if tag == "var":
        return EVar(doc[1])
    if tag == "load":
        return ELoad(doc[1], expr_from_json(doc[2]))
    if tag == "op":
        return EOp(doc[1], expr_from_json(doc[2]), expr_from_json(doc[3]))
    raise ValueError("bad expression tag %r" % (tag,))


def _stmt_list(c: Cmd) -> List[Cmd]:
    out: List[Cmd] = []
    node = c
    while isinstance(node, SSeq):
        out.append(node.first)
        node = node.rest
    out.append(node)
    return out


def cmd_to_json(c: Cmd) -> List[Any]:
    if isinstance(c, SSkip):
        return ["skip"]
    if isinstance(c, SSet):
        return ["set", c.name, expr_to_json(c.value)]
    if isinstance(c, SStore):
        return ["store", c.size, expr_to_json(c.addr), expr_to_json(c.value)]
    if isinstance(c, SStackalloc):
        return ["stackalloc", c.name, c.nbytes, cmd_to_json(c.body)]
    if isinstance(c, SIf):
        return ["if", expr_to_json(c.cond), cmd_to_json(c.then_),
                cmd_to_json(c.else_)]
    if isinstance(c, SWhile):
        return ["while", expr_to_json(c.cond), cmd_to_json(c.body)]
    if isinstance(c, SSeq):
        return ["seq"] + [cmd_to_json(s) for s in _stmt_list(c)]
    if isinstance(c, SCall):
        return ["call", list(c.binds), c.func,
                [expr_to_json(a) for a in c.args]]
    if isinstance(c, SInteract):
        return ["interact", list(c.binds), c.action,
                [expr_to_json(a) for a in c.args]]
    raise TypeError("not a command: %r" % (c,))


def cmd_from_json(doc: List[Any]) -> Cmd:
    tag = doc[0]
    if tag == "skip":
        return SSkip()
    if tag == "set":
        return SSet(doc[1], expr_from_json(doc[2]))
    if tag == "store":
        return SStore(doc[1], expr_from_json(doc[2]), expr_from_json(doc[3]))
    if tag == "stackalloc":
        return SStackalloc(doc[1], doc[2], cmd_from_json(doc[3]))
    if tag == "if":
        return SIf(expr_from_json(doc[1]), cmd_from_json(doc[2]),
                   cmd_from_json(doc[3]))
    if tag == "while":
        return SWhile(expr_from_json(doc[1]), cmd_from_json(doc[2]))
    if tag == "seq":
        return seq(*[cmd_from_json(s) for s in doc[1:]])
    if tag == "call":
        return SCall(tuple(doc[1]), doc[2],
                     tuple(expr_from_json(a) for a in doc[3]))
    if tag == "interact":
        return SInteract(tuple(doc[1]), doc[2],
                         tuple(expr_from_json(a) for a in doc[3]))
    raise ValueError("bad command tag %r" % (tag,))


def program_to_json(program: Program) -> dict:
    return {
        name: {
            "params": list(fn.params),
            "rets": list(fn.rets),
            "body": cmd_to_json(fn.body),
        }
        for name, fn in program.items()
    }


def program_from_json(doc: dict) -> Program:
    return {
        name: Function(name, tuple(fd["params"]), tuple(fd["rets"]),
                       cmd_from_json(fd["body"]))
        for name, fd in doc.items()
    }
