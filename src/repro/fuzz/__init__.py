"""Differential fuzzing and mutation testing across the whole stack.

The paper's one theorem pins every layer -- application, compiler, ISA
semantics, pipelined processor -- to the same MMIO traces. This package
is the executable stress test of that claim: it generates well-formed
Bedrock2 programs (`repro.fuzz.generator`), runs each one through every
execution layer and compares return values, final scratch memory, and
the full MMIO trace (`repro.fuzz.oracle`), reduces any disagreement to a
minimal reproducer (`repro.fuzz.shrink`), and measures how strong the
oracle actually is by injecting a catalog of seeded semantic bugs and
counting kills (`repro.fuzz.mutate`).

CLI surface: ``python -m repro fuzz`` (see docs/fuzzing.md).
"""

from .generator import (  # noqa: F401  (re-exported API)
    DEV_BASE,
    DEV_SIZE,
    GenConfig,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    adversarial_frames,
    generate_program,
    rng_for,
)
