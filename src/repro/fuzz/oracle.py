"""Differential co-simulation oracle: one program, every layer.

Each generated program runs through (in divergence-stopping order):

===============  ==========================================================
layer            what runs
===============  ==========================================================
interp           big-step interpreter (`repro.bedrock2.semantics`) --
                 the reference; UB or out-of-fuel here means an *invalid*
                 program (a generator bug), never a divergence
smallstep        small-step semantics (`repro.bedrock2.smallstep`)
binlint          *static* layer: the binary-level abstract interpreter
                 (`repro.analysis.binlint`) lints the compiled image
                 before anything executes it; any finding is a
                 divergence (the compiler emitted code that violates an
                 ISA-level invariant), shrunk like any other failure
compiled         compiled RV32IM binary on the ISA spec machine
                 (`repro.riscv.machine`), reference interpreter loop
fast             the same binary on the same machine through the
                 fast-path engine (`repro.riscv.fastpath`: decode cache
                 + fused blocks + flat RAM); additionally compared
                 against the "compiled" layer's *full machine state*
                 (registers, pc, instret, memory, XAddrs, trace)
kami-spec        the same binary on the single-cycle Kami processor
kami-pipelined   the same binary on the paper's p4mm pipeline
===============  ==========================================================

All five observe the same synthetic MMIO device (a fresh copy each --
the device is deterministic in its access sequence, so layers agree iff
their MMIO behavior agrees). Compared per layer: return values, the
final scratch region, and the full MMIO trace (reusing the refinement
checker's `repro.kami.refinement.match_trace_prefix`). The pipelined
processor is additionally prefix-checked *during* execution so a
divergence is caught at the first wrong event rather than at a timeout.

A sampled cross-check of `repro.bedrock2.vcgen` piggybacks on the
reference run: we symbolically execute the program with a collecting VC
(no solver verdicts), then concretely evaluate every collected proof
obligation in the model induced by the interpreter's MMIO reads -- an
obligation that evaluates false on the concretely-taken path is a logic
divergence.

`run_fuzz_seed` is the picklable unit of work dispatched by
`repro.logic.dispatch.parallel_call`; per-layer runtimes are counters
(merged across workers), not histograms (which worker pools drop).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..bedrock2 import vcgen
from ..bedrock2.ast_ import Program, cmd_size
from ..bedrock2.extspec import MMIOSpec
from ..bedrock2.semantics import (
    Memory,
    MMIOExtHandler,
    OutOfFuel,
    UndefinedBehavior,
    run_function,
    to_mmio_triples,
)
from ..bedrock2.smallstep import run_function_smallstep
from ..compiler.pipeline import CompileError, compile_program
from ..kami import memory as kami_memory
from ..kami import pipeline_proc as kami_pipeline
from ..kami.framework import ExternalWorld, System
from ..kami.refinement import match_trace_prefix
from ..kami.spec_proc import make_spec_processor
from ..logic import terms as T
from ..riscv.fastpath import machine_state_diff
from ..riscv.machine import RiscvMachine, RiscvUB
from .generator import (
    DEV_BASE,
    DEV_SIZE,
    GenConfig,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    generate_program,
)

#: Stop-at-first-divergence comparison order; "interp" is the reference.
#: "wcet" is the second static layer: it must *prove* timing and stack
#: bounds that the dynamic layers after it are then measured against.
LAYERS = ("interp", "smallstep", "binlint", "wcet", "compiled", "fast",
          "kami-spec", "kami-pipelined")

_MEM_SIZE = 1 << 16          # machine RAM [0, 0x10000): image, scratch, stack
_STACK_TOP = 1 << 16
_RAM_WORDS = _MEM_SIZE // 4  # Kami RAM covers exactly the same range
_SCRATCH_WORD = SCRATCH_BASE // 4
_MAX_MACHINE_STEPS = 200_000  # generated programs retire < ~20k instrs
_PIPELINE_CHUNK = 256

_PROGRAMS = obs.counter("fuzz.programs")
_DIVERGENCES = obs.counter("fuzz.divergences")
_INVALID = obs.counter("fuzz.invalid_programs")


class SyntheticDevice:
    """Deterministic MMIO device: the value of a read depends only on the
    address and how many reads happened before it, so independent copies
    presented with the same access sequence answer identically."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes: List[Tuple[int, int]] = []

    def read(self, addr: int) -> int:
        self.reads += 1
        return (addr ^ (self.reads * 0x9E3779B1) ^ 0x5A5A1234) & 0xFFFFFFFF

    def write(self, addr: int, value: int) -> None:
        self.writes.append((addr, value))

    def is_mmio(self, addr: int) -> bool:
        return DEV_BASE <= addr < DEV_BASE + DEV_SIZE


class DeviceWorld(ExternalWorld):
    """Adapts `SyntheticDevice` to the Kami external-call interface."""

    def __init__(self, device: SyntheticDevice) -> None:
        self.device = device

    def call(self, method: str, args: Tuple[int, ...]) -> Optional[int]:
        if method == "mmioRead":
            return self.device.read(args[0])
        if method == "mmioWrite":
            self.device.write(args[0], args[1])
            return None
        raise KeyError("unknown external method %r" % method)


class LayerOutcome:
    """What one layer produced: comparable (rets, scratch, trace) on
    success, or an error kind + detail."""

    __slots__ = ("name", "status", "rets", "scratch", "trace", "detail",
                 "cycles")

    def __init__(self, name: str, status: str = "ok",
                 rets: Tuple[int, ...] = (), scratch: bytes = b"",
                 trace: Optional[List[Tuple[str, int, int]]] = None,
                 detail: str = "", cycles: Optional[int] = None):
        self.name = name
        self.status = status       # "ok" | "crash" | "stuck" | "timeout"
        self.rets = rets
        self.scratch = scratch
        self.trace = trace if trace is not None else []
        self.detail = detail
        # Successful rule firings spent (kami-pipelined only): the
        # measured side of the WCET soundness check.
        self.cycles = cycles


def _timed(layer: str, fn: Callable[[], LayerOutcome]) -> LayerOutcome:
    t0 = time.perf_counter()
    try:
        return fn()
    finally:
        micros = int((time.perf_counter() - t0) * 1e6)
        obs.counter("fuzz.layer.%s.micros" % layer).inc(micros)
        obs.counter("fuzz.layer.%s.runs" % layer).inc()


def _scratch_memory() -> Memory:
    return Memory.from_regions([(SCRATCH_BASE, bytes(SCRATCH_SIZE))])


def _scratch_from_snapshot(snap: Dict[int, int]) -> bytes:
    return bytes(snap.get(SCRATCH_BASE + i, 0) for i in range(SCRATCH_SIZE))


def _run_interp(program: Program) -> LayerOutcome:
    dev = SyntheticDevice()
    mem = _scratch_memory()
    rets, state = run_function(program, "main", (), mem=mem,
                               ext=MMIOExtHandler(dev))
    return LayerOutcome("interp", rets=tuple(rets),
                        scratch=_scratch_from_snapshot(mem.snapshot()),
                        trace=to_mmio_triples(state.trace))


def _run_smallstep(program: Program) -> LayerOutcome:
    dev = SyntheticDevice()
    mem = _scratch_memory()
    rets, state = run_function_smallstep(program, "main", (), mem=mem,
                                         ext=MMIOExtHandler(dev))
    return LayerOutcome("smallstep", rets=tuple(rets),
                        scratch=_scratch_from_snapshot(mem.snapshot()),
                        trace=to_mmio_triples(state.trace))


def _binlint_findings(compiled):
    """The static layer: abstract-interpretation lint of the compiled
    image against the oracle's memory map (owned RAM below the stack
    top, the synthetic device as the only MMIO range). Imported lazily
    so execution-only layer subsets never pay for the analysis import."""
    from ..analysis.binlint import BinaryLintConfig, lint_image

    config = BinaryLintConfig.for_platform(
        _STACK_TOP, ((DEV_BASE, DEV_BASE + DEV_SIZE),))
    return lint_image(compiled.image, compiled.symbols, config)


def _wcet_prove(compiled) -> Tuple[Optional[dict], Optional[str]]:
    """The second static layer: prove WCET and stack bounds.

    Returns ``({"static_cycles": fill + wcet, "stack_bound": bytes},
    None)`` on success or ``(None, detail)`` when the analyzer cannot
    bound the program -- generated programs are fuel-bounded by
    construction, so an unproved bound is an analyzer bug and diverges
    like any other kill.  Analyzer *crashes* (possible on mutated
    binaries with mangled control flow) are reported the same way, not
    raised.  Lazy imports, mirroring `_binlint_findings`.
    """
    from ..analysis.binlint import BinaryLintConfig
    from ..analysis.costmodel import pipeline_cost_model
    from ..analysis.wcet import TimingConfig, analyze_timing

    icache_words = len(compiled.image) // 4 + 4
    try:
        config = TimingConfig(
            lint=BinaryLintConfig.for_platform(
                _STACK_TOP, ((DEV_BASE, DEV_BASE + DEV_SIZE),)),
            model=pipeline_cost_model())
        report = analyze_timing(compiled, config,
                                icache_words=icache_words)
    except Exception as exc:  # mutated image: analyzer must not crash out
        return None, "analyzer error: %s: %s" % (type(exc).__name__, exc)
    if report.findings:
        shown = "; ".join(d.render() for d in report.findings[:3])
        if len(report.findings) > 3:
            shown += "; (+%d more)" % (len(report.findings) - 3)
        return None, shown
    if report.wcet_cycles is None or report.startup_cycles is not None:
        return None, ("program did not get a terminating WCET "
                      "(wcet=%r startup=%r)" % (report.wcet_cycles,
                                                report.startup_cycles))
    if report.stack_bound is None:
        return None, "no static stack bound"
    return {"static_cycles": report.fill_cycles + report.wcet_cycles,
            "stack_bound": report.stack_bound}, None


def _run_machine(name: str, compiled, n_rets: int,
                 fast: bool) -> Tuple[LayerOutcome, RiscvMachine]:
    """Run the compiled binary on the ISA machine (reference interpreter
    loop or the fast-path engine); returns the outcome plus the final
    machine, kept for full-state comparison and for the retired
    instruction count (the step budget reference for both Kami layers)."""
    dev = SyntheticDevice()
    machine = RiscvMachine.with_program(compiled.image, base=0, pc=0,
                                        mem_size=_MEM_SIZE, mmio_bus=dev,
                                        fast=fast)
    machine.run(_MAX_MACHINE_STEPS, until_pc=compiled.halt_pc)
    if machine.pc != compiled.halt_pc:
        return (LayerOutcome(name, status="timeout",
                             trace=list(machine.trace),
                             detail="no halt within %d steps"
                             % _MAX_MACHINE_STEPS),
                machine)
    rets = tuple(machine.get_register(10 + i) for i in range(n_rets))
    scratch = bytes(machine.mem[SCRATCH_BASE + i] for i in range(SCRATCH_SIZE))
    return (LayerOutcome(name, rets=rets, scratch=scratch,
                         trace=list(machine.trace)),
            machine)


def _scratch_from_ram(ram: Sequence[int]) -> bytes:
    out = bytearray()
    for w in ram[_SCRATCH_WORD:_SCRATCH_WORD + SCRATCH_SIZE // 4]:
        out += bytes(((w >> (8 * i)) & 0xFF) for i in range(4))
    return bytes(out)


def _run_kami_spec(compiled, n_rets: int, ref_instret: int) -> LayerOutcome:
    dev = SyntheticDevice()
    mem_mod = kami_memory.make_memory_module(compiled.image,
                                             ram_words=_RAM_WORDS)
    proc = make_spec_processor()
    system = System([proc, mem_mod], DeviceWorld(dev),
                    snapshot_rollback=False)
    budget = ref_instret + 64
    system.run(budget, stop=lambda s: proc.regs["pc"] == compiled.halt_pc)
    if proc.regs["pc"] != compiled.halt_pc:
        return LayerOutcome("kami-spec", status="stuck",
                            trace=system.mmio_trace(),
                            detail="pc=%#x after %d steps"
                            % (proc.regs["pc"], budget))
    rf = proc.regs["rf"]
    return LayerOutcome("kami-spec",
                        rets=tuple(rf[10 + i] for i in range(n_rets)),
                        scratch=_scratch_from_ram(mem_mod.regs["ram"]),
                        trace=system.mmio_trace())


def _run_kami_pipelined(compiled, n_rets: int, ref_instret: int,
                        expected: LayerOutcome) -> LayerOutcome:
    """Run p4mm with in-flight trace prefix checking against the
    reference outcome. The pipeline never quiesces at the halt spin, so
    completion is detected by state: full expected trace emitted, return
    registers and scratch memory settled to the expected values."""
    dev = SyntheticDevice()
    mem_mod = kami_memory.make_memory_module(compiled.image,
                                             ram_words=_RAM_WORDS)
    icache_words = len(compiled.image) // 4 + 4
    proc = kami_pipeline.make_pipelined_processor(icache_words=icache_words)
    system = System([proc, mem_mod], DeviceWorld(dev),
                    snapshot_rollback=False)
    budget = icache_words + 24 * ref_instret + 600

    def snapshot() -> LayerOutcome:
        rf = proc.regs["rf"]
        return LayerOutcome("kami-pipelined",
                            rets=tuple(rf[10 + i] for i in range(n_rets)),
                            scratch=_scratch_from_ram(mem_mod.regs["ram"]),
                            trace=system.mmio_trace())

    spent = 0
    while spent < budget:
        chunk = min(_PIPELINE_CHUNK, budget - spent)
        taken = system.run(chunk)
        spent += taken
        trace = system.mmio_trace()
        prefix = match_trace_prefix(trace, expected.trace)
        if not prefix:
            out = snapshot()
            out.status = "ok"  # comparable; the trace mismatch is the diff
            out.detail = prefix.detail
            out.cycles = spent
            return out
        if len(trace) == len(expected.trace):
            done = snapshot()
            if done.rets == expected.rets and done.scratch == expected.scratch:
                done.cycles = spent
                return done
        if taken < chunk:  # quiescent: every rule aborted
            out = snapshot()
            out.status = "stuck"
            out.detail = "pipeline quiescent after %d steps" % spent
            out.cycles = spent
            return out
    out = snapshot()
    out.status = "timeout"
    out.detail = "no settle within %d steps" % budget
    out.cycles = spent
    return out


def _compare(reference: LayerOutcome, other: LayerOutcome) -> Optional[dict]:
    """None if the layers agree; otherwise a JSON-able divergence record."""
    if other.status != "ok":
        return {"layer": other.name, "kind": other.status,
                "detail": other.detail}
    trace_match = match_trace_prefix(other.trace, reference.trace)
    if not trace_match or len(other.trace) != len(reference.trace):
        return {"layer": other.name, "kind": "trace",
                "detail": trace_match.detail or
                "trace length %d vs %d" % (len(other.trace),
                                           len(reference.trace))}
    if other.rets != reference.rets:
        return {"layer": other.name, "kind": "rets",
                "detail": "rets %r vs %r" % (list(other.rets),
                                             list(reference.rets))}
    if other.scratch != reference.scratch:
        idx = next(i for i in range(SCRATCH_SIZE)
                   if other.scratch[i] != reference.scratch[i])
        return {"layer": other.name, "kind": "memory",
                "detail": "scratch[%#x]: %#x vs %#x"
                % (SCRATCH_BASE + idx, other.scratch[idx],
                   reference.scratch[idx])}
    return None


def run_differential(program: Program,
                     layers: Sequence[str] = LAYERS) -> dict:
    """Run ``program`` through ``layers`` and stop at the first
    divergence from the reference interpreter.

    Returns ``{"status": "ok"|"divergence"|"invalid", "layers": [names
    actually run], "divergence": {...}|None, "rets": [...], "trace_len":
    N}``. "invalid" means the reference itself hit UB or ran out of fuel
    -- a generator bug, not a layer bug.
    """
    _PROGRAMS.inc()
    try:
        reference = _timed("interp", lambda: _run_interp(program))
    except (UndefinedBehavior, OutOfFuel) as exc:
        _INVALID.inc()
        return {"status": "invalid", "layers": ["interp"],
                "divergence": None,
                "detail": "%s: %s" % (type(exc).__name__, exc)}
    n_rets = len(reference.rets)
    result = {"status": "ok", "layers": ["interp"], "divergence": None,
              "rets": list(reference.rets),
              "trace_len": len(reference.trace)}

    def diverged(record: dict) -> dict:
        _DIVERGENCES.inc()
        result["status"] = "divergence"
        result["divergence"] = record
        return result

    if "smallstep" in layers:
        result["layers"].append("smallstep")
        try:
            small = _timed("smallstep", lambda: _run_smallstep(program))
        except (UndefinedBehavior, OutOfFuel) as exc:
            return diverged({"layer": "smallstep", "kind": "crash",
                             "detail": str(exc)})
        record = _compare(reference, small)
        if record:
            return diverged(record)

    need_binary = any(name in layers
                      for name in ("binlint", "wcet", "compiled",
                                   "kami-spec", "kami-pipelined"))
    if not need_binary:
        return result
    try:
        compiled = compile_program(program, stack_top=_STACK_TOP)
    except CompileError as exc:
        return diverged({"layer": "compiled", "kind": "crash",
                         "detail": "CompileError: %s" % exc})
    if len(compiled.image) > SCRATCH_BASE:
        return diverged({"layer": "compiled", "kind": "crash",
                         "detail": "image overlaps scratch (%d bytes)"
                         % len(compiled.image)})

    if "binlint" in layers:
        result["layers"].append("binlint")
        findings = _timed("binlint", lambda: _binlint_findings(compiled))
        if findings:
            shown = "; ".join(d.render() for d in findings[:3])
            if len(findings) > 3:
                shown += "; (+%d more)" % (len(findings) - 3)
            return diverged({"layer": "binlint", "kind": "static",
                             "detail": shown})

    bounds: Optional[dict] = None
    if "wcet" in layers:
        result["layers"].append("wcet")
        bounds, why = _timed("wcet", lambda: _wcet_prove(compiled))
        if bounds is None:
            return diverged({"layer": "wcet", "kind": "static",
                             "detail": why or "unbounded"})
        result["wcet"] = dict(bounds)

    def stack_overrun(machine, layer: str) -> Optional[dict]:
        """Watermark vs proved bound: `sp_min` is the lowest value ever
        written to sp, so the measured high water is its distance below
        the stack top (zero if sp was never set)."""
        if bounds is None:
            return None
        depth = max(0, _STACK_TOP - machine.sp_min)
        result["wcet"]["measured_stack"] = max(
            depth, result["wcet"].get("measured_stack", 0))
        if depth > bounds["stack_bound"]:
            return {"layer": layer, "kind": "wcet-soundness",
                    "detail": "stack watermark %d exceeds static bound %d"
                    % (depth, bounds["stack_bound"])}
        return None

    ref_instret = 0
    ref_machine = None
    if "compiled" in layers:
        result["layers"].append("compiled")
        try:
            machine_out, ref_machine = _timed(
                "compiled",
                lambda: _run_machine("compiled", compiled, n_rets, False))
        except RiscvUB as exc:
            return diverged({"layer": "compiled", "kind": "crash",
                             "detail": "RiscvUB: %s" % exc})
        ref_instret = ref_machine.instret
        record = _compare(reference, machine_out)
        if record:
            return diverged(record)
        record = stack_overrun(ref_machine, "compiled")
        if record:
            return diverged(record)

    if "fast" in layers:
        result["layers"].append("fast")
        try:
            fast_out, fast_machine = _timed(
                "fast", lambda: _run_machine("fast", compiled, n_rets, True))
        except RiscvUB as exc:
            return diverged({"layer": "fast", "kind": "crash",
                             "detail": "RiscvUB: %s" % exc})
        record = _compare(reference, fast_out)
        if record:
            return diverged(record)
        if ref_machine is not None:
            # Beyond the observable outcome, the fast engine must leave
            # the machine in the *bit-identical* final state.
            state_diff = machine_state_diff(ref_machine, fast_machine)
            if state_diff:
                return diverged({"layer": "fast", "kind": "machine-state",
                                 "detail": state_diff})
            if fast_machine.sp_min != ref_machine.sp_min:
                return diverged({"layer": "fast", "kind": "machine-state",
                                 "detail": "sp_min %#x vs %#x"
                                 % (fast_machine.sp_min,
                                    ref_machine.sp_min)})
        record = stack_overrun(fast_machine, "fast")
        if record:
            return diverged(record)

    if "kami-spec" in layers:
        result["layers"].append("kami-spec")
        spec_out = _timed("kami-spec",
                          lambda: _run_kami_spec(compiled, n_rets,
                                                 ref_instret))
        record = _compare(reference, spec_out)
        if record:
            return diverged(record)

    if "kami-pipelined" in layers:
        result["layers"].append("kami-pipelined")
        pipe_out = _timed("kami-pipelined",
                          lambda: _run_kami_pipelined(compiled, n_rets,
                                                      ref_instret, reference))
        record = _compare(reference, pipe_out)
        if record:
            return diverged(record)
        if bounds is not None and pipe_out.cycles is not None:
            # Measured firings vs the proved bound. Completion is only
            # *detected* at chunk granularity (the halt spin keeps the
            # pipeline firing), so allow that detection lag on top.
            result["wcet"]["measured_cycles"] = pipe_out.cycles
            limit = bounds["static_cycles"] + 2 * _PIPELINE_CHUNK
            if pipe_out.cycles > limit:
                return diverged({
                    "layer": "kami-pipelined", "kind": "wcet-soundness",
                    "detail": "measured %d firings exceed static WCET %d "
                              "(+%d detection slack)"
                    % (pipe_out.cycles, bounds["static_cycles"],
                       2 * _PIPELINE_CHUNK)})
    return result


# -- logic (vcgen) cross-check -----------------------------------------------


class _CollectVC(vcgen.VC):
    """A VC that records proof obligations instead of discharging them.
    Path-pruning solver queries (`feasible`, in-bounds resolution) still
    run normally, so the collected set is exactly what the real verifier
    would try to prove."""

    def __init__(self) -> None:
        super().__init__()
        self.collected: List[Tuple[tuple, object, tuple, str]] = []

    def prove(self, state, goal, context: str) -> None:
        self.collected.append(
            (tuple(state.path), goal, tuple(state.trace), context))


def logic_crosscheck(program: Program, reference: LayerOutcome) -> dict:
    """Concretely evaluate collected vcgen obligations in the model
    induced by the reference run's MMIO reads.

    For each obligation we bind the k-th symbolic ``mmio_read`` result to
    the k-th value the interpreter actually read, then evaluate the path
    facts: if any is unbound (symbolic stack base, havocked byte) or
    false (a path the concrete run did not take), the obligation is
    skipped; otherwise the goal itself must evaluate true.
    """
    out = {"obligations": 0, "checked": 0, "skipped": 0, "failed": 0,
           "errors": 0, "failures": []}
    concrete_reads = [value for (op, _addr, value) in reference.trace
                      if op == "ld"]
    vc = _CollectVC()
    state = vcgen.SymState()
    state.regions["scratch"] = vcgen.Region(
        "scratch", T.const(SCRATCH_BASE), SCRATCH_SIZE,
        [T.const(0, 8)] * SCRATCH_SIZE)
    try:
        executor = vcgen.SymExec(
            program, vc, MMIOSpec(((DEV_BASE, DEV_BASE + DEV_SIZE),)),
            unroll_limit=64)
        executor.run(program["main"].body, state, lambda final: None,
                     context="fuzz-logic")
    except Exception as exc:  # solver budget, path explosion: recorded
        out["errors"] += 1
        out["error_detail"] = "%s: %s" % (type(exc).__name__, exc)
        return out
    out["obligations"] = len(vc.collected)
    for path, goal, trace, context in vc.collected:
        model: Dict[str, int] = {}
        reads = iter(concrete_reads)
        for event in trace:
            if isinstance(event, vcgen.SymEvent) and event.action == "MMIOREAD":
                try:
                    model[event.rets[0].attr] = next(reads)
                except StopIteration:
                    break
        try:
            if not all(T.evaluate(fact, model) for fact in path):
                out["skipped"] += 1
                continue
            holds = T.evaluate(goal, model)
        except KeyError:
            out["skipped"] += 1
            continue
        out["checked"] += 1
        if not holds:
            out["failed"] += 1
            if len(out["failures"]) < 5:
                out["failures"].append(context)
    return out


# -- the picklable per-seed worker and the campaign driver -------------------


def run_fuzz_seed(seed: int, config: Optional[dict] = None,
                  mutation: Optional[str] = None,
                  logic_check: bool = False,
                  layers: Sequence[str] = LAYERS) -> dict:
    """Generate the program for ``seed`` and run the differential oracle
    (optionally under an injected mutation). JSON-able and picklable:
    this is the `repro.logic.dispatch.parallel_call` work unit."""
    gen_config = GenConfig.from_dict(config)
    program = generate_program(seed, gen_config)
    result = {"seed": seed, "stmts": cmd_size(program["main"].body)}
    if mutation is None:
        result.update(run_differential(program, layers=layers))
    else:
        from .mutate import mutation_context

        with mutation_context(mutation):
            result.update(run_differential(program, layers=layers))
        result["mutation"] = mutation
    if logic_check and result["status"] == "ok":
        logic = logic_crosscheck(program, _run_interp(program))
        result["logic"] = logic
        if logic["failed"]:
            result["status"] = "divergence"
            result["divergence"] = {
                "layer": "logic", "kind": "obligation",
                "detail": "%d obligation(s) evaluate false: %s"
                % (logic["failed"], ", ".join(logic["failures"]))}
    return result


def run_campaign(seeds: Sequence[int], config: Optional[GenConfig] = None,
                 mutation: Optional[str] = None,
                 logic_sample: int = 0, jobs: int = 1,
                 time_budget: Optional[float] = None,
                 layers: Sequence[str] = LAYERS) -> dict:
    """Run the oracle over ``seeds`` (in parallel when ``jobs > 1``),
    optionally stopping early once ``time_budget`` seconds have elapsed.

    The report is fully deterministic for a fixed seed list (no wall
    times in it); per-layer timing lives in the obs counter registry.
    """
    from ..logic.dispatch import parallel_call

    config_doc = (config or GenConfig()).to_dict()
    logic_seeds = set(list(seeds)[:logic_sample])
    deadline = (time.monotonic() + time_budget
                if time_budget is not None else None)
    results: List[dict] = []
    batch = max(1, 2 * max(jobs, 1))
    for start in range(0, len(seeds), batch):
        if deadline is not None and time.monotonic() >= deadline:
            break
        chunk = list(seeds)[start:start + batch]
        kwargs_list = [{"seed": s, "config": config_doc,
                        "mutation": mutation,
                        "logic_check": s in logic_seeds,
                        "layers": tuple(layers)} for s in chunk]
        results.extend(parallel_call("repro.fuzz.oracle:run_fuzz_seed",
                                     kwargs_list, jobs=jobs))
    summary = {
        "programs": len(results),
        "divergences": sum(r["status"] == "divergence" for r in results),
        "invalid": sum(r["status"] == "invalid" for r in results),
        "logic_obligations": sum(r.get("logic", {}).get("obligations", 0)
                                 for r in results),
        "logic_checked": sum(r.get("logic", {}).get("checked", 0)
                             for r in results),
        "logic_failed": sum(r.get("logic", {}).get("failed", 0)
                            for r in results),
    }
    return {"format": "repro-fuzz-report", "version": 1,
            "config": config_doc, "mutation": mutation,
            "seeds": results, "summary": summary}
