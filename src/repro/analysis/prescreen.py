"""Abstract-interpretation prescreening of verification conditions.

`Prescreener` is the hook `repro.bedrock2.vcgen.VC` consults before the
solver (``verify --prescreen``): it mines the symbolic state's *path
condition* into interval and known-bits environments over whole terms,
then abstractly evaluates the goal with `repro.logic.intervals`. Goals
the abstraction already proves never reach bit-blasting or SAT.

Soundness argument (docs/static-analysis.md spells this out): every
fact mined is a logical consequence of the path conjunction, and the
interval/known-bits evaluation is a sound over-approximation of term
semantics, so ``decide_bool(goal) is True`` implies ``path ⊨ goal`` --
exactly what `S.check_valid(goal, hypotheses=path)` would conclude.
Because term DAGs record the whole dataflow history of each symbolic
value, evaluating the goal's DAG under path-derived facts subsumes a
flow-sensitive forward analysis of the function body, without ever
trusting facts the havocked loop states no longer guarantee.

The prescreener only ever *proves* goals (it never refutes), so
verification verdicts with and without it are identical by
construction; only the number of solver queries changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs
from ..logic import terms as T
from ..logic.intervals import BitsEnv, KnownBits, Range, decide_bool

_PRESCREENED = obs.counter("analysis.obligations_prescreened")
_MISSED = obs.counter("analysis.prescreen_misses")

#: Rounds of the relational-tightening pass over mined ``a < b`` /
#: ``b <= a`` facts (transitive chains in real path conditions are
#: short; two rounds already close ``i < num_words <= 380``).
_TIGHTEN_ROUNDS = 3


class _Facts:
    """Interval + known-bits facts about whole terms, mined from a path
    condition. Every recorded fact is implied by the path conjunction."""

    def __init__(self) -> None:
        self.env: Dict[T.Term, Range] = {}
        self.bits: BitsEnv = {}
        #: pairs (a, b) with ``a < b`` known (strict unsigned).
        self.lt: List[Tuple[T.Term, T.Term]] = []
        #: pairs (a, b) with ``a <= b`` known.
        self.le: List[Tuple[T.Term, T.Term]] = []

    # -- recording -----------------------------------------------------------

    def _is_word(self, t: T.Term) -> bool:
        return isinstance(t.sort, tuple)

    def set_range(self, t: T.Term, lo: int, hi: int) -> None:
        if t.is_const() or not self._is_word(t):
            return
        old_lo, old_hi = self.env.get(t, (0, (1 << t.width) - 1))
        lo, hi = max(lo, old_lo), min(hi, old_hi)
        if lo > hi:  # contradictory facts: the path is infeasible, any
            hi = lo  # sound-for-valid answer is acceptable
        self.env[t] = (lo, hi)

    def meet_bits(self, t: T.Term, kb: KnownBits) -> None:
        if t.is_const() or not self._is_word(t):
            return
        old = self.bits.get(t)
        self.bits[t] = kb if old is None else old.meet(kb)

    # -- mining --------------------------------------------------------------

    def mine(self, fact: T.Term) -> None:
        op = fact.op
        if op == "and":
            for arg in fact.args:
                self.mine(arg)
            return
        if op == "eq":
            self._mine_eq(fact.args[0], fact.args[1])
            return
        if op == "ult":
            a, b = fact.args
            if a.is_const():
                self.set_range(b, a.value + 1, (1 << b.width) - 1)
            elif b.is_const():
                self.set_range(a, 0, max(b.value - 1, 0))
            else:
                self.lt.append((a, b))
            return
        if op == "not":
            inner = fact.args[0]
            if inner.op == "ult":
                # not (a < b)  ==>  b <= a
                a, b = inner.args
                if a.is_const():
                    self.set_range(b, 0, a.value)
                elif b.is_const():
                    self.set_range(a, b.value, (1 << a.width) - 1)
                else:
                    self.le.append((b, a))
            elif inner.op == "eq":
                self._mine_ne(inner.args[0], inner.args[1])
            return
        if op == "or":
            self._mine_or(fact.args)
            return

    def _mine_eq(self, a: T.Term, b: T.Term) -> None:
        if b.is_const():
            a, b = b, a
        if not a.is_const():
            return
        value = a.value
        self.set_range(b, value, value)
        if self._is_word(b):
            self.meet_bits(b, KnownBits.from_const(value, b.width))
            # eq(x & m, c): the masked bits of x are known.
            if b.op == "band" and b.args[1].is_const():
                self.meet_bits(b.args[0],
                               KnownBits(b.args[0].width,
                                         b.args[1].value, value))
            elif b.op == "band" and b.args[0].is_const():
                self.meet_bits(b.args[1],
                               KnownBits(b.args[1].width,
                                         b.args[0].value, value))

    def _mine_ne(self, a: T.Term, b: T.Term) -> None:
        """Disequality only shaves range endpoints."""
        if b.is_const():
            a, b = b, a
        if not a.is_const() or not self._is_word(b):
            return
        value = a.value
        lo, hi = self.env.get(b, (0, (1 << b.width) - 1))
        if lo == value and lo < hi:
            self.set_range(b, lo + 1, hi)
        elif hi == value and lo < hi:
            self.set_range(b, lo, hi - 1)

    def _mine_or(self, disjuncts: Tuple[T.Term, ...]) -> None:
        """``x == c1 or x == c2 or ...`` pins x into the hull of the
        constants and the join of their bit patterns."""
        subject: Optional[T.Term] = None
        values: List[int] = []
        for d in disjuncts:
            if d.op != "eq":
                return
            a, b = d.args
            if b.is_const():
                a, b = b, a
            if not a.is_const() or b.is_const():
                return
            if subject is None:
                subject = b
            elif subject is not b:
                return
            values.append(a.value)
        if subject is None or not self._is_word(subject):
            return
        self.set_range(subject, min(values), max(values))
        kb = KnownBits.from_const(values[0], subject.width)
        for v in values[1:]:
            kb = kb.join(KnownBits.from_const(v, subject.width))
        self.meet_bits(subject, kb)

    # -- relational tightening ----------------------------------------------

    def tighten(self) -> None:
        """Propagate ``a < b`` / ``a <= b`` pairs through the ranges
        already recorded (closes transitive chains like
        ``i < num_words <= N`` into a concrete bound on ``i``)."""
        for _ in range(_TIGHTEN_ROUNDS):
            changed = False
            for a, b in self.lt:
                blo, bhi = self.env.get(b, (0, (1 << b.width) - 1))
                alo, ahi = self.env.get(a, (0, (1 << a.width) - 1))
                if bhi >= 1 and ahi > bhi - 1:
                    self.set_range(a, alo, bhi - 1)
                    changed = True
                if alo + 1 > blo:
                    self.set_range(b, alo + 1, bhi)
                    changed = True
            for a, b in self.le:
                blo, bhi = self.env.get(b, (0, (1 << b.width) - 1))
                alo, ahi = self.env.get(a, (0, (1 << a.width) - 1))
                if ahi > bhi:
                    self.set_range(a, alo, bhi)
                    changed = True
                if alo > blo:
                    self.set_range(b, alo, bhi)
                    changed = True
            if not changed:
                return


def mine_path(path: Tuple[T.Term, ...]) -> Tuple[Dict[T.Term, Range],
                                                 BitsEnv]:
    """Mine a path condition into (range env, known-bits env); every
    entry is a consequence of the conjunction of ``path``."""
    facts = _Facts()
    for fact in path:
        facts.mine(fact)
    facts.tighten()
    return facts.env, facts.bits


class Prescreener:
    """The ``prescreen`` hook for `repro.bedrock2.vcgen.VC`.

    Caches mined environments per path-condition tuple: symbolic
    execution proves many obligations under the same path, and terms are
    hash-consed, so the tuple is a cheap exact key.
    """

    def __init__(self) -> None:
        self.discharged = 0
        self.attempts = 0
        self._cache: Dict[Tuple[T.Term, ...],
                          Tuple[Dict[T.Term, Range], BitsEnv]] = {}

    def __call__(self, state: object, goal: T.Term) -> bool:
        self.attempts += 1
        if goal is T.TRUE:
            # Constant-folded goals (e.g. MMIO obligations on literal
            # addresses) are proved by construction.
            self.discharged += 1
            _PRESCREENED.inc()
            return True
        path = tuple(getattr(state, "path", ()))
        cached = self._cache.get(path)
        if cached is None:
            cached = mine_path(path)
            self._cache[path] = cached
        env, bits = cached
        if decide_bool(goal, env=dict(env), bits_env=bits) is True:
            self.discharged += 1
            _PRESCREENED.inc()
            return True
        _MISSED.inc()
        return False
