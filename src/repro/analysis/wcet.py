"""Static WCET and stack-bound analysis over recovered RV32IM CFGs.

The paper's headline number is a *measured* latency; this module proves
the matching static claims: a worst-case execution time (in successful
pipeline-rule firings, the repo's cycle currency -- see
`repro.analysis.costmodel`) and a stack high-water bound, both derived
from nothing but the compiled image and its symbol table.

The analysis is classic aiT-style abstract-interpretation WCET, sized
for this compiler's output:

1. **Loop bounds.**  Natural loops are found via dominators.  The eDSL
   only emits fuel-counter loops -- ``i := K; while i { ...; i := i - 1 }``
   (with optional ``i := 0`` early exits) -- so bounds come from two
   facts the binary analysis already proves: the interval upper bound of
   the test register on loop entry (from `repro.analysis.binlint`'s
   stabilized states) and a syntactic decrement-by-one proof along every
   back-edge path, checked with a small affine symbolic walk that sees
   through copies, stack spills, and calls (callee-saved discipline is
   binlint's B2A1xx obligation).  Loops the walk cannot bound (e.g. the
   LAN9250 drain loop, bounded by a data-dependent word count) accept
   committed flow-fact annotations from ``timing-budgets.json``.
2. **Costs.**  Per-block cost is ``base_cpi * instructions`` plus the
   full mispredict penalty on every control-transfer terminator (the BTB
   starts cold and is never assumed trained).  Loops collapse innermost
   first -- ``(bound + 1) * worst internal path`` -- then the function
   body is a DAG and WCET is its longest path; calls add the callee's
   WCET, callees are processed in reverse call-graph order, and
   recursion is rejected (B2A202).
3. **Server programs.**  The shipped apps never terminate: ``main`` ends
   in an exit-less event loop.  Such a loop is collapsed into a terminal
   node, splitting the claim into a *startup* WCET (entry to loop
   header) and a *per-iteration* WCET, each budgeted separately.  The
   ``jal x0, .`` halt spin is the other terminal: programs that return
   (every fuzz program) get a plain whole-program WCET to halt.
4. **Stack.**  Binlint's states give the stack pointer as an exact
   entry-relative offset at every pc; the per-function maximum is the
   frame, and the deepest call-graph path gives the program bound,
   cross-checkable against the compiler's own ``stack_bound`` metadata.

Findings use codes B2A201 (loop/control not provably bounded), B2A202
(recursion), B2A203 (WCET over budget), B2A204 (stack bound over budget
or not provable) and B2A205 (cost-model drift vs the live pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from .. import obs
from ..riscv.insts import I_ARITH, I_SHIFT, R_TYPE, Instr
from .binlint import (ARG_REGS, LOAD_SIZES, SCRATCH_REGS, STORE_SIZES,
                      AVal, BinState, BinaryLintConfig, FunctionAnalysis,
                      _aval_add, _aval_sub, _binop, _const, _plain, _signed,
                      _top, _with_reg, _I_TO_BEDROCK, _R_TO_BEDROCK,
                      _SHIFT_TO_BEDROCK, analyze_image)
from .cfg import RA, SP, BasicBlock, BinFunction, BinaryCFG, call_graph, \
    recover_cfg
from .costmodel import CostModel, check_pipeline_drift, pipeline_cost_model
from .domains import MASK, AbstractWord
from .lint import Diagnostic

_FUNCTIONS = obs.counter("analysis.wcet_functions")
_LOOPS = obs.counter("analysis.wcet_loops")
_LOOPS_BOUNDED = obs.counter("analysis.wcet_loops_bounded")

#: Control-transfer terminator kinds that pay the mispredict penalty.
CT_KINDS = frozenset(("branch", "jump", "call", "return", "indirect"))

#: Loop-bound provenance values.
INFERRED = "inferred"
ANNOTATED = "annotated"
SERVER = "server"
SPIN = "spin"
UNBOUNDED = "unbounded"


# ---------------------------------------------------------------------------
# Configuration and results


@dataclass(frozen=True)
class TimingConfig:
    """Everything the analyzer is parameterized by: the platform memory
    map (for the underlying binlint fixpoint), the calibrated cost
    model, and committed flow-fact loop bounds keyed by function name
    and per-function loop ordinal (loops sorted by header pc)."""

    lint: BinaryLintConfig
    model: CostModel
    loop_bounds: Mapping[str, Mapping[int, int]] = \
        field(default_factory=dict)
    #: Inferred bounds above this are treated as not-a-bound: a widened
    #: interval proves "at most 2**32 iterations", which is never the
    #: fuel idiom and would only hide a missing annotation.
    max_inferred_bound: int = 1 << 20
    #: Cap on acyclic back-edge paths enumerated per loop.
    max_paths: int = 128

    def annotated(self, function: str, ordinal: int) -> Optional[int]:
        return dict(self.loop_bounds.get(function, {})).get(ordinal)


@dataclass
class LoopTiming:
    """One natural loop's verdict."""

    function: str
    ordinal: int
    header: int
    bound: Optional[int]
    source: str  # inferred | annotated | server | spin | unbounded
    iteration_cycles: Optional[int]
    total_cycles: Optional[int]

    def to_json(self) -> Dict[str, object]:
        return {"function": self.function, "ordinal": self.ordinal,
                "header": self.header, "bound": self.bound,
                "source": self.source,
                "iteration_cycles": self.iteration_cycles,
                "total_cycles": self.total_cycles}


@dataclass
class FunctionTiming:
    """Per-function bounds. ``wcet_cycles`` is entry to return (or halt
    spin); server functions carry ``startup``/``iteration`` instead."""

    name: str
    wcet_cycles: Optional[int]
    startup_cycles: Optional[int]
    iteration_cycles: Optional[int]
    frame_bytes: Optional[int]
    total_stack_bytes: Optional[int]
    loops: List[LoopTiming] = field(default_factory=list)

    @property
    def is_server(self) -> bool:
        return self.startup_cycles is not None

    def to_json(self) -> Dict[str, object]:
        return {"name": self.name, "wcet_cycles": self.wcet_cycles,
                "startup_cycles": self.startup_cycles,
                "iteration_cycles": self.iteration_cycles,
                "frame_bytes": self.frame_bytes,
                "total_stack_bytes": self.total_stack_bytes,
                "loops": [lp.to_json() for lp in self.loops]}


@dataclass
class TimingReport:
    """The whole-program verdict: either a terminating program with one
    ``wcet_cycles`` number, or a server program with ``startup_cycles``
    plus ``iteration_cycles``.  ``fill_cycles`` is the cold-start icache
    fill the deployment adds on top (it depends on the icache size, not
    the binary)."""

    entry: str
    model: CostModel
    functions: Dict[str, FunctionTiming]
    wcet_cycles: Optional[int]
    startup_cycles: Optional[int]
    iteration_cycles: Optional[int]
    fill_cycles: int
    stack_bound: Optional[int]
    compiler_stack_bound: Optional[int]
    findings: List[Diagnostic] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "entry": self.entry,
            "model": self.model.to_json(),
            "wcet_cycles": self.wcet_cycles,
            "startup_cycles": self.startup_cycles,
            "iteration_cycles": self.iteration_cycles,
            "fill_cycles": self.fill_cycles,
            "stack_bound": self.stack_bound,
            "compiler_stack_bound": self.compiler_stack_bound,
            "functions": {name: fn.to_json()
                          for name, fn in sorted(self.functions.items())},
            "findings": [d.to_json() for d in self.findings],
        }


# ---------------------------------------------------------------------------
# Natural loops


@dataclass
class _Loop:
    header: int
    blocks: FrozenSet[int]
    exits: Tuple[Tuple[int, int], ...]  # (src, dst) edges leaving the loop


def _reachable(fn: BinFunction, analysis: FunctionAnalysis) -> Set[int]:
    """Blocks the binlint fixpoint actually reached.  Using semantic
    (not just structural) reachability matters twice over: dead branches
    -- ``if (0)`` arms, the epilogue after a ``while (1)`` -- must not
    contribute phantom WCET paths, and a dead loop must not be mistaken
    for a server loop."""
    seen: Set[int] = set()
    stack = [fn.entry]
    while stack:
        b = stack.pop()
        if b in seen or b not in fn.blocks:
            continue
        if analysis.states.get(fn.blocks[b].instrs[0][0]) is None:
            continue
        seen.add(b)
        stack.extend(fn.blocks[b].succs)
    return seen


def _preds_of(fn: BinFunction, nodes: Set[int]) -> Dict[int, Set[int]]:
    preds: Dict[int, Set[int]] = {n: set() for n in nodes}
    for n in nodes:
        for s in fn.blocks[n].succs:
            if s in nodes:
                preds[s].add(n)
    return preds


def _dominators(fn: BinFunction, nodes: Set[int],
                preds: Dict[int, Set[int]]) -> Dict[int, Set[int]]:
    """Iterative set-based dominator fixpoint (functions are small)."""
    order: List[int] = []
    seen: Set[int] = set()

    def visit(b: int) -> None:
        stack = [(b, iter(fn.blocks[b].succs))]
        seen.add(b)
        while stack:
            node, it = stack[-1]
            advanced = False
            for s in it:
                if s in nodes and s not in seen:
                    seen.add(s)
                    stack.append((s, iter(fn.blocks[s].succs)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(fn.entry)
    rpo = list(reversed(order))
    dom: Dict[int, Set[int]] = {n: set(nodes) for n in nodes}
    dom[fn.entry] = {fn.entry}
    changed = True
    while changed:
        changed = False
        for n in rpo:
            if n == fn.entry:
                continue
            ps = [dom[p] for p in preds[n]]
            new = set.intersection(*ps) if ps else set()
            new = new | {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def _natural_loops(fn: BinFunction, nodes: Set[int],
                   preds: Dict[int, Set[int]],
                   dom: Dict[int, Set[int]]) -> List[_Loop]:
    bodies: Dict[int, Set[int]] = {}
    for u in nodes:
        for h in fn.blocks[u].succs:
            if h in nodes and h in dom[u]:  # back edge u -> h
                body = bodies.setdefault(h, {h})
                stack = [u]
                while stack:
                    b = stack.pop()
                    if b in body:
                        continue
                    body.add(b)
                    stack.extend(p for p in preds[b])
    loops = []
    for h, body in bodies.items():
        exits = tuple(sorted(
            (src, dst) for src in body
            for dst in fn.blocks[src].succs
            if dst in nodes and dst not in body))
        loops.append(_Loop(header=h, blocks=frozenset(body), exits=exits))
    loops.sort(key=lambda lp: (len(lp.blocks), lp.header))
    return loops


def _is_spin(fn: BinFunction, loop: _Loop) -> bool:
    """The halt idiom: a single ``jal x0, .`` block jumping to itself."""
    if len(loop.blocks) != 1 or loop.exits:
        return False
    block = fn.blocks[loop.header]
    return (block.kind == "jump" and block.target == block.start
            and len(block.instrs) == 1)


# ---------------------------------------------------------------------------
# Interval mini-interpreter (sound re-application of binlint's transfer,
# used to push stabilized in-states to a block's exit)


def _step_plain(pc: int, instr: Instr, state: BinState) -> BinState:
    name = instr.name
    if name in R_TYPE:
        a, b = state.regs[instr.rs1 or 0], state.regs[instr.rs2 or 0]
        if name == "add":
            val = _aval_add(a, b)
        elif name == "sub":
            val = _aval_sub(a, b)
        else:
            op = _R_TO_BEDROCK.get(name)
            val = (_top() if op is None
                   else AVal(None, _binop(op, _plain(a), _plain(b))))
        return _with_reg(state, instr.rd or 0, val)
    if name in I_ARITH:
        a = state.regs[instr.rs1 or 0]
        imm = _const(instr.imm or 0)
        if name == "addi":
            val = _aval_add(a, imm)
        else:
            val = AVal(None, _binop(_I_TO_BEDROCK[name], _plain(a),
                                    imm.word))
        return _with_reg(state, instr.rd or 0, val)
    if name in I_SHIFT:
        a = state.regs[instr.rs1 or 0]
        val = AVal(None, _binop(_SHIFT_TO_BEDROCK[name], _plain(a),
                                AbstractWord.const(instr.imm or 0)))
        return _with_reg(state, instr.rd or 0, val)
    if name == "lui":
        return _with_reg(state, instr.rd or 0,
                         _const(((instr.imm or 0) << 12) & MASK))
    if name == "auipc":
        return _with_reg(state, instr.rd or 0,
                         _const((pc + ((instr.imm or 0) << 12)) & MASK))
    if name in LOAD_SIZES:
        addr = _aval_add(state.regs[instr.rs1 or 0],
                         _const(instr.imm or 0))
        val = _top()
        if (addr.base == SP and LOAD_SIZES[name] == 4
                and addr.word.is_const() and addr.word.lo % 4 == 0):
            val = state.slots.get(_signed(addr.word.lo), _top())
        elif name == "lbu":
            val = AVal(None, AbstractWord(0, 0xFF))
        elif name == "lhu":
            val = AVal(None, AbstractWord(0, 0xFFFF))
        return _with_reg(state, instr.rd or 0, val)
    if name in STORE_SIZES:
        addr = _aval_add(state.regs[instr.rs1 or 0],
                         _const(instr.imm or 0))
        if addr.base != SP:
            # Non-sp stores never alias the frame (binlint's checked
            # store discipline); slots survive.
            return state
        slots = dict(state.slots)
        size = STORE_SIZES[name]
        if addr.word.is_const():
            off = _signed(addr.word.lo)
            if size == 4 and off % 4 == 0:
                slots[off] = state.regs[instr.rs2 or 0]
            else:
                for k in list(slots):
                    if k < off + size and off < k + 4:
                        del slots[k]
        else:
            slots.clear()
        return BinState(regs=state.regs, slots=slots,
                        defined=state.defined)
    if name in ("jal", "jalr"):
        return _with_reg(state, instr.rd or 0, _const((pc + 4) & MASK))
    return state  # branches write nothing


def _havoc_call(state: BinState) -> BinState:
    regs = list(state.regs)
    for r in ARG_REGS + SCRATCH_REGS:
        regs[r] = _top()
    return BinState(regs=tuple(regs), slots=state.slots,
                    defined=state.defined)


def _block_out(analysis: FunctionAnalysis,
               block: BasicBlock) -> Optional[BinState]:
    """The stabilized state *after* a block, from the recorded in-states."""
    state = analysis.states.get(block.instrs[0][0])
    if state is None:
        return None
    for pc, instr in block.instrs:
        state = _step_plain(pc, instr, state)
    if block.kind == "call":
        state = _havoc_call(state)
    return state


# ---------------------------------------------------------------------------
# Affine symbolic walk: decrement proofs along back-edge paths

#: Affine values: ``("c", k)`` is the constant k; ``("a", base, k)`` is
#: the loop-header-entry value of ``base`` (a register number or
#: ``("slot", off)`` frame slot) plus k.  ``None`` is top.
_Aff = Optional[Tuple[object, ...]]


class _AffState:
    __slots__ = ("regs", "slots", "hazy")

    def __init__(self) -> None:
        self.regs: List[_Aff] = [("a", r, 0) for r in range(32)]
        self.regs[0] = ("c", 0)
        self.slots: Dict[int, _Aff] = {}
        self.hazy = False  # once true, untouched slots read as top

    def copy(self) -> "_AffState":
        st = _AffState.__new__(_AffState)
        st.regs = list(self.regs)
        st.slots = dict(self.slots)
        st.hazy = self.hazy
        return st

    def read_slot(self, off: int) -> _Aff:
        if off in self.slots:
            return self.slots[off]
        return None if self.hazy else ("a", ("slot", off), 0)


def _aff_add(v: _Aff, k: int) -> _Aff:
    if v is None:
        return None
    if v[0] == "c":
        return ("c", (int(v[1]) + k) & MASK)
    return ("a", v[1], int(v[2]) + k)


def _aff_concrete(name: str, a: _Aff, b: _Aff) -> _Aff:
    """Constant-fold one ALU op through the word domain's transfer."""
    if (a is None or b is None or a[0] != "c" or b[0] != "c"):
        return None
    op = (_R_TO_BEDROCK.get(name) or _I_TO_BEDROCK.get(name)
          or _SHIFT_TO_BEDROCK.get(name))
    if op is None:
        return None
    out = _binop(op, AbstractWord.const(int(a[1])),
                 AbstractWord.const(int(b[1]))).as_const()
    return None if out is None else ("c", out)


def _aff_step(st: _AffState, pc: int, instr: Instr) -> None:
    name = instr.name

    def write(rd: Optional[int], val: _Aff) -> None:
        if rd:
            st.regs[rd] = val

    if name == "addi":
        write(instr.rd, _aff_add(st.regs[instr.rs1 or 0],
                                 _signed((instr.imm or 0) & MASK)))
    elif name in I_ARITH or name in I_SHIFT:
        write(instr.rd, _aff_concrete(name, st.regs[instr.rs1 or 0],
                                      ("c", (instr.imm or 0) & MASK)))
    elif name == "add":
        a, b = st.regs[instr.rs1 or 0], st.regs[instr.rs2 or 0]
        if b is not None and b[0] == "c":
            write(instr.rd, _aff_add(a, _signed(int(b[1]))))
        elif a is not None and a[0] == "c":
            write(instr.rd, _aff_add(b, _signed(int(a[1]))))
        else:
            write(instr.rd, None)
    elif name == "sub":
        a, b = st.regs[instr.rs1 or 0], st.regs[instr.rs2 or 0]
        if b is not None and b[0] == "c":
            write(instr.rd, _aff_add(a, -_signed(int(b[1]))))
        else:
            write(instr.rd, _aff_concrete(name, a, b))
    elif name in R_TYPE:
        write(instr.rd, _aff_concrete(name, st.regs[instr.rs1 or 0],
                                      st.regs[instr.rs2 or 0]))
    elif name == "lui":
        write(instr.rd, ("c", ((instr.imm or 0) << 12) & MASK))
    elif name == "auipc":
        write(instr.rd, ("c", (pc + ((instr.imm or 0) << 12)) & MASK))
    elif name in LOAD_SIZES:
        base = st.regs[instr.rs1 or 0]
        val: _Aff = None
        if (name == "lw" and base is not None and base[0] == "a"
                and base[1] == SP):
            val = st.read_slot(int(base[2]) + _signed((instr.imm or 0)
                                                      & MASK))
        write(instr.rd, val)
    elif name in STORE_SIZES:
        base = st.regs[instr.rs1 or 0]
        if base is not None and base[0] == "a" and base[1] == SP:
            off = int(base[2]) + _signed((instr.imm or 0) & MASK)
            if name == "sw" and off % 4 == 0:
                st.slots[off] = st.regs[instr.rs2 or 0]
            else:
                size = STORE_SIZES[name]
                for k in list(st.slots):
                    if k < off + size and off < k + 4:
                        st.slots[k] = None
                st.hazy = True
        # Non-sp stores never alias the frame (see _step_plain).
    elif name == "jal":
        write(instr.rd, ("c", (pc + 4) & MASK))
    # branches and jalr terminators are handled by the walker


def _aff_call(st: _AffState) -> None:
    for r in ARG_REGS + SCRATCH_REGS:
        st.regs[r] = None


def _aff_block(st: _AffState, block: BasicBlock,
               include_terminator: bool) -> None:
    instrs = block.instrs if include_terminator else block.instrs[:-1]
    for pc, instr in instrs:
        _aff_step(st, pc, instr)
    if include_terminator and block.kind == "call":
        _aff_call(st)


# ---------------------------------------------------------------------------
# Loop bound inference


@dataclass
class _LoopSummary:
    """A processed loop, ready to be collapsed into a super-node."""

    loop: _Loop
    bound: Optional[int]
    source: str
    iteration: Optional[int]  # worst internal path, firings
    total: Optional[int]  # (bound + 1) * iteration
    writes: FrozenSet[int]  # registers the loop may modify
    #: Frame byte ranges the loop may store to, as (offset, size) pairs
    #: relative to the function's stable post-prologue sp; None when sp
    #: itself moves inside the loop and offsets are incomparable.
    sp_stores: Optional[FrozenSet[Tuple[int, int]]]


def _loop_writes(fn: BinFunction, loop: _Loop
                 ) -> Tuple[FrozenSet[int], Optional[FrozenSet[Tuple[int,
                                                                     int]]]]:
    writes: Set[int] = set()
    stores: Set[Tuple[int, int]] = set()
    sp_moves = False
    for b in loop.blocks:
        block = fn.blocks[b]
        for _, instr in block.instrs:
            if instr.name in STORE_SIZES:
                if instr.rs1 == SP:
                    stores.add((_signed((instr.imm or 0) & MASK),
                                STORE_SIZES[instr.name]))
                # Non-sp stores never alias the frame (binlint's checked
                # store discipline).
            elif instr.rd:
                writes.add(instr.rd)
                sp_moves = sp_moves or instr.rd == SP
        if block.kind == "call":
            writes.update(ARG_REGS + SCRATCH_REGS + (RA,))
    return (frozenset(writes - {0}),
            None if sp_moves else frozenset(stores))


def _exit_test(fn: BinFunction, loop: _Loop,
               exits: Tuple[Tuple[int, int], ...]
               ) -> Optional[Tuple[int, int]]:
    """``(test_reg, body_succ)`` when the loop is a single-exit header
    test of the fuel shape: ``beq rt, x0, out`` / ``bne rt, x0, in``."""
    if not exits or any(src != loop.header for src, _ in exits):
        return None
    header = fn.blocks[loop.header]
    if header.kind != "branch":
        return None
    _, term = header.terminator
    if term.name not in ("beq", "bne"):
        return None
    if term.rs2 == 0 and term.rs1 not in (None, 0):
        rt = term.rs1
    elif term.rs1 == 0 and term.rs2 not in (None, 0):
        rt = term.rs2
    else:
        return None
    in_succs = [s for s in header.succs if s in loop.blocks]
    out_succs = [s for s in header.succs if s not in loop.blocks]
    if len(in_succs) != 1 or not out_succs:
        return None
    target = header.target
    taken_in = target in loop.blocks
    # Exit must be on the ==0 side: beq exits when taken, bne when not.
    exit_on_zero = (not taken_in) if term.name == "beq" else taken_in
    if not exit_on_zero:
        return None
    assert rt is not None
    return rt, in_succs[0]


def _entry_bound(fn: BinFunction, loop: _Loop, rt: int,
                 analysis: FunctionAnalysis,
                 preds: Dict[int, Set[int]],
                 config: TimingConfig) -> Optional[int]:
    """Unsigned upper bound of the test register at first loop entry,
    from the stabilized preheader out-states pushed through the header."""
    best: Optional[int] = None
    preheaders = [p for p in preds.get(loop.header, set())
                  if p not in loop.blocks]
    if not preheaders:
        return None
    for p in preheaders:
        state = _block_out(analysis, fn.blocks[p])
        if state is None:
            continue  # unreachable preheader constrains nothing
        header = fn.blocks[loop.header]
        for pc, instr in header.instrs[:-1]:
            state = _step_plain(pc, instr, state)
        w = _plain(state.regs[rt])
        if w.hi > config.max_inferred_bound:
            return None
        best = w.hi if best is None else max(best, w.hi)
    return best


def _decrement_holds(fn: BinFunction, loop: _Loop, rt: int, body: int,
                     inner: Dict[int, _LoopSummary],
                     config: TimingConfig) -> bool:
    """Every acyclic back-edge path must leave the next header test at
    ``previous - 1`` (same affine base) or at the constant 0."""
    header = fn.blocks[loop.header]
    start = _AffState()
    _aff_block(start, header, include_terminator=False)
    rt0 = start.regs[rt]
    if rt0 is None:
        return False
    budget = [config.max_paths]

    def finish(st: _AffState) -> bool:
        env = st.copy()
        _aff_block(env, header, include_terminator=False)
        rt1 = env.regs[rt]
        if rt1 == ("c", 0):
            return True
        return (rt1 is not None and rt0 is not None and rt1[0] == "a"
                and rt0[0] == "a" and rt1[1] == rt0[1]
                and int(rt1[2]) == int(rt0[2]) - 1)

    def walk(b: int, st: _AffState, on_path: FrozenSet[int]) -> bool:
        if budget[0] <= 0:
            return False
        if b == loop.header:
            budget[0] -= 1
            return finish(st)
        if b not in loop.blocks or b in on_path:
            # Left the loop (exit paths impose nothing) or met a cycle
            # not passing the header (irreducible: give up).
            if b in on_path:
                budget[0] = 0
                return False
            budget[0] -= 1
            return True
        summary = inner.get(b)
        if summary is not None:
            env = st.copy()
            for r in summary.writes:
                env.regs[r] = None
            if summary.sp_stores is None:
                env.slots.clear()
                env.hazy = True
            else:
                # Kill only the word slots the inner loop can overlap;
                # the outer counter's spill slot survives untouched.
                for off, size in summary.sp_stores:
                    for k in range(off - 3, off + size):
                        if k % 4 == 0:
                            env.slots[k] = None
            dests = {dst for _, dst in summary.loop.exits}
            return all(walk(d, env, on_path | summary.loop.blocks)
                       for d in sorted(dests))
        block = fn.blocks[b]
        env = st.copy()
        _aff_block(env, block, include_terminator=True)
        succs = [s for s in block.succs]
        if not succs:
            budget[0] -= 1
            return True  # dead end: no back edge taken on this path
        return all(walk(s, env, on_path | {b}) for s in succs)

    # The header's own terminator state applies to the body successor.
    st = start.copy()
    ok = walk(body, st, frozenset({loop.header}))
    return ok and budget[0] > 0


# ---------------------------------------------------------------------------
# Per-function WCET


def _node_cost(fn: BinFunction, b: int, model: CostModel,
               cfg: BinaryCFG,
               done: Mapping[str, FunctionTiming]) -> Optional[int]:
    """Firings to retire block ``b`` once, including a called function's
    WCET; None when not statically bounded."""
    block = fn.blocks[b]
    cost = model.block_cost(len(block.instrs), block.kind in CT_KINDS)
    if block.kind == "call":
        callee = cfg.entries.get(block.target or -1)
        if callee is None:
            return None
        timing = done.get(callee)
        if timing is None or timing.wcet_cycles is None:
            return None
        cost += timing.wcet_cycles
    return cost


def _callee_of(fn: BinFunction, b: int, cfg: BinaryCFG) -> Optional[str]:
    block = fn.blocks[b]
    if block.kind != "call":
        return None
    return cfg.entries.get(block.target or -1)


@dataclass
class _PathVal:
    """Longest-path result from one node: cost to a return/halt
    terminal (None when unreachable), cost to a server terminal (None
    when none), worst reachable server iteration, and whether any
    reachable path is unbounded."""

    ret: Optional[int] = None
    srv: Optional[int] = None
    iter_: Optional[int] = None
    unbounded: bool = False


def _max_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _shift(v: Optional[int], by: int) -> Optional[int]:
    return None if v is None else v + by


class _FunctionWcet:
    """Collapses loops innermost-first, then takes DAG longest paths."""

    def __init__(self, fn: BinFunction, analysis: FunctionAnalysis,
                 cfg: BinaryCFG, config: TimingConfig,
                 done: Mapping[str, FunctionTiming],
                 findings: List[Diagnostic]):
        self.fn = fn
        self.analysis = analysis
        self.cfg = cfg
        self.config = config
        self.done = done
        self.findings = findings
        self.nodes = _reachable(fn, analysis)
        self.preds = _preds_of(fn, self.nodes)
        self.loops: List[_Loop] = []
        self.summaries: Dict[int, _LoopSummary] = {}
        self.loop_rows: List[LoopTiming] = []

    def _report(self, code: str, message: str) -> None:
        diag = Diagnostic(code=code, function=self.fn.name, message=message)
        if not self.config.lint.suppressed(diag):
            self.findings.append(diag)

    # -- loops ----------------------------------------------------------

    def _live_exits(self, loop: _Loop) -> Tuple[Tuple[int, int], ...]:
        """Exit edges whose destination binlint's fixpoint reached.  A
        ``while (1)`` compiles to a real conditional on a constant-1
        register, so its exit edge exists structurally but the exit
        block is unreachable in the stabilized states -- dropping such
        edges is what turns the event loop into a server loop."""
        return tuple(
            (src, dst) for src, dst in loop.exits
            if self.analysis.states.get(
                self.fn.blocks[dst].instrs[0][0]) is not None)

    def _bound_loop(self, loop: _Loop, ordinal: int,
                    inner: Dict[int, _LoopSummary]
                    ) -> Tuple[Optional[int], str]:
        if _is_spin(self.fn, loop):
            return None, SPIN
        annotated = self.config.annotated(self.fn.name, ordinal)
        if annotated is not None:
            return annotated, ANNOTATED
        live = self._live_exits(loop)
        if not live:
            return None, SERVER
        test = _exit_test(self.fn, loop, live)
        if test is None:
            return None, UNBOUNDED
        rt, body = test
        bound = _entry_bound(self.fn, loop, rt, self.analysis, self.preds,
                             self.config)
        if bound is None:
            return None, UNBOUNDED
        if bound == 0:
            return 0, INFERRED  # zero-trip: never entered
        if not _decrement_holds(self.fn, loop, rt, body, inner,
                                self.config):
            return None, UNBOUNDED
        return bound, INFERRED

    def _iteration_cost(self, loop: _Loop,
                        inner: Dict[int, _LoopSummary]) -> Optional[int]:
        """Longest acyclic path from the header through the loop body
        (back to the header or out of an exit), per iteration."""
        memo: Dict[int, Optional[int]] = {}
        on_stack: Set[int] = set()

        def walk(b: int) -> Optional[int]:
            if b in memo:
                return memo[b]
            if b in on_stack:
                return None  # irreducible cycle: not bounded
            on_stack.add(b)
            summary = inner.get(b)
            if summary is not None and b != loop.header:
                cost = summary.total
                dests = {dst for _, dst in summary.loop.exits
                         if dst in loop.blocks and dst != loop.header}
            else:
                # A never-returning (server) callee inside the loop
                # comes back None from _node_cost: the iteration cannot
                # complete, which is exactly what None means here.
                cost = _node_cost(self.fn, b, self.config.model, self.cfg,
                                  self.done)
                dests = {s for s in self.fn.blocks[b].succs
                         if s in loop.blocks and s != loop.header}
            out: Optional[int]
            if cost is None:
                out = None
            else:
                best = 0
                for d in sorted(dests):
                    sub = walk(d)
                    if sub is None:
                        best = -1
                        break
                    best = max(best, sub)
                out = None if best < 0 else cost + best
            on_stack.discard(b)
            memo[b] = out
            return out

        return walk(loop.header)

    def _process_loops(self) -> None:
        dom = _dominators(self.fn, self.nodes, self.preds)
        self.loops = _natural_loops(self.fn, self.nodes, self.preds, dom)
        by_header = sorted(self.loops, key=lambda lp: lp.header)
        ordinals = {lp.header: i for i, lp in enumerate(by_header)}
        for loop in self.loops:  # innermost first (sorted by size)
            _LOOPS.inc()
            inner = {h: s for h, s in self.summaries.items()
                     if h in loop.blocks and h != loop.header}
            ordinal = ordinals[loop.header]
            bound, source = self._bound_loop(loop, ordinal, inner)
            iteration = self._iteration_cost(loop, inner)
            if source == SPIN:
                total: Optional[int] = 0
            elif bound is None or iteration is None:
                total = None
            else:
                total = (bound + 1) * iteration
            if source == UNBOUNDED:
                self._report(
                    "B2A201",
                    "loop at 0x%04x (ordinal %d): iteration bound not "
                    "inferred and no flow-fact annotation committed"
                    % (loop.header, ordinal))
            elif bound is not None:
                _LOOPS_BOUNDED.inc()
            writes, sp_stores = _loop_writes(self.fn, loop)
            self.summaries[loop.header] = _LoopSummary(
                loop=loop, bound=bound, source=source, iteration=iteration,
                total=total, writes=writes, sp_stores=sp_stores)
            self.loop_rows.append(LoopTiming(
                function=self.fn.name, ordinal=ordinal, header=loop.header,
                bound=bound, source=source, iteration_cycles=iteration,
                total_cycles=total))
        self.loop_rows.sort(key=lambda row: row.ordinal)

    # -- whole function -------------------------------------------------

    def _outermost(self) -> Dict[int, _LoopSummary]:
        """block start -> the outermost loop containing it."""
        out: Dict[int, _LoopSummary] = {}
        for loop in sorted(self.loops, key=lambda lp: -len(lp.blocks)):
            summary = self.summaries[loop.header]
            for b in loop.blocks:
                out.setdefault(b, summary)
        return out

    def run(self) -> FunctionTiming:
        _FUNCTIONS.inc()
        self._process_loops()
        outermost = self._outermost()
        memo: Dict[int, _PathVal] = {}
        on_stack: Set[int] = set()

        def walk(b: int) -> _PathVal:
            if b in memo:
                return memo[b]
            if b in on_stack:
                return _PathVal(unbounded=True)
            on_stack.add(b)
            val = self._walk_node(b, outermost, walk)
            on_stack.discard(b)
            memo[b] = val
            return val

        entry = walk(self.fn.entry)
        if entry.unbounded and entry.srv is None:
            # Per-loop B2A201s already explain bounded-loop failures;
            # cover the structural cases (fall-off, indirect, callee).
            self._report(
                "B2A201", "whole-function WCET is not statically bounded")
        wcet = None if entry.unbounded else entry.ret
        startup = entry.srv
        iteration = entry.iter_
        if entry.unbounded:
            startup = iteration = None
        return FunctionTiming(
            name=self.fn.name, wcet_cycles=wcet, startup_cycles=startup,
            iteration_cycles=iteration, frame_bytes=None,
            total_stack_bytes=None, loops=self.loop_rows)

    def _walk_node(self, b: int, outermost: Dict[int, _LoopSummary],
                   walk) -> _PathVal:
        summary = outermost.get(b)
        if summary is not None:
            if b != summary.loop.header:
                return _PathVal(unbounded=True)  # irreducible entry
            if summary.source == SPIN:
                return _PathVal(ret=0)
            if summary.source == SERVER:
                if summary.iteration is None:
                    return _PathVal(unbounded=True)
                return _PathVal(srv=0, iter_=summary.iteration)
            if summary.total is None:
                return _PathVal(unbounded=True)
            out = _PathVal()
            for _, dst in summary.loop.exits:
                if dst not in self.nodes:
                    continue
                sub = walk(dst)
                out.ret = _max_opt(out.ret, sub.ret)
                out.srv = _max_opt(out.srv, sub.srv)
                out.iter_ = _max_opt(out.iter_, sub.iter_)
                out.unbounded = out.unbounded or sub.unbounded
            out.ret = _shift(out.ret, summary.total)
            out.srv = _shift(out.srv, summary.total)
            return out

        block = self.fn.blocks[b]
        cost = self.config.model.block_cost(len(block.instrs),
                                            block.kind in CT_KINDS)
        if block.kind == "call":
            callee = _callee_of(self.fn, b, self.cfg)
            timing = self.done.get(callee) if callee else None
            if timing is None:
                return _PathVal(unbounded=True)
            if timing.is_server:
                if timing.wcet_cycles is not None:
                    # A callee that may return *or* serve forever is not
                    # something this collapse can price; reject it.
                    return _PathVal(unbounded=True)
                # The call never returns: this node is a server terminal.
                assert timing.startup_cycles is not None
                return _PathVal(srv=cost + timing.startup_cycles,
                                iter_=timing.iteration_cycles)
            if timing.wcet_cycles is None:
                return _PathVal(unbounded=True)
            cost += timing.wcet_cycles
        if block.kind == "return":
            return _PathVal(ret=cost)
        if block.kind == "indirect":
            return _PathVal(unbounded=True)
        succs = [s for s in block.succs if s in self.nodes]
        if not succs:
            # Fall-off / invalid target: control leaves the model.
            return _PathVal(unbounded=True)
        out = _PathVal()
        for s in succs:
            sub = walk(s)
            out.ret = _max_opt(out.ret, sub.ret)
            out.srv = _max_opt(out.srv, sub.srv)
            out.iter_ = _max_opt(out.iter_, sub.iter_)
            out.unbounded = out.unbounded or sub.unbounded
        out.ret = _shift(out.ret, cost)
        out.srv = _shift(out.srv, cost)
        return out


# ---------------------------------------------------------------------------
# Stack bounds


def _frame_bytes(analysis: FunctionAnalysis, stack_top: int
                 ) -> Optional[int]:
    """Deepest provable sp excursion below the entry sp (or below
    ``stack_top`` once sp is absolute, as in ``_start``)."""
    depth = 0
    for state in analysis.states.values():
        v = state.regs[SP]
        if v.base == SP and v.word.is_const():
            depth = max(depth, -_signed(v.word.lo))
        elif v.base is None and v.word.is_const():
            depth = max(depth, stack_top - v.word.lo)
        else:
            return None
    return depth


def _stack_totals(graph: Mapping[str, Set[str]],
                  frames: Mapping[str, Optional[int]],
                  findings: List[Diagnostic],
                  config: TimingConfig) -> Dict[str, Optional[int]]:
    totals: Dict[str, Optional[int]] = {}
    on_stack: Set[str] = set()

    def total(name: str) -> Optional[int]:
        if name in totals:
            return totals[name]
        if name in on_stack:
            diag = Diagnostic(
                code="B2A202", function=name,
                message="recursive call cycle: no static stack bound")
            if not config.lint.suppressed(diag):
                findings.append(diag)
            return None
        on_stack.add(name)
        frame = frames.get(name)
        deepest: Optional[int] = 0
        for callee in sorted(graph.get(name, set())):
            sub = total(callee)
            deepest = None if (deepest is None or sub is None) \
                else max(deepest, sub)
        on_stack.discard(name)
        out = None if (frame is None or deepest is None) \
            else frame + deepest
        totals[name] = out
        return out

    for name in graph:
        total(name)
    return totals


# ---------------------------------------------------------------------------
# Driver


def _topo_functions(graph: Mapping[str, Set[str]],
                    findings: List[Diagnostic],
                    config: TimingConfig) -> List[str]:
    """Callees-first order; call-graph cycles are reported (B2A202) and
    their members simply never appear in ``done`` (callers see them as
    unbounded)."""
    order: List[str] = []
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(name: str) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            diag = Diagnostic(
                code="B2A202", function=name,
                message="recursive call cycle: no static WCET")
            if not config.lint.suppressed(diag):
                findings.append(diag)
            return
        state[name] = 1
        for callee in sorted(graph.get(name, set())):
            visit(callee)
        state[name] = 2
        order.append(name)

    for name in sorted(graph):
        visit(name)
    return order


def analyze_timing(compiled: object,
                   config: Optional[TimingConfig] = None,
                   icache_words: Optional[int] = None) -> TimingReport:
    """Prove WCET and stack bounds for a compiled program.

    ``compiled`` is any `repro.compiler.CompiledProgram`-shaped object
    (``image``, ``symbols``, ``stack_top``; ``stack_bound`` is used for
    the compiler cross-check when present).
    """
    image: bytes = compiled.image  # type: ignore[attr-defined]
    symbols: Mapping[str, int] = compiled.symbols  # type: ignore[attr-defined]
    stack_top: int = compiled.stack_top  # type: ignore[attr-defined]
    if config is None:
        config = TimingConfig(lint=BinaryLintConfig(ram=(0, stack_top)),
                              model=pipeline_cost_model())
    findings: List[Diagnostic] = []
    cfg = recover_cfg(image, symbols)
    analyses = analyze_image(image, symbols, config.lint)
    graph = call_graph(cfg)
    order = _topo_functions(graph, findings, config)

    done: Dict[str, FunctionTiming] = {}
    results: Dict[str, FunctionTiming] = {}
    frames: Dict[str, Optional[int]] = {}
    for name in order:
        analysis = analyses.get(name)
        fn = cfg.functions.get(name)
        if analysis is None or fn is None or not fn.blocks:
            continue
        timing = _FunctionWcet(fn, analysis, cfg, config, done,
                               findings).run()
        frames[name] = _frame_bytes(analysis, stack_top)
        timing.frame_bytes = frames[name]
        results[name] = timing
        if timing.wcet_cycles is not None or timing.is_server:
            done[name] = timing

    totals = _stack_totals(graph, frames, findings, config)
    for name, timing in results.items():
        timing.total_stack_bytes = totals.get(name)

    entry = "_start" if "_start" in results else \
        (cfg.entries.get(0) or "_start")
    # The program-level claim is about code the entry can execute:
    # findings in linked-but-unreachable functions (e.g. the bounded
    # `*_service` harness variants, parametric in an argument no caller
    # in this image supplies) stay visible as unbounded loop rows but do
    # not fail the program.  Everything reachable must prove.
    live = {entry, "<pipeline>"}
    stack = [entry]
    while stack:
        name = stack.pop()
        for callee in graph.get(name, set()):
            if callee not in live:
                live.add(callee)
                stack.append(callee)
    findings = [d for d in findings if d.function in live]
    top = results.get(entry)
    wcet = top.wcet_cycles if top else None
    startup = top.startup_cycles if top else None
    iteration = top.iteration_cycles if top else None
    stack_bound = totals.get(entry)
    if top is None:
        findings.append(Diagnostic(
            code="B2A201", function=entry,
            message="program entry was not analyzed"))
    if icache_words is None:
        icache_words = (len(image) + 3) // 4
    return TimingReport(
        entry=entry, model=config.model, functions=results,
        wcet_cycles=wcet, startup_cycles=startup,
        iteration_cycles=iteration,
        fill_cycles=config.model.fill_cost(icache_words),
        stack_bound=stack_bound,
        compiler_stack_bound=getattr(compiled, "stack_bound", None),
        findings=findings)


# ---------------------------------------------------------------------------
# Budgets and drift (the `lint --binary --timing` surface)


def check_budgets(report: TimingReport,
                  budgets: Mapping[str, int]) -> List[Diagnostic]:
    """Compare proved bounds to committed per-app budgets.  Keys:
    ``wcet_cycles``, ``startup_cycles``, ``iteration_cycles`` (B2A203)
    and ``stack_bytes`` (B2A204).  A budgeted-but-unproved bound is a
    finding too: the budget is a claim the analyzer must back."""
    out: List[Diagnostic] = []
    cycle_axes = (("wcet_cycles", report.wcet_cycles),
                  ("startup_cycles", report.startup_cycles),
                  ("iteration_cycles", report.iteration_cycles))
    for key, actual in cycle_axes:
        budget = budgets.get(key)
        if budget is None:
            continue
        if actual is None:
            out.append(Diagnostic(
                code="B2A203", function=report.entry,
                message="%s has budget %d but no bound was proved"
                        % (key, budget)))
        elif actual > budget:
            out.append(Diagnostic(
                code="B2A203", function=report.entry,
                message="%s bound %d exceeds budget %d (margin %+d)"
                        % (key, actual, budget, budget - actual)))
    stack_budget = budgets.get("stack_bytes")
    if stack_budget is not None:
        if report.stack_bound is None:
            out.append(Diagnostic(
                code="B2A204", function=report.entry,
                message="stack budget %d committed but no bound was "
                        "proved" % stack_budget))
        elif report.stack_bound > stack_budget:
            out.append(Diagnostic(
                code="B2A204", function=report.entry,
                message="stack bound %d exceeds budget %d bytes"
                        % (report.stack_bound, stack_budget)))
    return out


def drift_findings(model: Optional[CostModel] = None) -> List[Diagnostic]:
    """B2A205: the cost model no longer matches `kami.pipeline_proc`."""
    return [Diagnostic(code="B2A205", function="<pipeline>", message=msg)
            for msg in check_pipeline_drift(model or CostModel())]


def load_budgets(path: str) -> Tuple[Dict[str, Dict[int, int]],
                                     Dict[str, Dict[str, int]]]:
    """Parse ``timing-budgets.json``: returns ``(loop_bounds, apps)``
    where loop_bounds is keyed by function name then loop ordinal (the
    committed file keeps ordinals as JSON strings and wraps each bound
    with its justification)."""
    import json

    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != "repro-timing-budgets":
        raise ValueError("%s: not a repro-timing-budgets file" % path)
    loop_bounds = {
        fn: {int(ordinal): entry["bound"]
             for ordinal, entry in per_fn.items()}
        for fn, per_fn in doc.get("loop_bounds", {}).items()}
    return loop_bounds, doc.get("apps", {})


__all__ = ["ANNOTATED", "CT_KINDS", "FunctionTiming", "INFERRED",
           "LoopTiming", "SERVER", "SPIN", "TimingConfig", "TimingReport",
           "UNBOUNDED", "analyze_timing", "check_budgets", "drift_findings",
           "load_budgets"]
