"""The p4mm-calibrated cost model behind the static WCET analyzer.

The pipelined processor (`repro.kami.pipeline_proc`) is a rule-based Kami
module, and `System.run` counts *successful rule firings* -- that is the
cycle currency every dynamic number in this repo is quoted in.  The static
analyzer prices binaries in the same currency:

===================  =====  ====================================================
constant             value  where it comes from in ``pipeline_proc.py``
===================  =====  ====================================================
base CPI                 4  one firing per stage rule (fetch, decode, execute,
                            writeback) per retired instruction; stalls are
                            RuleAborts and cost nothing
mispredict penalty       7  ``5*fifo_depth - 3``: up to ``fifo_depth`` stale
                            fetch+decode firings queued in f2d (2 each) plus
                            ``fifo_depth - 1`` stale decode entries that reach
                            execute before the redirect drains them (3 each)
load-use stall           0  the scoreboard blocks decode with a RuleAbort --
                            aborted rules never count as firings
MMIO wait                0  MMIO reads/writes complete inside the one
                            execute firing (the bus is combinational here)
fill per word            1  the fill engine copies one icache word per firing,
                            so a cold start costs exactly ``icache_words``
===================  =====  ====================================================

Every executed control transfer (branch, jal, jalr) is charged the full
mispredict penalty: the BTB starts cold and the analyzer must not assume
training, which is precisely the static/measured tightness gap the report
tracks.  Straight-line instructions are free of penalty because the
pipeline's default next-pc prediction (pc+4) is always right for them.

`pipeline_cost_model` rebuilds the constants from the live pipeline module
at config time; any drift between this table and ``pipeline_proc.py`` --
renamed rules, a changed fifo depth, a new stage -- surfaces as B2A205
rather than as silently unsound bounds.
"""

from __future__ import annotations

import inspect
from dataclasses import asdict, dataclass
from typing import Dict, List

#: Rule names of the pipelined processor in registration (priority) order.
PIPELINE_RULES = ("writeback", "execute", "decode", "fetch", "fill")

#: Stage rules that fire exactly once per retired instruction.
STAGE_RULES = tuple(r for r in PIPELINE_RULES if r != "fill")


def mispredict_penalty_for(fifo_depth: int) -> int:
    """Worst-case wrong-path firings after a redirect: ``fifo_depth``
    stale fetches each reach decode (2 firings apiece) and all but one of
    them reach execute before the epoch flip squashes them (3 apiece)."""
    return 5 * fifo_depth - 3


@dataclass(frozen=True)
class CostModel:
    """Static price list, in successful-rule-firing units."""

    base_cpi: int = 4
    mispredict_penalty: int = 7
    load_use_stall: int = 0
    mmio_wait: int = 0
    fill_per_word: int = 1
    fifo_depth: int = 2

    def block_cost(self, n_instrs: int, control_transfer: bool) -> int:
        """Worst-case firings to retire one basic block."""
        cost = (self.base_cpi + self.load_use_stall) * n_instrs
        if control_transfer:
            cost += self.mispredict_penalty
        return cost

    def fill_cost(self, icache_words: int) -> int:
        """Cold-start firings before the first fetch can hit."""
        return self.fill_per_word * icache_words

    def to_json(self) -> Dict[str, int]:
        return asdict(self)


class CostModelDrift(RuntimeError):
    """The pipeline no longer matches the analyzer's calibration."""


def check_pipeline_drift(model: CostModel) -> List[str]:
    """Cross-check ``model`` against the live ``pipeline_proc`` module.

    Returns human-readable drift messages (empty when calibrated).  The
    checks are structural -- parameter defaults via `inspect.signature`
    and the registered rule names of a freshly built module -- so a
    pipeline refactor that invalidates the price list cannot slip past.
    """
    from ..kami.pipeline_proc import make_pipelined_processor

    drift: List[str] = []
    sig = inspect.signature(make_pipelined_processor)
    fifo_param = sig.parameters.get("fifo_depth")
    if fifo_param is None or fifo_param.default is inspect.Parameter.empty:
        drift.append("make_pipelined_processor lost its fifo_depth default; "
                     "the mispredict penalty can no longer be derived")
    elif fifo_param.default != model.fifo_depth:
        drift.append("pipeline fifo_depth default is %r but the cost model "
                     "was built for %d" % (fifo_param.default,
                                           model.fifo_depth))
    elif mispredict_penalty_for(model.fifo_depth) != model.mispredict_penalty:
        drift.append("mispredict penalty %d does not match 5*fifo_depth-3 "
                     "= %d" % (model.mispredict_penalty,
                               mispredict_penalty_for(model.fifo_depth)))
    module = make_pipelined_processor(icache_words=4)
    rules = tuple(name for name, _ in module.rules)
    if rules != PIPELINE_RULES:
        drift.append("pipeline rules %r no longer match the calibrated set "
                     "%r" % (rules, PIPELINE_RULES))
    else:
        stages = tuple(r for r in rules if r != "fill")
        if len(stages) != model.base_cpi:
            drift.append("pipeline has %d stage rules but base CPI is %d"
                         % (len(stages), model.base_cpi))
    return drift


def pipeline_cost_model(strict: bool = True) -> CostModel:
    """The calibrated model, drift-checked against the live pipeline.

    With ``strict`` (the default) a mismatch raises `CostModelDrift`;
    the lint front end instead calls `check_pipeline_drift` itself and
    renders each message as a B2A205 diagnostic.
    """
    model = CostModel()
    if strict:
        drift = check_pipeline_drift(model)
        if drift:
            raise CostModelDrift("; ".join(drift))
    return model


__all__ = ["CostModel", "CostModelDrift", "PIPELINE_RULES", "STAGE_RULES",
           "check_pipeline_drift", "mispredict_penalty_for",
           "pipeline_cost_model"]
