"""Binary-level abstract interpretation of compiled RV32IM images.

Where `repro.analysis.lint` checks Bedrock2 *source*, this module checks
the *machine code* the compiler emits: it recovers a CFG from the
encoded image (`repro.analysis.cfg`), then runs a forward dataflow over
each function with a per-register × stack-slot product domain of
unsigned intervals ∧ known-bits (`repro.analysis.domains.AbstractWord`)
enriched with symbolic bases: a value is either a plain abstract word or
``Init(r) + word`` for an entry-time register ``r``, which is what lets
the analysis track the stack pointer, frame slots, and callee-saved
registers exactly without knowing any concrete addresses.

Diagnostic codes (stable; documented in docs/static-analysis.md):

======= ==================================================================
B2A101  control transfer outside XAddrs: branch/jump target outside the
        image, misaligned, undecodable, or leaving the function; call to
        a non-function-entry; non-return ``jalr``; falling off the end
B2A102  load/store address not classifiable as owned RAM vs MMIO (the
        abstract address straddles region boundaries)
B2A103  bad access shape: MMIO access not word-sized, not provably
        aligned, or outside the platform address map; provably
        misaligned RAM/stack access
B2A104  stack-pointer imbalance: sp not provably entry-sp at return, or
        not at a provable constant frame offset at a call
B2A105  memory access provably below the stack pointer
B2A106  callee-saved register (per `compiler/regalloc.py`'s ABI,
        including ra) not provably restored at return
B2A107  read of a register never written on some path (beyond the
        registers defined at function entry: sp, ra, a0-a7)
B2A108  translation-validation conflict: the abstract value the binary
        stores is incompatible with the source-level abstract value at
        the corresponding store site (or the store sites themselves
        don't line up)
======= ==================================================================

Unlike most source-level checks, which fire only on *definite* defects,
the control-flow, MMIO-shape, stack-balance, and callee-saved checks
here are proof obligations in the translation-validation sense: the
analysis must *prove* the property or it reports a finding. The domain
is precise enough on real compiler output that every shipped and
fuzzer-generated program proves clean (CI enforces zero findings), so a
finding means the binary -- i.e. the compiler -- is wrong.

Documented assumptions (each matches a compiler invariant):

* Stores through non-sp pointers never alias the current frame's slots:
  a caller-provided pointer predates the frame and verified source code
  is memory-safe, so only sp-relative stores update or invalidate
  tracked stack slots.
* Accesses through ``Init(r)``-based pointers (caller-provided buffer
  arguments) are the *caller's* obligation and are not classified here.
* Callees preserve sp, the callee-saved registers, and the caller's
  frame slots; this is exactly what B2A104/B2A106 verify for every
  callee, so the assumption is discharged by mutual induction over the
  call graph.
* Translation validation pairs binary store sites with source store
  sites by order; sp-relative stores (frame bookkeeping: spills, saves)
  are excluded, which identifies program stores exactly when frames are
  smaller than 2 KiB (the code generator's near path -- true for every
  shipped and generated program; functions with larger frames are
  skipped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from ..compiler.flatimp import FInteract, FStmt, FStore
from ..riscv.disasm import format_instr, reg
from ..riscv.insts import B_TYPE, I_ARITH, I_SHIFT, R_TYPE, Instr
from .cfg import RA, SP, BasicBlock, BinaryCFG, BinFunction, recover_cfg
from .dataflow import AbstractDomain, run_cfg, run_flat
from .domains import MASK, WIDTH, AbstractWord, WordDomain, WordState, _binop
from .lint import Diagnostic

_FINDINGS = obs.counter("analysis.binlint_findings")
_FUNCTIONS = obs.counter("analysis.binlint_functions")

LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}
STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4}

#: The regalloc ABI (see `repro.compiler.regalloc`): x10-x17 carry
#: arguments/returns, x29-x31 are code-generator scratch, everything
#: else a function touches it must restore -- including ra, and
#: trivially gp/tp which nothing may touch at all.
ARG_REGS = tuple(range(10, 18))
SCRATCH_REGS = (29, 30, 31)
CALLEE_SAVED = (1, 3, 4) + tuple(range(5, 10)) + tuple(range(18, 29))

#: Registers a function may read without writing first.
ENTRY_DEFINED = frozenset((0, RA, SP) + ARG_REGS)

#: Near-path bound for sp-relative addressing; frames at least this big
#: use scratch-register address arithmetic and are skipped by TV.
_NEAR_FRAME_LIMIT = 2048

_R_TO_BEDROCK = {
    "add": "add", "sub": "sub", "sll": "slu", "slt": "lts", "sltu": "ltu",
    "xor": "xor", "srl": "sru", "sra": "srs", "or": "or", "and": "and",
    "mul": "mul", "mulhu": "mulhuu", "divu": "divu", "remu": "remu",
}
_I_TO_BEDROCK = {"addi": "add", "slti": "lts", "sltiu": "ltu",
                 "xori": "xor", "ori": "or", "andi": "and"}
_SHIFT_TO_BEDROCK = {"slli": "slu", "srli": "sru", "srai": "srs"}


def _signed(value: int) -> int:
    return value - (1 << WIDTH) if value >= (1 << (WIDTH - 1)) else value


# ---------------------------------------------------------------------------
# The domain: symbolic-base values and machine states


@dataclass(frozen=True)
class AVal:
    """An abstract register/slot value: ``word`` when ``base`` is None,
    otherwise ``Init(base) + word`` -- the entry-time value of register
    ``base`` plus an abstract 32-bit offset."""

    base: Optional[int]
    word: AbstractWord


def _top() -> AVal:
    return AVal(None, AbstractWord.top())


def _const(value: int) -> AVal:
    return AVal(None, AbstractWord.const(value))


def _init(r: int) -> AVal:
    return AVal(r, AbstractWord.const(0))


def _is_init(v: AVal, r: int) -> bool:
    return v.base == r and v.word.as_const() == 0


def _plain(v: AVal) -> AbstractWord:
    """Forget the base: sound because ``Init(r)`` is arbitrary, so a
    based value concretizes to any word."""
    return v.word if v.base is None else AbstractWord.top()


def _aval_add(a: AVal, b: AVal) -> AVal:
    if a.base is not None and b.base is not None:
        return _top()
    if a.base is not None:
        return AVal(a.base, _binop("add", a.word, b.word))
    if b.base is not None:
        return AVal(b.base, _binop("add", a.word, b.word))
    return AVal(None, _binop("add", a.word, b.word))


def _aval_sub(a: AVal, b: AVal) -> AVal:
    if b.base is None:
        return AVal(a.base, _binop("sub", a.word, b.word))
    if a.base == b.base:  # Init(r)+x - (Init(r)+y) = x - y
        return AVal(None, _binop("sub", a.word, b.word))
    return _top()


def _aval_join(a: AVal, b: AVal) -> AVal:
    if a.base == b.base:
        return AVal(a.base, a.word.join(b.word))
    return _top()


def _aval_widen(a: AVal, b: AVal) -> AVal:
    if a.base == b.base:
        return AVal(a.base, a.word.widen(b.word))
    return _top()


@dataclass(frozen=True)
class BinState:
    """Machine state at one program point: 32 register values, the
    tracked word-aligned frame slots (keyed by signed byte offset from
    the *entry* stack pointer), and the registers definitely written on
    every path so far."""

    regs: Tuple[AVal, ...]
    slots: Dict[int, AVal]
    defined: FrozenSet[int]


def _entry_state() -> BinState:
    regs = tuple(_const(0) if r == 0 else _init(r) for r in range(32))
    return BinState(regs=regs, slots={}, defined=ENTRY_DEFINED)


def _with_reg(state: BinState, rd: int, val: AVal) -> BinState:
    if rd == 0:
        return state  # x0 is hardwired
    regs = state.regs[:rd] + (val,) + state.regs[rd + 1:]
    return BinState(regs=regs, slots=state.slots,
                    defined=state.defined | {rd})


class _BinDomain(AbstractDomain[BinState]):
    def join(self, a: BinState, b: BinState) -> BinState:
        slots = {k: _aval_join(a.slots[k], b.slots[k])
                 for k in a.slots.keys() & b.slots.keys()}
        return BinState(
            regs=tuple(_aval_join(x, y) for x, y in zip(a.regs, b.regs)),
            slots=slots, defined=a.defined & b.defined)

    def widen(self, a: BinState, b: BinState) -> BinState:
        slots = {k: _aval_widen(a.slots[k], b.slots[k])
                 for k in a.slots.keys() & b.slots.keys()}
        return BinState(
            regs=tuple(_aval_widen(x, y) for x, y in zip(a.regs, b.regs)),
            slots=slots, defined=a.defined & b.defined)

    def equals(self, a: BinState, b: BinState) -> bool:
        return a == b


# ---------------------------------------------------------------------------
# Configuration


@dataclass(frozen=True)
class BinaryLintConfig:
    """Address-map facts the binary checks are parameterized by.

    ``ram`` is the half-open owned-RAM interval (the image, globals, and
    the stack all live here); ``mmio_ranges`` are half-open device
    intervals. ``suppress`` holds codes or ``(code, function)`` pairs,
    same convention as `repro.analysis.lint.LintConfig`.
    """

    ram: Tuple[int, int]
    mmio_ranges: Tuple[Tuple[int, int], ...] = ()
    suppress: FrozenSet[object] = frozenset()

    def suppressed(self, diag: Diagnostic) -> bool:
        return (diag.code in self.suppress
                or (diag.code, diag.function) in self.suppress)

    @staticmethod
    def for_platform(stack_top: int,
                     mmio_ranges: Sequence[Tuple[int, int]],
                     ext_spec: Optional[object] = None,
                     suppress: FrozenSet[object] = frozenset()
                     ) -> "BinaryLintConfig":
        """Build a config from the platform memory map, cross-checking
        the extspec's device ranges against the bus's: a compiled MMIO
        access is judged against the *intersection* of what the spec
        allows and what the bus decodes, so a drift between the two
        layers is caught here rather than at runtime."""
        ranges = tuple((int(lo), int(hi)) for lo, hi in mmio_ranges)
        if ext_spec is not None:
            ext_ranges = tuple(getattr(ext_spec, "ranges", ()))
            for lo, hi in ext_ranges:
                if not any(blo <= lo and hi <= bhi for blo, bhi in ranges):
                    raise ValueError(
                        "extspec MMIO range [0x%x, 0x%x) is not covered by "
                        "the platform bus map" % (lo, hi))
        for lo, hi in ranges:
            if lo < stack_top and hi > 0:  # overlaps [0, stack_top)
                raise ValueError(
                    "MMIO range [0x%x, 0x%x) overlaps owned RAM "
                    "[0, 0x%x)" % (lo, hi, stack_top))
        return BinaryLintConfig(ram=(0, stack_top), mmio_ranges=ranges,
                                suppress=suppress)


# ---------------------------------------------------------------------------
# Per-function analysis


@dataclass
class FunctionAnalysis:
    """Everything the fixpoint learned about one function."""

    function: BinFunction
    #: Stabilized in-state at every *reachable* instruction pc.
    states: Dict[int, BinState] = field(default_factory=dict)
    #: Program stores (non-sp-relative), in pc order, with the abstract
    #: stored value; unreachable sites carry top. Feeds TV mode.
    stores: List[Tuple[int, Instr, AbstractWord]] = field(
        default_factory=list)
    findings: List[Diagnostic] = field(default_factory=list)


class _FunctionAnalyzer:
    def __init__(self, cfg: BinaryCFG, fn: BinFunction,
                 config: BinaryLintConfig):
        self.cfg = cfg
        self.fn = fn
        self.config = config
        self.result = FunctionAnalysis(function=fn)
        self._checking = False
        self._reported: Set[Tuple[str, object]] = set()

    # -- driving --------------------------------------------------------

    def run(self) -> FunctionAnalysis:
        dom = _BinDomain()
        block_states = run_cfg(self.fn.entry, _entry_state(),
                               self._transfer, dom)
        self._checking = True
        for start in sorted(self.fn.blocks):
            block = self.fn.blocks[start]
            state = block_states.get(start)
            if state is None:
                # Unreachable (e.g. the epilogue after a while(1) body):
                # nothing to check, but TV still needs the store sites.
                for pc, instr in block.instrs:
                    if instr.name in STORE_SIZES and instr.rs1 != SP:
                        self.result.stores.append(
                            (pc, instr, AbstractWord.top()))
                continue
            self._transfer(start, state)
        return self.result

    def _transfer(self, start: int, state: BinState
                  ) -> Dict[int, BinState]:
        block = self.fn.blocks[start]
        for pc, instr in block.instrs[:-1]:
            state = self._step(pc, instr, state)
        pc, term = block.instrs[-1]
        state = self._step(pc, term, state)
        if self._checking:
            self._check_terminator(block, state)
        kind = block.kind
        if kind == "fall":
            return {succ: state for succ in block.succs}
        if kind == "branch":
            return self._branch_out(block, pc, term, state)
        if kind == "jump":
            return {succ: state for succ in block.succs}
        if kind == "call":
            state = self._apply_call(block, state)
            return {succ: state for succ in block.succs}
        return {}  # return / indirect

    # -- findings -------------------------------------------------------

    def _report(self, code: str, pc: int, instr: Optional[Instr],
                message: str, key: object = None) -> None:
        if not self._checking:
            return
        dedup = (code, key if key is not None else pc)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        at = "pc 0x%04x" % pc
        if instr is not None:
            at += ": `%s`" % format_instr(instr, pc)
        self.result.findings.append(Diagnostic(
            code=code, function=self.fn.name,
            message="%s: %s" % (at, message)))

    # -- instruction transfer -------------------------------------------

    def _read(self, state: BinState, r: Optional[int], pc: int,
              instr: Instr, exempt: bool = False) -> AVal:
        assert r is not None
        if self._checking and not exempt and r not in state.defined:
            self._report(
                "B2A107", pc, instr,
                "reads %s, which is not written on every path to here "
                "(and is not defined at function entry)" % reg(r),
                key=("read", r))
        return state.regs[r]

    def _step(self, pc: int, instr: Instr, state: BinState) -> BinState:
        if self._checking:
            self.result.states[pc] = state
        name = instr.name
        if name in R_TYPE:
            a = self._read(state, instr.rs1, pc, instr)
            b = self._read(state, instr.rs2, pc, instr)
            return _with_reg(state, instr.rd or 0, self._rop(name, a, b))
        if name in I_ARITH:
            a = self._read(state, instr.rs1, pc, instr)
            imm = _const(instr.imm or 0)
            if name == "addi":
                val = _aval_add(a, imm)
            else:
                val = AVal(None, _binop(_I_TO_BEDROCK[name], _plain(a),
                                        imm.word))
            return _with_reg(state, instr.rd or 0, val)
        if name in I_SHIFT:
            a = self._read(state, instr.rs1, pc, instr)
            val = AVal(None, _binop(_SHIFT_TO_BEDROCK[name], _plain(a),
                                    AbstractWord.const(instr.imm or 0)))
            return _with_reg(state, instr.rd or 0, val)
        if name == "lui":
            return _with_reg(state, instr.rd or 0,
                             _const(((instr.imm or 0) << 12) & MASK))
        if name == "auipc":
            return _with_reg(state, instr.rd or 0,
                             _const((pc + ((instr.imm or 0) << 12)) & MASK))
        if name in LOAD_SIZES:
            addr = _aval_add(self._read(state, instr.rs1, pc, instr),
                             _const(instr.imm or 0))
            val = self._load(pc, instr, addr, state)
            return _with_reg(state, instr.rd or 0, val)
        if name in STORE_SIZES:
            addr = _aval_add(self._read(state, instr.rs1, pc, instr),
                             _const(instr.imm or 0))
            # A prologue save reads a callee-saved register precisely to
            # preserve it; only flag non-frame stores as reads.
            value = self._read(state, instr.rs2, pc, instr,
                               exempt=addr.base == SP)
            return self._store(pc, instr, addr, value, state)
        if name in B_TYPE:
            self._read(state, instr.rs1, pc, instr)
            self._read(state, instr.rs2, pc, instr)
            return state
        if name == "jal":
            return _with_reg(state, instr.rd or 0, _const((pc + 4) & MASK))
        if name == "jalr":
            self._read(state, instr.rs1, pc, instr)
            return _with_reg(state, instr.rd or 0, _const((pc + 4) & MASK))
        return state

    def _rop(self, name: str, a: AVal, b: AVal) -> AVal:
        if name == "add":
            return _aval_add(a, b)
        if name == "sub":
            return _aval_sub(a, b)
        op = _R_TO_BEDROCK.get(name)
        if op is None:  # mulh, mulhsu, div, rem
            return _top()
        return AVal(None, _binop(op, _plain(a), _plain(b)))

    # -- memory classification ------------------------------------------

    def _classify(self, pc: int, instr: Instr, addr: AVal, size: int,
                  state: BinState) -> str:
        """\"stack\" | \"pointer\" | \"ram\" | \"mmio\" | \"bad\", reporting
        B2A102/B2A103/B2A105 along the way (when checking)."""
        if addr.base == SP:
            off = addr.word
            self._check_below_sp(pc, instr, off, state)
            if off.bits.known_ones() & (size - 1):
                self._report("B2A103", pc, instr,
                             "provably misaligned %d-byte stack access"
                             % size)
            return "stack"
        if addr.base is not None:
            # Caller-provided pointer: the caller's obligation.
            return "pointer"
        w = addr.word
        ram_lo, ram_hi = self.config.ram
        if ram_lo <= w.lo and w.hi < ram_hi:
            if w.bits.known_ones() & (size - 1):
                self._report("B2A103", pc, instr,
                             "provably misaligned %d-byte RAM access"
                             % size)
                return "bad"
            return "ram"
        for lo, hi in self.config.mmio_ranges:
            if lo <= w.lo and w.hi < hi:
                if size != 4:
                    self._report("B2A103", pc, instr,
                                 "MMIO access is not word-sized "
                                 "(%d bytes)" % size)
                    return "bad"
                if (w.bits.known_zeros() & 3) != 3:
                    self._report("B2A103", pc, instr,
                                 "MMIO access not provably word-aligned "
                                 "(abstract address [0x%x, 0x%x])"
                                 % (w.lo, w.hi))
                    return "bad"
                return "mmio"
        if self._disjoint_from_map(w):
            self._report("B2A103", pc, instr,
                         "access outside the platform address map "
                         "(abstract address [0x%x, 0x%x])" % (w.lo, w.hi))
            return "bad"
        self._report("B2A102", pc, instr,
                     "cannot classify access as owned RAM vs MMIO "
                     "(abstract address [0x%x, 0x%x])" % (w.lo, w.hi))
        return "bad"

    def _disjoint_from_map(self, w: AbstractWord) -> bool:
        regions = (self.config.ram,) + self.config.mmio_ranges
        return all(w.hi < lo or w.lo >= hi for lo, hi in regions)

    def _check_below_sp(self, pc: int, instr: Instr, off: AbstractWord,
                        state: BinState) -> None:
        sp_val = state.regs[SP]
        if not (sp_val.base == SP and sp_val.word.is_const()
                and off.is_const()):
            return
        if _signed(off.lo) < _signed(sp_val.word.lo):
            self._report(
                "B2A105", pc, instr,
                "access at sp%+d is provably below the stack pointer "
                "(sp = entry sp%+d)"
                % (_signed(off.lo), _signed(sp_val.word.lo)))

    def _load(self, pc: int, instr: Instr, addr: AVal,
              state: BinState) -> AVal:
        size = LOAD_SIZES[instr.name]
        kind = self._classify(pc, instr, addr, size, state)
        if kind == "stack" and size == 4 and addr.word.is_const() \
                and addr.word.lo % 4 == 0:
            slot = state.slots.get(_signed(addr.word.lo))
            if slot is not None:
                return slot
        if instr.name == "lbu":
            return AVal(None, AbstractWord(0, 0xFF))
        if instr.name == "lhu":
            return AVal(None, AbstractWord(0, 0xFFFF))
        return _top()

    def _store(self, pc: int, instr: Instr, addr: AVal, value: AVal,
               state: BinState) -> BinState:
        size = STORE_SIZES[instr.name]
        kind = self._classify(pc, instr, addr, size, state)
        if self._checking and instr.rs1 != SP:
            self.result.stores.append((pc, instr, _plain(value)))
        if kind != "stack":
            # Non-sp-based stores never alias the frame (see module
            # docstring); slots survive.
            return state
        slots = dict(state.slots)
        if addr.word.is_const():
            off = _signed(addr.word.lo)
            if size == 4 and off % 4 == 0:
                slots[off] = value
            else:
                for k in list(slots):
                    if k < off + size and off < k + 4:
                        del slots[k]
        else:
            slots.clear()
        return BinState(regs=state.regs, slots=slots,
                        defined=state.defined)

    # -- control flow ---------------------------------------------------

    def _branch_out(self, block: BasicBlock, pc: int, term: Instr,
                    state: BinState) -> Dict[int, BinState]:
        taken_ok, fall_ok = self._branch_feasible(state, term)
        out: Dict[int, BinState] = {}
        fall_pc = pc + 4
        target = block.target
        if fall_ok and fall_pc in block.succs:
            out[fall_pc] = self._branch_refine(state, term, taken=False)
        if taken_ok and target is not None and target in block.succs:
            refined = self._branch_refine(state, term, taken=True)
            if target in out:
                out[target] = _BinDomain().join(out[target], refined)
            else:
                out[target] = refined
        return out

    def _branch_feasible(self, state: BinState,
                         instr: Instr) -> Tuple[bool, bool]:
        a = state.regs[instr.rs1 or 0]
        b = state.regs[instr.rs2 or 0]
        name = instr.name
        if name in ("beq", "bne"):
            if a.base == b.base:  # plain/plain or same-base offsets
                e = _binop("eq", a.word, b.word).as_const()
            else:
                e = None
            if e is None:
                return True, True
            equal = bool(e)
            taken = equal if name == "beq" else not equal
            return taken, not taken
        if name in ("bltu", "bgeu") and a.base is None and b.base is None:
            lt = _binop("ltu", a.word, b.word).as_const()
            if lt is None:
                return True, True
            taken = bool(lt) if name == "bltu" else not lt
            return taken, not taken
        return True, True

    def _branch_refine(self, state: BinState, instr: Instr,
                       taken: bool) -> BinState:
        rs1, rs2 = instr.rs1 or 0, instr.rs2 or 0
        a, b = state.regs[rs1], state.regs[rs2]
        name = instr.name
        if name in ("beq", "bne"):
            equal = taken if name == "beq" else not taken
            if a.base is not None or b.base is not None:
                return state
            if equal:
                if b.word.is_const():
                    state = _with_reg(state, rs1, AVal(None, b.word))
                elif a.word.is_const():
                    state = _with_reg(state, rs2, AVal(None, a.word))
            else:
                state = self._refine_nonzero(state, rs1, a, b)
                state = self._refine_nonzero(state, rs2, b, a)
            return state
        if name in ("bltu", "bgeu") and a.base is None and b.base is None:
            lt = taken if name == "bltu" else not taken
            aw, bw = a.word, b.word
            if lt:  # rs1 < rs2
                if bw.hi >= 1:
                    state = _with_reg(state, rs1, AVal(
                        None, AbstractWord(aw.lo, min(aw.hi, bw.hi - 1),
                                           aw.bits)))
                if aw.lo <= MASK - 1:
                    state = _with_reg(state, rs2, AVal(
                        None, AbstractWord(max(bw.lo, aw.lo + 1), bw.hi,
                                           bw.bits)))
            else:  # rs1 >= rs2
                state = _with_reg(state, rs1, AVal(
                    None, AbstractWord(max(aw.lo, bw.lo), aw.hi, aw.bits)))
                state = _with_reg(state, rs2, AVal(
                    None, AbstractWord(bw.lo, min(bw.hi, aw.hi), bw.bits)))
            return state
        return state

    def _refine_nonzero(self, state: BinState, r: int, v: AVal,
                        other: AVal) -> BinState:
        """``v != other`` with ``other`` a known zero: bump v's lo."""
        if (v.base is None and other.base is None
                and other.word.as_const() == 0 and v.word.lo == 0):
            return _with_reg(state, r, AVal(
                None, AbstractWord(1, max(v.word.hi, 1), v.word.bits)))
        return state

    def _apply_call(self, block: BasicBlock,
                    state: BinState) -> BinState:
        target = block.target
        if target not in self.cfg.entries:
            # Unknown callee: trust nothing (the terminator check has
            # already flagged it).
            regs = tuple(_const(0) if r == 0 else _top() for r in range(32))
            return BinState(regs=regs, slots={},
                            defined=frozenset(range(32)))
        regs = list(state.regs)
        for r in ARG_REGS:
            regs[r] = _top()
        for r in SCRATCH_REGS:
            regs[r] = _top()
        defined = (state.defined | set(ARG_REGS)) - set(SCRATCH_REGS)
        return BinState(regs=tuple(regs), slots=state.slots,
                        defined=frozenset(defined))

    # -- terminator / return checks -------------------------------------

    def _check_terminator(self, block: BasicBlock, state: BinState) -> None:
        pc, term = block.terminator
        kind = block.kind
        if kind in ("branch", "jump"):
            target = block.target
            assert target is not None
            what = "branch" if kind == "branch" else "jump"
            if not (0 <= target < self.cfg.image_size):
                self._report("B2A101", pc, term,
                             "%s target 0x%x is outside XAddrs"
                             % (what, target))
            elif target % 4:
                self._report("B2A101", pc, term,
                             "%s target 0x%x is misaligned" % (what, target))
            elif target not in self.cfg.instrs:
                self._report("B2A101", pc, term,
                             "%s target 0x%x is not a decodable instruction"
                             % (what, target))
            elif not self.fn.contains(target):
                self._report("B2A101", pc, term,
                             "%s target 0x%x leaves the enclosing function "
                             "without a call" % (what, target))
        elif kind == "call":
            target = block.target
            if target not in self.cfg.entries:
                self._report("B2A101", pc, term,
                             "call target 0x%x is not a function entry"
                             % (target if target is not None else -1))
            sp_val = state.regs[SP]
            if not (sp_val.word.is_const()
                    and sp_val.base in (SP, None)):
                # Balanced means provably fixed: a constant offset from
                # the entry sp, or (in _start) an absolute constant.
                self._report("B2A104", pc, term,
                             "stack pointer is not at a provable constant "
                             "frame offset at this call")
        elif kind == "return":
            if (term.imm or 0) % 2:
                self._report("B2A101", pc, term,
                             "return target ra%+d is misaligned"
                             % (term.imm or 0))
            elif term.imm:
                self._report("B2A101", pc, term,
                             "jalr returns to ra%+d, not the call site"
                             % (term.imm or 0))
            self._check_return(pc, term, state)
        elif kind == "indirect":
            self._report("B2A101", pc, term,
                         "indirect jump: target cannot be proven inside "
                         "XAddrs")
        elif kind == "fall" and not block.succs:
            if pc + 4 < self.fn.end:
                self._report("B2A101", pc, term,
                             "control falls into an undecodable word at "
                             "0x%x" % (pc + 4))
            else:
                self._report("B2A101", pc, term,
                             "control falls off the end of the function")

    def _check_return(self, pc: int, term: Instr,
                      state: BinState) -> None:
        sp_val = state.regs[SP]
        if not _is_init(sp_val, SP):
            if sp_val.base == SP and sp_val.word.is_const():
                detail = "entry sp%+d" % _signed(sp_val.word.lo)
            else:
                detail = "not provably entry-relative"
            self._report("B2A104", pc, term,
                         "stack pointer at return is %s (must be the "
                         "entry value)" % detail)
        for r in CALLEE_SAVED:
            if not _is_init(state.regs[r], r):
                self._report(
                    "B2A106", pc, term,
                    "callee-saved register %s is not provably restored "
                    "to its entry value at return" % reg(r),
                    key=("clobber", r))


# ---------------------------------------------------------------------------
# Whole-image entry points


class _Compiled(Protocol):
    """Structural protocol for `repro.compiler.pipeline.CompiledProgram`
    (duck-typed so tests can lint hand-written images)."""

    image: bytes
    symbols: Dict[str, int]


def analyze_image(image: bytes, symbols: Mapping[str, int],
                  config: BinaryLintConfig
                  ) -> Dict[str, FunctionAnalysis]:
    """Run the abstract interpreter over every function in the image."""
    cfg = recover_cfg(image, symbols)
    results: Dict[str, FunctionAnalysis] = {}
    for name, fn in cfg.functions.items():
        if not fn.blocks:
            continue
        results[name] = _FunctionAnalyzer(cfg, fn, config).run()
        _FUNCTIONS.inc()
    return results


def lint_image(image: bytes, symbols: Mapping[str, int],
               config: BinaryLintConfig) -> List[Diagnostic]:
    """Lint an encoded image; returns (unsuppressed) findings."""
    out: List[Diagnostic] = []
    for analysis in analyze_image(image, symbols, config).values():
        out.extend(d for d in analysis.findings
                   if not config.suppressed(d))
    _FINDINGS.inc(len(out))
    return out


def lint_compiled(compiled: "_Compiled",
                  config: BinaryLintConfig) -> List[Diagnostic]:
    """Lint a `CompiledProgram`'s image."""
    return lint_image(compiled.image, compiled.symbols, config)


# ---------------------------------------------------------------------------
# Translation validation: binary facts vs source facts


class _EveryPathWordDomain(WordDomain):
    """`WordDomain` that never prunes a branch, so the source walk
    visits exactly the statements the code generator emitted -- the
    site-pairing invariant TV relies on."""

    def decide(self, state: WordState, cond: object) -> Optional[bool]:
        return None


def _source_store_facts(body: Sequence[FStmt]
                        ) -> List[Tuple[int, AbstractWord]]:
    """(size, abstract stored value) per store site, in emission order."""
    dom = _EveryPathWordDomain()
    facts: List[Tuple[int, AbstractWord]] = []

    def visit(event: str, node: object, state: object) -> None:
        if event != "stmt":
            return
        assert isinstance(state, dict)
        if isinstance(node, FStore):
            facts.append((node.size, dom.get(state, node.value)))
        elif (isinstance(node, FInteract) and node.action == "MMIOWRITE"
                and len(node.args) == 2):
            facts.append((4, dom.get(state, node.args[1])))

    run_flat(body, dom, {}, visit)
    return facts


def _compatible(src: AbstractWord, binv: AbstractWord) -> bool:
    """Do the two abstractions admit a common concrete value?"""
    if max(src.lo, binv.lo) > min(src.hi, binv.hi):
        return False
    if src.bits.conflicts(binv.bits):
        return False
    return True


def translation_validate(program: object, compiled: "_Compiled",
                         config: BinaryLintConfig,
                         frame_sizes: Optional[Mapping[str, int]] = None,
                         analyses: Optional[
                             Dict[str, FunctionAnalysis]] = None
                         ) -> List[Diagnostic]:
    """Compare binary-derived store facts against source-derived ones.

    For every function, the abstract value each *program* store writes
    (loads/stores the source asked for, as opposed to frame
    bookkeeping) must be compatible -- non-empty intersection -- with
    the abstract value of the corresponding source store, and the store
    sites must pair up one-to-one in order. Any mismatch is a B2A108:
    the compiler changed what the program writes.
    """
    from ..compiler.flatten import flatten_program

    flat = flatten_program(program)
    if analyses is None:
        analyses = analyze_image(compiled.image, compiled.symbols, config)
    if frame_sizes is None:
        frame_sizes = getattr(compiled, "frame_sizes", {}) or {}
    findings: List[Diagnostic] = []
    for fname, ffn in flat.items():
        analysis = analyses.get("func." + fname)
        if analysis is None:
            continue
        if frame_sizes.get(fname, 0) >= _NEAR_FRAME_LIMIT:
            continue  # far-path frame addressing; see module docstring
        src = _source_store_facts(ffn.body)
        binf = analysis.stores
        if len(src) != len(binf):
            findings.append(Diagnostic(
                code="B2A108", function="func." + fname,
                message="store-site count mismatch: source has %d program "
                        "store(s), binary has %d" % (len(src), len(binf))))
            continue
        for (ssize, sval), (pc, instr, bval) in zip(src, binf):
            bsize = STORE_SIZES[instr.name]
            if ssize != bsize:
                findings.append(Diagnostic(
                    code="B2A108", function="func." + fname,
                    message="pc 0x%04x: `%s`: store size %d does not match "
                            "the source store's size %d"
                            % (pc, format_instr(instr, pc), bsize, ssize)))
            elif not _compatible(sval, bval):
                findings.append(Diagnostic(
                    code="B2A108", function="func." + fname,
                    message="pc 0x%04x: `%s`: stored value [0x%x, 0x%x] is "
                            "incompatible with the source-level value "
                            "[0x%x, 0x%x]"
                            % (pc, format_instr(instr, pc), bval.lo,
                               bval.hi, sval.lo, sval.hi)))
    out = [d for d in findings if not config.suppressed(d)]
    _FINDINGS.inc(len(out))
    return out


def lint_binary_program(program: object, compiled: "_Compiled",
                        config: BinaryLintConfig,
                        translation: bool = True) -> List[Diagnostic]:
    """The full binary lint: abstract-interpretation checks plus (when
    ``translation``) translation validation against the source."""
    analyses = analyze_image(compiled.image, compiled.symbols, config)
    out: List[Diagnostic] = []
    for analysis in analyses.values():
        out.extend(d for d in analysis.findings
                   if not config.suppressed(d))
    _FINDINGS.inc(len(out))
    if translation:
        out.extend(translation_validate(program, compiled, config,
                                        analyses=analyses))
    return out


# ---------------------------------------------------------------------------
# Concretization helpers (the soundness test's gamma)


def aval_contains(val: AVal, concrete: int,
                  entry_regs: Sequence[int]) -> bool:
    """Is ``concrete`` in the concretization of ``val``, relative to the
    function-entry register snapshot?"""
    if val.base is None:
        w = val.word
        value = concrete & MASK
    else:
        w = val.word
        value = (concrete - entry_regs[val.base]) & MASK
    return (w.lo <= value <= w.hi
            and (value & w.bits.mask) == w.bits.value)


def state_contains(state: BinState, regs: Sequence[int],
                   entry_regs: Sequence[int],
                   mem_word: Optional[Callable[[int], Optional[int]]] = None
                   ) -> Optional[str]:
    """None when the concrete machine state is inside the abstract one;
    otherwise a human-readable description of the first violation."""
    for r in range(32):
        if not aval_contains(state.regs[r], regs[r], entry_regs):
            return ("%s = 0x%x not in %r (base %r)"
                    % (reg(r), regs[r], state.regs[r].word,
                       state.regs[r].base))
    if mem_word is not None:
        sp0 = entry_regs[SP]
        for off, val in state.slots.items():
            concrete = mem_word((sp0 + off) & MASK)
            if concrete is not None and not aval_contains(
                    val, concrete, entry_regs):
                return ("slot sp0%+d = 0x%x not in %r (base %r)"
                        % (off, concrete, val.word, val.base))
    return None


__all__ = [
    "AVal",
    "BinState",
    "BinaryLintConfig",
    "FunctionAnalysis",
    "analyze_image",
    "aval_contains",
    "lint_binary_program",
    "lint_compiled",
    "lint_image",
    "state_contains",
    "translation_validate",
]
