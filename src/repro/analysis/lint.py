"""The Bedrock2 linter: diagnostic passes over a whole program.

Diagnostic codes (stable; documented in docs/static-analysis.md):

======= ==================================================================
B2A001  use of a possibly-unassigned variable (incl. unassigned returns)
B2A002  dead store: assignment whose value is never read
B2A003  unreachable branch (condition abstractly constant)
B2A004  provably misaligned load/store address
B2A005  load/store address inside an MMIO range (device access must use
        an external call, not a memory access)
B2A006  external call violates the extspec signature (unknown action,
        wrong arity, constant address outside the MMIO ranges or
        misaligned)
B2A007  external-call protocol violation (chip-select acquire/release
        pairing: double acquire, or a path exiting while held)
======= ==================================================================

The checks are intentionally *definite*: each fires only when the
abstract semantics proves the defect on every concretization of the
abstract state it inspects (up to the documented caveats), so shipped
programs lint clean and CI can fail on any finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..bedrock2.ast_ import (
    ELit,
    ELoad,
    EOp,
    Expr,
    Function,
    Program,
    SCall,
    SIf,
    SInteract,
    SSet,
    SStore,
    SWhile,
    expr_vars,
)
from ..compiler.flatimp import (
    FCall,
    FFunction,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FSetVar,
    FStore,
)
from .dataflow import (
    liveness_cmd,
    liveness_flat,
    node_loc,
    run_cmd,
    run_flat,
)
from .domains import (
    HELD,
    RELEASED,
    AbstractWord,
    CsPairingSpec,
    DefiniteAssignmentDomain,
    ExtProtocolDomain,
    WordDomain,
)

_FINDINGS = obs.counter("analysis.lint_findings")
_FUNCTIONS_LINTED = obs.counter("analysis.functions_linted")


@dataclass(frozen=True)
class Diagnostic:
    """One finding, with a stable code and (when the eDSL recorded one)
    a source location."""

    code: str
    function: str
    message: str
    loc: Optional[Tuple[str, int]] = None

    def render(self) -> str:
        where = "%s:%d: " % self.loc if self.loc else ""
        return "%s%s [%s] %s" % (where, self.function, self.code,
                                 self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "function": self.function,
            "message": self.message,
            "file": self.loc[0] if self.loc else None,
            "line": self.loc[1] if self.loc else None,
        }


@dataclass
class LintConfig:
    """Platform facts the (platform-agnostic) checks are parameterized
    by. ``mmio_ranges`` are half-open address intervals; ``ext_spec`` is
    any `repro.bedrock2.extspec.SymExtSpec` (consulted only through
    `action_signature`); ``cs_pairing`` optionally enables the protocol
    checks; ``suppress`` holds codes or ``(code, function)`` pairs."""

    mmio_ranges: Sequence[Tuple[int, int]] = ()
    ext_spec: Optional[object] = None
    cs_pairing: Optional[CsPairingSpec] = None
    suppress: FrozenSet[object] = field(default_factory=frozenset)

    def suppressed(self, diag: Diagnostic) -> bool:
        return (diag.code in self.suppress
                or (diag.code, diag.function) in self.suppress)

    def in_mmio(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in self.mmio_ranges)


def _stmt_uses(stmt: object) -> Iterable[Expr]:
    """The expressions a statement evaluates (not nested commands)."""
    if isinstance(stmt, SSet):
        return (stmt.value,)
    if isinstance(stmt, SStore):
        return (stmt.addr, stmt.value)
    if isinstance(stmt, (SIf, SWhile)):
        return (stmt.cond,)
    if isinstance(stmt, (SCall, SInteract)):
        return tuple(stmt.args)
    return ()


def _loads(e: Expr) -> Iterable[ELoad]:
    if isinstance(e, ELoad):
        yield e
        yield from _loads(e.addr)
    elif isinstance(e, EOp):
        yield from _loads(e.lhs)
        yield from _loads(e.rhs)


# ---------------------------------------------------------------------------
# Per-function passes (Bedrock2 AST)


def _check_definite_assignment(fn: Function, out: List[Diagnostic]) -> None:
    dom = DefiniteAssignmentDomain()
    reported = set()

    def report(name: str, node: object) -> None:
        if name in reported:
            return
        reported.add(name)
        out.append(Diagnostic("B2A001", fn.name,
                              "variable %r may be used before assignment"
                              % name, node_loc(node)))

    def visit(event: str, node: object, state: object) -> None:
        if event != "stmt":
            return
        assigned = state
        for e in _stmt_uses(node):
            for name in sorted(expr_vars(e)):
                if name not in assigned:
                    report(name, node)

    exit_state = run_cmd(fn.body, dom, frozenset(fn.params), visit)
    for name in fn.rets:
        if name not in exit_state:
            out.append(Diagnostic(
                "B2A001", fn.name,
                "return variable %r may be unassigned at exit" % name,
                node_loc(fn)))


def _check_dead_stores(fn: Function, out: List[Diagnostic]) -> None:
    def on_dead(stmt: object, live_after: object) -> None:
        assert isinstance(stmt, SSet)
        out.append(Diagnostic(
            "B2A002", fn.name,
            "dead store to %r (value never read)" % stmt.name,
            node_loc(stmt)))

    liveness_cmd(fn.body, frozenset(fn.rets), on_dead)


def _check_words(fn: Function, config: LintConfig,
                 out: List[Diagnostic]) -> None:
    """Interval/known-bits pass: unreachable branches plus misaligned /
    MMIO-range memory accesses."""
    dom = WordDomain()

    def check_access(addr: Expr, size: int, what: str, node: object,
                     state: Dict[str, AbstractWord]) -> None:
        value = dom.eval(addr, state)
        const = value.as_const()
        if const is not None:
            if size > 1 and const % size != 0:
                out.append(Diagnostic(
                    "B2A004", fn.name,
                    "%s address 0x%x is not %d-byte aligned"
                    % (what, const, size), node_loc(node)))
            if config.in_mmio(const):
                out.append(Diagnostic(
                    "B2A005", fn.name,
                    "%s address 0x%x lies in an MMIO range; device "
                    "registers must be accessed with an external call"
                    % (what, const), node_loc(node)))
        elif size > 1 and value.bits.known_ones() & (size - 1):
            out.append(Diagnostic(
                "B2A004", fn.name,
                "%s address is provably not %d-byte aligned "
                "(low bits known nonzero)" % (what, size), node_loc(node)))

    def visit(event: str, node: object, state: object) -> None:
        if event == "dead-branch":
            stmt, which = node
            label = {"then": "then-branch", "else": "else-branch",
                     "body": "loop body"}[which]
            # An intentionally-infinite server loop (`while (1)`) is
            # idiomatic; only *unreachable* code is a defect, so `while`
            # conditions that are constant-true are not reported.
            out.append(Diagnostic(
                "B2A003", fn.name,
                "%s is unreachable (condition is abstractly constant)"
                % label, node_loc(stmt)))
            return
        if event != "stmt":
            return
        assert isinstance(state, dict)
        if isinstance(node, SStore):
            check_access(node.addr, node.size, "store", node, state)
        for e in _stmt_uses(node):
            for load in _loads(e):
                check_access(load.addr, load.size, "load", node, state)

    run_cmd(fn.body, dom, {p: AbstractWord.top() for p in fn.params}, visit)


def _check_ext_calls(fn: Function, config: LintConfig,
                     out: List[Diagnostic]) -> None:
    """Extspec signature checks (B2A006) and chip-select protocol
    position (B2A007) in a single protocol-domain pass."""
    dom = ExtProtocolDomain(config.cs_pairing)

    def check_signature(node: SInteract) -> None:
        spec = config.ext_spec
        if spec is None:
            return
        signature = spec.action_signature(node.action)
        if signature is None:
            out.append(Diagnostic(
                "B2A006", fn.name,
                "unknown external action %r" % node.action, node_loc(node)))
            return
        n_args, n_rets = signature
        if len(node.args) != n_args:
            out.append(Diagnostic(
                "B2A006", fn.name,
                "%s takes %d argument(s), got %d"
                % (node.action, n_args, len(node.args)), node_loc(node)))
        if len(node.binds) != n_rets:
            out.append(Diagnostic(
                "B2A006", fn.name,
                "%s returns %d value(s), %d bound"
                % (node.action, n_rets, len(node.binds)), node_loc(node)))
        if node.args and isinstance(node.args[0], ELit):
            addr = node.args[0].value
            if not config.in_mmio(addr):
                out.append(Diagnostic(
                    "B2A006", fn.name,
                    "%s address 0x%x is outside every MMIO range"
                    % (node.action, addr), node_loc(node)))
            elif addr % 4 != 0:
                out.append(Diagnostic(
                    "B2A006", fn.name,
                    "%s address 0x%x is not word-aligned"
                    % (node.action, addr), node_loc(node)))

    def visit(event: str, node: object, state: object) -> None:
        if event != "stmt" or not isinstance(node, SInteract):
            return
        check_signature(node)
        if dom.classify(node) == "acquire" and HELD in state:
            out.append(Diagnostic(
                "B2A007", fn.name,
                "chip-select acquired while possibly already held "
                "(missing release on some path)", node_loc(node)))

    exit_state = run_cmd(fn.body, dom, frozenset({RELEASED}), visit)
    if HELD in exit_state:
        out.append(Diagnostic(
            "B2A007", fn.name,
            "function may exit with chip-select still held "
            "(acquire without matching release)", node_loc(fn)))


def lint_function(fn: Function, config: Optional[LintConfig] = None,
                  ) -> List[Diagnostic]:
    """All per-function checks over one Bedrock2 function."""
    config = config if config is not None else LintConfig()
    out: List[Diagnostic] = []
    _check_definite_assignment(fn, out)
    _check_dead_stores(fn, out)
    _check_words(fn, config, out)
    _check_ext_calls(fn, config, out)
    _FUNCTIONS_LINTED.inc()
    return [d for d in out if not config.suppressed(d)]


def lint_program(program: Program, config: Optional[LintConfig] = None,
                 ) -> List[Diagnostic]:
    """Lint every function of a Bedrock2 program; diagnostics in
    function order, stable across runs."""
    config = config if config is not None else LintConfig()
    out: List[Diagnostic] = []
    with obs.span("analysis.lint", cat="analysis"):
        for name in program:
            out.extend(lint_function(program[name], config))
    _FINDINGS.inc(len(out))
    return out


# ---------------------------------------------------------------------------
# FlatImp


def lint_flat_function(fn: FFunction) -> List[Diagnostic]:
    """Definite-assignment and dead-store checks over one FlatImp
    function -- the compiler-IR face of the same framework (interval and
    protocol checks are source-level concerns; flattening is checked by
    differential testing)."""
    out: List[Diagnostic] = []
    dom = DefiniteAssignmentDomain()
    reported = set()

    def visit(event: str, node: object, state: object) -> None:
        if event != "stmt":
            return
        uses: List[str] = []
        if isinstance(node, FSetVar):
            uses = [node.src]
        elif isinstance(node, FOp):
            uses = [node.lhs, node.rhs]
        elif isinstance(node, FLoad):
            uses = [node.addr]
        elif isinstance(node, FStore):
            uses = [node.addr, node.value]
        elif isinstance(node, (FCall, FInteract)):
            uses = list(node.args)
        elif isinstance(node, FIf):
            uses = [node.cond]
        # FWhile's condition variable is assigned by its cond_stmts,
        # which are themselves visited; no direct use to check here.
        for name in uses:
            if name not in state and name not in reported:
                reported.add(name)
                out.append(Diagnostic(
                    "B2A001", fn.name,
                    "variable %r may be used before assignment" % name))

    exit_state = run_flat(fn.body, dom, frozenset(fn.params), visit)
    for name in fn.rets:
        if name not in exit_state:
            out.append(Diagnostic(
                "B2A001", fn.name,
                "return variable %r may be unassigned at exit" % name))

    def on_dead(stmt: object, live_after: object) -> None:
        out.append(Diagnostic(
            "B2A002", fn.name,
            "dead store to %r (value never read)" % stmt.dst))

    liveness_flat(fn.body, frozenset(fn.rets), on_dead)
    return out


# ---------------------------------------------------------------------------
# Rendering


def render_text(diags: Sequence[Diagnostic]) -> str:
    if not diags:
        return "no findings"
    lines = [d.render() for d in diags]
    lines.append("%d finding(s)" % len(diags))
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic]) -> str:
    return json.dumps({"findings": [d.to_json() for d in diags],
                       "count": len(diags)}, indent=2)
