"""Static analysis over Bedrock2 programs (and the compiler's flat IR).

A lightweight abstract-interpretation layer that runs *before* symbolic
execution: where `repro.bedrock2.vcgen` explores paths and discharges
obligations with the SAT portfolio, this package answers cheaper
questions wholesale -- is every variable assigned before use, is any
store dead, is any branch unreachable, does every external call respect
the platform's `extspec` -- and prescreens verification conditions so
that abstractly-provable obligations never reach the solver.

Layout (Figure-3 discipline: depends on bedrock2/compiler/riscv/logic,
never the reverse -- vcgen receives the prescreener by injection):

* `repro.analysis.dataflow` -- the generic forward/backward walkers over
  the Bedrock2 AST and FlatImp;
* `repro.analysis.domains`  -- abstract domains: definite assignment,
  words as intervals + known bits (shared with `repro.logic.intervals`),
  and the MMIO/chip-select protocol domain;
* `repro.analysis.lint`     -- the diagnostic passes (`python -m repro
  lint`), with stable ``B2Axxx`` codes;
* `repro.analysis.prescreen` -- the VC prescreener hooked into
  `repro.bedrock2.vcgen.VC` (``verify --prescreen``);
* `repro.analysis.cfg`      -- control-flow recovery from encoded RV32IM
  images (basic blocks, branch targets, the call graph);
* `repro.analysis.binlint`  -- the binary-level abstract interpreter and
  translation-validation lint (`python -m repro lint --binary`), with
  stable ``B2A1xx`` codes;
* `repro.analysis.costmodel` -- the p4mm-calibrated static price list
  (successful-rule-firing units), drift-checked against the live
  pipeline module;
* `repro.analysis.wcet`     -- interprocedural WCET and stack high-water
  bounds over recovered CFGs (`python -m repro lint --binary --timing`),
  with stable ``B2A2xx`` codes.
"""

from .binlint import (  # noqa: F401
    BinaryLintConfig,
    analyze_image,
    lint_binary_program,
    lint_compiled,
    lint_image,
    translation_validate,
)
from .cfg import BinaryCFG, call_graph, recover_cfg  # noqa: F401
from .costmodel import CostModel, pipeline_cost_model  # noqa: F401
from .lint import Diagnostic, LintConfig, lint_program  # noqa: F401
from .prescreen import Prescreener  # noqa: F401
from .wcet import (  # noqa: F401
    TimingConfig,
    TimingReport,
    analyze_timing,
    check_budgets,
    drift_findings,
)
