"""Abstract domains for the Bedrock2 dataflow framework.

Three domains, each an `repro.analysis.dataflow.AbstractDomain`:

* `DefiniteAssignmentDomain` -- which locals are assigned on *every*
  path (join is intersection); powers the use-before-def check.
* `WordDomain` -- every local as an `AbstractWord`: an unsigned interval
  meeting a `repro.logic.intervals.KnownBits` mask, with transfer
  functions for all fifteen Bedrock2 binops matching the concrete
  semantics in `repro.bedrock2.word` (shift amounts mod 32, RISC-V
  division-by-zero). Powers unreachable-branch and misaligned/MMIO
  address checks, and is deliberately the same lattice the VC
  prescreener evaluates goals with.
* `ExtProtocolDomain` -- a finite-state may-analysis of external-call
  protocol position (chip-select acquire/release pairing); powers the
  call-order checks.

All domains understand both the Bedrock2 AST and FlatImp statements, so
either IR can be analyzed with the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..bedrock2.ast_ import (
    ELit,
    ELoad,
    EOp,
    EVar,
    Expr,
    SCall,
    SInteract,
    SSet,
    SStackalloc,
)
from ..compiler.flatimp import (
    FCall,
    FInteract,
    FLoad,
    FOp,
    FSetLit,
    FSetVar,
    FStackalloc,
)
from ..logic.intervals import KnownBits
from .dataflow import AbstractDomain

WIDTH = 32
MASK = (1 << WIDTH) - 1


# ---------------------------------------------------------------------------
# Definite assignment


class DefiniteAssignmentDomain(AbstractDomain[FrozenSet[str]]):
    """State: frozenset of locals assigned on every path so far."""

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a & b

    def transfer(self, stmt: object, state: FrozenSet[str]) -> FrozenSet[str]:
        if isinstance(stmt, SSet):
            return state | {stmt.name}
        if isinstance(stmt, SStackalloc):
            return state | {stmt.name}
        if isinstance(stmt, (SCall, SInteract, FCall, FInteract)):
            return state | frozenset(stmt.binds)
        if isinstance(stmt, (FSetLit, FSetVar, FOp, FLoad, FStackalloc)):
            return state | {stmt.dst}
        return state


# ---------------------------------------------------------------------------
# Words as intervals + known bits


class AbstractWord:
    """A set of 32-bit words: unsigned range [lo, hi] ∩ known-bits."""

    __slots__ = ("lo", "hi", "bits")

    def __init__(self, lo: int, hi: int, bits: Optional[KnownBits] = None):
        if bits is None:
            bits = KnownBits.top(WIDTH)
        # Tighten the range by the bits and vice versa; a contradictory
        # pair can only arise on an unreachable path, where any value is
        # a sound answer.
        lo = max(lo, bits.umin())
        hi = min(hi, bits.umax())
        if lo > hi:
            hi = lo
        self.lo = lo
        self.hi = hi
        self.bits = bits.meet(KnownBits.from_range(lo, hi, WIDTH))

    # -- constructors --------------------------------------------------------

    @staticmethod
    def top() -> "AbstractWord":
        return AbstractWord(0, MASK)

    @staticmethod
    def const(value: int) -> "AbstractWord":
        value &= MASK
        return AbstractWord(value, value, KnownBits.from_const(value, WIDTH))

    @staticmethod
    def boolean() -> "AbstractWord":
        return AbstractWord(0, 1)

    # -- queries -------------------------------------------------------------

    def is_const(self) -> bool:
        return self.lo == self.hi

    def as_const(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AbstractWord) and self.lo == other.lo
                and self.hi == other.hi and self.bits.mask == other.bits.mask
                and self.bits.value == other.bits.value)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.bits.mask, self.bits.value))

    def __repr__(self) -> str:
        return "AbstractWord[0x%x, 0x%x]" % (self.lo, self.hi)

    # -- lattice -------------------------------------------------------------

    def join(self, other: "AbstractWord") -> "AbstractWord":
        return AbstractWord(min(self.lo, other.lo), max(self.hi, other.hi),
                            self.bits.join(other.bits))

    def widen(self, other: "AbstractWord") -> "AbstractWord":
        lo = self.lo if other.lo >= self.lo else 0
        hi = self.hi if other.hi <= self.hi else MASK
        return AbstractWord(lo, hi, self.bits.join(other.bits))


def _binop(op: str, a: AbstractWord, b: AbstractWord) -> AbstractWord:
    """Abstract transfer for a Bedrock2 binop (see `repro.bedrock2.word`
    for the concrete meaning each case over-approximates)."""
    if op == "add":
        bits = a.bits.add(b.bits)
        if a.hi + b.hi <= MASK:
            return AbstractWord(a.lo + b.lo, a.hi + b.hi, bits)
        return AbstractWord(0, MASK, bits)
    if op == "sub":
        bits = a.bits.sub(b.bits)
        if a.lo - b.hi >= 0:
            return AbstractWord(a.lo - b.hi, a.hi - b.lo, bits)
        return AbstractWord(0, MASK, bits)
    if op == "mul":
        bits = a.bits.mul(b.bits)
        if a.hi * b.hi <= MASK:
            return AbstractWord(a.lo * b.lo, a.hi * b.hi, bits)
        return AbstractWord(0, MASK, bits)
    if op == "mulhuu":
        return AbstractWord((a.lo * b.lo) >> WIDTH, (a.hi * b.hi) >> WIDTH)
    if op == "divu":
        if b.lo >= 1:
            return AbstractWord(a.lo // b.hi, a.hi // b.lo)
        return AbstractWord.top()  # division by zero yields all-ones
    if op == "remu":
        if b.lo >= 1:
            return AbstractWord(0, min(a.hi, b.hi - 1))
        return AbstractWord(0, a.hi)  # remu(a, 0) = a
    if op == "and":
        return AbstractWord(0, min(a.hi, b.hi), a.bits.band(b.bits))
    if op == "or":
        nbits = max(a.hi.bit_length(), b.hi.bit_length())
        return AbstractWord(max(a.lo, b.lo), min(MASK, (1 << nbits) - 1),
                            a.bits.bor(b.bits))
    if op == "xor":
        nbits = max(a.hi.bit_length(), b.hi.bit_length())
        return AbstractWord(0, min(MASK, (1 << nbits) - 1),
                            a.bits.bxor(b.bits))
    if op in ("slu", "sru", "srs"):
        amount = b.as_const()
        if amount is None:
            if op == "sru":
                return AbstractWord(0, a.hi)
            return AbstractWord.top()
        amount %= WIDTH
        if op == "slu":
            bits = a.bits.shl(amount)
            if a.hi << amount <= MASK:
                return AbstractWord(a.lo << amount, a.hi << amount, bits)
            return AbstractWord(0, MASK, bits)
        if op == "sru":
            return AbstractWord(a.lo >> amount, a.hi >> amount,
                                a.bits.lshr(amount))
        return AbstractWord(0, MASK, a.bits.ashr(amount))
    if op == "ltu":
        if a.hi < b.lo:
            return AbstractWord.const(1)
        if a.lo >= b.hi:
            return AbstractWord.const(0)
        return AbstractWord.boolean()
    if op == "lts":
        return AbstractWord.boolean()
    if op == "eq":
        if a.is_const() and b.is_const() and a.lo == b.lo:
            return AbstractWord.const(1)
        if a.hi < b.lo or b.hi < a.lo or a.bits.conflicts(b.bits):
            return AbstractWord.const(0)
        return AbstractWord.boolean()
    return AbstractWord.top()


WordState = Dict[str, AbstractWord]


class WordDomain(AbstractDomain[WordState]):
    """State: dict local -> `AbstractWord`; absent locals are top."""

    def get(self, state: WordState, name: str) -> AbstractWord:
        return state.get(name, AbstractWord.top())

    def eval(self, e: Expr, state: WordState) -> AbstractWord:
        if isinstance(e, ELit):
            return AbstractWord.const(e.value)
        if isinstance(e, EVar):
            return self.get(state, e.name)
        if isinstance(e, ELoad):
            return AbstractWord(0, (1 << (8 * e.size)) - 1)
        if isinstance(e, EOp):
            return _binop(e.op, self.eval(e.lhs, state),
                          self.eval(e.rhs, state))
        return AbstractWord.top()

    def join(self, a: WordState, b: WordState) -> WordState:
        return {name: a[name].join(b[name])
                for name in a.keys() & b.keys()}

    def widen(self, a: WordState, b: WordState) -> WordState:
        return {name: a[name].widen(b[name])
                for name in a.keys() & b.keys()}

    def transfer(self, stmt: object, state: WordState) -> WordState:
        if isinstance(stmt, SSet):
            out = dict(state)
            out[stmt.name] = self.eval(stmt.value, state)
            return out
        if isinstance(stmt, SStackalloc):
            out = dict(state)
            # The address is arbitrary but word-aligned (vcgen assumes
            # exactly this).
            out[stmt.name] = AbstractWord(0, MASK,
                                          KnownBits(WIDTH, 3, 0))
            return out
        if isinstance(stmt, (SCall, SInteract, FCall, FInteract)):
            out = dict(state)
            for name in stmt.binds:
                out[name] = AbstractWord.top()
            return out
        if isinstance(stmt, FSetLit):
            out = dict(state)
            out[stmt.dst] = AbstractWord.const(stmt.value)
            return out
        if isinstance(stmt, FSetVar):
            out = dict(state)
            out[stmt.dst] = self.get(state, stmt.src)
            return out
        if isinstance(stmt, FOp):
            out = dict(state)
            out[stmt.dst] = _binop(stmt.op, self.get(state, stmt.lhs),
                                   self.get(state, stmt.rhs))
            return out
        if isinstance(stmt, FLoad):
            out = dict(state)
            out[stmt.dst] = AbstractWord(0, (1 << (8 * stmt.size)) - 1)
            return out
        if isinstance(stmt, FStackalloc):
            out = dict(state)
            out[stmt.dst] = AbstractWord(0, MASK, KnownBits(WIDTH, 3, 0))
            return out
        return state  # SStore / FStore: locals unchanged

    def _cond_value(self, cond: object, state: WordState) -> AbstractWord:
        if isinstance(cond, str):  # FlatImp condition variable
            return self.get(state, cond)
        return self.eval(cond, state)

    def decide(self, state: WordState, cond: object) -> Optional[bool]:
        value = self._cond_value(cond, state)
        if value.hi == 0:
            return False
        if value.lo >= 1:
            return True
        return None

    def assume(self, state: WordState, cond: object,
               taken: bool) -> WordState:
        out = dict(state)
        self._refine(cond, taken, out)
        return out

    def _refine(self, cond: object, taken: bool, state: WordState) -> None:
        """Narrow variable ranges using the branch condition. Sound: only
        shrinks the abstraction of executions that actually take the
        branch."""
        name = None
        if isinstance(cond, str):
            name = cond
        elif isinstance(cond, EVar):
            name = cond.name
        if name is not None:
            current = self.get(state, name)
            if not taken:
                state[name] = AbstractWord.const(0)
            elif current.lo == 0:
                state[name] = AbstractWord(1, max(current.hi, 1),
                                           current.bits)
            return
        if not isinstance(cond, EOp):
            return
        if cond.op == "ltu":
            self._refine_ltu(cond.lhs, cond.rhs, taken, state)
        elif cond.op == "eq":
            # ``a == b`` as a 0/1 word: taken means equal.
            self._refine_eq(cond.lhs, cond.rhs, taken, state)

    def _refine_ltu(self, lhs: Expr, rhs: Expr, taken: bool,
                    state: WordState) -> None:
        lval = self.eval(lhs, state)
        rval = self.eval(rhs, state)
        if taken:  # lhs < rhs
            if isinstance(lhs, EVar) and rval.hi >= 1:
                v = self.get(state, lhs.name)
                state[lhs.name] = AbstractWord(v.lo, min(v.hi, rval.hi - 1),
                                               v.bits)
            if isinstance(rhs, EVar) and lval.lo <= MASK - 1:
                v = self.get(state, rhs.name)
                state[rhs.name] = AbstractWord(max(v.lo, lval.lo + 1), v.hi,
                                               v.bits)
        else:  # lhs >= rhs
            if isinstance(lhs, EVar):
                v = self.get(state, lhs.name)
                state[lhs.name] = AbstractWord(max(v.lo, rval.lo), v.hi,
                                               v.bits)
            if isinstance(rhs, EVar):
                v = self.get(state, rhs.name)
                state[rhs.name] = AbstractWord(v.lo, min(v.hi, lval.hi),
                                               v.bits)

    def _refine_eq(self, lhs: Expr, rhs: Expr, taken: bool,
                   state: WordState) -> None:
        if not taken:
            return  # disequality carries almost no interval information
        lval = self.eval(lhs, state)
        rval = self.eval(rhs, state)
        if isinstance(lhs, EVar) and rval.is_const():
            state[lhs.name] = AbstractWord.const(rval.lo)
        if isinstance(rhs, EVar) and lval.is_const():
            state[rhs.name] = AbstractWord.const(lval.lo)


# ---------------------------------------------------------------------------
# External-call protocol (chip-select pairing)


@dataclass(frozen=True)
class CsPairingSpec:
    """An acquire/release protocol on one MMIO register: writing
    ``acquire`` to ``addr`` enters the held state, writing ``release``
    leaves it. Instantiated by callers (the CLI / tests) with the
    platform's chip-select constants -- this package never imports the
    platform layer."""

    addr: int
    acquire: int
    release: int
    write_action: str = "MMIOWRITE"


#: Protocol positions; the state is the frozenset of positions the
#: function *may* be in (a may-analysis: union at joins).
RELEASED = "released"
HELD = "held"

ProtoState = FrozenSet[str]


class ExtProtocolDomain(AbstractDomain[ProtoState]):
    """Tracks the chip-select protocol position across external calls.

    Non-interact statements (including Bedrock2 calls) are assumed to
    preserve the protocol position; each function is checked separately
    starting from `RELEASED`, matching the driver convention that a
    callee either leaves chip-select alone or pairs its own
    acquire/release (every callee is itself linted under the same rule).
    """

    def __init__(self, spec: Optional[CsPairingSpec]):
        self.spec = spec

    def join(self, a: ProtoState, b: ProtoState) -> ProtoState:
        return a | b

    def classify(self, stmt: object) -> Optional[str]:
        """\"acquire\", \"release\", or None for an interact statement."""
        if self.spec is None:
            return None
        if isinstance(stmt, SInteract):
            if stmt.action != self.spec.write_action or len(stmt.args) != 2:
                return None
            addr, value = stmt.args
            if not (isinstance(addr, ELit) and addr.value == self.spec.addr):
                return None
            if isinstance(value, ELit):
                if value.value == self.spec.acquire:
                    return "acquire"
                if value.value == self.spec.release:
                    return "release"
        return None

    def transfer(self, stmt: object, state: ProtoState) -> ProtoState:
        kind = self.classify(stmt)
        if kind == "acquire":
            return frozenset({HELD})
        if kind == "release":
            return frozenset({RELEASED})
        return state
