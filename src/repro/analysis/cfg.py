"""Control-flow recovery from encoded RV32IM images.

The binary-level linter (`repro.analysis.binlint`) needs the same thing
every binary analysis needs first: which bytes are instructions, where
functions start and end, and how control flows between basic blocks.
This module recovers all of that from a compiled image plus its symbol
table (`CompiledProgram.symbols`), reusing `repro.riscv.decode` so the
CFG is built from exactly the instructions the machines will execute.

Function extents come from the symbols: every ``func.*`` label and the
``_start`` stub open a function that extends to the next function label
(or the end of the image); interior labels like ``halt`` or the branch-
relaxation trampolines stay inside their enclosing function. Within a
function, block leaders are the entry, every branch/jump target, and
every instruction following a terminator. Successor edges are only
recorded when the target lands on a decoded instruction inside the same
function -- out-of-extent or misaligned targets are kept as the block's
``target`` for the linter to diagnose (B2A101) rather than silently
becoming edges.

Terminator kinds:

========== ==============================================================
fall       straight-line flow into the next leader
branch     conditional B-type; successors are fall-through and target
jump       ``jal`` with rd=x0 (or any rd other than ra): one successor
call       ``jal`` with rd=ra; successor is the return point (pc+4)
return     ``jalr`` with rd=x0, rs1=ra (imm checked by the linter)
indirect   any other ``jalr`` -- target statically unknown, no successors
========== ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..riscv.decode import decode
from ..riscv.insts import B_TYPE, Instr

#: ABI register numbers the classifier cares about.
RA = 1
SP = 2


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of instructions inside one function."""

    start: int
    instrs: Tuple[Tuple[int, Instr], ...]
    kind: str  # "fall" | "branch" | "jump" | "call" | "return" | "indirect"
    succs: Tuple[int, ...]  # validated intra-function successor pcs
    target: Optional[int]  # raw control-transfer target (branch/jump/call)

    @property
    def terminator(self) -> Tuple[int, Instr]:
        return self.instrs[-1]


@dataclass(frozen=True)
class BinFunction:
    """One function's extent and its basic blocks, keyed by start pc."""

    name: str
    entry: int
    end: int  # half-open: [entry, end)
    blocks: Dict[int, BasicBlock]

    def contains(self, pc: int) -> bool:
        return self.entry <= pc < self.end


@dataclass(frozen=True)
class BinaryCFG:
    """The whole image's control-flow graph."""

    functions: Dict[str, BinFunction]
    instrs: Dict[int, Instr]  # every decodable word, by pc
    invalid: Tuple[Tuple[int, int], ...]  # (pc, raw word) decode failures
    image_size: int
    entries: Dict[int, str]  # function entry pc -> name

    def function_at(self, pc: int) -> Optional[BinFunction]:
        for fn in self.functions.values():
            if fn.contains(pc):
                return fn
        return None


def decode_image(image: bytes,
                 base: int = 0) -> Tuple[Dict[int, Instr],
                                         List[Tuple[int, int]]]:
    """Decode every aligned word; undecodable words are collected, not
    fatal (data words would appear this way, though the compiler emits
    none)."""
    instrs: Dict[int, Instr] = {}
    invalid: List[Tuple[int, int]] = []
    for off in range(0, len(image) - len(image) % 4, 4):
        word = int.from_bytes(image[off:off + 4], "little")
        pc = base + off
        try:
            instrs[pc] = decode(word)
        except Exception:
            invalid.append((pc, word))
    return instrs, invalid


def function_extents(symbols: Mapping[str, int],
                     image_size: int) -> List[Tuple[str, int, int]]:
    """``(name, entry, end)`` for every function label, sorted by entry.

    Only ``func.*`` labels and ``_start`` delimit functions; all other
    symbols (``halt``, relaxation trampolines) are interior labels.
    """
    starts = sorted((addr, name) for name, addr in symbols.items()
                    if name.startswith("func.") or name == "_start")
    extents = []
    for i, (addr, name) in enumerate(starts):
        end = starts[i + 1][0] if i + 1 < len(starts) else image_size
        extents.append((name, addr, end))
    return extents


def classify_terminator(pc: int, instr: Instr) -> Tuple[str, Optional[int]]:
    """``(kind, raw_target)`` for an instruction viewed as a potential
    block terminator; ``("fall", None)`` for straight-line instructions."""
    if instr.name in B_TYPE:
        return "branch", pc + (instr.imm or 0)
    if instr.name == "jal":
        target = pc + (instr.imm or 0)
        if instr.rd == RA:
            return "call", target
        return "jump", target
    if instr.name == "jalr":
        if instr.rd == 0 and instr.rs1 == RA:
            return "return", None
        return "indirect", None
    return "fall", None


def _recover_function(name: str, entry: int, end: int,
                      instrs: Mapping[int, Instr]) -> BinFunction:
    pcs = [pc for pc in range(entry, end, 4) if pc in instrs]
    pc_set = set(pcs)

    leaders: Set[int] = {entry}
    for pc in pcs:
        if pc - 4 not in pc_set:  # first instruction after a decode gap
            leaders.add(pc)
        kind, target = classify_terminator(pc, instrs[pc])
        if kind == "fall":
            continue
        leaders.add(pc + 4)
        if (kind in ("branch", "jump") and target is not None
                and target in pc_set):
            leaders.add(target)

    blocks: Dict[int, BasicBlock] = {}
    current: List[Tuple[int, Instr]] = []
    start = entry
    for i, pc in enumerate(pcs):
        if pc in leaders and current:
            # Fell through into a new leader -- unless a decode gap sits
            # between them, in which case execution never arrives and the
            # linter reports the dead end (empty succs on a fall block).
            succ = (pc,) if current[-1][0] + 4 == pc else ()
            blocks[start] = _make_block(start, current, "fall", succ, None)
            current, start = [], pc
        instr = instrs[pc]
        current.append((pc, instr))
        kind, target = classify_terminator(pc, instr)
        next_pc = pcs[i + 1] if i + 1 < len(pcs) else None
        if kind == "fall":
            continue
        succs: Tuple[int, ...]
        if kind == "branch":
            succs = tuple(t for t in dict.fromkeys((pc + 4, target))
                          if t is not None and t in pc_set)
        elif kind == "jump":
            succs = (target,) if target in pc_set else ()
        elif kind == "call":
            succs = (pc + 4,) if pc + 4 in pc_set else ()
        else:  # return / indirect
            succs = ()
        blocks[start] = _make_block(start, current, kind, succs, target)
        current = []
        if next_pc is not None:
            start = next_pc
    if current:
        # The extent ended without a terminator: control would fall off
        # the end of the function (linted as B2A101).
        blocks[start] = _make_block(start, current, "fall", (), None)
    return BinFunction(name=name, entry=entry, end=end, blocks=blocks)


def _make_block(start: int, instrs: List[Tuple[int, Instr]], kind: str,
                succs: Tuple[int, ...],
                target: Optional[int]) -> BasicBlock:
    return BasicBlock(start=start, instrs=tuple(instrs), kind=kind,
                      succs=succs, target=target)


def recover_cfg(image: bytes, symbols: Mapping[str, int],
                base: int = 0) -> BinaryCFG:
    """Recover the full CFG of a compiled image."""
    instrs, invalid = decode_image(image, base)
    extents = function_extents(symbols, base + len(image))
    functions = {name: _recover_function(name, entry, end, instrs)
                 for name, entry, end in extents}
    entries = {entry: name for name, entry, _ in extents}
    return BinaryCFG(functions=functions, instrs=instrs,
                     invalid=tuple(invalid), image_size=base + len(image),
                     entries=entries)


def call_graph(cfg: BinaryCFG) -> Dict[str, Set[str]]:
    """caller name -> set of callee names, from ``jal ra`` call sites
    whose target is a known function entry (unknown targets are the
    linter's problem, not edges)."""
    graph: Dict[str, Set[str]] = {name: set() for name in cfg.functions}
    for name, fn in cfg.functions.items():
        for block in fn.blocks.values():
            if block.kind == "call" and block.target in cfg.entries:
                graph[name].add(cfg.entries[block.target])
    return graph
