"""Generic dataflow walkers over the Bedrock2 AST and the flat IR.

Forward analyses plug an `AbstractDomain` into `run_cmd` (Bedrock2 AST)
or `run_flat` (FlatImp): the walker owns control flow -- sequencing,
branch joins, loop fixpoints with widening -- while the domain owns the
meaning of states. Analyses observe the program through a visitor
callback that receives each statement with its in-state; during loop
fixpoint iteration the visitor is muted, and once the loop stabilizes
the body is re-walked with the visitor attached, so every statement is
reported exactly once under its weakest (stabilized) in-state.

Analyses over an *explicit* control-flow graph (the binary-level
abstract interpreter in `binlint.py`, whose control flow is recovered
from machine code rather than structured syntax) use `run_cfg`: a
classic worklist fixpoint where the client's transfer function maps a
block's in-state to one out-state per successor, so branch refinement
and infeasible-edge pruning live in the client.

Backward liveness is structural rather than domain-parameterized
(`liveness_cmd` / `liveness_flat`): the only client is the dead-store
check, which needs the live-after set at every assignment.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..bedrock2.ast_ import (
    Cmd,
    Expr,
    SCall,
    SIf,
    SInteract,
    SSeq,
    SSet,
    SSkip,
    SStackalloc,
    SStore,
    SWhile,
    expr_vars,
)
from ..compiler.flatimp import (
    FCall,
    FIf,
    FInteract,
    FLoad,
    FOp,
    FSetLit,
    FSetVar,
    FStackalloc,
    FStmt,
    FStore,
    FWhile,
)

S = TypeVar("S")

#: Visitor events: ("stmt", node, state) before each statement;
#: ("dead-branch", (node, which), state) when a branch is unreachable,
#: with ``which`` in {"then", "else", "body"}.
Visitor = Callable[[str, object, object], None]

#: Loop iterations before the walker switches from join to widen.
WIDEN_AFTER = 3

#: Hard cap on fixpoint iterations (the widened lattices all have short
#: chains; this is a defensive bound, not a tuning knob).
MAX_ITERATIONS = 64


class AbstractDomain(Generic[S]):
    """Interface a forward domain implements; states are treated as
    immutable values by the walker (transfers return new states)."""

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def widen(self, a: S, b: S) -> S:
        """Extrapolation for loop heads; default is plain join, which is
        enough for finite-height domains."""
        return self.join(a, b)

    def equals(self, a: S, b: S) -> bool:
        return bool(a == b)

    def transfer(self, stmt: object, state: S) -> S:
        """Effect of an atomic statement (assignment, store, call,
        interact, stackalloc-binding); control flow never reaches here."""
        raise NotImplementedError

    def assume(self, state: S, cond: object, taken: bool) -> S:
        """Refine ``state`` with the branch condition's truth; default
        no-op."""
        return state

    def decide(self, state: S, cond: object) -> Optional[bool]:
        """Constant-fold a branch condition in the abstract state; None
        when undecided. Drives unreachable-branch detection."""
        return None


# ---------------------------------------------------------------------------
# Forward walker, Bedrock2 AST


def run_cmd(cmd: Cmd, dom: AbstractDomain[S], state: S,
            visit: Optional[Visitor] = None) -> S:
    """Propagate ``state`` through ``cmd``; returns the exit state."""
    if isinstance(cmd, SSkip):
        return state
    if isinstance(cmd, SSeq):
        mid = run_cmd(cmd.first, dom, state, visit)
        return run_cmd(cmd.rest, dom, mid, visit)
    if isinstance(cmd, SIf):
        if visit is not None:
            visit("stmt", cmd, state)
        decided = dom.decide(state, cmd.cond)
        if decided is True:
            if visit is not None:
                visit("dead-branch", (cmd, "else"), state)
            return run_cmd(cmd.then_, dom, dom.assume(state, cmd.cond, True),
                           visit)
        if decided is False:
            if visit is not None:
                visit("dead-branch", (cmd, "then"), state)
            return run_cmd(cmd.else_, dom, dom.assume(state, cmd.cond, False),
                           visit)
        then_out = run_cmd(cmd.then_, dom, dom.assume(state, cmd.cond, True),
                           visit)
        else_out = run_cmd(cmd.else_, dom, dom.assume(state, cmd.cond, False),
                           visit)
        return dom.join(then_out, else_out)
    if isinstance(cmd, SWhile):
        if visit is not None:
            visit("stmt", cmd, state)
        head = _loop_fixpoint(
            state, dom,
            lambda h: run_cmd(cmd.body, dom, dom.assume(h, cmd.cond, True),
                              None))
        if dom.decide(head, cmd.cond) is False:
            if visit is not None:
                visit("dead-branch", (cmd, "body"), state)
        elif visit is not None:
            run_cmd(cmd.body, dom, dom.assume(head, cmd.cond, True), visit)
        return dom.assume(head, cmd.cond, False)
    if isinstance(cmd, SStackalloc):
        if visit is not None:
            visit("stmt", cmd, state)
        return run_cmd(cmd.body, dom, dom.transfer(cmd, state), visit)
    # Atomic: SSet, SStore, SCall, SInteract.
    if visit is not None:
        visit("stmt", cmd, state)
    return dom.transfer(cmd, state)


def _loop_fixpoint(entry: S, dom: AbstractDomain[S],
                   body: Callable[[S], S]) -> S:
    """Stabilize the loop-head state: ``head = entry ⊔ body(head)``."""
    head = entry
    for iteration in range(MAX_ITERATIONS):
        grown = dom.join(entry, body(head))
        if iteration >= WIDEN_AFTER:
            grown = dom.widen(head, grown)
        if dom.equals(grown, head):
            return head
        head = grown
    return head


# ---------------------------------------------------------------------------
# Forward worklist fixpoint over an explicit CFG

B = TypeVar("B", bound=Hashable)

#: A CFG transfer: given a block id and its in-state, the out-state per
#: successor block. Omitting a successor prunes that edge (used for
#: branches whose condition the domain decides).
CfgTransfer = Callable[[B, S], Mapping[B, S]]


def run_cfg(entry: B, entry_state: S, transfer: "CfgTransfer[B, S]",
            dom: AbstractDomain[S]) -> Dict[B, S]:
    """Worklist fixpoint over an explicit CFG.

    Returns the stabilized in-state per reachable block; blocks never
    reached (all incoming edges pruned, or disconnected) are absent from
    the result. Joins switch to widening at any block whose in-state has
    been updated `WIDEN_AFTER` times -- loop heads in disguise -- which
    bounds chains in infinite-height domains; `MAX_ITERATIONS` visits
    per discovered block is a defensive cap on top.
    """
    in_states: Dict[B, S] = {entry: entry_state}
    updates: Dict[B, int] = {}
    work = deque([entry])
    queued = {entry}
    pops = 0
    while work:
        pops += 1
        if pops > MAX_ITERATIONS * max(1, len(in_states)):
            break
        block = work.popleft()
        queued.discard(block)
        for succ, out in transfer(block, in_states[block]).items():
            old = in_states.get(succ)
            if old is None:
                in_states[succ] = out
            else:
                grown = dom.join(old, out)
                if updates.get(succ, 0) >= WIDEN_AFTER:
                    grown = dom.widen(old, grown)
                if dom.equals(grown, old):
                    continue
                updates[succ] = updates.get(succ, 0) + 1
                in_states[succ] = grown
            if succ not in queued:
                work.append(succ)
                queued.add(succ)
    return in_states


# ---------------------------------------------------------------------------
# Forward walker, FlatImp


def run_flat(stmts: Sequence[FStmt], dom: AbstractDomain[S], state: S,
             visit: Optional[Visitor] = None) -> S:
    """FlatImp counterpart of `run_cmd` over a statement tuple."""
    for stmt in stmts:
        state = _run_flat_stmt(stmt, dom, state, visit)
    return state


def _run_flat_stmt(stmt: FStmt, dom: AbstractDomain[S], state: S,
                   visit: Optional[Visitor]) -> S:
    if isinstance(stmt, FIf):
        if visit is not None:
            visit("stmt", stmt, state)
        decided = dom.decide(state, stmt.cond)
        if decided is True:
            if visit is not None:
                visit("dead-branch", (stmt, "else"), state)
            return run_flat(stmt.then_, dom,
                            dom.assume(state, stmt.cond, True), visit)
        if decided is False:
            if visit is not None:
                visit("dead-branch", (stmt, "then"), state)
            return run_flat(stmt.else_, dom,
                            dom.assume(state, stmt.cond, False), visit)
        then_out = run_flat(stmt.then_, dom,
                            dom.assume(state, stmt.cond, True), visit)
        else_out = run_flat(stmt.else_, dom,
                            dom.assume(state, stmt.cond, False), visit)
        return dom.join(then_out, else_out)
    if isinstance(stmt, FWhile):
        if visit is not None:
            visit("stmt", stmt, state)

        def one_iteration(h: S) -> S:
            after_cond = run_flat(stmt.cond_stmts, dom, h, None)
            return run_flat(stmt.body, dom,
                            dom.assume(after_cond, stmt.cond_var, True), None)

        head = _loop_fixpoint(state, dom, one_iteration)
        after_cond = run_flat(stmt.cond_stmts, dom, head, visit)
        if dom.decide(after_cond, stmt.cond_var) is False:
            if visit is not None:
                visit("dead-branch", (stmt, "body"), state)
        elif visit is not None:
            run_flat(stmt.body, dom,
                     dom.assume(after_cond, stmt.cond_var, True), visit)
        return dom.assume(after_cond, stmt.cond_var, False)
    if isinstance(stmt, FStackalloc):
        if visit is not None:
            visit("stmt", stmt, state)
        return run_flat(stmt.body, dom, dom.transfer(stmt, state), visit)
    if visit is not None:
        visit("stmt", stmt, state)
    return dom.transfer(stmt, state)


# ---------------------------------------------------------------------------
# Backward liveness, Bedrock2 AST

Live = FrozenSet[str]
OnDead = Callable[[object, Live], None]


def _vars(e: Expr) -> Live:
    return frozenset(expr_vars(e))


def liveness_cmd(cmd: Cmd, live_out: Live,
                 on_dead: Optional[OnDead] = None) -> Live:
    """Backward live-variable analysis; returns the live-in set.

    ``on_dead(stmt, live_after)`` fires for every `SSet` whose target is
    dead immediately after it -- the classic dead store. Only plain
    assignments are reported: call/interact result binds are how Bedrock2
    discards unused outputs (the drivers' ``junk``), and stores write
    memory, not locals.
    """
    if isinstance(cmd, SSkip):
        return live_out
    if isinstance(cmd, SSeq):
        mid = liveness_cmd(cmd.rest, live_out, on_dead)
        return liveness_cmd(cmd.first, mid, on_dead)
    if isinstance(cmd, SSet):
        if on_dead is not None and cmd.name not in live_out:
            on_dead(cmd, live_out)
        return (live_out - {cmd.name}) | _vars(cmd.value)
    if isinstance(cmd, SStore):
        return live_out | _vars(cmd.addr) | _vars(cmd.value)
    if isinstance(cmd, SIf):
        then_in = liveness_cmd(cmd.then_, live_out, on_dead)
        else_in = liveness_cmd(cmd.else_, live_out, on_dead)
        return then_in | else_in | _vars(cmd.cond)
    if isinstance(cmd, SWhile):
        head = live_out | _vars(cmd.cond)
        for _ in range(MAX_ITERATIONS):
            grown = head | liveness_cmd(cmd.body, head, None)
            if grown == head:
                break
            head = grown
        liveness_cmd(cmd.body, head, on_dead)
        return head
    if isinstance(cmd, SStackalloc):
        inner = liveness_cmd(cmd.body, live_out, on_dead)
        return inner - {cmd.name}
    if isinstance(cmd, SCall):
        live = live_out - frozenset(cmd.binds)
        for arg in cmd.args:
            live |= _vars(arg)
        return live
    if isinstance(cmd, SInteract):
        live = live_out - frozenset(cmd.binds)
        for arg in cmd.args:
            live |= _vars(arg)
        return live
    raise TypeError("not a command: %r" % (cmd,))


# ---------------------------------------------------------------------------
# Backward liveness, FlatImp


def liveness_flat(stmts: Sequence[FStmt], live_out: Live,
                  on_dead: Optional[OnDead] = None) -> Live:
    """FlatImp counterpart of `liveness_cmd`; reports dead `FSetLit` /
    `FSetVar` / `FOp` / `FLoad` destinations."""
    live = live_out
    for stmt in reversed(stmts):
        live = _liveness_flat_stmt(stmt, live, on_dead)
    return live


def _liveness_flat_stmt(stmt: FStmt, live_out: Live,
                        on_dead: Optional[OnDead]) -> Live:
    if isinstance(stmt, FSetLit):
        if on_dead is not None and stmt.dst not in live_out:
            on_dead(stmt, live_out)
        return live_out - {stmt.dst}
    if isinstance(stmt, FSetVar):
        if on_dead is not None and stmt.dst not in live_out:
            on_dead(stmt, live_out)
        return (live_out - {stmt.dst}) | {stmt.src}
    if isinstance(stmt, FOp):
        if on_dead is not None and stmt.dst not in live_out:
            on_dead(stmt, live_out)
        return (live_out - {stmt.dst}) | {stmt.lhs, stmt.rhs}
    if isinstance(stmt, FLoad):
        # A dead load is still a memory access (it can fault); report it
        # like a dead store but keep the address live.
        if on_dead is not None and stmt.dst not in live_out:
            on_dead(stmt, live_out)
        return (live_out - {stmt.dst}) | {stmt.addr}
    if isinstance(stmt, FStore):
        return live_out | {stmt.addr, stmt.value}
    if isinstance(stmt, FStackalloc):
        inner = liveness_flat(stmt.body, live_out, on_dead)
        return inner - {stmt.dst}
    if isinstance(stmt, FIf):
        then_in = liveness_flat(stmt.then_, live_out, on_dead)
        else_in = liveness_flat(stmt.else_, live_out, on_dead)
        return then_in | else_in | {stmt.cond}
    if isinstance(stmt, FWhile):
        head = live_out | {stmt.cond_var}
        for _ in range(MAX_ITERATIONS):
            body_in = liveness_flat(stmt.body, head, None)
            grown = head | liveness_flat(stmt.cond_stmts,
                                         head | body_in, None)
            if grown == head:
                break
            head = grown
        body_in = liveness_flat(stmt.body, head, on_dead)
        return liveness_flat(stmt.cond_stmts, head | body_in, on_dead)
    if isinstance(stmt, (FCall, FInteract)):
        return (live_out - frozenset(stmt.binds)) | frozenset(stmt.args)
    raise TypeError("not a FlatImp statement: %r" % (stmt,))


def node_loc(node: object) -> Optional[Tuple[str, int]]:
    """The ``(filename, lineno)`` the eDSL builder attached, if any."""
    loc = getattr(node, "loc", None)
    if (isinstance(loc, tuple) and len(loc) == 2
            and isinstance(loc[0], str) and isinstance(loc[1], int)):
        return loc
    return None
