"""Make ``src/`` importable when the package is not pip-installed.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` cannot build a PEP-660 editable wheel. Putting the
source tree on ``sys.path`` here gives the same effect for pytest runs.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
