"""Make ``src/`` importable when the package is not pip-installed.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` cannot build a PEP-660 editable wheel. Putting the
source tree on ``sys.path`` here gives the same effect for pytest runs.

``REPRO_MUTATION=<name>`` activates one `repro.fuzz.mutate` catalog
mutation for the whole test process: mutation scoring
(``python -m repro fuzz --mutation-tier1``) runs the fast tier-1 subset
under each mutation this way and counts failures as kills.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

_MUTATION = os.environ.get("REPRO_MUTATION")
if _MUTATION:
    from repro.fuzz.mutate import activate

    activate(_MUTATION)
