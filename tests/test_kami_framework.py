"""Unit tests for the Kami-style rule framework: atomicity, labels, FIFOs."""

import pytest

from repro.kami.framework import (
    ExternalWorld, Fifo, MethodCall, Module, RuleAbort, System,
)


class Echo(ExternalWorld):
    def __init__(self):
        self.calls = []

    def call(self, method, args):
        self.calls.append((method, args))
        if method == "ask":
            return sum(args) & 0xFFFFFFFF
        return None


def test_rule_fires_and_mutates():
    m = Module("m")
    m.reg("x", 0)

    def bump(mod):
        mod.regs["x"] += 1

    m.rule("bump", bump)
    sys_ = System([m], Echo())
    label = sys_.step()
    assert label is not None and label.rule == "m.bump"
    assert m.regs["x"] == 1


def test_aborted_rule_rolls_back_registers():
    m = Module("m")
    m.reg("x", 0)
    m.reg("lst", [1, 2])

    def bad(mod):
        mod.regs["x"] = 99
        mod.regs["lst"].append(3)
        raise RuleAbort("nope")

    m.rule("bad", bad)
    sys_ = System([m], Echo())
    assert sys_.step() is None
    assert m.regs["x"] == 0
    assert m.regs["lst"] == [1, 2]


def test_abort_after_external_call_is_an_error():
    m = Module("m")

    def leaky(mod):
        mod.sys.call("ask", 1)
        raise RuleAbort("too late")

    m.rule("leaky", leaky)
    sys_ = System([m], Echo())
    with pytest.raises(RuntimeError):
        sys_.step()


def test_external_calls_are_labeled_internal_are_not():
    provider = Module("prov")
    provider.method("internal", lambda mod, a: a * 2)
    user = Module("user")
    user.reg("acc", 0)

    def use(mod):
        mod.regs["acc"] = mod.sys.call("internal", 5) + mod.sys.call("ask", 1, 2)

    user.rule("use", use)
    sys_ = System([provider, user], Echo())
    label = sys_.step()
    assert user.regs["acc"] == 13
    assert label.calls == (MethodCall("ask", (1, 2), 3),)
    assert sys_.trace == [label]


def test_silent_steps_invisible_in_trace():
    m = Module("m")
    m.reg("x", 0)

    def silent(mod):
        if mod.regs["x"] >= 3:
            raise RuleAbort("done")
        mod.regs["x"] += 1

    m.rule("silent", silent)
    sys_ = System([m], Echo())
    sys_.run(10)
    assert m.regs["x"] == 3
    assert sys_.trace == []


def test_round_robin_gives_all_rules_a_chance():
    m = Module("m")
    m.reg("a", 0)
    m.reg("b", 0)
    m.rule("incA", lambda mod: mod.regs.__setitem__("a", mod.regs["a"] + 1))
    m.rule("incB", lambda mod: mod.regs.__setitem__("b", mod.regs["b"] + 1))
    sys_ = System([m], Echo())
    sys_.run(10)
    assert m.regs["a"] == 5 and m.regs["b"] == 5


def test_run_stops_when_quiescent():
    m = Module("m")

    def never(mod):
        raise RuleAbort("never enabled")

    m.rule("never", never)
    sys_ = System([m], Echo())
    assert sys_.run(100) == 0


def test_fifo_basics():
    m = Module("m")
    fifo = Fifo(m, "q", 2)
    fifo.enq(1)
    fifo.enq(2)
    assert fifo.full()
    with pytest.raises(RuleAbort):
        fifo.enq(3)
    assert fifo.first() == 1
    assert fifo.deq() == 1
    assert fifo.deq() == 2
    assert fifo.empty()
    with pytest.raises(RuleAbort):
        fifo.deq()


def test_duplicate_method_rejected():
    a = Module("a")
    a.method("m", lambda mod: 0)
    b = Module("b")
    b.method("m", lambda mod: 1)
    with pytest.raises(ValueError):
        System([a, b], Echo())


def test_rule_order_override():
    m = Module("m")
    m.reg("log", [])
    m.rule("r1", lambda mod: mod.regs["log"].append(1))
    m.rule("r2", lambda mod: mod.regs["log"].append(2))
    sys_ = System([m], Echo(), rule_order=["m.r2", "m.r1"])
    sys_.step()
    assert m.regs["log"] == [2]
